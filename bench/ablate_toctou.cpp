// Ablation: the TOCTOU window — how attestation frequency bounds what
// transient malware can get away with (§II: "estimating timeouts and
// vulnerability windows in case of TOCTOU attacks").
//
// SAP proves the swarm's state at t_att and says nothing about the gaps
// between rounds. Malware resident for a window of length D, placed at
// a random phase against rounds of period P, is caught iff some round's
// t_att lands inside the window — probability ≈ min(1, D/P). The sweep
// measures exactly that with live rounds: Equation 9 pins t_att before
// each round, so the victim's state at that instant is set precisely.
#include <cstdio>

#include "bench_args.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sap/analysis.hpp"
#include "sap/swarm.hpp"

namespace {

using namespace cra;

double detection_rate(double window_over_period, int trials,
                      benchargs::ObsSession& obs) {
  const sim::Duration period = sim::Duration::from_sec(2.0);
  const auto window =
      sim::Duration(static_cast<std::int64_t>(
          static_cast<double>(period.ns()) * window_over_period));
  int detected = 0;
  Rng rng(0xdecafu + static_cast<std::uint64_t>(window.ns()));

  for (int t = 0; t < trials; ++t) {
    sap::SapConfig cfg;
    cfg.pmem_size = 4 * 1024;
    auto swarm = sap::SapSimulation::balanced(
        cfg, 30, static_cast<std::uint64_t>(t) + 1);
    const auto victim = static_cast<net::NodeId>(1 + rng.next_below(30));

    // The malware window opens at a random phase within the first period.
    const auto phase = sim::Duration(static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(period.ns()))));
    const sim::SimTime t_infect = swarm.scheduler().now() + phase;
    const sim::SimTime t_clean = t_infect + window;

    // What the round's measurement will see is the device state at
    // t_att, which Equation 9 pins down before the round starts; set the
    // victim's state for that instant exactly.
    bool caught = false;
    bool dirty = false;
    const sim::SimTime start = swarm.scheduler().now();
    for (int round = 0; round < 4; ++round) {  // cover several periods
      const sim::SimTime boundary = start + period * round;
      if (boundary > swarm.scheduler().now()) {
        swarm.advance_time(boundary - swarm.scheduler().now());
      }
      const std::uint32_t tick = swarm.clock().time_to_tick_ceil(
          swarm.scheduler().now() +
          sap::request_lead_time(cfg, swarm.tree().max_depth()));
      const sim::SimTime t_att = swarm.clock().tick_to_time(tick);
      const bool should_be_dirty = t_att >= t_infect && t_att < t_clean;
      if (should_be_dirty && !dirty) {
        swarm.compromise_device(victim);
        dirty = true;
      } else if (!should_be_dirty && dirty) {
        swarm.restore_device(victim);
        dirty = false;
      }
      if (!swarm.run_round().verified) caught = true;
      char prefix[48];
      std::snprintf(prefix, sizeof prefix, "window=%.2f/", window_over_period);
      obs.capture(swarm.metrics(), prefix);
    }
    if (caught) ++detected;
  }
  return static_cast<double>(detected) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);
  constexpr int kTrials = 40;
  Table table({"window / period", "detection rate", "theory min(1, D/P)"});
  for (double ratio : {0.1, 0.25, 0.5, 0.75, 1.0, 1.5}) {
    table.add_row({Table::num(ratio, 2),
                   Table::num(detection_rate(ratio, kTrials, obs), 2),
                   Table::num(ratio >= 1.0 ? 1.0 : ratio, 2)});
  }
  std::printf("Ablation - TOCTOU window vs attestation period (N=30, "
              "%d trials/row, period 2 s)\n\n", kTrials);
  std::printf("%s", table.to_string().c_str());
  std::printf("\ntransient malware shorter than the attestation period "
              "escapes detection with\nprobability 1 - D/P: the "
              "vulnerability window is the deployment's choice of P.\n"
              "(DARPA-style heartbeats bound *absence*, not transient "
              "software state; closing\nthis gap needs runtime "
              "attestation, which the paper leaves as future work.)\n");
  return 0;
}
