// Ablation: why collective attestation at all?
//
// §IV-C: "one can simply design a secure cRA protocol by having Vrf
// individually attest each member in S" — if efficiency is ignored.
// This bench implements that naive protocol on the same simulator: Vrf
// unicasts a fresh challenge to every device over the routed tree path
// and each device replies with its token over the same path. No
// aggregation, no synchronization.
//
// The comparison shows exactly what Definition 2 buys:
//   * network: naive moves Θ(N·l·log N) bytes (every token crosses
//     depth(i) links) vs SAP's Θ(N·l);
//   * the root's two links carry Θ(N·l) each — a hotspot SAP's
//     aggregation removes entirely;
//   * runtime: even with fully parallel unicasts the naive verifier
//     serializes N receptions at its own radio, so its round time grows
//     linearly once N·l/µ dominates.
#include <cstdio>
#include <string>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sap/analysis.hpp"
#include "sap/swarm.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace cra;

struct NaiveResult {
  double total_sec = 0;
  std::uint64_t u_ca_bytes = 0;
  std::uint64_t root_link_bytes = 0;
};

/// One naive round: per-device challenge out, per-device token back.
NaiveResult run_naive(std::uint32_t devices, const sap::SapConfig& cfg,
                      benchargs::ObsSession& obs) {
  const net::Tree tree = net::balanced_kary_tree(devices, cfg.tree_arity);
  sim::Scheduler scheduler;
  net::Network network(scheduler, cfg.link);
  obs::MetricsRegistry naive_metrics;
  network.bind_metrics(&naive_metrics);

  const std::size_t msg_size = cfg.chal_size();  // chal and token: l bits
  const sim::Duration attest = sap::attest_time(cfg);

  NaiveResult result;
  std::uint32_t pending = devices;
  sim::SimTime last_resp;

  // The verifier's radio serializes its own transmissions/receptions:
  // model the uplink receptions as a queue draining at link rate.
  const sim::Duration per_msg =
      sim::transmission_delay(msg_size * 8, cfg.link.rate_bps);
  sim::SimTime vrf_radio_free = scheduler.now();

  network.set_handler([&](const net::Message& m) {
    if (m.dst != 0) {
      // Device m.dst: attest, then unicast the token home.
      const auto hops = tree.depth(m.dst);
      scheduler.schedule_after(attest, [&, id = m.dst, hops] {
        network.send_multihop(id, 0, hops, 2, Bytes(msg_size, 0xbb));
        result.root_link_bytes += msg_size;  // last hop touches the root
      });
      return;
    }
    // Vrf receives a token; its radio handles one message at a time.
    vrf_radio_free =
        (vrf_radio_free > scheduler.now() ? vrf_radio_free
                                          : scheduler.now()) +
        per_msg;
    last_resp = vrf_radio_free;
    --pending;
  });

  // Vrf unicasts a fresh challenge to every device (its downlink also
  // serializes, the same per-message time each).
  sim::SimTime send_at = scheduler.now();
  for (net::NodeId id = 1; id <= devices; ++id) {
    const auto hops = tree.depth(id);
    scheduler.schedule_at(send_at, [&, id, hops] {
      network.send_multihop(0, id, hops, 1, Bytes(msg_size, 0xaa));
      result.root_link_bytes += msg_size;
    });
    send_at += per_msg;
  }

  scheduler.run();
  if (pending != 0) std::abort();
  result.total_sec = last_resp.sec();
  result.u_ca_bytes = network.bytes_transmitted();
  obs.capture(naive_metrics, "naive/n=" + std::to_string(devices) + "/");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);
  sap::SapConfig cfg;  // paper parameters
  cfg.sim.threads = args.threads;

  Table table({"N", "naive time (s)", "SAP time (s)", "naive U_CA (B)",
               "SAP U_CA (B)", "naive root-link (B)", "SAP root-link (B)"});

  for (std::uint32_t n : {10u, 100u, 1'000u, 10'000u, 100'000u}) {
    const NaiveResult naive = run_naive(n, cfg, obs);
    auto sap_sim = sap::SapSimulation::balanced(cfg, n);
    const auto sap_round = sap_sim.run_round();
    obs.capture(sap_sim.metrics(), "sap/n=" + std::to_string(n) + "/");
    // SAP's root links carry one chal down + one token up, per child.
    const std::uint64_t sap_root_bytes =
        2ULL * cfg.chal_size() *
        static_cast<std::uint64_t>(sap_sim.tree().children(0).size());
    table.add_row({Table::count(n), Table::num(naive.total_sec),
                   Table::num(sap_round.total().sec()),
                   Table::count(naive.u_ca_bytes),
                   Table::count(sap_round.u_ca_bytes),
                   Table::count(naive.root_link_bytes),
                   Table::count(sap_root_bytes)});
  }

  std::printf("Ablation - naive per-device attestation vs SAP (why "
              "aggregation matters)\n\n");
  std::printf("%s", table.to_string().c_str());
  std::printf("\nnaive U_CA grows as Theta(N*l*logN) and the verifier's own "
              "links carry Theta(N*l);\nSAP keeps both at Theta(N*l) total "
              "and O(l) per link.\n");
  return 0;
}
