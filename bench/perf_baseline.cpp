// Perf baseline: deterministic hot-path counters + wall-clock throughput.
//
// Two workloads, one JSON artifact (BENCH_perf.json):
//
//   1. MAC microworkload — HMAC-SHA1 over a SAP-sized token input
//      (20-byte PMEM digest + 4-byte challenge), one-shot vs the
//      midstate-cached PrecomputedMac path.
//   2. A two-round SAP attestation at a fixed swarm size on the classic
//      single-threaded engine; round 2 runs with a warm payload pool.
//
// The JSON has two sections: "counters" are pure functions of the
// workload (compression-function invocations, events dispatched, pool
// hit/miss tallies, wire bytes) and are asserted byte-for-byte by the CI
// perf-smoke job against the committed BENCH_perf.json — a change here
// means the hot path did more or less *work*, not that the machine was
// slow. "gauges" (wall.* rates) are wall-clock and informational only.
//
// stdout carries the deterministic counter table; wall-clock lines go to
// stderr, matching the house bench convention.
#include <cstdio>
#include <cstring>
#include <string>

#include <vector>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "crypto/backend.hpp"
#include "crypto/hmac.hpp"
#include "crypto/mac_cache.hpp"
#include "crypto/tally.hpp"
#include "sap/swarm.hpp"
#include "sim/parallel.hpp"
#include "sim/process_group.hpp"

namespace {

constexpr std::uint32_t kDefaultDevices = 10'000;
constexpr std::uint64_t kMacIters = 200'000;
constexpr std::size_t kBatchJobs = 512;    // distinct per-device keys
constexpr std::uint64_t kBatchIters = 400;  // passes over the batch

/// Rate helper: integer ops/sec (0 when the timer was too coarse).
std::int64_t per_sec(std::uint64_t ops, double sec) {
  if (sec <= 0.0) return 0;
  return static_cast<std::int64_t>(static_cast<double>(ops) / sec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cra;

  std::string out_path = "BENCH_perf.json";
  const benchargs::ExtraFlag extra =
      [&](std::string_view flag,
          const std::function<const char*()>& value) -> bool {
    if (flag == "--out") {
      out_path = value();
      return true;
    }
    return false;
  };
  const benchargs::BenchArgs args = benchargs::parse(
      argc, argv, extra,
      "  --out PATH          write BENCH_perf.json to PATH\n");
  benchargs::ObsSession obs(args);
  obs::MetricsRegistry& reg = obs.registry();

  // ---- Workload 1: MAC microloop (one-shot vs midstate-cached) ----
  const Bytes key(20, 0x5a);
  const Bytes content(20, 0xc3);                    // PMEM-sized prefix
  const std::uint8_t chal_le[4] = {0x39, 0x30, 0x00, 0x00};
  Bytes one_shot_msg = content;
  one_shot_msg.insert(one_shot_msg.end(), chal_le, chal_le + 4);

  crypto::MacBuf mac;
  crypto::reset_compression_tally();
  const benchargs::WallTimer oneshot_wall;
  for (std::uint64_t i = 0; i < kMacIters; ++i) {
    crypto::hmac_into(crypto::HashAlg::kSha1, key, one_shot_msg, mac);
  }
  const double oneshot_sec = oneshot_wall.sec();
  const std::uint64_t oneshot_comp = crypto::compression_calls_executed();

  crypto::PrecomputedMac cached;
  cached.init(crypto::HashAlg::kSha1, key);
  crypto::reset_compression_tally();
  const benchargs::WallTimer cached_wall;
  for (std::uint64_t i = 0; i < kMacIters; ++i) {
    cached.mac_into(content, BytesView(chal_le, 4), mac);
  }
  const double cached_sec = cached_wall.sec();
  const std::uint64_t cached_comp = crypto::compression_calls_executed();

  reg.counter("mac.iterations").inc(kMacIters);
  reg.counter("mac.oneshot_compressions").inc(oneshot_comp);
  reg.counter("mac.cached_compressions").inc(cached_comp);
  reg.gauge("wall.oneshot_macs_per_sec").set(per_sec(kMacIters, oneshot_sec));
  reg.gauge("wall.cached_macs_per_sec").set(per_sec(kMacIters, cached_sec));
  std::fprintf(stderr,
               "wall: macs oneshot=%.0f/s cached=%.0f/s (x%.2f)\n",
               kMacIters / oneshot_sec, kMacIters / cached_sec,
               oneshot_sec / cached_sec);

  // ---- Workload 1b: batch MAC verify, lanes=1 vs lanes=N ----
  // The same token-sized resumed HMAC pushed through the Backend batch
  // API: once through the scalar reference (lanes=1) and once through the
  // active backend (lanes=N on SIMD-capable hosts). The tally invariant
  // makes both compression counters identical — CI asserts exactly that —
  // while the wall.* gauges show the SIMD speedup. Counter names carry no
  // backend name on purpose: the JSON must not depend on the host ISA.
  std::vector<crypto::PrecomputedMac> batch_macs(kBatchJobs);
  std::vector<Bytes> batch_prefixes(kBatchJobs);
  for (std::size_t i = 0; i < kBatchJobs; ++i) {
    Bytes k(20, static_cast<std::uint8_t>(i * 37 + 11));
    k[0] = static_cast<std::uint8_t>(i);
    k[1] = static_cast<std::uint8_t>(i >> 8);
    batch_macs[i].init(crypto::HashAlg::kSha1, k);
    batch_prefixes[i] = Bytes(20, static_cast<std::uint8_t>(i * 101 + 7));
  }
  std::vector<crypto::MacJob> batch_jobs(kBatchJobs);
  for (std::size_t i = 0; i < kBatchJobs; ++i) {
    batch_jobs[i] = {&batch_macs[i], batch_prefixes[i], BytesView(chal_le, 4)};
  }
  std::vector<crypto::MacBuf> batch_out(kBatchJobs);

  const crypto::Backend& lanes1 = crypto::scalar_backend();
  crypto::reset_compression_tally();
  const benchargs::WallTimer lanes1_wall;
  for (std::uint64_t it = 0; it < kBatchIters; ++it) {
    lanes1.hmac_batch(batch_jobs.data(), kBatchJobs, batch_out.data());
  }
  const double lanes1_sec = lanes1_wall.sec();
  const std::uint64_t lanes1_comp = crypto::compression_calls_executed();

  const crypto::Backend& lanesN = crypto::active_backend();
  crypto::reset_compression_tally();
  const benchargs::WallTimer lanesN_wall;
  for (std::uint64_t it = 0; it < kBatchIters; ++it) {
    lanesN.hmac_batch(batch_jobs.data(), kBatchJobs, batch_out.data());
  }
  const double lanesN_sec = lanesN_wall.sec();
  const std::uint64_t lanesN_comp = crypto::compression_calls_executed();

  const std::uint64_t batch_total = kBatchJobs * kBatchIters;
  reg.counter("mac.batch_iterations").inc(batch_total);
  reg.counter("mac.batch_lanes1_compressions").inc(lanes1_comp);
  reg.counter("mac.batch_lanesN_compressions").inc(lanesN_comp);
  reg.gauge("wall.batch_lanes1_macs_per_sec")
      .set(per_sec(batch_total, lanes1_sec));
  reg.gauge("wall.batch_lanesN_macs_per_sec")
      .set(per_sec(batch_total, lanesN_sec));
  std::fprintf(stderr,
               "wall: batch macs lanes1[%s]=%.0f/s lanesN[%s x%zu]=%.0f/s "
               "(x%.2f)\n",
               lanes1.name(), batch_total / lanes1_sec, lanesN.name(),
               lanesN.lanes(crypto::HashAlg::kSha1),
               batch_total / lanesN_sec, lanes1_sec / lanesN_sec);

  // ---- Workload 2: SAP rounds on the classic engine ----
  // Two rounds: round 1 populates the payload freelist, round 2 is the
  // steady state. Pool tallies reset at each round start, so the
  // reported hit/miss figures describe the warm round only.
  const std::uint32_t devices =
      args.devices != 0 ? args.devices : kDefaultDevices;
  sap::SapConfig cfg;  // classic engine: counters are exact (tally is
                       // thread-local and everything runs on this thread)
  auto sim = sap::SapSimulation::balanced(cfg, devices);

  crypto::reset_compression_tally();
  const benchargs::WallTimer round_wall;
  const auto round1 = sim.run_round();
  const auto round2 = sim.run_round();
  const double rounds_sec = round_wall.sec();
  const std::uint64_t round_comp = crypto::compression_calls_executed();

  if (!round1.verified || !round2.verified) {
    std::fprintf(stderr, "SAP round failed to verify!\n");
    return 1;
  }
  obs.capture(sim.metrics(), "sap/");

  const std::uint64_t dispatched = sim.scheduler().dispatched();
  reg.counter("sap.devices").inc(devices);
  reg.counter("sap.rounds").inc(2);
  reg.counter("sap.compression_calls").inc(round_comp);
  reg.counter("sap.events_dispatched").inc(dispatched);
  reg.counter("sap.pool_hits").inc(sim.network().payload_pool_hits());
  reg.counter("sap.pool_misses").inc(sim.network().payload_pool_misses());
  reg.counter("sap.pool_bytes").inc(sim.network().payload_bytes_pooled());
  reg.counter("sap.net_bytes")
      .inc(sim.metrics().counter_value("net.bytes_transmitted"));
  reg.gauge("wall.sap_events_per_sec").set(per_sec(dispatched, rounds_sec));
  reg.gauge("wall.sap_round_ms")
      .set(static_cast<std::int64_t>(rounds_sec * 500.0));  // per round
  std::fprintf(stderr, "wall: sap n=%u rounds=2 %.3fs (%.0f events/s)\n",
               devices, rounds_sec, dispatched / rounds_sec);

  // ---- Workload 3: PDES scaling across shard placements ----
  // The same two-round SAP workload on the sharded engine (shards=8),
  // once per placement: inproc lanes at 1/2/8 worker threads and the
  // shared-memory ring transport split across 2 processes. The pdes.*
  // counters (events dispatched, cross-shard posts, conservative
  // epochs, lane reallocations) are recorded from the threads=1 run and
  // asserted equal at every other placement — the engine's "run is a
  // pure function of (inputs, shard count)" bar, enforced right here so
  // the committed BENCH_perf.json doubles as the invariance golden.
  // Only the wall.pdes_*_events_per_sec gauges may differ by placement.
  struct Placement {
    const char* name;
    std::uint32_t threads;
    sim::ShardTransport transport;
    std::uint32_t procs;
  };
  const Placement placements[] = {
      {"t1", 1, sim::ShardTransport::kInproc, 1},
      {"t2", 2, sim::ShardTransport::kInproc, 1},
      {"t8", 8, sim::ShardTransport::kInproc, 1},
      {"shm2p", 2, sim::ShardTransport::kShm, 2},
  };
  std::uint64_t pdes_events = 0, pdes_cross = 0, pdes_epochs = 0;
  std::uint64_t pdes_lane_reallocs = 0;
  for (const Placement& p : placements) {
    sap::SapConfig pcfg;
    pcfg.sim.threads = p.threads;
    pcfg.sim.shards = 8;
    pcfg.sim.transport = p.transport;  // explicit: immune to the env var
    pcfg.sim.processes = p.procs;
    auto psim = sap::SapSimulation::balanced(pcfg, devices);
    sim::ProcessGroup& pg = sim::ProcessGroup::instance();
    std::uint32_t rank = 0;
    if (p.procs > 1) rank = pg.spawn(p.procs);
    const benchargs::WallTimer pdes_wall;
    bool ok = true;
    try {
      ok = psim.run_round().verified;
      psim.advance_time(sim::Duration::from_ms(250));
      ok = psim.run_round().verified && ok;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pdes[%s] rank %u: %s\n", p.name, rank, e.what());
      if (rank != 0) pg.child_exit(1);
      return 1;
    }
    const double pdes_sec = pdes_wall.sec();
    // Children exit 0 regardless of `ok`: the verifier verdict is only
    // authoritative on rank 0, which owns shard 0.
    if (rank != 0) pg.child_exit(0);
    if (p.procs > 1) pg.join();
    if (!ok) {
      std::fprintf(stderr, "pdes[%s]: SAP round failed to verify!\n", p.name);
      return 1;
    }
    const sim::ParallelScheduler* eng = psim.engine();
    const std::uint64_t ev = eng->dispatched();
    const std::uint64_t cross = eng->cross_shard_posts();
    const std::uint64_t epochs = eng->epochs();
    if (p.name == placements[0].name) {
      pdes_events = ev;
      pdes_cross = cross;
      pdes_epochs = epochs;
      pdes_lane_reallocs = eng->lane_reallocs();
      eng->export_pdes_metrics(reg);
    } else if (ev != pdes_events || cross != pdes_cross ||
               epochs != pdes_epochs) {
      std::fprintf(stderr,
                   "pdes[%s]: placement changed the work! events %llu vs "
                   "%llu, cross %llu vs %llu, epochs %llu vs %llu\n",
                   p.name, static_cast<unsigned long long>(ev),
                   static_cast<unsigned long long>(pdes_events),
                   static_cast<unsigned long long>(cross),
                   static_cast<unsigned long long>(pdes_cross),
                   static_cast<unsigned long long>(epochs),
                   static_cast<unsigned long long>(pdes_epochs));
      return 1;
    }
    reg.gauge(std::string("wall.pdes_") + p.name + "_events_per_sec")
        .set(per_sec(ev, pdes_sec));
    std::fprintf(stderr, "wall: pdes[%s] n=%u rounds=2 %.3fs (%.0f events/s)\n",
                 p.name, devices, pdes_sec,
                 static_cast<double>(ev) / pdes_sec);
  }

  // ---- Report ----
  Table table({"counter", "value"});
  table.add_row({"mac.iterations", Table::count(kMacIters)});
  table.add_row({"mac.oneshot_compressions", Table::count(oneshot_comp)});
  table.add_row({"mac.cached_compressions", Table::count(cached_comp)});
  table.add_row({"mac.batch_iterations", Table::count(batch_total)});
  table.add_row({"mac.batch_lanes1_compressions", Table::count(lanes1_comp)});
  table.add_row({"mac.batch_lanesN_compressions", Table::count(lanesN_comp)});
  table.add_row({"sap.devices", Table::count(devices)});
  table.add_row({"sap.compression_calls", Table::count(round_comp)});
  table.add_row({"sap.events_dispatched", Table::count(dispatched)});
  table.add_row({"sap.pool_hits",
                 Table::count(sim.network().payload_pool_hits())});
  table.add_row({"sap.pool_misses",
                 Table::count(sim.network().payload_pool_misses())});
  table.add_row({"sap.pool_bytes",
                 Table::count(sim.network().payload_bytes_pooled())});
  table.add_row({"pdes.events_dispatched", Table::count(pdes_events)});
  table.add_row({"pdes.cross_posts", Table::count(pdes_cross)});
  table.add_row({"pdes.epochs", Table::count(pdes_epochs)});
  table.add_row({"pdes.lane_reallocs", Table::count(pdes_lane_reallocs)});

  std::printf("Perf baseline - deterministic hot-path counters\n");
  std::printf("(wall-clock rates go to stderr and the wall.* gauges; "
              "counters must match BENCH_perf.json)\n\n");
  std::printf("%s", table.to_string().c_str());

  const std::string json = reg.to_json();
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return 0;
}
