// Perf baseline: deterministic hot-path counters + wall-clock throughput.
//
// Two workloads, one JSON artifact (BENCH_perf.json):
//
//   1. MAC microworkload — HMAC-SHA1 over a SAP-sized token input
//      (20-byte PMEM digest + 4-byte challenge), one-shot vs the
//      midstate-cached PrecomputedMac path.
//   2. A two-round SAP attestation at a fixed swarm size on the classic
//      single-threaded engine; round 2 runs with a warm payload pool.
//
// The JSON has two sections: "counters" are pure functions of the
// workload (compression-function invocations, events dispatched, pool
// hit/miss tallies, wire bytes) and are asserted byte-for-byte by the CI
// perf-smoke job against the committed BENCH_perf.json — a change here
// means the hot path did more or less *work*, not that the machine was
// slow. "gauges" (wall.* rates) are wall-clock and informational only.
//
// stdout carries the deterministic counter table; wall-clock lines go to
// stderr, matching the house bench convention.
#include <cstdio>
#include <cstring>
#include <string>

#include <vector>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "crypto/backend.hpp"
#include "crypto/hmac.hpp"
#include "crypto/mac_cache.hpp"
#include "crypto/tally.hpp"
#include "sap/swarm.hpp"

namespace {

constexpr std::uint32_t kDefaultDevices = 10'000;
constexpr std::uint64_t kMacIters = 200'000;
constexpr std::size_t kBatchJobs = 512;    // distinct per-device keys
constexpr std::uint64_t kBatchIters = 400;  // passes over the batch

/// Rate helper: integer ops/sec (0 when the timer was too coarse).
std::int64_t per_sec(std::uint64_t ops, double sec) {
  if (sec <= 0.0) return 0;
  return static_cast<std::int64_t>(static_cast<double>(ops) / sec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cra;

  std::string out_path = "BENCH_perf.json";
  const benchargs::ExtraFlag extra =
      [&](std::string_view flag,
          const std::function<const char*()>& value) -> bool {
    if (flag == "--out") {
      out_path = value();
      return true;
    }
    return false;
  };
  const benchargs::BenchArgs args = benchargs::parse(
      argc, argv, extra,
      "  --out PATH          write BENCH_perf.json to PATH\n");
  benchargs::ObsSession obs(args);
  obs::MetricsRegistry& reg = obs.registry();

  // ---- Workload 1: MAC microloop (one-shot vs midstate-cached) ----
  const Bytes key(20, 0x5a);
  const Bytes content(20, 0xc3);                    // PMEM-sized prefix
  const std::uint8_t chal_le[4] = {0x39, 0x30, 0x00, 0x00};
  Bytes one_shot_msg = content;
  one_shot_msg.insert(one_shot_msg.end(), chal_le, chal_le + 4);

  crypto::MacBuf mac;
  crypto::reset_compression_tally();
  const benchargs::WallTimer oneshot_wall;
  for (std::uint64_t i = 0; i < kMacIters; ++i) {
    crypto::hmac_into(crypto::HashAlg::kSha1, key, one_shot_msg, mac);
  }
  const double oneshot_sec = oneshot_wall.sec();
  const std::uint64_t oneshot_comp = crypto::compression_calls_executed();

  crypto::PrecomputedMac cached;
  cached.init(crypto::HashAlg::kSha1, key);
  crypto::reset_compression_tally();
  const benchargs::WallTimer cached_wall;
  for (std::uint64_t i = 0; i < kMacIters; ++i) {
    cached.mac_into(content, BytesView(chal_le, 4), mac);
  }
  const double cached_sec = cached_wall.sec();
  const std::uint64_t cached_comp = crypto::compression_calls_executed();

  reg.counter("mac.iterations").inc(kMacIters);
  reg.counter("mac.oneshot_compressions").inc(oneshot_comp);
  reg.counter("mac.cached_compressions").inc(cached_comp);
  reg.gauge("wall.oneshot_macs_per_sec").set(per_sec(kMacIters, oneshot_sec));
  reg.gauge("wall.cached_macs_per_sec").set(per_sec(kMacIters, cached_sec));
  std::fprintf(stderr,
               "wall: macs oneshot=%.0f/s cached=%.0f/s (x%.2f)\n",
               kMacIters / oneshot_sec, kMacIters / cached_sec,
               oneshot_sec / cached_sec);

  // ---- Workload 1b: batch MAC verify, lanes=1 vs lanes=N ----
  // The same token-sized resumed HMAC pushed through the Backend batch
  // API: once through the scalar reference (lanes=1) and once through the
  // active backend (lanes=N on SIMD-capable hosts). The tally invariant
  // makes both compression counters identical — CI asserts exactly that —
  // while the wall.* gauges show the SIMD speedup. Counter names carry no
  // backend name on purpose: the JSON must not depend on the host ISA.
  std::vector<crypto::PrecomputedMac> batch_macs(kBatchJobs);
  std::vector<Bytes> batch_prefixes(kBatchJobs);
  for (std::size_t i = 0; i < kBatchJobs; ++i) {
    Bytes k(20, static_cast<std::uint8_t>(i * 37 + 11));
    k[0] = static_cast<std::uint8_t>(i);
    k[1] = static_cast<std::uint8_t>(i >> 8);
    batch_macs[i].init(crypto::HashAlg::kSha1, k);
    batch_prefixes[i] = Bytes(20, static_cast<std::uint8_t>(i * 101 + 7));
  }
  std::vector<crypto::MacJob> batch_jobs(kBatchJobs);
  for (std::size_t i = 0; i < kBatchJobs; ++i) {
    batch_jobs[i] = {&batch_macs[i], batch_prefixes[i], BytesView(chal_le, 4)};
  }
  std::vector<crypto::MacBuf> batch_out(kBatchJobs);

  const crypto::Backend& lanes1 = crypto::scalar_backend();
  crypto::reset_compression_tally();
  const benchargs::WallTimer lanes1_wall;
  for (std::uint64_t it = 0; it < kBatchIters; ++it) {
    lanes1.hmac_batch(batch_jobs.data(), kBatchJobs, batch_out.data());
  }
  const double lanes1_sec = lanes1_wall.sec();
  const std::uint64_t lanes1_comp = crypto::compression_calls_executed();

  const crypto::Backend& lanesN = crypto::active_backend();
  crypto::reset_compression_tally();
  const benchargs::WallTimer lanesN_wall;
  for (std::uint64_t it = 0; it < kBatchIters; ++it) {
    lanesN.hmac_batch(batch_jobs.data(), kBatchJobs, batch_out.data());
  }
  const double lanesN_sec = lanesN_wall.sec();
  const std::uint64_t lanesN_comp = crypto::compression_calls_executed();

  const std::uint64_t batch_total = kBatchJobs * kBatchIters;
  reg.counter("mac.batch_iterations").inc(batch_total);
  reg.counter("mac.batch_lanes1_compressions").inc(lanes1_comp);
  reg.counter("mac.batch_lanesN_compressions").inc(lanesN_comp);
  reg.gauge("wall.batch_lanes1_macs_per_sec")
      .set(per_sec(batch_total, lanes1_sec));
  reg.gauge("wall.batch_lanesN_macs_per_sec")
      .set(per_sec(batch_total, lanesN_sec));
  std::fprintf(stderr,
               "wall: batch macs lanes1[%s]=%.0f/s lanesN[%s x%zu]=%.0f/s "
               "(x%.2f)\n",
               lanes1.name(), batch_total / lanes1_sec, lanesN.name(),
               lanesN.lanes(crypto::HashAlg::kSha1),
               batch_total / lanesN_sec, lanes1_sec / lanesN_sec);

  // ---- Workload 2: SAP rounds on the classic engine ----
  // Two rounds: round 1 populates the payload freelist, round 2 is the
  // steady state. Pool tallies reset at each round start, so the
  // reported hit/miss figures describe the warm round only.
  const std::uint32_t devices =
      args.devices != 0 ? args.devices : kDefaultDevices;
  sap::SapConfig cfg;  // classic engine: counters are exact (tally is
                       // thread-local and everything runs on this thread)
  auto sim = sap::SapSimulation::balanced(cfg, devices);

  crypto::reset_compression_tally();
  const benchargs::WallTimer round_wall;
  const auto round1 = sim.run_round();
  const auto round2 = sim.run_round();
  const double rounds_sec = round_wall.sec();
  const std::uint64_t round_comp = crypto::compression_calls_executed();

  if (!round1.verified || !round2.verified) {
    std::fprintf(stderr, "SAP round failed to verify!\n");
    return 1;
  }
  obs.capture(sim.metrics(), "sap/");

  const std::uint64_t dispatched = sim.scheduler().dispatched();
  reg.counter("sap.devices").inc(devices);
  reg.counter("sap.rounds").inc(2);
  reg.counter("sap.compression_calls").inc(round_comp);
  reg.counter("sap.events_dispatched").inc(dispatched);
  reg.counter("sap.pool_hits").inc(sim.network().payload_pool_hits());
  reg.counter("sap.pool_misses").inc(sim.network().payload_pool_misses());
  reg.counter("sap.pool_bytes").inc(sim.network().payload_bytes_pooled());
  reg.counter("sap.net_bytes")
      .inc(sim.metrics().counter_value("net.bytes_transmitted"));
  reg.gauge("wall.sap_events_per_sec").set(per_sec(dispatched, rounds_sec));
  reg.gauge("wall.sap_round_ms")
      .set(static_cast<std::int64_t>(rounds_sec * 500.0));  // per round
  std::fprintf(stderr, "wall: sap n=%u rounds=2 %.3fs (%.0f events/s)\n",
               devices, rounds_sec, dispatched / rounds_sec);

  // ---- Report ----
  Table table({"counter", "value"});
  table.add_row({"mac.iterations", Table::count(kMacIters)});
  table.add_row({"mac.oneshot_compressions", Table::count(oneshot_comp)});
  table.add_row({"mac.cached_compressions", Table::count(cached_comp)});
  table.add_row({"mac.batch_iterations", Table::count(batch_total)});
  table.add_row({"mac.batch_lanes1_compressions", Table::count(lanes1_comp)});
  table.add_row({"mac.batch_lanesN_compressions", Table::count(lanesN_comp)});
  table.add_row({"sap.devices", Table::count(devices)});
  table.add_row({"sap.compression_calls", Table::count(round_comp)});
  table.add_row({"sap.events_dispatched", Table::count(dispatched)});
  table.add_row({"sap.pool_hits",
                 Table::count(sim.network().payload_pool_hits())});
  table.add_row({"sap.pool_misses",
                 Table::count(sim.network().payload_pool_misses())});
  table.add_row({"sap.pool_bytes",
                 Table::count(sim.network().payload_bytes_pooled())});

  std::printf("Perf baseline - deterministic hot-path counters\n");
  std::printf("(wall-clock rates go to stderr and the wall.* gauges; "
              "counters must match BENCH_perf.json)\n\n");
  std::printf("%s", table.to_string().c_str());

  const std::string json = reg.to_json();
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return 0;
}
