// The protocol zoo: SAP vs SEDA vs PADS vs LISAα vs LISAs on identical
// hardware and network models.
//
// This is the comparison the paper's related-work section implies but
// never runs: all five cRA designs, same 24 MHz devices, same 50 KB
// PMEM, same 250 kbit/s tree. Columns show the three axes a deployment
// trades between: runtime, network utilization, and quality of
// attestation.
//
// --churn R1,R2,... switches to the dynamic-swarm sweep: churn rate x
// swarm size, measuring what each *full-report* protocol (SAP adaptive,
// SEDA, PADS) delivers when devices leave, join and crash mid-round —
// completion rate, false-untrusted rate, and time-to-consensus — with
// per-cell summaries exported through the obs registry.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "fault/plan.hpp"
#include "lisa/lisa.hpp"
#include "pads/pads.hpp"
#include "sap/swarm.hpp"
#include "seda/seda.hpp"

namespace {

using namespace cra;

/// One protocol's aggregate over the chaos rounds of a (n, churn) cell.
struct ChurnResult {
  double completion = 0.0;       // mean fraction of present devices covered
  double false_untrusted = 0.0;  // healthy-but-untrusted / (rounds * devices)
  double consensus_sec = 0.0;    // mean time until the verifier's verdict
};

fault::FaultPlan churn_plan(std::uint64_t seed, const net::Tree& tree,
                            sim::SimTime start, sim::SimTime end,
                            double churn) {
  // Mobility churn: departures dominate (each leave pairs with a later
  // rejoin inside the generator), with a thinner stream of hard crashes.
  fault::FaultPlan::ChurnProfile profile;
  profile.leave_rate = churn;
  profile.crash_rate = churn * 0.5;
  return fault::FaultPlan::churn(seed, tree, start, end, profile);
}

void export_cell(benchargs::ObsSession& obs, const char* prefix,
                 const ChurnResult& r) {
  // Deterministic per-cell summary for CI (ppm so jq compares integers).
  obs::MetricsRegistry summary;
  summary.gauge("churn.completion_ppm")
      .max_in(static_cast<std::int64_t>(r.completion * 1e6 + 0.5));
  summary.gauge("churn.false_untrusted_ppm")
      .max_in(static_cast<std::int64_t>(r.false_untrusted * 1e6 + 0.5));
  summary.gauge("churn.consensus_ms")
      .max_in(static_cast<std::int64_t>(r.consensus_sec * 1e3 + 0.5));
  obs.capture(summary, prefix);
}

ChurnResult churn_sap(std::uint32_t n, double churn, int rounds,
                      std::uint32_t threads, std::uint64_t seed,
                      benchargs::ObsSession& obs) {
  sap::SapConfig cfg;
  cfg.pmem_size = 8 * 1024;
  cfg.qoa = sap::QoaMode::kIdentify;
  cfg.adaptive.enabled = true;
  cfg.sim.threads = threads;
  cfg.sim.shards = 8;  // fixed: the sweep is identical at any --threads
  auto swarm = sap::SapSimulation::balanced(cfg, n, seed);
  const sap::RoundReport baseline = swarm.run_round();
  swarm.advance_time(sim::Duration::from_ms(100));
  const sim::SimTime start = swarm.current_time();
  const sim::SimTime end =
      start + sim::Duration::from_sec(baseline.total().sec() * 3.0 * rounds);
  swarm.attach_fault_plan(churn_plan(seed, swarm.tree(), start, end, churn));

  char prefix[96];
  std::snprintf(prefix, sizeof prefix, "churn=%.4f/n=%u/sap/", churn, n);
  ChurnResult cell;
  for (int i = 0; i < rounds; ++i) {
    const sap::RoundReport r = swarm.run_round();
    cell.completion += r.degraded.completion();
    // Churn plans compromise nothing, so every untrusted verdict under
    // churn is a false one.
    cell.false_untrusted += static_cast<double>(r.degraded.untrusted) /
                            static_cast<double>(n);
    cell.consensus_sec += r.total().sec();
    obs.capture(swarm.metrics(), prefix);
    swarm.advance_time(sim::Duration::from_ms(100));
  }
  cell.completion /= rounds;
  cell.false_untrusted /= rounds;
  cell.consensus_sec /= rounds;
  export_cell(obs, prefix, cell);
  return cell;
}

ChurnResult churn_seda(std::uint32_t n, double churn, int rounds,
                       std::uint32_t threads, std::uint64_t seed,
                       benchargs::ObsSession& obs) {
  seda::SedaConfig cfg;
  cfg.pmem_size = 8 * 1024;
  cfg.sim.threads = threads;
  cfg.sim.shards = 8;
  auto sim = seda::SedaSimulation::balanced(cfg, n, seed);
  const seda::SedaRoundReport baseline = sim.run_round();
  sim.advance_time(sim::Duration::from_ms(100));
  const sim::SimTime start = sim.current_time();
  const sim::SimTime end =
      start +
      sim::Duration::from_sec(baseline.total_time().sec() * 3.0 * rounds);
  sim.attach_fault_plan(churn_plan(seed, sim.tree(), start, end, churn));

  char prefix[96];
  std::snprintf(prefix, sizeof prefix, "churn=%.4f/n=%u/seda/", churn, n);
  ChurnResult cell;
  for (int i = 0; i < rounds; ++i) {
    const seda::SedaRoundReport r = sim.run_round();
    cell.completion +=
        static_cast<double>(r.total) / static_cast<double>(n);
    // SEDA's aggregate counts a device as failed when its report does
    // not verify; under compromise-free churn those are all false.
    cell.false_untrusted += static_cast<double>(r.total - r.passed) /
                            static_cast<double>(n);
    cell.consensus_sec += r.total_time().sec();
    obs.capture(sim.metrics(), prefix);
    sim.advance_time(sim::Duration::from_ms(100));
  }
  cell.completion /= rounds;
  cell.false_untrusted /= rounds;
  cell.consensus_sec /= rounds;
  export_cell(obs, prefix, cell);
  return cell;
}

ChurnResult churn_pads(std::uint32_t n, double churn, int rounds,
                       std::uint32_t threads, std::uint64_t seed,
                       benchargs::ObsSession& obs) {
  pads::PadsConfig cfg;
  cfg.pmem_size = 8 * 1024;
  cfg.sim.threads = threads;
  cfg.sim.shards = 8;
  auto sim = pads::PadsSimulation::balanced(cfg, n, seed);
  const pads::PadsRoundReport baseline = sim.run_round();
  sim.advance_time(sim::Duration::from_ms(100));
  const sim::SimTime start = sim.current_time();
  const sim::SimTime end =
      start +
      sim::Duration::from_sec(baseline.total_time().sec() * 3.0 * rounds);
  sim.attach_fault_plan(churn_plan(seed, sim.tree(), start, end, churn));

  char prefix[96];
  std::snprintf(prefix, sizeof prefix, "churn=%.4f/n=%u/pads/", churn, n);
  ChurnResult cell;
  for (int i = 0; i < rounds; ++i) {
    const pads::PadsRoundReport r = sim.run_round();
    cell.completion += r.completion();
    cell.false_untrusted +=
        r.present == 0 ? 0.0
                       : static_cast<double>(r.false_untrusted) /
                             static_cast<double>(r.present);
    cell.consensus_sec += r.time_to_consensus().sec();
    obs.capture(sim.metrics(), prefix);
    sim.advance_time(sim::Duration::from_ms(100));
  }
  cell.completion /= rounds;
  cell.false_untrusted /= rounds;
  cell.consensus_sec /= rounds;
  export_cell(obs, prefix, cell);
  return cell;
}

int run_churn_sweep(const std::vector<double>& churns, int rounds,
                    std::uint64_t seed, const benchargs::BenchArgs& args,
                    benchargs::ObsSession& obs) {
  const std::vector<std::uint32_t> sizes =
      args.devices != 0 ? std::vector<std::uint32_t>{args.devices}
                        : std::vector<std::uint32_t>{126, 510};
  Table table({"protocol", "N", "churn", "completion", "false-untrusted",
               "t-consensus (s)"});
  for (std::uint32_t n : sizes) {
    for (double churn : churns) {
      const ChurnResult sap_r =
          churn_sap(n, churn, rounds, args.threads, seed, obs);
      const ChurnResult seda_r =
          churn_seda(n, churn, rounds, args.threads, seed, obs);
      const ChurnResult pads_r =
          churn_pads(n, churn, rounds, args.threads, seed, obs);
      table.add_row({"SAP-adaptive", Table::count(n), Table::num(churn, 4),
                     Table::num(sap_r.completion, 4),
                     Table::num(sap_r.false_untrusted, 4),
                     Table::num(sap_r.consensus_sec)});
      table.add_row({"SEDA", Table::count(n), Table::num(churn, 4),
                     Table::num(seda_r.completion, 4),
                     Table::num(seda_r.false_untrusted, 4),
                     Table::num(seda_r.consensus_sec)});
      table.add_row({"PADS", Table::count(n), Table::num(churn, 4),
                     Table::num(pads_r.completion, 4),
                     Table::num(pads_r.false_untrusted, 4),
                     Table::num(pads_r.consensus_sec)});
      // Dynamic swarms are PADS's home turf: absent devices shrink its
      // consensus target instead of counting against completion.
      if (churn == 0.0 && pads_r.completion < 1.0) {
        std::fprintf(stderr,
                     "FAIL: PADS completion %.4f < 1.0 at zero churn\n",
                     pads_r.completion);
        return 1;
      }
    }
  }
  std::printf("Protocol comparison under mobility churn "
              "(leave/join + crashes, seed %llu, %d rounds per cell)\n\n",
              static_cast<unsigned long long>(seed), rounds);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading guide: SAP and SEDA measure one synchronized round over "
      "a fixed tree, so\neach departed device is a hole in the report; "
      "PADS tracks membership, so its\ncompletion counts only devices "
      "that are actually in the swarm and its consensus\ntime is when "
      "the verifier covered them all.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cra;
  std::vector<double> churns;
  int rounds = 3;
  std::uint64_t seed = 17;
  const char* extra_usage =
      "  --churn R1,R2,...   churn sweep mode: per-device leave rates\n"
      "  --rounds N          chaos rounds per churn cell (default 3)\n"
      "  --seed N            churn-sweep seed (default 17)\n";
  const benchargs::BenchArgs args = benchargs::parse(
      argc, argv,
      [&](std::string_view flag,
          const std::function<const char*()>& value) -> bool {
        if (flag == "--churn") {
          const char* p = value();
          while (p && *p) {
            char* next = nullptr;
            churns.push_back(std::strtod(p, &next));
            p = (next && *next == ',') ? next + 1 : nullptr;
          }
          return true;
        }
        if (flag == "--rounds") {
          rounds = std::atoi(value());
          return true;
        }
        if (flag == "--seed") {
          seed = std::strtoull(value(), nullptr, 10);
          return true;
        }
        return false;
      },
      extra_usage);
  if (rounds <= 0) rounds = 1;
  benchargs::ObsSession obs(args);

  if (!churns.empty()) {
    return run_churn_sweep(churns, rounds, seed, args, obs);
  }

  Table table({"protocol", "N", "time (s)", "U_CA (bytes)", "B/device",
               "QoA", "clock needed"});

  std::vector<std::uint32_t> sizes = {1'000u, 10'000u, 100'000u};
  if (args.devices != 0) sizes = {args.devices};

  for (std::uint32_t n : sizes) {
    const benchargs::WallTimer wall;
    {
      sap::SapConfig cfg;
      cfg.sim.threads = args.threads;
      auto sim = sap::SapSimulation::balanced(cfg, n);
      const auto r = sim.run_round();
      if (!r.verified) return 1;
      obs.capture(sim.metrics(), "sap/n=" + std::to_string(n) + "/");
      table.add_row({"SAP", Table::count(n), Table::num(r.total().sec()),
                     Table::count(r.u_ca_bytes),
                     Table::num(static_cast<double>(r.u_ca_bytes) / n, 1),
                     "binary", "secure sync"});
    }
    {
      seda::SedaConfig cfg;
      cfg.sim.threads = args.threads;
      auto sim = seda::SedaSimulation::balanced(cfg, n);
      const auto r = sim.run_round();
      if (!r.verified) return 1;
      obs.capture(sim.metrics(), "seda/n=" + std::to_string(n) + "/");
      table.add_row({"SEDA", Table::count(n),
                     Table::num(r.total_time().sec()),
                     Table::count(r.u_ca_bytes),
                     Table::num(static_cast<double>(r.u_ca_bytes) / n, 1),
                     "counts", "none"});
    }
    {
      pads::PadsConfig cfg;
      cfg.sim.threads = args.threads;
      auto sim = pads::PadsSimulation::balanced(cfg, n);
      const auto r = sim.run_round();
      if (!r.converged) return 1;
      obs.capture(sim.metrics(), "pads/n=" + std::to_string(n) + "/");
      // time = time-to-consensus (the verifier's verdict instant); the
      // gossip keeps running to the end of its fixed epoch budget.
      table.add_row({"PADS", Table::count(n),
                     Table::num(r.time_to_consensus().sec()),
                     Table::count(r.u_ca_bytes),
                     Table::num(static_cast<double>(r.u_ca_bytes) / n, 1),
                     "per-device", "none"});
    }
    {
      lisa::LisaConfig cfg;
      cfg.variant = lisa::LisaVariant::kAlpha;
      auto sim = lisa::LisaSimulation::balanced(cfg, n);
      const auto r = sim.run_round();
      if (!r.verified) return 1;
      table.add_row({"LISA-alpha", Table::count(n),
                     Table::num(r.total_time().sec()),
                     Table::count(r.u_ca_bytes),
                     Table::num(static_cast<double>(r.u_ca_bytes) / n, 1),
                     "per-device", "none"});
    }
    {
      lisa::LisaConfig cfg;
      cfg.variant = lisa::LisaVariant::kS;
      auto sim = lisa::LisaSimulation::balanced(cfg, n);
      const auto r = sim.run_round();
      if (!r.verified) return 1;
      table.add_row({"LISA-s", Table::count(n),
                     Table::num(r.total_time().sec()),
                     Table::count(r.u_ca_bytes),
                     Table::num(static_cast<double>(r.u_ca_bytes) / n, 1),
                     "per-device", "none"});
    }
    // LISA has no sharded-engine port; its rounds always run serial.
    std::fprintf(stderr, "wall: N=%u threads=%u all-protocols=%.3fs\n", n,
                 args.threads, wall.sec());
  }

  std::printf("Protocol comparison - identical device/network models\n\n");
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading guide: SAP buys constant-size reports and one "
      "synchronized measurement\ninstant (needs the secure clock); SEDA "
      "pays public-key verification per device;\nPADS pays Theta(N)-bit "
      "gossip messages for per-device verdicts that survive\ntopology "
      "churn; the LISAs buy full per-device QoA with Theta(N*depth) "
      "transport,\nand their unsynchronized measurements leave the "
      "roaming-malware window SAP closes.\n"
      "caveat: the TCA link model has no contention, which flatters "
      "LISA-alpha's runtime\n(its per-device reports would queue on real "
      "radios near the root); its 7-9x\nbandwidth is the honest cost "
      "signal. LISA-s's runtime IS contention-honest: its\nbundles "
      "serialize on the root links (2.4 MB at N=100k over 250 kbit/s).\n");
  return 0;
}
