// The protocol zoo: SAP vs SEDA vs LISAα vs LISAs on identical hardware
// and network models.
//
// This is the comparison the paper's related-work section implies but
// never runs: all four cRA designs, same 24 MHz devices, same 50 KB
// PMEM, same 250 kbit/s tree. Columns show the three axes a deployment
// trades between: runtime, network utilization, and quality of
// attestation.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "lisa/lisa.hpp"
#include "sap/swarm.hpp"
#include "seda/seda.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);

  Table table({"protocol", "N", "time (s)", "U_CA (bytes)", "B/device",
               "QoA", "clock needed"});

  std::vector<std::uint32_t> sizes = {1'000u, 10'000u, 100'000u};
  if (args.devices != 0) sizes = {args.devices};

  for (std::uint32_t n : sizes) {
    const benchargs::WallTimer wall;
    {
      sap::SapConfig cfg;
      cfg.sim.threads = args.threads;
      auto sim = sap::SapSimulation::balanced(cfg, n);
      const auto r = sim.run_round();
      if (!r.verified) return 1;
      obs.capture(sim.metrics(), "sap/n=" + std::to_string(n) + "/");
      table.add_row({"SAP", Table::count(n), Table::num(r.total().sec()),
                     Table::count(r.u_ca_bytes),
                     Table::num(static_cast<double>(r.u_ca_bytes) / n, 1),
                     "binary", "secure sync"});
    }
    {
      seda::SedaConfig cfg;
      cfg.sim.threads = args.threads;
      auto sim = seda::SedaSimulation::balanced(cfg, n);
      const auto r = sim.run_round();
      if (!r.verified) return 1;
      obs.capture(sim.metrics(), "seda/n=" + std::to_string(n) + "/");
      table.add_row({"SEDA", Table::count(n),
                     Table::num(r.total_time().sec()),
                     Table::count(r.u_ca_bytes),
                     Table::num(static_cast<double>(r.u_ca_bytes) / n, 1),
                     "counts", "none"});
    }
    {
      lisa::LisaConfig cfg;
      cfg.variant = lisa::LisaVariant::kAlpha;
      auto sim = lisa::LisaSimulation::balanced(cfg, n);
      const auto r = sim.run_round();
      if (!r.verified) return 1;
      table.add_row({"LISA-alpha", Table::count(n),
                     Table::num(r.total_time().sec()),
                     Table::count(r.u_ca_bytes),
                     Table::num(static_cast<double>(r.u_ca_bytes) / n, 1),
                     "per-device", "none"});
    }
    {
      lisa::LisaConfig cfg;
      cfg.variant = lisa::LisaVariant::kS;
      auto sim = lisa::LisaSimulation::balanced(cfg, n);
      const auto r = sim.run_round();
      if (!r.verified) return 1;
      table.add_row({"LISA-s", Table::count(n),
                     Table::num(r.total_time().sec()),
                     Table::count(r.u_ca_bytes),
                     Table::num(static_cast<double>(r.u_ca_bytes) / n, 1),
                     "per-device", "none"});
    }
    // LISA has no sharded-engine port; its rounds always run serial.
    std::fprintf(stderr, "wall: N=%u threads=%u all-protocols=%.3fs\n", n,
                 args.threads, wall.sec());
  }

  std::printf("Protocol comparison - identical device/network models\n\n");
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading guide: SAP buys constant-size reports and one "
      "synchronized measurement\ninstant (needs the secure clock); SEDA "
      "pays public-key verification per device;\nthe LISAs buy full "
      "per-device QoA with Theta(N*depth) transport, and their\n"
      "unsynchronized measurements leave the roaming-malware window "
      "SAP closes.\n"
      "caveat: the TCA link model has no contention, which flatters "
      "LISA-alpha's runtime\n(its per-device reports would queue on real "
      "radios near the root); its 7-9x\nbandwidth is the honest cost "
      "signal. LISA-s's runtime IS contention-honest: its\nbundles "
      "serialize on the root links (2.4 MB at N=100k over 250 kbit/s).\n");
  return 0;
}
