// Microbenchmarks of the crypto substrate (google-benchmark).
//
// These calibrate nothing by themselves — the device timing model charges
// *simulated* 24 MHz cycles — but they document the host-side cost of a
// simulated round (every device's token is a real HMAC) and exercise the
// primitives at the paper's sizes (50 KB PMEM, 20-byte tokens).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/backend.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/kdf.hpp"
#include "crypto/mac_cache.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace {

using namespace cra;

Bytes make_input(std::size_t n) {
  Rng rng(42);
  return rng.next_bytes(n);
}

void BM_Sha1(benchmark::State& state) {
  const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::digest(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(50 * 1024);

void BM_Sha256(benchmark::State& state) {
  const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(50 * 1024);

void BM_HmacSha1_AttestMessage(benchmark::State& state) {
  // The exact attest computation: HMAC over PMEM || chal.
  const Bytes key = make_input(20);
  Bytes message = make_input(static_cast<std::size_t>(state.range(0)));
  append_u32le(message, 1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha1::mac(key, message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha1_AttestMessage)->Arg(1024)->Arg(50 * 1024);

void BM_HmacSha1_TokenSized(benchmark::State& state) {
  // The synthetic-agent fast path: HMAC over a 24-byte message — this is
  // what bounds host wall-clock for million-device sweeps.
  const Bytes key = make_input(20);
  const Bytes message = make_input(24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha1::mac(key, message));
  }
}
BENCHMARK(BM_HmacSha1_TokenSized);

void BM_HmacSha1_TokenSizedCached(benchmark::State& state) {
  // Same 24-byte message through the midstate cache: the two pad-block
  // compressions and the key schedule are paid once at init, so the
  // steady-state cost is 2 compressions instead of 4.
  const Bytes key = make_input(20);
  const Bytes message = make_input(24);
  crypto::PrecomputedMac mac;
  mac.init(crypto::HashAlg::kSha1, key);
  crypto::MacBuf out;
  for (auto _ : state) {
    mac.mac_into(message, out);
    benchmark::DoNotOptimize(out.bytes.data());
  }
}
BENCHMARK(BM_HmacSha1_TokenSizedCached);

void BM_HmacSha1_TokenSizedInto(benchmark::State& state) {
  // One-shot dispatch into a caller buffer: isolates the allocation
  // saving of hmac_into from the midstate saving above.
  const Bytes key = make_input(20);
  const Bytes message = make_input(24);
  crypto::MacBuf out;
  for (auto _ : state) {
    crypto::hmac_into(crypto::HashAlg::kSha1, key, message, out);
    benchmark::DoNotOptimize(out.bytes.data());
  }
}
BENCHMARK(BM_HmacSha1_TokenSizedInto);

void BM_HmacSha256_TokenSizedCached(benchmark::State& state) {
  const Bytes key = make_input(32);
  const Bytes message = make_input(24);
  crypto::PrecomputedMac mac;
  mac.init(crypto::HashAlg::kSha256, key);
  crypto::MacBuf out;
  for (auto _ : state) {
    mac.mac_into(message, out);
    benchmark::DoNotOptimize(out.bytes.data());
  }
}
BENCHMARK(BM_HmacSha256_TokenSizedCached);

void BM_PrecomputedMacInit(benchmark::State& state) {
  // The one-time per-device cost the cache amortizes away.
  const Bytes key = make_input(20);
  for (auto _ : state) {
    crypto::PrecomputedMac mac;
    mac.init(crypto::HashAlg::kSha1, key);
    benchmark::DoNotOptimize(mac.ready());
  }
}
BENCHMARK(BM_PrecomputedMacInit);

// Token-sized batch verification through a crypto backend: the verifier
// hot path (expected-token recompute + constant-time compare) over a
// batch of per-device midstate-cached keys. Rows are labeled with the
// backend that actually ran, so AVX2/SSE2 hosts are distinguishable from
// the scalar reference in the output.
void run_token_batch_verify(benchmark::State& state,
                            const crypto::Backend& backend,
                            crypto::HashAlg alg) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<crypto::PrecomputedMac> macs(n);
  std::vector<Bytes> prefixes(n);
  std::vector<Bytes> expects(n);
  const Bytes chal = rng.next_bytes(4);
  crypto::MacBuf out;
  for (std::size_t i = 0; i < n; ++i) {
    macs[i].init(alg, rng.next_bytes(20));
    prefixes[i] = rng.next_bytes(20);
    macs[i].mac_into(prefixes[i], chal, out);
    expects[i] = Bytes(out.bytes.begin(), out.bytes.begin() + out.len);
  }
  std::vector<crypto::VerifyJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs[i] = {&macs[i], prefixes[i], chal, expects[i]};
  }
  std::size_t matches = n;
  for (auto _ : state) {
    matches = backend.verify_tokens_batch(jobs.data(), n, nullptr);
    benchmark::DoNotOptimize(matches);
  }
  if (matches != n) state.SkipWithError("batch verify mismatch");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(backend.name());
}

void BM_TokenBatchVerify_Scalar(benchmark::State& state) {
  run_token_batch_verify(state, crypto::scalar_backend(),
                         crypto::HashAlg::kSha1);
}
BENCHMARK(BM_TokenBatchVerify_Scalar)->Arg(16)->Arg(1024);

void BM_TokenBatchVerify_Active(benchmark::State& state) {
  run_token_batch_verify(state, crypto::active_backend(),
                         crypto::HashAlg::kSha1);
}
BENCHMARK(BM_TokenBatchVerify_Active)->Arg(16)->Arg(1024);

void BM_TokenBatchVerifySha256_Scalar(benchmark::State& state) {
  run_token_batch_verify(state, crypto::scalar_backend(),
                         crypto::HashAlg::kSha256);
}
BENCHMARK(BM_TokenBatchVerifySha256_Scalar)->Arg(1024);

void BM_TokenBatchVerifySha256_Active(benchmark::State& state) {
  run_token_batch_verify(state, crypto::active_backend(),
                         crypto::HashAlg::kSha256);
}
BENCHMARK(BM_TokenBatchVerifySha256_Active)->Arg(1024);

void BM_XorAggregate(benchmark::State& state) {
  Bytes acc = make_input(20);
  const Bytes token = make_input(20);
  for (auto _ : state) {
    xor_inplace(acc, token);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_XorAggregate);

void BM_ChaCha20Keystream(benchmark::State& state) {
  crypto::SecureRandom rng(std::uint64_t{7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bytes(static_cast<std::size_t>(
        state.range(0))));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20Keystream)->Arg(64)->Arg(4096);

void BM_X25519SharedSecret(benchmark::State& state) {
  // One join-phase key agreement (host-side; the device model charges
  // 14M simulated cycles for the same operation on a 24 MHz core).
  const Bytes sk = make_input(32);
  const Bytes pk = crypto::x25519_base(make_input(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::x25519(sk, pk));
  }
}
BENCHMARK(BM_X25519SharedSecret);

void BM_DeriveDeviceKey(benchmark::State& state) {
  const Bytes master = make_input(32);
  std::uint32_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::derive_device_key(master, ++id, 20));
  }
}
BENCHMARK(BM_DeriveDeviceKey);

}  // namespace
