// Ablation: lossy networks (§VIII) — how fast TCA-Soundness erodes with
// packet loss, with and without the repoll extension.
//
// Every failure below is a false alarm on a perfectly healthy swarm.
// SAP's synchronous design makes chal-path loss unrecoverable within a
// round (a device that misses t_att cannot attest late), so repoll only
// claws back report-path losses — quantifying the paper's remark that
// lossy networks need a relaxed soundness notion.
#include <cstdio>
#include <string>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "sap/swarm.hpp"

namespace {

using namespace cra;

double false_alarm_rate(double loss, bool retransmit, std::uint32_t devices,
                        int rounds, benchargs::ObsSession& obs) {
  sap::SapConfig cfg;
  cfg.pmem_size = 8 * 1024;
  cfg.retransmit = retransmit;
  cfg.max_retries = 3;
  auto swarm = sap::SapSimulation::balanced(cfg, devices, /*seed=*/17);
  swarm.network().set_loss_rate(loss, /*seed=*/17);
  // Round counters reset each round; accumulating every round into the
  // cell's namespace gives per-cell totals (bytes, drops, repolls).
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "loss=%.4f/%s/", loss,
                retransmit ? "repoll" : "plain");
  int failures = 0;
  for (int i = 0; i < rounds; ++i) {
    if (!swarm.run_round().verified) ++failures;
    obs.capture(swarm.metrics(), prefix);
    swarm.advance_time(sim::Duration::from_ms(100));
  }
  return static_cast<double>(failures) / rounds;
}

}  // namespace

int main(int argc, char** argv) {
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);
  const std::uint32_t kDevices = args.devices != 0 ? args.devices : 254;
  constexpr int kRounds = 40;

  Table table({"loss rate", "plain false-alarm rate",
               "repoll false-alarm rate"});
  for (double loss : {0.0, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02}) {
    table.add_row({Table::num(loss, 4),
                   Table::num(false_alarm_rate(loss, false, kDevices,
                                               kRounds, obs), 2),
                   Table::num(false_alarm_rate(loss, true, kDevices,
                                               kRounds, obs), 2)});
  }

  std::printf("Ablation - packet loss vs soundness (N=%u, %d rounds per "
              "cell, healthy swarm)\n\n", kDevices, kRounds);
  std::printf("%s", table.to_string().c_str());
  std::printf("\nwith ~2N messages per round, even 0.1%% loss hits ~40%% "
              "of rounds; repoll recovers\nthe report-path share. A "
              "deployment-grade fix needs chal-side redundancy or the\n"
              "relaxed soundness notion the paper sketches.\n");
  return 0;
}
