// Ablation: physical-capture detection (§VIII) — what the heartbeat
// extension costs and what it buys.
//
// SAP alone cannot see a device that is captured, tampered offline, and
// returned with clean PMEM between rounds. The heartbeat plane detects
// any absence longer than its threshold, at the price of continuous
// traffic. The sweep shows the detection/overhead trade as the beat
// period varies.
#include <cstdio>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "sap/heartbeat.hpp"

namespace {

using namespace cra;

struct Cell {
  double detect_rate = 0;       // captures detected
  double bytes_per_dev_sec = 0; // monitoring overhead
};

Cell run_cell(sim::Duration period, sim::Duration capture_len,
              std::uint32_t devices, int trials,
              benchargs::ObsSession& obs) {
  int detected = 0;
  double overhead = 0;
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "period=%lldms/capture=%lldms/",
                static_cast<long long>(period.ms()),
                static_cast<long long>(capture_len.ms()));
  for (int t = 0; t < trials; ++t) {
    sap::HeartbeatConfig cfg;
    cfg.period = period;
    cfg.absence_threshold = sim::Duration(period.ns() * 5 / 2);  // 2.5 periods
    auto hb = sap::HeartbeatSimulation::balanced(
        cfg, devices, static_cast<std::uint64_t>(t) + 1);
    obs::MetricsRegistry hb_metrics;
    hb.network().bind_metrics(&hb_metrics);
    Rng rng(static_cast<std::uint64_t>(t) * 77 + 5);
    const auto victim =
        static_cast<net::NodeId>(1 + rng.next_below(devices));

    hb.network().reset_accounting();
    hb.run_monitoring(sim::Duration::from_ms(600));
    hb.capture_device(victim);
    hb.run_monitoring(capture_len);
    hb.release_device(victim);
    const auto report = hb.collect();
    for (const auto& e : report) {
      if (e.device == victim) {
        ++detected;
        break;
      }
    }
    const double sim_sec = 0.6 + capture_len.sec();
    overhead += static_cast<double>(hb.network().bytes_transmitted()) /
                devices / sim_sec;
    obs.capture(hb_metrics, prefix);
  }
  return {static_cast<double>(detected) / trials,
          overhead / trials};
}

}  // namespace

int main(int argc, char** argv) {
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);
  const std::uint32_t kDevices = args.devices != 0 ? args.devices : 62;
  constexpr int kTrials = 10;

  Table table({"beat period (ms)", "capture 100 ms", "capture 500 ms",
               "capture 2 s", "overhead (B/dev/s)"});
  for (std::int64_t period_ms : {50, 100, 250, 1000}) {
    const auto period = sim::Duration::from_ms(period_ms);
    const Cell c100 =
        run_cell(period, sim::Duration::from_ms(100), kDevices, kTrials, obs);
    const Cell c500 =
        run_cell(period, sim::Duration::from_ms(500), kDevices, kTrials, obs);
    const Cell c2000 =
        run_cell(period, sim::Duration::from_sec(2.0), kDevices, kTrials, obs);
    table.add_row({std::to_string(period_ms),
                   Table::num(c100.detect_rate, 2),
                   Table::num(c500.detect_rate, 2),
                   Table::num(c2000.detect_rate, 2),
                   Table::num(c2000.bytes_per_dev_sec, 1)});
  }

  std::printf("Ablation - physical-capture detection vs heartbeat period "
              "(N=%u, %d trials/cell)\n", kDevices, kTrials);
  std::printf("(cells: fraction of captures detected; threshold = 2.5 "
              "periods)\n\n");
  std::printf("%s", table.to_string().c_str());
  std::printf("\ncaptures shorter than ~2.5 beat periods are invisible; "
              "faster beats widen\ncoverage linearly in bandwidth — the "
              "DARPA trade-off, quantified on this substrate.\n");
  return 0;
}
