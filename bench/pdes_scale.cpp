// PDES scaling harness: one SAP swarm, every shard-boundary placement.
//
// Runs identical SAP rounds under a chosen (transport, threads,
// processes) placement and prints a machine-checkable result line with a
// digest folded over every deterministic round output (timeline, byte
// ledgers, verification verdict, merged metrics JSON). The engine's
// correctness bar — a run is a pure function of (inputs, shard count) —
// means the digest must be byte-identical across:
//
//   * transports: --transport inproc vs shm
//   * worker threads: --threads 1/2/8
//   * process placements: --procs 1/2/... (shm transport)
//   * and the classic single-queue engine (--shards 1)
//
// CI's shard-transport-matrix job runs this at several placements and
// jq-asserts the digests agree. Wall-clock rates go to stderr; stdout
// carries only the stable result line.
//
// Multi-process mode is SPMD (see sim/process_group.hpp): the swarm is
// constructed BEFORE the fork so the engine's shared arena is mapped by
// every rank; every rank then executes the same round driver, and rank 0
// — the parent, owner of shard 0 and thus of the authoritative
// root/verifier state — is the only one that prints.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_args.hpp"
#include "sap/report.hpp"
#include "sap/swarm.hpp"
#include "sim/parallel.hpp"
#include "sim/process_group.hpp"

namespace {

// FNV-1a 64: tiny, dependency-free, and plenty to make "every field of
// every round plus the merged metrics JSON match" a one-number check.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fold_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fold_u64(std::uint64_t& h, std::uint64_t v) { fold_bytes(h, &v, 8); }

void fold_round(std::uint64_t& h, const cra::sap::RoundReport& r) {
  fold_u64(h, r.verified ? 1 : 0);
  fold_u64(h, r.chal_tick);
  fold_u64(h, static_cast<std::uint64_t>(r.t_chal.ns()));
  fold_u64(h, static_cast<std::uint64_t>(r.inbound_end.ns()));
  fold_u64(h, static_cast<std::uint64_t>(r.t_att.ns()));
  fold_u64(h, static_cast<std::uint64_t>(r.measurement_end.ns()));
  fold_u64(h, static_cast<std::uint64_t>(r.t_resp.ns()));
  fold_u64(h, r.u_ca_bytes);
  fold_u64(h, r.messages);
  fold_u64(h, r.dropped);
  fold_u64(h, r.responded);
  fold_u64(h, r.repolls);
  fold_u64(h, r.backoff_wait_ns);
}

constexpr const char* kUsage =
    "  --shards S          shard count (0 = one per thread)\n"
    "  --procs P           shard processes (shm transport; SPMD fork)\n"
    "  --transport T       shard boundary: auto|inproc|shm\n"
    "  --pin               pin workers to CPUs (NUMA-aware)\n"
    "  --rounds R          SAP rounds to run (default 2)\n"
    "  --loss P            per-message loss probability (deterministic)\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace cra;

  std::uint32_t shards = 0;
  std::uint32_t procs = 1;
  std::uint32_t rounds = 2;
  double loss = 0.0;
  bool pin = false;
  sim::ShardTransport transport = sim::ShardTransport::kAuto;

  const benchargs::BenchArgs args = benchargs::parse(
      argc, argv,
      [&](std::string_view flag,
          const std::function<const char*()>& value) -> bool {
        if (flag == "--shards") {
          shards = static_cast<std::uint32_t>(
              std::strtoul(value(), nullptr, 10));
        } else if (flag == "--procs") {
          procs = static_cast<std::uint32_t>(
              std::strtoul(value(), nullptr, 10));
          if (procs == 0) procs = 1;
        } else if (flag == "--rounds") {
          rounds = static_cast<std::uint32_t>(
              std::strtoul(value(), nullptr, 10));
          if (rounds == 0) rounds = 1;
        } else if (flag == "--loss") {
          loss = std::strtod(value(), nullptr);
        } else if (flag == "--pin") {
          pin = true;
        } else if (flag == "--transport") {
          const char* t = value();
          if (std::strcmp(t, "inproc") == 0) {
            transport = sim::ShardTransport::kInproc;
          } else if (std::strcmp(t, "shm") == 0) {
            transport = sim::ShardTransport::kShm;
          } else if (std::strcmp(t, "auto") == 0) {
            transport = sim::ShardTransport::kAuto;
          } else {
            std::fprintf(stderr, "unknown transport '%s'\n", t);
            return false;
          }
        } else {
          return false;
        }
        return true;
      },
      kUsage);

  const std::uint32_t devices = args.devices != 0 ? args.devices : 10'000;

  sap::SapConfig cfg;
  cfg.sim.threads = args.threads;
  cfg.sim.shards = shards;
  cfg.sim.processes = procs;
  cfg.sim.transport = transport;
  cfg.sim.pin = pin;

  // Construct BEFORE any fork: the engine's shared arena (rings, epoch
  // cells, metrics windows) must exist in the address space the children
  // inherit.
  auto swarm = sap::SapSimulation::balanced(cfg, devices);
  if (loss > 0.0) swarm.network().set_loss_rate(loss, /*seed=*/42);

  const sim::ParallelScheduler* eng = swarm.engine();
  if (procs > 1 && (eng == nullptr || eng->processes() != procs)) {
    std::fprintf(stderr,
                 "pdes_scale: --procs %u needs a sharded shm engine "
                 "(check --shards/--threads and the transport)\n",
                 procs);
    return 2;
  }

  sim::ProcessGroup& pg = sim::ProcessGroup::instance();
  std::uint32_t rank = 0;
  if (eng != nullptr && eng->processes() > 1) {
    rank = pg.spawn(eng->processes());
  }

  std::uint64_t digest = kFnvOffset;
  bool all_verified = true;
  const benchargs::WallTimer wall;
  try {
    for (std::uint32_t r = 0; r < rounds; ++r) {
      const sap::RoundReport report = swarm.run_round();
      all_verified = all_verified && report.verified;
      fold_round(digest, report);
      const std::string metrics_json = swarm.metrics().to_json();
      fold_bytes(digest, metrics_json.data(), metrics_json.size());
      swarm.advance_time(sim::Duration::from_ms(250));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdes_scale rank %u: %s\n", rank, e.what());
    if (rank != 0) pg.child_exit(1);
    if (pg.size() > 1) {
      try {
        pg.join();
      } catch (const std::exception& je) {
        std::fprintf(stderr, "pdes_scale join: %s\n", je.what());
      }
    }
    return 1;
  }
  const double sec = wall.sec();

  if (rank != 0) pg.child_exit(0);
  if (pg.size() > 1) pg.join();

  const std::uint64_t events = eng != nullptr ? eng->dispatched() : 0;
  std::fprintf(stderr,
               "wall: devices=%u rounds=%u %.3fs (%.0f events/s)\n", devices,
               rounds, sec, sec > 0 ? static_cast<double>(events) / sec : 0.0);

  // The stable result line CI asserts on. One JSON object, stdout only.
  std::printf(
      "{\"devices\":%u,\"rounds\":%u,\"shards\":%u,\"threads\":%u,"
      "\"procs\":%u,\"transport\":\"%s\",\"verified\":%s,"
      "\"digest\":\"%016" PRIx64 "\",\"events\":%" PRIu64
      ",\"cross_posts\":%" PRIu64 ",\"epochs\":%" PRIu64
      ",\"lane_reallocs\":%" PRIu64 "}\n",
      devices, rounds, eng != nullptr ? eng->shard_count() : 1,
      eng != nullptr ? eng->threads() : 1,
      eng != nullptr ? eng->processes() : 1,
      eng != nullptr ? eng->transport_name() : "classic",
      all_verified ? "true" : "false", digest, events,
      eng != nullptr ? eng->cross_shard_posts() : 0,
      eng != nullptr ? eng->epochs() : 0,
      eng != nullptr ? eng->lane_reallocs() : 0);
  return all_verified ? 0 : 1;
}
