// Table III: per-round power consumption of SAP on MICAz and TelosB.
//
// Paper (§VII-D): P_leaf and P_node bounds evaluated with
// |chal| = |token| = 20 bytes:
//   MICAz  0.3372 / 0.5516 mW,  TelosB 0.369 / 0.6282 mW.
#include <cstdio>
#include <string>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "power/power.hpp"
#include "sap/energy.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);

  Table table({"Device", "Leaf (mW)", "Inner node (mW)"});
  for (const auto& mote : power::paper_motes()) {
    const power::PowerEstimate e = power::estimate(mote, 20, 20);
    // Analytic bench: export in microwatts (gauges are integral).
    const std::string pre = std::string("power/") + mote.name + "/";
    obs.registry().gauge(pre + "leaf_uw")
        .set(static_cast<std::int64_t>(e.leaf_mw * 1000.0));
    obs.registry().gauge(pre + "inner_uw")
        .set(static_cast<std::int64_t>(e.inner_mw * 1000.0));
    table.add_row({mote.name, Table::num(e.leaf_mw, 4),
                   Table::num(e.inner_mw, 4)});
  }

  std::printf("Table III - power consumption of SAP\n");
  std::printf("(paper: MICAz 0.3372/0.5516 mW, TelosB 0.369/0.6282 mW)\n\n");
  std::printf("%s", table.to_string().c_str());

  // Sensitivity: the modern parameter l = 256 (SHA-256 tokens).
  Table table256({"Device", "Leaf (mW), l=256", "Inner (mW), l=256"});
  for (const auto& mote : power::paper_motes()) {
    const power::PowerEstimate e = power::estimate(mote, 32, 32);
    table256.add_row({mote.name, Table::num(e.leaf_mw, 4),
                      Table::num(e.inner_mw, 4)});
  }
  std::printf("\nSensitivity - larger security parameter\n\n%s",
              table256.to_string().c_str());

  // Fleet-level roll-up: Table III's per-role figures applied to whole
  // deployments (leaf/inner counts from the actual tree).
  Table fleet({"N", "mote", "leaves", "inner", "fleet total (mW)",
               "mean/device (mW)"});
  for (std::uint32_t n : {1'000u, 100'000u, 1'000'000u}) {
    const net::Tree tree = net::balanced_kary_tree(n);
    for (const auto& mote : power::paper_motes()) {
      const auto e =
          sap::estimate_swarm_energy(tree, sap::SapConfig{}, mote);
      fleet.add_row({Table::count(n), mote.name, Table::count(e.leaves),
                     Table::count(e.inner), Table::num(e.total_mw, 1),
                     Table::num(e.mean_mw, 4)});
    }
  }
  std::printf("\nFleet roll-up (binary QoA)\n\n%s", fleet.to_string().c_str());
  return 0;
}
