// Ablation: what the TCA model's no-contention assumption hides.
//
// Equation 5 prices every link independently; a real mote has one
// radio. Turning sender-side serialization on shows which protocol
// designs were silently depending on the assumption: SAP sends one
// token per node per round (nothing to serialize — its runtime barely
// moves, which *validates* using the paper's model for Figure 3), while
// LISAα relays every descendant's report individually through each
// ancestor's radio, so its near-root transmitters saturate.
#include <cstdio>
#include <string>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "lisa/lisa.hpp"
#include "sap/swarm.hpp"

namespace {

using namespace cra;

double sap_time(std::uint32_t n, bool contention,
                benchargs::ObsSession& obs) {
  sap::SapConfig cfg;
  cfg.pmem_size = 8 * 1024;
  cfg.link.serialize_tx = contention;
  auto sim = sap::SapSimulation::balanced(cfg, n);
  const auto r = sim.run_round();
  if (!r.verified) std::abort();
  obs.capture(sim.metrics(), "sap/n=" + std::to_string(n) +
                                 (contention ? "/radio/" : "/ideal/"));
  return r.total().sec();
}

double lisa_alpha_time(std::uint32_t n, bool contention) {
  lisa::LisaConfig cfg;
  cfg.pmem_size = 8 * 1024;
  cfg.link.serialize_tx = contention;
  auto sim = lisa::LisaSimulation::balanced(cfg, n);
  const auto r = sim.run_round();
  if (!r.verified) std::abort();
  return r.total_time().sec();
}

}  // namespace

int main(int argc, char** argv) {
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);
  Table table({"N", "SAP ideal (s)", "SAP radio (s)", "LISA-a ideal (s)",
               "LISA-a radio (s)", "LISA-a slowdown"});
  for (std::uint32_t n : {62u, 254u, 1022u, 4094u}) {
    const double sap_ideal = sap_time(n, false, obs);
    const double sap_radio = sap_time(n, true, obs);
    const double la_ideal = lisa_alpha_time(n, false);
    const double la_radio = lisa_alpha_time(n, true);
    table.add_row({Table::count(n), Table::num(sap_ideal),
                   Table::num(sap_radio), Table::num(la_ideal),
                   Table::num(la_radio),
                   Table::num(la_radio / la_ideal, 2) + "x"});
  }
  std::printf("Ablation - per-node radio serialization (Equation 5's "
              "no-contention assumption)\n\n");
  std::printf("%s", table.to_string().c_str());
  std::printf("\nSAP is contention-insensitive (one aggregate per radio "
              "per round), so the\npaper's model is a safe basis for its "
              "Figure 3 claims; relay-per-report designs\nare not so "
              "lucky — their near-root radios serialize Theta(subtree) "
              "transmissions.\n");
  return 0;
}
