// Ablation: aggregation strategy = the QoA spectrum (§VIII).
//
// SAP's XOR keeps every report at l bits but yields one bit of
// information. kCount appends a 4-byte counter. kIdentify concatenates
// per-device reports — full diagnosability at Θ(N·l·depth) transport.
// This is the "XOR vs concatenation" design choice DESIGN.md calls out.
#include <cstdio>
#include <string>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "sap/swarm.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);

  const std::uint32_t kDevices = args.devices != 0 ? args.devices : 4094;

  Table table({"aggregation (QoA)", "U_CA (bytes)", "B/device",
               "total (s)", "verifier learns"});
  const char* learns[] = {"one bit for the whole swarm",
                          "bit + responsive-device count",
                          "exact per-device verdicts"};

  int i = 0;
  for (sap::QoaMode mode : {sap::QoaMode::kBinary, sap::QoaMode::kCount,
                            sap::QoaMode::kIdentify}) {
    sap::SapConfig cfg;
    cfg.qoa = mode;
    cfg.sim.threads = args.threads;
    auto sim = sap::SapSimulation::balanced(cfg, kDevices);
    const auto r = sim.run_round();
    if (!r.verified) {
      std::fprintf(stderr, "%s failed to verify\n", sap::qoa_name(mode));
      return 1;
    }
    obs.capture(sim.metrics(), std::string("qoa=") + sap::qoa_name(mode) + "/");
    table.add_row({sap::qoa_name(mode), Table::count(r.u_ca_bytes),
                   Table::num(static_cast<double>(r.u_ca_bytes) / kDevices,
                              1),
                   Table::num(r.total().sec()), learns[i++]});
  }

  std::printf("Ablation - aggregation strategy (QoA vs bandwidth) at "
              "N = %s\n\n", Table::count(kDevices).c_str());
  std::printf("%s", table.to_string().c_str());
  return 0;
}
