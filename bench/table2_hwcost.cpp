// Table II: hardware cost of SAP's TrustLite extensions.
//
// Paper: SAP adds a secure read-only clock and one EA-MPU rule to
// baseline TrustLite, costing +2.45% registers and +1.41% look-up
// tables.
#include <cstdio>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "hw/hw_cost.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);

  const hw::ResourceCount base = hw::trustlite_baseline();
  const hw::ResourceCount total = hw::sap_total();
  // Analytic bench: export the headline resource counts as gauges.
  obs.registry().gauge("hw.baseline.registers").set(base.registers);
  obs.registry().gauge("hw.baseline.luts").set(base.luts);
  obs.registry().gauge("hw.sap.registers").set(total.registers);
  obs.registry().gauge("hw.sap.luts").set(total.luts);

  Table table({"Design", "Registers", "Look-up Tables"});
  table.add_row({"TrustLite (baseline)", Table::count(base.registers),
                 Table::count(base.luts)});
  for (const auto& item : hw::sap_extension_items()) {
    table.add_row({"  + " + item.name, Table::count(item.cost.registers),
                   Table::count(item.cost.luts)});
  }
  table.add_row({"SAP (TrustLite + extensions)", Table::count(total.registers),
                 Table::count(total.luts)});
  table.add_row({"overhead",
                 Table::num(100.0 * hw::register_overhead(), 2) + " %",
                 Table::num(100.0 * hw::lut_overhead(), 2) + " %"});

  std::printf("Table II - SAP hardware cost\n");
  std::printf("(paper: +2.45%% registers, +1.41%% LUTs over baseline "
              "TrustLite)\n\n");
  std::printf("%s", table.to_string().c_str());
  return 0;
}
