// Ablation: heterogeneous hardware classes (§II / §VIII).
//
// TCA-Model assumes homogeneous devices; real fleets mix generations.
// SAP's synchronous design makes the measurement phase a barrier: the
// whole swarm waits for the slowest class. The sweep quantifies how one
// legacy class drags the round — the "estimating timeouts and
// vulnerability windows" concern §II raises — and what upgrading it
// buys.
#include <cstdio>
#include <string>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "sap/analysis.hpp"
#include "sap/swarm.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);

  const std::uint32_t kDevices = args.devices != 0 ? args.devices : 10'000;

  struct Mix {
    const char* label;
    std::uint64_t slow_hz;   // the legacy class
    std::uint32_t slow_pct;  // share of the fleet
  };
  const Mix mixes[] = {
      {"all modern (24 MHz)", 24'000'000, 0},
      {"10% legacy 8 MHz", 8'000'000, 10},
      {"50% legacy 8 MHz", 8'000'000, 50},
      {"10% legacy 4 MHz", 4'000'000, 10},
      {"1% legacy 4 MHz", 4'000'000, 1},
  };

  Table table({"fleet mix", "slow T_att (s)", "measurement (s)",
               "round total (s)", "verified"});

  for (const Mix& mix : mixes) {
    sap::SapConfig cfg;  // class 0: the paper's 24 MHz / 50 KB device
    if (mix.slow_pct > 0) {
      cfg.extra_classes.push_back(
          {"legacy", mix.slow_hz, cfg.pmem_size, cfg.cycles_per_block});
    }
    auto sim = sap::SapSimulation::balanced(cfg, kDevices);
    Rng rng(99);
    std::uint32_t slow_count = 0;
    if (mix.slow_pct > 0) {
      for (net::NodeId id = 1; id <= kDevices; ++id) {
        if (rng.next_below(100) < mix.slow_pct) {
          sim.assign_device_class(id, 1);
          ++slow_count;
        }
      }
    }
    const auto r = sim.run_round();
    obs.capture(sim.metrics(), std::string(mix.label) + "/");
    const std::uint64_t blocks =
        crypto::hmac_compression_calls(cfg.alg, cfg.pmem_size + 4);
    const sim::Duration slow_t_att = sim::cycles_to_time(
        cfg.attest_overhead_cycles + blocks * cfg.cycles_per_block,
        mix.slow_pct > 0 ? mix.slow_hz : cfg.device_hz);
    (void)slow_count;
    table.add_row({mix.label, Table::num(slow_t_att.sec(), 3),
                   Table::num(r.measurement().sec(), 3),
                   Table::num(r.total().sec(), 3),
                   r.verified ? "yes" : "NO"});
  }

  std::printf("Ablation - heterogeneous fleets at N = %s\n\n",
              Table::count(kDevices).c_str());
  std::printf("%s", table.to_string().c_str());
  std::printf("\na single legacy class sets the whole swarm's measurement "
              "barrier (its share\ndoesn't matter — 1%% hurts as much as "
              "50%%): upgrade the slowest class first,\nor give it a "
              "smaller attested region.\n");
  return 0;
}
