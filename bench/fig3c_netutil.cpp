// Figure 3(c): network utilization U_CA vs swarm size.
//
// Paper: linear in N — 40 bytes per device for SAP (|chal| + |token| =
// 2·l bits per link), ≈ 40 MB at N = 10^6; SEDA about twice SAP.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "sap/analysis.hpp"
#include "sap/swarm.hpp"
#include "seda/seda.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);

  sap::SapConfig sap_cfg;
  seda::SedaConfig seda_cfg;
  sap_cfg.sim.threads = args.threads;
  seda_cfg.sim.threads = args.threads;

  Table table({"N", "SAP U_CA (bytes)", "B/device", "SEDA U_CA (bytes)",
               "SEDA/SAP", "Lemma 2 prediction"});

  std::vector<std::uint32_t> sizes = {10u,      100u,     1'000u,
                                      10'000u,  100'000u, 1'000'000u};
  if (args.devices != 0) sizes = {args.devices};

  for (std::uint32_t n : sizes) {
    auto sap_sim = sap::SapSimulation::balanced(sap_cfg, n);
    const auto sap_round = sap_sim.run_round();
    obs.capture(sap_sim.metrics(), "sap/n=" + std::to_string(n) + "/");
    auto seda_sim = seda::SedaSimulation::balanced(seda_cfg, n);
    const auto seda_round = seda_sim.run_round();
    obs.capture(seda_sim.metrics(), "seda/n=" + std::to_string(n) + "/");

    table.add_row(
        {Table::count(n), Table::count(sap_round.u_ca_bytes),
         Table::num(static_cast<double>(sap_round.u_ca_bytes) / n, 1),
         Table::count(seda_round.u_ca_bytes),
         Table::num(static_cast<double>(seda_round.u_ca_bytes) /
                        static_cast<double>(sap_round.u_ca_bytes),
                    2),
         Table::count(sap::predicted_u_ca_bytes(sap_cfg, n))});
  }

  std::printf("Figure 3(c) - network utilization vs swarm size\n");
  std::printf("(paper: linear, 40 bytes/device, ~40 MB at N=10^6; SEDA "
              "~2x SAP)\n\n");
  std::printf("%s", table.to_string().c_str());
  return 0;
}
