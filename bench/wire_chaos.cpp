// Process-level chaos for the live wire stack: fork the real daemons,
// SIGKILL them at seeded plan points, and prove the census converges.
//
// The supervisor forks a VerifierDaemon child (journaled) plus --agents
// AgentRunner children on loopback, then replays the FaultPlan's
// proc-kill events against the live processes: `@<t> proc-kill 0` kills
// the verifier, `proc-kill N` (N >= 1) kills agent N, and each victim
// is respawned after its downtime. The restarted verifier replays its
// snapshot + WAL and resumes the interrupted round; restarted agents
// re-hello with a fresh journaled epoch and rejoin mid-round.
//
// Asserted per repeat (exit 1 on any violation):
//   * the verifier finishes all --rounds rounds (exit 0, and the final
//     state snapshot says rounds_done == --rounds with no round open);
//   * zero false-untrusted: the devices_untrusted counters summed over
//     every verifier incarnation are 0 (all agents attest honestly);
//   * every round closed exactly once across incarnations;
//   * recovery reconverged within 2 extra rounds (wire.recovery_rounds
//     counts the resumed round, so the bound is <= 3);
//   * byte-identical replay: the supervisor replays the journal files
//     itself right after the kill and the restarted daemon's
//     wire.daemon.recovered_digest_lo gauge must equal that digest.
//
// Recovery metrics (wire.recovery_ms, wire.recovery_rounds) are
// exported through --metrics-json for the perf job's BENCH_perf.json.
//
// NOT part of the golden suite: timings are wall-clock.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.hpp"
#include "crypto/hmac.hpp"
#include "fault/plan.hpp"
#include "wire/agent.hpp"
#include "wire/daemon.hpp"
#include "wire/journal.hpp"

namespace {

using namespace cra;

struct ChaosOptions {
  std::uint32_t devices = 2000;
  std::uint32_t agents = 2;
  std::uint32_t rounds = 16;
  std::uint64_t period_ms = 50;
  double loss = 0.02;
  std::uint64_t seed = 0xc4a05ull;
  std::uint32_t repeat = 3;
  std::string plan_path;
  std::uint64_t deadline_ms = 90'000;
};

/// Grab an ephemeral loopback port, then release it for the verifier
/// child to bind. The tiny reuse race is acceptable on loopback.
std::uint16_t probe_port() {
  const wire::UdpSocket s = wire::UdpSocket::bind(0);
  return s.local_port();
}

[[noreturn]] void run_verifier_child(const ChaosOptions& opt,
                                     std::uint16_t port,
                                     const std::string& dir,
                                     std::uint32_t generation) {
  try {
    struct sigaction sa{};
    sa.sa_handler = [](int) { wire::VerifierDaemon::request_shutdown(); };
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    wire::DaemonConfig cfg;
    cfg.port = port;
    cfg.devices = opt.devices;
    cfg.master = to_bytes("cra-wire-chaos-master");
    cfg.rounds = opt.rounds;
    cfg.period_ms = opt.period_ms;
    cfg.journal_path = dir + "/verifier";
    cfg.snapshot_every = 4;
    cfg.metrics_path = dir + "/verifier." + std::to_string(generation) +
                       ".json";
    wire::VerifierDaemon daemon(std::move(cfg));
    daemon.run();
    ::_exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "verifier child: %s\n", e.what());
    ::_exit(3);
  } catch (...) {
    ::_exit(3);
  }
}

[[noreturn]] void run_agent_child(const ChaosOptions& opt, std::uint16_t port,
                                  const std::string& dir, std::uint32_t index,
                                  std::uint32_t first_id,
                                  std::uint32_t count) {
  try {
    struct sigaction sa{};
    sa.sa_handler = [](int) { wire::AgentRunner::request_shutdown(); };
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    wire::AgentRunnerConfig cfg;
    cfg.daemon = wire::Endpoint::loopback(port);
    cfg.agent.first_id = first_id;
    cfg.agent.count = count;
    cfg.agent.master = to_bytes("cra-wire-chaos-master");
    cfg.shaper.baseline_loss = opt.loss;
    cfg.shaper.seed = opt.seed + index;
    cfg.journal_path = dir + "/agent" + std::to_string(index) + ".epoch";
    cfg.metrics_path = dir + "/agent" + std::to_string(index) + ".json";
    wire::AgentRunner runner(std::move(cfg));
    runner.run();
    ::_exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "agent child: %s\n", e.what());
    ::_exit(3);
  } catch (...) {
    ::_exit(3);
  }
}

/// Replay the verifier's journal exactly the way the daemon does, and
/// return the 63-bit digest the restarted daemon must report.
std::uint64_t replay_digest(const std::string& base, std::uint32_t devices,
                            wire::VerifierState* out = nullptr) {
  const std::size_t token_size = crypto::digest_size(crypto::HashAlg::kSha1);
  wire::VerifierState st;
  st.devices = devices;
  if (const auto snap = wire::read_snapshot_file(base + ".snap")) {
    auto decoded = wire::VerifierState::decode(*snap, token_size);
    if (decoded.has_value() && decoded->devices == devices) {
      st = std::move(*decoded);
    }
  }
  wire::Journal::OpenStats jstats;
  wire::Journal journal = wire::Journal::open(
      base + ".wal", [&](std::uint8_t kind, BytesView payload) {
        st.apply(kind, payload, token_size);
      },
      &jstats);
  const std::uint64_t digest =
      st.digest64(token_size) & 0x7fffffffffffffffull;
  if (std::getenv("WIRE_CHAOS_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "[replay] records=%zu torn=%zu rounds_done=%u tick=%u "
                 "open=%d agents=%zu reports=%zu digest=%llu\n",
                 jstats.records, jstats.truncated_bytes, st.rounds_done,
                 st.tick, st.round_open ? 1 : 0, st.agents.size(),
                 st.reports.size(),
                 static_cast<unsigned long long>(digest));
  }
  if (out != nullptr) *out = std::move(st);
  return digest;
}

/// `"name":<integer>` extractor for the daemons' metrics JSON — the
/// repo has no JSON parser and the writer's output shape is fixed.
bool find_metric(const std::string& json, const std::string& name,
                 long long* out) {
  const std::string key = "\"" + name + "\":";
  const std::size_t pos = json.find(key);
  if (pos == std::string::npos) return false;
  *out = std::strtoll(json.c_str() + pos + key.size(), nullptr, 10);
  return true;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

bool wait_exit(pid_t pid, std::uint64_t timeout_ms, int* status) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const pid_t got = ::waitpid(pid, status, WNOHANG);
    if (got == pid) return true;
    if (got < 0) return false;  // already reaped / gone
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

struct RepeatResult {
  bool ok = true;
  std::vector<std::string> failures;
  long long recovery_ms = -1;
  long long recovery_rounds = -1;
  std::uint64_t verifier_kills = 0;
  std::uint64_t agent_kills = 0;

  void fail(std::string why) {
    ok = false;
    failures.push_back(std::move(why));
  }
};

RepeatResult run_repeat(const ChaosOptions& opt, const fault::FaultPlan& plan,
                        const std::string& dir) {
  RepeatResult res;
  const std::uint16_t port = probe_port();

  // pids[0] = verifier, pids[1..] = agents. Generation counts verifier
  // incarnations (each writes its own metrics file).
  std::vector<pid_t> pids(1 + opt.agents, -1);
  std::vector<std::uint32_t> first_ids(opt.agents, 0);
  std::vector<std::uint32_t> counts(opt.agents, 0);
  std::uint32_t next_id = 1;
  for (std::uint32_t a = 0; a < opt.agents; ++a) {
    counts[a] = opt.devices / opt.agents +
                (a < opt.devices % opt.agents ? 1 : 0);
    first_ids[a] = next_id;
    next_id += counts[a];
  }
  std::uint32_t generation = 0;
  const auto spawn = [&](std::uint32_t proc) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      if (proc == 0) {
        run_verifier_child(opt, port, dir, generation);
      } else {
        run_agent_child(opt, port, dir, proc - 1, first_ids[proc - 1],
                        counts[proc - 1]);
      }
    }
    pids[proc] = pid;
  };
  const auto kill_all = [&] {
    for (const pid_t pid : pids) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        int st;
        (void)::waitpid(pid, &st, 0);
      }
    }
  };

  for (std::uint32_t a = 0; a < opt.agents; ++a) spawn(a + 1);
  spawn(0);
  const auto t0 = std::chrono::steady_clock::now();

  // Replay the proc-kill timeline against the live processes. The
  // expected digest is captured between the verifier's death and its
  // respawn, while the journal files are quiescent.
  std::uint64_t expected_digest = 0;
  bool have_expected_digest = false;
  for (const fault::FaultEvent& ev : plan.events()) {
    if (ev.kind != fault::FaultKind::kProcKill) continue;
    const std::uint32_t proc = ev.device;
    if (proc >= pids.size()) continue;
    std::this_thread::sleep_until(
        t0 + std::chrono::nanoseconds(ev.at.ns()));
    if (pids[proc] <= 0 || ::kill(pids[proc], SIGKILL) != 0) continue;
    int st;
    (void)::waitpid(pids[proc], &st, 0);
    pids[proc] = -1;
    if (proc == 0) {
      ++res.verifier_kills;
      expected_digest = replay_digest(dir + "/verifier", opt.devices);
      have_expected_digest = true;
      ++generation;
    } else {
      ++res.agent_kills;
    }
    const std::int64_t downtime_ns =
        ev.duration > sim::Duration::zero() ? ev.duration.ns()
                                            : 150'000'000;
    std::this_thread::sleep_for(std::chrono::nanoseconds(downtime_ns));
    spawn(proc);
  }

  int vstatus = 0;
  if (!wait_exit(pids[0], opt.deadline_ms, &vstatus)) {
    res.fail("verifier did not finish within the deadline");
    kill_all();
    return res;
  }
  pids[0] = -1;
  if (!WIFEXITED(vstatus) || WEXITSTATUS(vstatus) != 0) {
    res.fail("verifier exited abnormally (status " +
             std::to_string(vstatus) + ")");
  }

  // Agents exit on the verifier's kBye; SIGTERM is the backup path
  // (which also exercises their graceful metrics export).
  for (std::uint32_t a = 0; a < opt.agents; ++a) {
    if (pids[a + 1] <= 0) continue;
    ::kill(pids[a + 1], SIGTERM);
    int st;
    if (!wait_exit(pids[a + 1], 5'000, &st)) {
      ::kill(pids[a + 1], SIGKILL);
      (void)::waitpid(pids[a + 1], &st, 0);
      res.fail("agent " + std::to_string(a) + " ignored SIGTERM");
    }
    pids[a + 1] = -1;
  }

  // Census completeness from the durable state itself: the final
  // snapshot + WAL must say every round closed and none is in flight.
  wire::VerifierState final_state;
  (void)replay_digest(dir + "/verifier", opt.devices, &final_state);
  if (final_state.rounds_done != opt.rounds) {
    res.fail("journal says " + std::to_string(final_state.rounds_done) +
             " rounds done, want " + std::to_string(opt.rounds));
  }
  if (final_state.round_open) {
    res.fail("journal left a round open after shutdown");
  }

  // Summed counters across every verifier incarnation that lived to
  // export metrics. (A SIGKILLed incarnation's counters die with it;
  // round accounting is asserted from the journal above, which is
  // exactly why it exists.)
  long long untrusted_total = 0;
  std::string last_json;
  for (std::uint32_t g = 0; g <= generation; ++g) {
    const std::string json =
        slurp(dir + "/verifier." + std::to_string(g) + ".json");
    if (json.empty()) {
      // A killed incarnation never reaches its exit snapshot; only the
      // generations that closed rounds are required to have files.
      continue;
    }
    long long v = 0;
    if (find_metric(json, "wire.daemon.devices_untrusted", &v)) {
      untrusted_total += v;
    }
    last_json = json;
  }
  if (untrusted_total != 0) {
    res.fail("false-untrusted: devices_untrusted summed to " +
             std::to_string(untrusted_total));
  }

  if (res.verifier_kills > 0) {
    if (last_json.empty()) {
      res.fail("no metrics file from the final verifier incarnation");
      return res;
    }
    long long digest = 0;
    if (!find_metric(last_json, "wire.daemon.recovered_digest_lo",
                     &digest)) {
      res.fail("restarted verifier reported no recovered_digest_lo");
    } else if (have_expected_digest &&
               static_cast<std::uint64_t>(digest) != expected_digest) {
      res.fail("recovered-state digest mismatch: daemon " +
               std::to_string(digest) + " vs supervisor replay " +
               std::to_string(expected_digest));
    }
    if (!find_metric(last_json, "wire.recovery_ms", &res.recovery_ms)) {
      res.fail("wire.recovery_ms missing: restart never reconverged");
    }
    if (!find_metric(last_json, "wire.recovery_rounds",
                     &res.recovery_rounds)) {
      res.fail("wire.recovery_rounds missing");
    } else if (res.recovery_rounds - 1 > 2) {
      res.fail("reconvergence took " +
               std::to_string(res.recovery_rounds - 1) +
               " extra rounds (> 2)");
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  ChaosOptions opt;
  const benchargs::BenchArgs args = benchargs::parse(
      argc, argv,
      [&](std::string_view flag, const std::function<const char*()>& value) {
        if (flag == "--agents") {
          opt.agents = static_cast<std::uint32_t>(
              std::strtoul(value(), nullptr, 10));
          if (opt.agents == 0) opt.agents = 1;
          return true;
        }
        if (flag == "--rounds") {
          opt.rounds = static_cast<std::uint32_t>(
              std::strtoul(value(), nullptr, 10));
          if (opt.rounds == 0) opt.rounds = 1;
          return true;
        }
        if (flag == "--period-ms") {
          opt.period_ms = std::strtoull(value(), nullptr, 10);
          if (opt.period_ms == 0) opt.period_ms = 1;
          return true;
        }
        if (flag == "--loss") {
          opt.loss = std::strtod(value(), nullptr);
          return true;
        }
        if (flag == "--seed") {
          opt.seed = std::strtoull(value(), nullptr, 10);
          return true;
        }
        if (flag == "--repeat") {
          opt.repeat = static_cast<std::uint32_t>(
              std::strtoul(value(), nullptr, 10));
          if (opt.repeat == 0) opt.repeat = 1;
          return true;
        }
        if (flag == "--plan") {
          opt.plan_path = value();
          return true;
        }
        if (flag == "--deadline-ms") {
          opt.deadline_ms = std::strtoull(value(), nullptr, 10);
          return true;
        }
        return false;
      },
      "  --agents N          agent processes sharing the swarm (default 2)\n"
      "  --rounds N          rounds the verifier must complete "
      "(default 16)\n"
      "  --period-ms N       round period (default 50)\n"
      "  --loss P            shaped agent uplink loss (default 0.02)\n"
      "  --seed N            shaper seed (default 0xc4a05)\n"
      "  --repeat N          scenario repetitions (default 3)\n"
      "  --plan PATH         FaultPlan text; proc-kill events drive the "
      "kills (default: built-in verifier+agent kill)\n"
      "  --deadline-ms N     per-repeat watchdog (default 90000)\n");
  benchargs::ObsSession obs(args);
  if (args.devices != 0) opt.devices = args.devices;

  fault::FaultPlan plan;
  if (!opt.plan_path.empty()) {
    const std::string text = slurp(opt.plan_path);
    if (text.empty()) {
      std::fprintf(stderr, "cannot read --plan %s\n", opt.plan_path.c_str());
      return 2;
    }
    try {
      plan = fault::FaultPlan::parse(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--plan %s: %s\n", opt.plan_path.c_str(),
                   e.what());
      return 2;
    }
  } else {
    // Built-in scenario: SIGKILL the verifier mid-run, then one agent.
    plan.proc_kill_for(sim::SimTime::from_ms(230), 0,
                       sim::Duration::from_ms(150));
    plan.proc_kill_for(sim::SimTime::from_ms(520), 1,
                       sim::Duration::from_ms(150));
  }

  char dir_template[] = "/tmp/wire_chaos.XXXXXX";
  const char* base_dir = ::mkdtemp(dir_template);
  if (base_dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 2;
  }

  std::printf("wire chaos: %u devices, %u agents, %u rounds, period %llu "
              "ms, loss %.3f, %u repeats\n",
              opt.devices, opt.agents, opt.rounds,
              static_cast<unsigned long long>(opt.period_ms), opt.loss,
              opt.repeat);

  bool all_ok = true;
  long long recovery_ms_max = -1;
  long long recovery_rounds_max = -1;
  std::uint64_t kills_total = 0;
  for (std::uint32_t rep = 0; rep < opt.repeat; ++rep) {
    const std::string dir = std::string(base_dir) + "/r" +
                            std::to_string(rep);
    if (::mkdir(dir.c_str(), 0700) != 0) {
      std::fprintf(stderr, "mkdir %s failed\n", dir.c_str());
      return 2;
    }
    benchargs::WallTimer wall;
    const RepeatResult res = run_repeat(opt, plan, dir);
    kills_total += res.verifier_kills + res.agent_kills;
    recovery_ms_max = std::max(recovery_ms_max, res.recovery_ms);
    recovery_rounds_max = std::max(recovery_rounds_max, res.recovery_rounds);
    std::printf("  repeat %u: %s (%llu kills, recovery %lld ms / %lld "
                "rounds, %.2f s)\n",
                rep, res.ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(res.verifier_kills +
                                                res.agent_kills),
                res.recovery_ms, res.recovery_rounds, wall.sec());
    for (const std::string& why : res.failures) {
      std::printf("    FAIL: %s\n", why.c_str());
    }
    all_ok = all_ok && res.ok;
  }

  obs.registry().counter("chaos.proc_kills").inc(kills_total);
  if (recovery_ms_max >= 0) {
    obs.registry().gauge("wire.recovery_ms").set(recovery_ms_max);
  }
  if (recovery_rounds_max >= 0) {
    obs.registry().gauge("wire.recovery_rounds").set(recovery_rounds_max);
  }
  obs.registry().gauge("wire.chaos_converged").set(all_ok ? 1 : 0);

  std::printf("wire chaos: %s\n", all_ok ? "all repeats converged"
                                         : "FAILED");
  if (all_ok) {
    // Keep the journals around on failure for post-mortems.
    std::error_code ec;
    std::filesystem::remove_all(base_dir, ec);
  } else {
    std::fprintf(stderr, "journals kept in %s\n", base_dir);
  }
  return all_ok ? 0 : 1;
}
