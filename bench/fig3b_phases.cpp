// Figure 3(b): SAP execution-time breakdown by phase.
//
// Paper: inbound (challenge flooding), the pre-measurement delay τ(N)
// (the slack Equation 9 forces so the last device still gets chal in
// time), and outbound (report aggregation) all grow logarithmically in
// N; the measurement phase is constant — every device attests in
// parallel at t_att — and dominates.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "sap/swarm.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);

  sap::SapConfig cfg;  // paper parameters
  cfg.sim.threads = args.threads;
  Table table({"N", "inbound (ms)", "slack (ms)", "measurement (ms)",
               "outbound (ms)", "total (s)"});

  std::vector<std::uint32_t> sizes = {100u, 1'000u, 10'000u, 100'000u,
                                      1'000'000u};
  if (args.devices != 0) sizes = {args.devices};

  for (std::uint32_t n : sizes) {
    const benchargs::WallTimer wall;
    auto sim = sap::SapSimulation::balanced(cfg, n);
    const auto r = sim.run_round();
    if (!r.verified) {
      std::fprintf(stderr, "N=%u: round failed to verify!\n", n);
      return 1;
    }
    std::fprintf(stderr, "wall: N=%u threads=%u sap=%.3fs\n", n, args.threads,
                 wall.sec());
    // Phase timings land in the export as gauges next to the round's
    // merged net.*/sap.* instruments, one namespace per sweep point.
    const std::string pre = "n=" + std::to_string(n) + "/";
    obs.capture(sim.metrics(), pre);
    obs.registry().gauge(pre + "phase.inbound_ns").set(r.inbound().ns());
    obs.registry().gauge(pre + "phase.slack_ns").set(r.slack().ns());
    obs.registry().gauge(pre + "phase.measurement_ns").set(r.measurement().ns());
    obs.registry().gauge(pre + "phase.outbound_ns").set(r.outbound().ns());
    obs.registry().gauge(pre + "phase.total_ns").set(r.total().ns());
    table.add_row({Table::count(n), Table::num(r.inbound().ms(), 2),
                   Table::num(r.slack().ms(), 2),
                   Table::num(r.measurement().ms(), 1),
                   Table::num(r.outbound().ms(), 2),
                   Table::num(r.total().sec())});
  }

  std::printf("Figure 3(b) - SAP phase breakdown vs swarm size\n");
  std::printf("(paper: inbound/slack/outbound logarithmic, measurement "
              "constant and dominant)\n\n");
  std::printf("%s", table.to_string().c_str());
  return 0;
}
