// TCA-Soundness (Definition 3) and TCA-Efficiency (Definition 2) as
// executable experiments.
//
// Soundness: honest rounds across sizes and topology shapes must always
// verify. Efficiency: the measured sweep must fit Lemmas 1-3 — constant
// degree, linear U_CA (slope = 2l bits/device), logarithmic T_CA.
#include <cstdio>
#include <string>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "tca/efficiency.hpp"
#include "tca/soundness.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);

  sap::SapConfig cfg;  // paper parameters

  std::printf("TCA-Soundness experiment (Definition 3)\n");
  const tca::SoundnessReport sound = tca::run_soundness_experiment(
      cfg, {1, 2, 10, 63, 500, 2047},
      {tca::TopologyKind::kBalanced, tca::TopologyKind::kLine,
       tca::TopologyKind::kRandom},
      /*trials=*/10);
  std::printf("  honest runs: %llu, verification failures: %llu -> %s\n\n",
              static_cast<unsigned long long>(sound.runs),
              static_cast<unsigned long long>(sound.failures),
              sound.sound() ? "SOUND" : "NOT SOUND");

  std::printf("TCA-Efficiency sweep (Definition 2, Lemmas 1-3)\n");
  const tca::EfficiencyReport eff = tca::run_efficiency_sweep(
      cfg, {64, 256, 1024, 4096, 16384, 65536, 262144});

  obs.registry().counter("tca.soundness.runs").inc(sound.runs);
  obs.registry().counter("tca.soundness.failures").inc(sound.failures);

  Table table({"N", "depth", "max degree", "T_CA (s)", "U_CA (bytes)"});
  for (const auto& p : eff.points) {
    const std::string pre = "eff/n=" + std::to_string(p.devices) + "/";
    obs.registry().gauge(pre + "u_ca_bytes")
        .set(static_cast<std::int64_t>(p.u_ca_bytes));
    obs.registry().gauge(pre + "t_ca_us")
        .set(static_cast<std::int64_t>(p.t_ca_sec * 1e6));
    table.add_row({Table::count(p.devices), std::to_string(p.tree_depth),
                   std::to_string(p.max_degree), Table::num(p.t_ca_sec),
                   Table::count(p.u_ca_bytes)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("  Lemma 1 (degree = O(1)):    max degree %u%s\n",
              eff.degree_bound, eff.degree_constant ? "  [OK]" : "  [FAIL]");
  std::printf("  Lemma 2 (U_CA = O(N*l)):    linear fit slope %.2f B/device,"
              " r^2 %.6f%s\n",
              eff.utilization_fit.slope, eff.utilization_fit.r_squared,
              eff.utilization_linear ? "  [OK]" : "  [FAIL]");
  std::printf("  Lemma 3 (T_CA = O(log N)):  log2 fit slope %.4f s/doubling,"
              " r^2 %.6f%s\n",
              eff.delay_fit.slope, eff.delay_fit.r_squared,
              eff.delay_logarithmic ? "  [OK]" : "  [FAIL]");
  std::printf("  => SAP is %sTCA-Efficient\n",
              eff.tca_efficient() ? "" : "NOT ");
  return eff.tca_efficient() && sound.sound() ? 0 : 1;
}
