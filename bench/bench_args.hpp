// Shared command-line handling for the bench drivers.
//
// Flags:
//   --threads N   run the simulated rounds on the sharded parallel engine
//                 with N worker threads (1 = the classic single-threaded
//                 engine, byte-identical output to the flag-less run)
//   --devices N   replace the default size sweep with the single size N
//
// Wall-clock measurements go to stderr so the stdout tables stay stable
// (and byte-comparable) across thread counts.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cra::benchargs {

struct BenchArgs {
  std::uint32_t threads = 1;  // simulation worker threads
  std::uint32_t devices = 0;  // 0 = the bench's default sweep
};

inline BenchArgs parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    auto value = [&]() -> unsigned long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return std::strtoul(argv[++i], nullptr, 10);
    };
    if (std::strcmp(flag, "--threads") == 0) {
      args.threads = static_cast<std::uint32_t>(value());
      if (args.threads == 0) args.threads = 1;
    } else if (std::strcmp(flag, "--devices") == 0) {
      args.devices = static_cast<std::uint32_t>(value());
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --threads N, --devices N)\n",
                   flag);
      std::exit(2);
    }
  }
  return args;
}

/// Wall-clock stopwatch for the speedup lines on stderr.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double sec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cra::benchargs
