// Shared command-line handling for the bench drivers.
//
// Flags:
//   --threads N         run the simulated rounds on the sharded parallel
//                       engine with N worker threads (1 = the classic
//                       single-threaded engine, byte-identical output to
//                       the flag-less run)
//   --devices N         replace the default size sweep with the single
//                       size N
//   --metrics-json PATH write the merged MetricsRegistry of the run as
//                       JSON to PATH (deterministic: identical across
//                       thread counts for the same shard count)
//   --trace-out PATH    record phase spans and write them as Chrome
//                       trace_event JSON to PATH (open in Perfetto)
//   --crypto-backend B  force the crypto backend ("scalar", "simd",
//                       "auto"); same effect as CRA_CRYPTO_BACKEND.
//                       Deterministic outputs are byte-identical across
//                       backends — only wall-clock rates move.
//
// Wall-clock measurements go to stderr so the stdout tables stay stable
// (and byte-comparable) across thread counts; the observability flags
// only ever write to their own files, never to stdout.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>

#include "crypto/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cra::benchargs {

struct BenchArgs {
  std::uint32_t threads = 1;  // simulation worker threads
  std::uint32_t devices = 0;  // 0 = the bench's default sweep
  std::string metrics_json;   // empty = no metrics export
  std::string trace_out;      // empty = no tracing
};

/// Bench-specific flag hook: called with (flag, value_fn) for flags the
/// shared parser does not know. Return true if the flag was consumed;
/// call value_fn() (at most once) to pull the flag's argument.
using ExtraFlag = std::function<bool(
    std::string_view, const std::function<const char*()>&)>;

inline void print_usage(const char* prog, const char* extra_usage = nullptr) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --threads N         worker threads for the sharded engine "
               "(1 = classic)\n"
               "  --devices N         override the bench's size sweep with N\n"
               "  --metrics-json PATH write merged metrics JSON to PATH\n"
               "  --trace-out PATH    write Chrome trace_event JSON to PATH\n"
               "  --crypto-backend B  force the crypto backend "
               "(scalar|simd|auto)\n"
               "  --help              show this message\n",
               prog);
  if (extra_usage != nullptr) std::fprintf(stderr, "%s", extra_usage);
}

inline BenchArgs parse(int argc, char** argv, const ExtraFlag& extra = {},
                       const char* extra_usage = nullptr) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    const std::function<const char*()> value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        print_usage(argv[0], extra_usage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(flag, "--help") == 0 || std::strcmp(flag, "-h") == 0) {
      print_usage(argv[0], extra_usage);
      std::exit(0);
    } else if (std::strcmp(flag, "--threads") == 0) {
      args.threads = static_cast<std::uint32_t>(
          std::strtoul(value(), nullptr, 10));
      if (args.threads == 0) args.threads = 1;
    } else if (std::strcmp(flag, "--devices") == 0) {
      args.devices = static_cast<std::uint32_t>(
          std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(flag, "--metrics-json") == 0) {
      args.metrics_json = value();
    } else if (std::strcmp(flag, "--trace-out") == 0) {
      args.trace_out = value();
    } else if (std::strcmp(flag, "--crypto-backend") == 0) {
      const char* name = value();
      if (!crypto::set_active_backend(name)) {
        std::fprintf(stderr, "unknown crypto backend '%s' (available:", name);
        for (const auto* b : crypto::available_backends()) {
          std::fprintf(stderr, " %s", b->name());
        }
        std::fprintf(stderr, " auto)\n");
        std::exit(2);
      }
    } else if (extra && extra(flag, value)) {
      // consumed by the bench's own flag table
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag);
      print_usage(argv[0], extra_usage);
      std::exit(2);
    }
  }
  return args;
}

/// Observability session for a bench run: installs the process-wide
/// TraceSink while alive (iff --trace-out was given) and accumulates
/// captured registries; on destruction writes the trace file and the
/// merged metrics JSON. Construct ONE of these at the top of main(),
/// before any simulation, and call capture() after each measured run:
///
///   ObsSession obs(args);
///   ... report = sim.run_round(); obs.capture(sim.metrics(), "n=100/");
///
/// With neither flag present the session is inert: capture() returns
/// immediately and nothing is written — stdout stays byte-identical.
class ObsSession {
 public:
  explicit ObsSession(BenchArgs args) : args_(std::move(args)) {
    if (!args_.trace_out.empty()) obs::set_global_sink(&sink_);
  }

  ~ObsSession() {
    if (!args_.trace_out.empty()) {
      obs::set_global_sink(nullptr);
      if (!sink_.write_file(args_.trace_out)) {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     args_.trace_out.c_str());
      }
    }
    if (!args_.metrics_json.empty()) {
      const std::string json = merged_.to_json();
      std::FILE* f = std::fopen(args_.metrics_json.c_str(), "wb");
      if (!f) {
        std::fprintf(stderr, "failed to open %s\n", args_.metrics_json.c_str());
        return;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// True when either observability flag was given (lets benches skip
  /// work that only exists to feed the exports).
  bool enabled() const noexcept {
    return !args_.metrics_json.empty() || !args_.trace_out.empty();
  }

  /// Fold a simulation's merged registry into the export under `prefix`
  /// (use a prefix to keep sweep points or protocols apart, e.g.
  /// "n=1000/" or "seda/"). No-op unless --metrics-json was given.
  void capture(const obs::MetricsRegistry& m, std::string_view prefix = {}) {
    if (args_.metrics_json.empty()) return;
    merged_.merge_from(m, prefix);
  }

  /// Direct access for bench-local instruments (fig3b records its phase
  /// gauges here).
  obs::MetricsRegistry& registry() noexcept { return merged_; }

 private:
  BenchArgs args_;
  obs::TraceSink sink_;
  obs::MetricsRegistry merged_;
};

/// Wall-clock stopwatch for the speedup lines on stderr.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double sec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cra::benchargs
