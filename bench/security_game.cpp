// TCA-Security game (Definition 4): every network-level adversary
// strategy from the §VI-C case analysis, played many times.
//
// Expected: zero wins everywhere. kHonestButLate's rounds verify (and
// that is correct — the device was clean at t = chal), so its
// "detected" column is 0; every other strategy's compromised rounds are
// all detected.
//
// Harness notes: --devices overrides the swarm size (default 63) and
// --trials the per-strategy trial count (default 40). The adversary
// strategies install network tamper hooks, which the sharded engine
// rejects by design, so the game always plays on the serial engine;
// --threads is accepted for harness uniformity (the golden suite runs
// every bench at 1 and 8 threads) and cannot change the output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "tca/security.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  std::uint32_t trials = 40;
  const benchargs::BenchArgs args = benchargs::parse(
      argc, argv,
      [&](std::string_view flag, const std::function<const char*()>& value) {
        if (flag == "--trials") {
          trials = static_cast<std::uint32_t>(
              std::strtoul(value(), nullptr, 10));
          if (trials == 0) trials = 1;
          return true;
        }
        return false;
      },
      "  --trials N          trials per adversary strategy (default 40)\n");
  benchargs::ObsSession obs(args);

  sap::SapConfig cfg;
  cfg.pmem_size = 8 * 1024;  // the game is about tokens, not PMEM size
  const std::uint32_t devices = args.devices != 0 ? args.devices : 63;

  Table table({"adversary strategy", "trials", "Adv wins", "detected"});
  bool all_secure = true;
  for (tca::AdvStrategy s : tca::all_strategies()) {
    const tca::GameResult r =
        tca::run_security_game(cfg, devices, s, trials);
    all_secure = all_secure && r.secure();
    const std::string pre = std::string("game/") + tca::strategy_name(s) + "/";
    obs.registry().counter(pre + "trials").inc(r.trials);
    obs.registry().counter(pre + "adv_wins").inc(r.adv_wins);
    obs.registry().counter(pre + "detected").inc(r.detected);
    table.add_row({tca::strategy_name(s), std::to_string(r.trials),
                   std::to_string(r.adv_wins), std::to_string(r.detected)});
  }

  std::printf("TCA-Security game (Definition 4), N=%u, %u trials per "
              "strategy\n\n", devices, trials);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("=> SAP is %sTCA-Secure against all modelled strategies\n",
              all_secure ? "" : "NOT ");
  return all_secure ? 0 : 1;
}
