// Figure 3(a): cRA execution time, SAP vs SEDA, N up to 10^6.
//
// Paper: both curves are a large constant (the PMEM measurement) plus a
// logarithmic term; SAP ≈ 0.6 s and SEDA ≈ 1.4 s at N = 10^6, SAP wins
// at every size. Every row below is a full simulated round (not the
// closed form); the last columns give the analytic predictions so model
// and simulation can be compared at a glance.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "sap/analysis.hpp"
#include "sap/swarm.hpp"
#include "seda/seda.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);

  sap::SapConfig sap_cfg;    // paper parameters
  seda::SedaConfig seda_cfg;
  sap_cfg.sim.threads = args.threads;
  seda_cfg.sim.threads = args.threads;

  Table table({"N", "depth", "SAP sim (s)", "SEDA sim (s)", "SEDA/SAP",
               "SAP model (s)", "SEDA model (s)"});

  std::vector<std::uint32_t> sizes = {10u,      100u,     1'000u,
                                      10'000u,  100'000u, 1'000'000u};
  if (args.devices != 0) sizes = {args.devices};

  for (std::uint32_t n : sizes) {
    const benchargs::WallTimer wall;
    auto sap_sim = sap::SapSimulation::balanced(sap_cfg, n);
    const auto sap_round = sap_sim.run_round();
    const double sap_wall = wall.sec();
    obs.capture(sap_sim.metrics(), "sap/n=" + std::to_string(n) + "/");

    auto seda_sim = seda::SedaSimulation::balanced(seda_cfg, n);
    const auto seda_round = seda_sim.run_round();
    const double seda_wall = wall.sec() - sap_wall;
    obs.capture(seda_sim.metrics(), "seda/n=" + std::to_string(n) + "/");

    if (!sap_round.verified || !seda_round.verified) {
      std::fprintf(stderr, "N=%u: round failed to verify!\n", n);
      return 1;
    }
    std::fprintf(stderr, "wall: N=%u threads=%u sap=%.3fs seda=%.3fs\n", n,
                 args.threads, sap_wall, seda_wall);
    if (args.threads > 1) {
      // Speedup vs the classic engine on the same swarm.
      sap::SapConfig serial_sap = sap_cfg;
      serial_sap.sim = sim::SimConfig{};
      seda::SedaConfig serial_seda = seda_cfg;
      serial_seda.sim = sim::SimConfig{};
      const benchargs::WallTimer serial_wall;
      auto sap_serial = sap::SapSimulation::balanced(serial_sap, n);
      (void)sap_serial.run_round();
      const double sap_serial_sec = serial_wall.sec();
      auto seda_serial = seda::SedaSimulation::balanced(serial_seda, n);
      (void)seda_serial.run_round();
      const double seda_serial_sec = serial_wall.sec() - sap_serial_sec;
      std::fprintf(stderr,
                   "wall: N=%u threads=1 sap=%.3fs seda=%.3fs "
                   "(speedup sap=%.2fx seda=%.2fx)\n",
                   n, sap_serial_sec, seda_serial_sec,
                   sap_serial_sec / sap_wall, seda_serial_sec / seda_wall);
    }
    const double sap_sec = sap_round.total().sec();
    const double seda_sec = seda_round.total_time().sec();
    table.add_row({Table::count(n),
                   std::to_string(sap_sim.tree().max_depth()),
                   Table::num(sap_sec), Table::num(seda_sec),
                   Table::num(seda_sec / sap_sec, 2),
                   Table::num(sap::predicted_total(
                                  sap_cfg, sap_sim.tree().max_depth())
                                  .sec()),
                   Table::num(seda_sim
                                  .predicted_total(
                                      seda_sim.tree().max_depth())
                                  .sec())});
  }

  std::printf("Figure 3(a) - cRA execution time vs swarm size\n");
  std::printf("(paper: SAP 0.6 s / SEDA 1.4 s at N=10^6; logarithmic "
              "growth; SAP always faster)\n\n");
  std::printf("%s", table.to_string().c_str());
  return 0;
}
