// Ablation: tree arity — why SAP's setup deploys a *binary* tree.
//
// Higher arity shrinks the depth (fewer hops for chal/report) but grows
// per-node degree, which TCA-Efficiency bounds, and concentrates
// aggregation fan-in. The sweep shows the trade-off is nearly flat in
// time (the constant measurement dominates) while degree grows linearly
// in the arity — so binary keeps the strongest degree guarantee at no
// meaningful runtime cost, which is exactly Lemma 1's point.
#include <cstdio>
#include <string>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "sap/swarm.hpp"

int main(int argc, char** argv) {
  using namespace cra;
  const benchargs::BenchArgs args = benchargs::parse(argc, argv);
  benchargs::ObsSession obs(args);

  const std::uint32_t kDevices = args.devices != 0 ? args.devices : 100'000;
  Table table({"arity", "depth", "max degree", "total (s)", "T_CA (s)",
               "U_CA (bytes)"});

  for (std::uint32_t arity : {2u, 3u, 4u, 8u, 16u}) {
    sap::SapConfig cfg;
    cfg.tree_arity = arity;
    cfg.sim.threads = args.threads;
    auto sim = sap::SapSimulation::balanced(cfg, kDevices);
    const auto r = sim.run_round();
    if (!r.verified) {
      std::fprintf(stderr, "arity=%u failed to verify\n", arity);
      return 1;
    }
    obs.capture(sim.metrics(), "arity=" + std::to_string(arity) + "/");
    table.add_row({std::to_string(arity),
                   std::to_string(sim.tree().max_depth()),
                   std::to_string(sim.tree().max_degree()),
                   Table::num(r.total().sec()), Table::num(r.t_ca().sec()),
                   Table::count(r.u_ca_bytes)});
  }

  std::printf("Ablation - tree arity at N = %s\n\n",
              Table::count(kDevices).c_str());
  std::printf("%s", table.to_string().c_str());
  std::printf("\nU_CA is arity-independent (one chal + one token per "
              "link, N links); depth gains\nshave only milliseconds "
              "because the measurement phase dominates — while degree\n"
              "(the TCA-Efficiency guarantee) degrades linearly.\n");
  return 0;
}
