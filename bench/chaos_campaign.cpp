// Chaos campaign: attestation under scripted device churn, partitions,
// and loss — the robustness counterpart of the paper's clean-network
// evaluation (§VIII's lossy-network remark, taken to its conclusion).
//
// Sweeps churn rate x partition duration x swarm size with the adaptive
// timeout + degraded-mode report extension enabled, and measures what
// degrades and what must not:
//   * completion rate  — fraction of the swarm producing attestation
//     evidence per round (1.0 at zero churn, by construction);
//   * false-untrusted  — healthy devices classified untrusted. Crash and
//     partition faults must never produce these: a device that cannot
//     answer is `unreachable`, not `untrusted`;
//   * inflation        — round-time growth vs the clean baseline (the
//     price of re-polls and backoff waits).
//
// Every cell replays a deterministic FaultPlan (seeded churn), so the
// whole table is a pure function of (--seed, shard count) — identical
// across --threads values.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "fault/plan.hpp"
#include "net/mobility.hpp"
#include "pads/pads.hpp"
#include "sap/swarm.hpp"

namespace {

using namespace cra;

struct CellResult {
  double completion = 0.0;       // mean over rounds
  double false_untrusted = 0.0;  // untrusted verdicts / (rounds * devices)
  double inflation = 0.0;        // mean chaos round time / baseline - 1
  std::uint64_t unreachable = 0;
  std::uint64_t rebooted = 0;
  std::uint64_t repolls = 0;
};

CellResult run_cell(std::uint32_t devices, double churn,
                    sim::Duration partition, int rounds, std::uint32_t threads,
                    std::uint64_t seed, benchargs::ObsSession& obs) {
  sap::SapConfig cfg;
  cfg.pmem_size = 8 * 1024;  // keep attest short enough for late joins
  cfg.qoa = sap::QoaMode::kIdentify;
  cfg.adaptive.enabled = true;
  cfg.sim.threads = threads;
  cfg.sim.shards = 8;  // fixed shard count: table identical at any threads
  auto swarm = sap::SapSimulation::balanced(cfg, devices, seed);

  // Clean baseline round: calibrates the round time the chaos rounds are
  // compared against (and sanity-checks the cell starts healthy).
  const sap::RoundReport baseline = swarm.run_round();
  const double base_total = baseline.total().sec();
  swarm.advance_time(sim::Duration::from_ms(100));

  // Churn window covering the whole campaign, with slack for re-polls.
  fault::FaultPlan::ChurnProfile profile;
  profile.crash_rate = churn;
  profile.partition_rate = partition > sim::Duration::zero() ? 0.5 : 0.0;
  profile.partition_duration = partition;
  const sim::SimTime start = swarm.current_time();
  const sim::SimTime end =
      start + sim::Duration::from_sec(baseline.total().sec() * 3.0 * rounds);
  swarm.attach_fault_plan(
      fault::FaultPlan::churn(seed, swarm.tree(), start, end, profile));

  char prefix[96];
  std::snprintf(prefix, sizeof prefix, "n=%u/churn=%.4f/part=%dms/", devices,
                churn, static_cast<int>(partition.ms()));

  CellResult cell;
  double completion_sum = 0.0;
  double total_sum = 0.0;
  std::uint64_t untrusted = 0;
  for (int i = 0; i < rounds; ++i) {
    const sap::RoundReport r = swarm.run_round();
    completion_sum += r.degraded.completion();
    total_sum += r.total().sec();
    untrusted += r.degraded.untrusted;
    cell.unreachable += r.degraded.unreachable;
    cell.rebooted += r.degraded.rebooted;
    cell.repolls += r.repolls;
    obs.capture(swarm.metrics(), prefix);
    swarm.advance_time(sim::Duration::from_ms(100));
  }
  cell.completion = completion_sum / rounds;
  cell.false_untrusted =
      static_cast<double>(untrusted) /
      (static_cast<double>(rounds) * static_cast<double>(devices));
  cell.inflation = total_sum / rounds / base_total - 1.0;
  if (cell.inflation < 0.0) cell.inflation = 0.0;

  // Deterministic cell summary for the CI smoke (jq asserts on these):
  // completion_ppm is exactly 1000000 when every round completed fully.
  obs::MetricsRegistry summary;
  summary.gauge("chaos.completion_ppm")
      .max_in(static_cast<std::int64_t>(cell.completion * 1e6 + 0.5));
  summary.gauge("chaos.inflation_ppm")
      .max_in(static_cast<std::int64_t>(cell.inflation * 1e6 + 0.5));
  summary.counter("chaos.untrusted_total").inc(untrusted);
  summary.counter("chaos.unreachable_total").inc(cell.unreachable);
  summary.counter("chaos.rebooted_total").inc(cell.rebooted);
  obs.capture(summary, prefix);
  return cell;
}

struct PadsCellResult {
  double completion = 0.0;       // mean over rounds (present devices only)
  double false_untrusted = 0.0;  // healthy-but-untrusted / (rounds * present)
  double consensus_sec = 0.0;    // mean time-to-consensus
  std::uint64_t rejected = 0;    // gossip dropped by token checks
};

/// PADS under the same churn stream, plus actual mobility: when churn is
/// nonzero the cell also replays a seeded waypoint rewire schedule, so
/// the gossip reroutes mid-round. The zero-churn cell is the static
/// clean-network control the CI smoke asserts completion == 1.0 on.
PadsCellResult run_pads_cell(std::uint32_t devices, double churn, int rounds,
                             std::uint32_t threads, std::uint64_t seed,
                             benchargs::ObsSession& obs) {
  pads::PadsConfig cfg;
  cfg.pmem_size = 8 * 1024;
  cfg.sim.threads = threads;
  cfg.sim.shards = 8;  // fixed shard count: table identical at any threads
  auto sim = pads::PadsSimulation::balanced(cfg, devices, seed);

  const pads::PadsRoundReport baseline = sim.run_round();
  sim.advance_time(sim::Duration::from_ms(100));
  const double round_sec = baseline.total_time().sec();

  fault::FaultPlan::ChurnProfile profile;
  profile.leave_rate = churn;
  profile.join_rate = churn * 0.5;
  profile.crash_rate = churn * 0.5;
  const sim::SimTime start = sim.current_time();
  const sim::SimTime end =
      start + sim::Duration::from_sec(round_sec * 2.0 * rounds);
  sim.attach_fault_plan(
      fault::FaultPlan::churn(seed, sim.tree(), start, end, profile));

  char prefix[96];
  std::snprintf(prefix, sizeof prefix, "pads/n=%u/churn=%.4f/", devices,
                churn);

  net::MobilityConfig mcfg;
  PadsCellResult cell;
  for (int i = 0; i < rounds; ++i) {
    if (churn > 0.0) {
      const sim::SimTime t0 = sim.current_time();
      sim.set_rewire_schedule(net::mobility_schedule(
          devices, mcfg, seed + static_cast<std::uint64_t>(i), t0,
          t0 + sim::Duration::from_sec(round_sec)));
    }
    const pads::PadsRoundReport r = sim.run_round();
    cell.completion += r.completion();
    cell.false_untrusted +=
        r.present == 0 ? 0.0
                       : static_cast<double>(r.false_untrusted) /
                             static_cast<double>(r.present);
    cell.consensus_sec += r.time_to_consensus().sec();
    cell.rejected += r.token_failures;
    obs.capture(sim.metrics(), prefix);
    sim.advance_time(sim::Duration::from_ms(100));
  }
  cell.completion /= rounds;
  cell.false_untrusted /= rounds;
  cell.consensus_sec /= rounds;

  obs::MetricsRegistry summary;
  summary.gauge("chaos.pads.completion_ppm")
      .max_in(static_cast<std::int64_t>(cell.completion * 1e6 + 0.5));
  summary.gauge("chaos.pads.false_untrusted_ppm")
      .max_in(static_cast<std::int64_t>(cell.false_untrusted * 1e6 + 0.5));
  summary.gauge("chaos.pads.consensus_ms")
      .max_in(static_cast<std::int64_t>(cell.consensus_sec * 1e3 + 0.5));
  summary.counter("chaos.pads.rejected_total").inc(cell.rejected);
  obs.capture(summary, prefix);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 4;
  std::uint64_t seed = 17;
  double churn_override = -1.0;
  int partition_override_ms = -1;
  const char* extra_usage =
      "  --rounds N          chaos rounds per cell (default 4)\n"
      "  --seed N            campaign seed (default 17)\n"
      "  --churn R           single churn rate instead of the sweep\n"
      "  --partition-ms N    single partition duration instead of the sweep\n";
  const benchargs::BenchArgs args = benchargs::parse(
      argc, argv,
      [&](std::string_view flag,
          const std::function<const char*()>& value) -> bool {
        if (flag == "--rounds") {
          rounds = std::atoi(value());
          return true;
        }
        if (flag == "--seed") {
          seed = std::strtoull(value(), nullptr, 10);
          return true;
        }
        if (flag == "--churn") {
          churn_override = std::atof(value());
          return true;
        }
        if (flag == "--partition-ms") {
          partition_override_ms = std::atoi(value());
          return true;
        }
        return false;
      },
      extra_usage);
  if (rounds <= 0) rounds = 1;
  benchargs::ObsSession obs(args);

  const std::vector<std::uint32_t> sizes =
      args.devices != 0 ? std::vector<std::uint32_t>{args.devices}
                        : std::vector<std::uint32_t>{126, 510};
  const std::vector<double> churns =
      churn_override >= 0.0 ? std::vector<double>{churn_override}
                            : std::vector<double>{0.0, 0.01, 0.05};
  const std::vector<int> partitions_ms =
      partition_override_ms >= 0 ? std::vector<int>{partition_override_ms}
                                 : std::vector<int>{0, 150};

  Table table({"devices", "churn", "partition", "completion",
               "false-untrusted", "inflation", "unreachable", "rebooted",
               "repolls"});
  benchargs::WallTimer timer;
  for (std::uint32_t n : sizes) {
    for (double churn : churns) {
      for (int part_ms : partitions_ms) {
        const CellResult cell =
            run_cell(n, churn, sim::Duration::from_ms(part_ms), rounds,
                     args.threads, seed, obs);
        table.add_row({std::to_string(n), Table::num(churn, 4),
                       std::to_string(part_ms) + " ms",
                       Table::num(cell.completion, 4),
                       Table::num(cell.false_untrusted, 4),
                       Table::num(cell.inflation, 3),
                       std::to_string(cell.unreachable),
                       std::to_string(cell.rebooted),
                       std::to_string(cell.repolls)});
      }
    }
  }

  Table pads_table({"devices", "churn", "mobility", "completion",
                    "false-untrusted", "t-consensus (s)", "rejected"});
  for (std::uint32_t n : sizes) {
    for (double churn : churns) {
      const PadsCellResult cell =
          run_pads_cell(n, churn, rounds, args.threads, seed, obs);
      pads_table.add_row({std::to_string(n), Table::num(churn, 4),
                          churn > 0.0 ? "waypoint" : "static",
                          Table::num(cell.completion, 4),
                          Table::num(cell.false_untrusted, 4),
                          Table::num(cell.consensus_sec),
                          std::to_string(cell.rejected)});
      if (churn == 0.0 && cell.completion < 1.0) {
        std::fprintf(stderr,
                     "FAIL: PADS completion %.4f < 1.0 at zero churn\n",
                     cell.completion);
        return 1;
      }
    }
  }

  std::printf("Chaos campaign - SAP adaptive timeouts under churn "
              "(%d rounds per cell, seed %llu)\n\n",
              rounds, static_cast<unsigned long long>(seed));
  std::printf("%s", table.to_string().c_str());
  std::printf("\ncrash/partition faults degrade completion, never trust: "
              "silent devices surface as\n`unreachable` in the degraded "
              "report, false-untrusted stays 0, and round time\ninflates "
              "only by the bounded backoff budget.\n");
  std::printf("\nPADS under the same churn (plus waypoint mobility when "
              "churn > 0):\n\n");
  std::printf("%s", pads_table.to_string().c_str());
  std::printf("\nPADS counts completion against the devices actually "
              "present: a departed device\nshrinks the consensus target "
              "instead of punching a hole in the report, so\ncompletion "
              "holds near 1.0 while SAP's drops with the churn rate.\n");
  std::fprintf(stderr, "[chaos_campaign] wall %.2fs (threads=%u)\n",
               timer.sec(), args.threads);
  return 0;
}
