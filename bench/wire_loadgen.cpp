// Live-socket load generator: daemon + agents on loopback, in-process.
//
// Spawns a VerifierDaemon on an ephemeral loopback port and --agents
// AgentRunner threads carving up --devices simulated devices, then
// drives --rounds attestation rounds as fast as --period-ms allows and
// reports what the wire stack actually sustains: rounds/sec, round
// latency (p50/p99 from the daemon's log2 histogram), token throughput,
// and drops under the optional --loss shaper.
//
// NOT part of the golden suite: every number here is wall-clock. The
// perf CI job records the wire.* gauges next to perf_baseline's (only
// `.counters` of BENCH_perf.json are diffed, so wall-clock noise never
// breaks a build).
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "wire/agent.hpp"
#include "wire/daemon.hpp"

namespace {

/// Upper bound of the log2 bucket holding quantile `q` — the honest
/// reading of a log-scale histogram (exact within a factor of 2).
std::uint64_t quantile_upper_bound(const cra::obs::Histogram& h, double q) {
  const std::uint64_t want =
      static_cast<std::uint64_t>(q * static_cast<double>(h.count()));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < cra::obs::Histogram::kBuckets; ++i) {
    seen += h.buckets()[i];
    if (seen > want) {
      return i == 0 ? 0 : (1ull << i) - 1;
    }
  }
  return h.max();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cra;
  std::uint32_t rounds = 20;
  std::uint32_t agents = 1;
  std::uint32_t bad = 0;
  std::uint64_t period_ms = 50;
  double loss = 0.0;
  const benchargs::BenchArgs args = benchargs::parse(
      argc, argv,
      [&](std::string_view flag, const std::function<const char*()>& value) {
        if (flag == "--rounds") {
          rounds = static_cast<std::uint32_t>(
              std::strtoul(value(), nullptr, 10));
          if (rounds == 0) rounds = 1;
          return true;
        }
        if (flag == "--agents") {
          agents = static_cast<std::uint32_t>(
              std::strtoul(value(), nullptr, 10));
          if (agents == 0) agents = 1;
          return true;
        }
        if (flag == "--bad") {
          bad = static_cast<std::uint32_t>(
              std::strtoul(value(), nullptr, 10));
          return true;
        }
        if (flag == "--period-ms") {
          period_ms = std::strtoull(value(), nullptr, 10);
          if (period_ms == 0) period_ms = 1;
          return true;
        }
        if (flag == "--loss") {
          loss = std::strtod(value(), nullptr);
          return true;
        }
        return false;
      },
      "  --rounds N          attestation rounds to drive (default 20)\n"
      "  --agents N          agent threads sharing the swarm (default 1)\n"
      "  --bad N             compromised devices (default 0)\n"
      "  --period-ms N       round period (default 50)\n"
      "  --loss P            agent uplink loss probability (default 0)\n");
  benchargs::ObsSession obs(args);

  const std::uint32_t devices = args.devices != 0 ? args.devices : 10'000;
  const Bytes master = to_bytes("cra-wire-loadgen-master");

  wire::DaemonConfig dcfg;
  dcfg.port = 0;
  dcfg.devices = devices;
  dcfg.master = master;
  dcfg.rounds = rounds;
  dcfg.period_ms = period_ms;
  wire::VerifierDaemon daemon(std::move(dcfg));
  const std::uint16_t port = daemon.local_port();

  // Carve the id space into --agents contiguous ranges.
  std::vector<std::unique_ptr<wire::AgentRunner>> runners;
  std::uint32_t next_id = 1;
  for (std::uint32_t a = 0; a < agents; ++a) {
    const std::uint32_t share =
        devices / agents + (a < devices % agents ? 1 : 0);
    if (share == 0) continue;
    wire::AgentRunnerConfig acfg;
    acfg.daemon = wire::Endpoint::loopback(port);
    acfg.agent.first_id = next_id;
    acfg.agent.count = share;
    acfg.agent.master = master;
    acfg.agent.bad = next_id == 1 ? bad : 0;
    acfg.shaper.baseline_loss = loss;
    acfg.shaper.seed = 0x10adull + a;
    runners.push_back(std::make_unique<wire::AgentRunner>(std::move(acfg)));
    next_id += share;
  }

  benchargs::WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(runners.size());
  for (auto& r : runners) {
    threads.emplace_back([&r] { r->run(); });
  }
  daemon.run();  // returns after `rounds` rounds
  const double elapsed = wall.sec();
  for (auto& r : runners) r->stop();
  for (auto& t : threads) t.join();

  const obs::MetricsRegistry& m = daemon.metrics();
  const obs::Histogram* lat = m.find_histogram("wire.daemon.round_latency_us");
  const std::uint64_t p50 = lat ? quantile_upper_bound(*lat, 0.50) : 0;
  const std::uint64_t p99 = lat ? quantile_upper_bound(*lat, 0.99) : 0;
  const std::uint64_t tokens = m.counter_value("wire.daemon.tokens_received");
  const std::uint64_t missing = m.counter_value("wire.daemon.tokens_missing");
  const std::uint64_t repolls = m.counter_value("wire.daemon.repolls");
  const double rps = elapsed > 0 ? daemon.rounds_completed() / elapsed : 0;

  Table table({"metric", "value"});
  table.add_row({"devices", std::to_string(devices)});
  table.add_row({"agents", std::to_string(runners.size())});
  table.add_row({"rounds completed", std::to_string(daemon.rounds_completed())});
  table.add_row({"rounds/sec", std::to_string(rps)});
  table.add_row({"round latency p50 (us, <=)", std::to_string(p50)});
  table.add_row({"round latency p99 (us, <=)", std::to_string(p99)});
  table.add_row({"tokens received", std::to_string(tokens)});
  table.add_row({"tokens missing at close", std::to_string(missing)});
  table.add_row({"repolls", std::to_string(repolls)});
  std::printf("wire loadgen: %u devices, %u rounds, period %llu ms, "
              "loss %.3f\n\n%s\n",
              devices, rounds, static_cast<unsigned long long>(period_ms),
              loss, table.to_string().c_str());
  std::fprintf(stderr, "wall: %.3f s (%.0f tokens/sec)\n", elapsed,
               elapsed > 0 ? static_cast<double>(tokens) / elapsed : 0);

  // Exported shape: daemon counters/histograms verbatim, plus the
  // wall-clock gauges the perf job records alongside perf_baseline's.
  obs.capture(m);
  for (const auto& r : runners) obs.capture(r->metrics());
  obs.registry().gauge("wire.rounds_per_sec")
      .set(static_cast<std::int64_t>(rps));
  obs.registry().gauge("wire.round_p99_us")
      .set(static_cast<std::int64_t>(p99));
  obs.registry().gauge("wire.tokens_per_sec")
      .set(static_cast<std::int64_t>(
          elapsed > 0 ? static_cast<double>(tokens) / elapsed : 0));
  obs.registry().gauge("wire.drops_under_load")
      .set(static_cast<std::int64_t>(missing));

  return daemon.rounds_completed() == rounds ? 0 : 1;
}
