// cra_agentd — device agent multiplexing a swarm slice.
//
// Simulates --devices SAP devices (ids --first-id .. first-id+N-1) on
// one socket against a cra_verifierd. Token computation rides the
// process's crypto backend (CRA_CRYPTO_BACKEND=simd gets the AVX2
// lanes), so one agent process sustains 100k devices per round on
// loopback. The optional traffic shaper degrades the agent's own
// uplink — loss, reordering, and FaultPlan loss-spike/partition
// windows — which is how the loopback robustness tests exercise the
// daemon's re-poll ladder without a network middlebox.
//
//   cra_agentd --connect 127.0.0.1:7450 --first-id 1 --devices 10000 \
//       --bad 3 --loss 0.02 --seed 7
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/bytes.hpp"
#include "fault/plan.hpp"
#include "wire/agent.hpp"

namespace {

void on_terminate(int) {
  // Graceful: best-effort goodbye to the daemon, metrics export, exit.
  cra::wire::AgentRunner::request_shutdown();
}

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --connect HOST:PORT daemon address (default 127.0.0.1:7450)\n"
      "  --first-id N        first device id of this agent's range "
      "(default 1)\n"
      "  --devices N         devices simulated by this process "
      "(default 1000)\n"
      "  --master-hex HEX    deployment master secret (hex)\n"
      "  --alg A             sha1 | sha256 (default sha1)\n"
      "  --bad N             first N devices attest tampered content\n"
      "  --loss P            baseline uplink loss probability\n"
      "  --reorder P         probability a token frame is delayed 2 ms\n"
      "  --seed N            shaper randomness seed\n"
      "  --plan PATH         FaultPlan text file for shaped loss/partition "
      "windows\n"
      "  --journal PATH      session-epoch journal; each restart hellos "
      "with a fresh epoch so the daemon resets seq accounting\n"
      "  --metrics-json PATH metrics JSON written when the agent exits\n"
      "  --help              show this message\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cra;
  wire::AgentRunnerConfig cfg;
  cfg.daemon = wire::Endpoint::parse("127.0.0.1:7450");
  cfg.agent.master = to_bytes("cra-wire-demo-master");
  std::string plan_path;

  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(flag, "--help") == 0 || std::strcmp(flag, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (std::strcmp(flag, "--connect") == 0) {
      cfg.daemon = wire::Endpoint::parse(value());
    } else if (std::strcmp(flag, "--first-id") == 0) {
      cfg.agent.first_id =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(flag, "--devices") == 0) {
      cfg.agent.count =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(flag, "--master-hex") == 0) {
      cfg.agent.master = from_hex(value());
    } else if (std::strcmp(flag, "--alg") == 0) {
      const std::string alg = value();
      if (alg == "sha1") {
        cfg.agent.alg = crypto::HashAlg::kSha1;
      } else if (alg == "sha256") {
        cfg.agent.alg = crypto::HashAlg::kSha256;
      } else {
        std::fprintf(stderr, "unknown --alg %s\n", alg.c_str());
        return 2;
      }
    } else if (std::strcmp(flag, "--bad") == 0) {
      cfg.agent.bad =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(flag, "--loss") == 0) {
      cfg.shaper.baseline_loss = std::strtod(value(), nullptr);
    } else if (std::strcmp(flag, "--reorder") == 0) {
      cfg.shaper.reorder = std::strtod(value(), nullptr);
    } else if (std::strcmp(flag, "--seed") == 0) {
      cfg.shaper.seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(flag, "--plan") == 0) {
      plan_path = value();
    } else if (std::strcmp(flag, "--journal") == 0) {
      cfg.journal_path = value();
    } else if (std::strcmp(flag, "--metrics-json") == 0) {
      cfg.metrics_path = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag);
      usage(argv[0]);
      return 2;
    }
  }

  fault::FaultPlan plan;
  if (!plan_path.empty()) {
    std::ifstream in(plan_path);
    if (!in) {
      std::fprintf(stderr, "cannot open --plan %s\n", plan_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      plan = fault::FaultPlan::parse(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--plan %s: %s\n", plan_path.c_str(), e.what());
      return 2;
    }
    cfg.plan = &plan;
  }

  const std::uint32_t first_id = cfg.agent.first_id;
  const std::uint32_t count = cfg.agent.count;
  const std::string daemon_addr = cfg.daemon.to_string();
  wire::AgentRunner runner(std::move(cfg));

  struct sigaction sa{};
  sa.sa_handler = on_terminate;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  std::fprintf(stderr, "cra_agentd: %u devices from id %u -> %s\n", count,
               first_id, daemon_addr.c_str());
  runner.run();

  const auto& m = runner.metrics();
  std::printf("cra_agentd: served %llu challenges, %llu repolls, "
              "sent %llu datagrams (%llu shaped drops)\n",
              static_cast<unsigned long long>(
                  m.counter_value("wire.agent.chals")),
              static_cast<unsigned long long>(
                  m.counter_value("wire.agent.repolls")),
              static_cast<unsigned long long>(
                  m.counter_value("wire.agent.tx_datagrams")),
              static_cast<unsigned long long>(
                  m.counter_value("wire.agent.shaped_drops")));
  return 0;
}
