// cra_verifierd — the long-lived SAP verifier daemon.
//
// Binds a UDP port, waits for cra_agentd processes to register their
// device ranges, then attests the swarm every --period-ms until
// --rounds complete (or forever). SIGUSR1 dumps a metrics snapshot to
// the --metrics-json path; SIGINT/SIGTERM shut down cleanly (final
// snapshot included).
//
//   cra_verifierd --port 7450 --devices 10000 --rounds 100 \
//       --period-ms 250 --mode identify --metrics-json /tmp/wire.json
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "wire/daemon.hpp"

namespace {

void on_sigusr1(int) { cra::wire::VerifierDaemon::request_snapshot(); }

void on_terminate(int) {
  // Graceful: drain the in-flight round, write the final state snapshot
  // and metrics export, then leave the loop.
  cra::wire::VerifierDaemon::request_shutdown();
}

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N            UDP port to bind (default 7450, 0 = ephemeral)\n"
      "  --devices N         swarm size the daemon attests (default 1000)\n"
      "  --master-hex HEX    deployment master secret (hex)\n"
      "  --mode M            binary | identify (default identify)\n"
      "  --alg A             sha1 | sha256 (default sha1)\n"
      "  --period-ms N       round period (default 250)\n"
      "  --rounds N          stop after N rounds (default 0 = forever)\n"
      "  --metrics-json PATH snapshot file (SIGUSR1 / --dump-every / exit)\n"
      "  --dump-every N      also snapshot every N completed rounds\n"
      "  --journal PATH      crash-safe state journal base path "
      "(PATH.wal + PATH.snap); restart resumes the interrupted round\n"
      "  --snapshot-every N  compact the journal every N rounds "
      "(default 8)\n"
      "  --help              show this message\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cra;
  wire::DaemonConfig cfg;
  cfg.port = 7450;
  cfg.master = to_bytes("cra-wire-demo-master");

  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(flag, "--help") == 0 || std::strcmp(flag, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (std::strcmp(flag, "--port") == 0) {
      cfg.port = static_cast<std::uint16_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(flag, "--devices") == 0) {
      cfg.devices =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(flag, "--master-hex") == 0) {
      cfg.master = from_hex(value());
    } else if (std::strcmp(flag, "--mode") == 0) {
      const std::string mode = value();
      if (mode == "binary") {
        cfg.mode = sap::QoaMode::kBinary;
      } else if (mode == "identify") {
        cfg.mode = sap::QoaMode::kIdentify;
      } else {
        std::fprintf(stderr, "unknown --mode %s\n", mode.c_str());
        return 2;
      }
    } else if (std::strcmp(flag, "--alg") == 0) {
      const std::string alg = value();
      if (alg == "sha1") {
        cfg.alg = crypto::HashAlg::kSha1;
      } else if (alg == "sha256") {
        cfg.alg = crypto::HashAlg::kSha256;
      } else {
        std::fprintf(stderr, "unknown --alg %s\n", alg.c_str());
        return 2;
      }
    } else if (std::strcmp(flag, "--period-ms") == 0) {
      cfg.period_ms = std::strtoull(value(), nullptr, 10);
      if (cfg.period_ms == 0) cfg.period_ms = 1;
    } else if (std::strcmp(flag, "--rounds") == 0) {
      cfg.rounds =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(flag, "--metrics-json") == 0) {
      cfg.metrics_path = value();
    } else if (std::strcmp(flag, "--dump-every") == 0) {
      cfg.dump_every =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(flag, "--journal") == 0) {
      cfg.journal_path = value();
    } else if (std::strcmp(flag, "--snapshot-every") == 0) {
      cfg.snapshot_every =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag);
      usage(argv[0]);
      return 2;
    }
  }

  wire::VerifierDaemon daemon(std::move(cfg));
  if (daemon.recovered()) {
    std::fprintf(stderr, "cra_verifierd: recovered journaled state "
                 "(round %u)\n", daemon.rounds_completed());
  }

  struct sigaction sa{};
  sa.sa_handler = on_sigusr1;  // no SA_RESTART: must interrupt epoll_wait
  sigaction(SIGUSR1, &sa, nullptr);
  sa.sa_handler = on_terminate;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  std::fprintf(stderr, "cra_verifierd: listening on 127.0.0.1:%u\n",
               daemon.local_port());
  daemon.run();

  const auto& m = daemon.metrics();
  std::printf("cra_verifierd: %u rounds completed, %llu verified, "
              "%llu failed, %llu tokens received, %llu missing\n",
              daemon.rounds_completed(),
              static_cast<unsigned long long>(
                  m.counter_value("wire.daemon.rounds_verified")),
              static_cast<unsigned long long>(
                  m.counter_value("wire.daemon.rounds_failed")),
              static_cast<unsigned long long>(
                  m.counter_value("wire.daemon.tokens_received")),
              static_cast<unsigned long long>(
                  m.counter_value("wire.daemon.tokens_missing")));
  return 0;
}
