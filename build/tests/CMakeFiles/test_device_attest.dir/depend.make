# Empty dependencies file for test_device_attest.
# This may be replaced when dependencies are built.
