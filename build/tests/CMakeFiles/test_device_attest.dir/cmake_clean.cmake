file(REMOVE_RECURSE
  "CMakeFiles/test_device_attest.dir/device/test_device_attest.cpp.o"
  "CMakeFiles/test_device_attest.dir/device/test_device_attest.cpp.o.d"
  "test_device_attest"
  "test_device_attest.pdb"
  "test_device_attest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_attest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
