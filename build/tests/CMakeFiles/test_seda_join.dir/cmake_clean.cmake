file(REMOVE_RECURSE
  "CMakeFiles/test_seda_join.dir/seda/test_seda_join.cpp.o"
  "CMakeFiles/test_seda_join.dir/seda/test_seda_join.cpp.o.d"
  "test_seda_join"
  "test_seda_join.pdb"
  "test_seda_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seda_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
