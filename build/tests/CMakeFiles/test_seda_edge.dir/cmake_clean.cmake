file(REMOVE_RECURSE
  "CMakeFiles/test_seda_edge.dir/seda/test_seda_edge.cpp.o"
  "CMakeFiles/test_seda_edge.dir/seda/test_seda_edge.cpp.o.d"
  "test_seda_edge"
  "test_seda_edge.pdb"
  "test_seda_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seda_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
