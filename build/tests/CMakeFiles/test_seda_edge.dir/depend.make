# Empty dependencies file for test_seda_edge.
# This may be replaced when dependencies are built.
