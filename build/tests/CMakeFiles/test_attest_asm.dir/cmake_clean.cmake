file(REMOVE_RECURSE
  "CMakeFiles/test_attest_asm.dir/device/test_attest_asm.cpp.o"
  "CMakeFiles/test_attest_asm.dir/device/test_attest_asm.cpp.o.d"
  "test_attest_asm"
  "test_attest_asm.pdb"
  "test_attest_asm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attest_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
