# Empty dependencies file for test_attest_asm.
# This may be replaced when dependencies are built.
