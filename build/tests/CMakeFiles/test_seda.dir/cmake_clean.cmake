file(REMOVE_RECURSE
  "CMakeFiles/test_seda.dir/seda/test_seda.cpp.o"
  "CMakeFiles/test_seda.dir/seda/test_seda.cpp.o.d"
  "test_seda"
  "test_seda.pdb"
  "test_seda[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
