# Empty dependencies file for test_seda.
# This may be replaced when dependencies are built.
