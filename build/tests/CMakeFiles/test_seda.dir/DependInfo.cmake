
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/seda/test_seda.cpp" "tests/CMakeFiles/test_seda.dir/seda/test_seda.cpp.o" "gcc" "tests/CMakeFiles/test_seda.dir/seda/test_seda.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cra_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/cra_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sap/CMakeFiles/cra_sap.dir/DependInfo.cmake"
  "/root/repo/build/src/seda/CMakeFiles/cra_seda.dir/DependInfo.cmake"
  "/root/repo/build/src/lisa/CMakeFiles/cra_lisa.dir/DependInfo.cmake"
  "/root/repo/build/src/tca/CMakeFiles/cra_tca.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cra_power.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cra_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
