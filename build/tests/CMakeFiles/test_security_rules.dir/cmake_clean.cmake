file(REMOVE_RECURSE
  "CMakeFiles/test_security_rules.dir/device/test_security_rules.cpp.o"
  "CMakeFiles/test_security_rules.dir/device/test_security_rules.cpp.o.d"
  "test_security_rules"
  "test_security_rules.pdb"
  "test_security_rules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_security_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
