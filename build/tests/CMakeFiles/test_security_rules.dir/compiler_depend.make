# Empty compiler generated dependencies file for test_security_rules.
# This may be replaced when dependencies are built.
