file(REMOVE_RECURSE
  "CMakeFiles/test_sap_matrix.dir/sap/test_protocol_matrix.cpp.o"
  "CMakeFiles/test_sap_matrix.dir/sap/test_protocol_matrix.cpp.o.d"
  "test_sap_matrix"
  "test_sap_matrix.pdb"
  "test_sap_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
