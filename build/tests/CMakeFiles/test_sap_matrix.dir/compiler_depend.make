# Empty compiler generated dependencies file for test_sap_matrix.
# This may be replaced when dependencies are built.
