file(REMOVE_RECURSE
  "CMakeFiles/test_sap_vm_integration.dir/sap/test_vm_integration.cpp.o"
  "CMakeFiles/test_sap_vm_integration.dir/sap/test_vm_integration.cpp.o.d"
  "test_sap_vm_integration"
  "test_sap_vm_integration.pdb"
  "test_sap_vm_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_vm_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
