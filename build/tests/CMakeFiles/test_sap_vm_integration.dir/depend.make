# Empty dependencies file for test_sap_vm_integration.
# This may be replaced when dependencies are built.
