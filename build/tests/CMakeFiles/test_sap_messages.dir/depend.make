# Empty dependencies file for test_sap_messages.
# This may be replaced when dependencies are built.
