file(REMOVE_RECURSE
  "CMakeFiles/test_sap_messages.dir/sap/test_messages.cpp.o"
  "CMakeFiles/test_sap_messages.dir/sap/test_messages.cpp.o.d"
  "test_sap_messages"
  "test_sap_messages.pdb"
  "test_sap_messages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
