file(REMOVE_RECURSE
  "CMakeFiles/test_sap_extensions.dir/sap/test_extensions.cpp.o"
  "CMakeFiles/test_sap_extensions.dir/sap/test_extensions.cpp.o.d"
  "test_sap_extensions"
  "test_sap_extensions.pdb"
  "test_sap_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
