# Empty dependencies file for test_sap_extensions.
# This may be replaced when dependencies are built.
