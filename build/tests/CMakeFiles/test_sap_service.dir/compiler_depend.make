# Empty compiler generated dependencies file for test_sap_service.
# This may be replaced when dependencies are built.
