file(REMOVE_RECURSE
  "CMakeFiles/test_sap_service.dir/sap/test_service.cpp.o"
  "CMakeFiles/test_sap_service.dir/sap/test_service.cpp.o.d"
  "test_sap_service"
  "test_sap_service.pdb"
  "test_sap_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
