# Empty compiler generated dependencies file for test_topology_properties.
# This may be replaced when dependencies are built.
