# Empty compiler generated dependencies file for test_sap_dynamic.
# This may be replaced when dependencies are built.
