file(REMOVE_RECURSE
  "CMakeFiles/test_sap_dynamic.dir/sap/test_dynamic_topology.cpp.o"
  "CMakeFiles/test_sap_dynamic.dir/sap/test_dynamic_topology.cpp.o.d"
  "test_sap_dynamic"
  "test_sap_dynamic.pdb"
  "test_sap_dynamic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
