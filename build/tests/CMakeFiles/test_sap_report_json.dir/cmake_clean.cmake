file(REMOVE_RECURSE
  "CMakeFiles/test_sap_report_json.dir/sap/test_report_json.cpp.o"
  "CMakeFiles/test_sap_report_json.dir/sap/test_report_json.cpp.o.d"
  "test_sap_report_json"
  "test_sap_report_json.pdb"
  "test_sap_report_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_report_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
