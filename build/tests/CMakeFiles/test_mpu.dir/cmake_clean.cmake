file(REMOVE_RECURSE
  "CMakeFiles/test_mpu.dir/device/test_mpu.cpp.o"
  "CMakeFiles/test_mpu.dir/device/test_mpu.cpp.o.d"
  "test_mpu"
  "test_mpu.pdb"
  "test_mpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
