# Empty compiler generated dependencies file for test_mpu.
# This may be replaced when dependencies are built.
