# Empty compiler generated dependencies file for test_sap_qoa.
# This may be replaced when dependencies are built.
