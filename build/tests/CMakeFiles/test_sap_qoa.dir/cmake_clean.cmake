file(REMOVE_RECURSE
  "CMakeFiles/test_sap_qoa.dir/sap/test_qoa.cpp.o"
  "CMakeFiles/test_sap_qoa.dir/sap/test_qoa.cpp.o.d"
  "test_sap_qoa"
  "test_sap_qoa.pdb"
  "test_sap_qoa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_qoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
