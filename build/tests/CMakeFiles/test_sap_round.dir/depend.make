# Empty dependencies file for test_sap_round.
# This may be replaced when dependencies are built.
