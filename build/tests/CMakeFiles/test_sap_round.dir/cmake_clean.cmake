file(REMOVE_RECURSE
  "CMakeFiles/test_sap_round.dir/sap/test_sap_round.cpp.o"
  "CMakeFiles/test_sap_round.dir/sap/test_sap_round.cpp.o.d"
  "test_sap_round"
  "test_sap_round.pdb"
  "test_sap_round[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
