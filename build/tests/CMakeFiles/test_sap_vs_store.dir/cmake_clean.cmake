file(REMOVE_RECURSE
  "CMakeFiles/test_sap_vs_store.dir/sap/test_vs_store.cpp.o"
  "CMakeFiles/test_sap_vs_store.dir/sap/test_vs_store.cpp.o.d"
  "test_sap_vs_store"
  "test_sap_vs_store.pdb"
  "test_sap_vs_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_vs_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
