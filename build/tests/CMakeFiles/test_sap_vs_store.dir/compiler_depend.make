# Empty compiler generated dependencies file for test_sap_vs_store.
# This may be replaced when dependencies are built.
