file(REMOVE_RECURSE
  "CMakeFiles/test_kdf.dir/crypto/test_kdf.cpp.o"
  "CMakeFiles/test_kdf.dir/crypto/test_kdf.cpp.o.d"
  "test_kdf"
  "test_kdf.pdb"
  "test_kdf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
