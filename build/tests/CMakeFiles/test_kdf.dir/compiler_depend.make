# Empty compiler generated dependencies file for test_kdf.
# This may be replaced when dependencies are built.
