# Empty dependencies file for test_sap_energy.
# This may be replaced when dependencies are built.
