file(REMOVE_RECURSE
  "CMakeFiles/test_sap_energy.dir/sap/test_energy.cpp.o"
  "CMakeFiles/test_sap_energy.dir/sap/test_energy.cpp.o.d"
  "test_sap_energy"
  "test_sap_energy.pdb"
  "test_sap_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
