file(REMOVE_RECURSE
  "CMakeFiles/test_sap_heartbeat.dir/sap/test_heartbeat.cpp.o"
  "CMakeFiles/test_sap_heartbeat.dir/sap/test_heartbeat.cpp.o.d"
  "test_sap_heartbeat"
  "test_sap_heartbeat.pdb"
  "test_sap_heartbeat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
