# Empty dependencies file for test_sap_heartbeat.
# This may be replaced when dependencies are built.
