# Empty dependencies file for test_sap_robustness.
# This may be replaced when dependencies are built.
