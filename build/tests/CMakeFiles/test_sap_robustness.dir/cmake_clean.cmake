file(REMOVE_RECURSE
  "CMakeFiles/test_sap_robustness.dir/sap/test_robustness.cpp.o"
  "CMakeFiles/test_sap_robustness.dir/sap/test_robustness.cpp.o.d"
  "test_sap_robustness"
  "test_sap_robustness.pdb"
  "test_sap_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
