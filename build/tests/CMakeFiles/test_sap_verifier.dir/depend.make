# Empty dependencies file for test_sap_verifier.
# This may be replaced when dependencies are built.
