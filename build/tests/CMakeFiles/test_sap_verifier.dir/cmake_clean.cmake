file(REMOVE_RECURSE
  "CMakeFiles/test_sap_verifier.dir/sap/test_verifier.cpp.o"
  "CMakeFiles/test_sap_verifier.dir/sap/test_verifier.cpp.o.d"
  "test_sap_verifier"
  "test_sap_verifier.pdb"
  "test_sap_verifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
