# Empty compiler generated dependencies file for test_tca.
# This may be replaced when dependencies are built.
