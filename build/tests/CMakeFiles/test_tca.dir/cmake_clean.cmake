file(REMOVE_RECURSE
  "CMakeFiles/test_tca.dir/tca/test_tca.cpp.o"
  "CMakeFiles/test_tca.dir/tca/test_tca.cpp.o.d"
  "test_tca"
  "test_tca.pdb"
  "test_tca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
