# Empty dependencies file for test_sap_heterogeneous.
# This may be replaced when dependencies are built.
