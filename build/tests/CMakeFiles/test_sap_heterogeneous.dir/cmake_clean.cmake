file(REMOVE_RECURSE
  "CMakeFiles/test_sap_heterogeneous.dir/sap/test_heterogeneous.cpp.o"
  "CMakeFiles/test_sap_heterogeneous.dir/sap/test_heterogeneous.cpp.o.d"
  "test_sap_heterogeneous"
  "test_sap_heterogeneous.pdb"
  "test_sap_heterogeneous[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
