file(REMOVE_RECURSE
  "CMakeFiles/test_lisa.dir/lisa/test_lisa.cpp.o"
  "CMakeFiles/test_lisa.dir/lisa/test_lisa.cpp.o.d"
  "test_lisa"
  "test_lisa.pdb"
  "test_lisa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
