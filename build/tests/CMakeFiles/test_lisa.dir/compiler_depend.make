# Empty compiler generated dependencies file for test_lisa.
# This may be replaced when dependencies are built.
