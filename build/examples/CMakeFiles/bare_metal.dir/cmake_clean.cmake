file(REMOVE_RECURSE
  "CMakeFiles/bare_metal.dir/bare_metal.cpp.o"
  "CMakeFiles/bare_metal.dir/bare_metal.cpp.o.d"
  "bare_metal"
  "bare_metal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bare_metal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
