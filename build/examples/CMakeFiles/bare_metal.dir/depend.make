# Empty dependencies file for bare_metal.
# This may be replaced when dependencies are built.
