# Empty compiler generated dependencies file for swarm_cli.
# This may be replaced when dependencies are built.
