file(REMOVE_RECURSE
  "CMakeFiles/swarm_cli.dir/swarm_cli.cpp.o"
  "CMakeFiles/swarm_cli.dir/swarm_cli.cpp.o.d"
  "swarm_cli"
  "swarm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
