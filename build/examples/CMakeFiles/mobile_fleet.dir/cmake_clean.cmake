file(REMOVE_RECURSE
  "CMakeFiles/mobile_fleet.dir/mobile_fleet.cpp.o"
  "CMakeFiles/mobile_fleet.dir/mobile_fleet.cpp.o.d"
  "mobile_fleet"
  "mobile_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
