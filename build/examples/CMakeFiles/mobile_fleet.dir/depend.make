# Empty dependencies file for mobile_fleet.
# This may be replaced when dependencies are built.
