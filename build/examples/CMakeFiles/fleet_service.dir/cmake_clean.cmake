file(REMOVE_RECURSE
  "CMakeFiles/fleet_service.dir/fleet_service.cpp.o"
  "CMakeFiles/fleet_service.dir/fleet_service.cpp.o.d"
  "fleet_service"
  "fleet_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
