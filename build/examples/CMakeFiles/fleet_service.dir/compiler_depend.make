# Empty compiler generated dependencies file for fleet_service.
# This may be replaced when dependencies are built.
