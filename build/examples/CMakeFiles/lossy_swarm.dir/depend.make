# Empty dependencies file for lossy_swarm.
# This may be replaced when dependencies are built.
