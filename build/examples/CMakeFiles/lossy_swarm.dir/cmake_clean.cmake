file(REMOVE_RECURSE
  "CMakeFiles/lossy_swarm.dir/lossy_swarm.cpp.o"
  "CMakeFiles/lossy_swarm.dir/lossy_swarm.cpp.o.d"
  "lossy_swarm"
  "lossy_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
