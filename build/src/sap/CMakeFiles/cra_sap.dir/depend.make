# Empty dependencies file for cra_sap.
# This may be replaced when dependencies are built.
