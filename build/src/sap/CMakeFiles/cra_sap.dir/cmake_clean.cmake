file(REMOVE_RECURSE
  "CMakeFiles/cra_sap.dir/analysis.cpp.o"
  "CMakeFiles/cra_sap.dir/analysis.cpp.o.d"
  "CMakeFiles/cra_sap.dir/energy.cpp.o"
  "CMakeFiles/cra_sap.dir/energy.cpp.o.d"
  "CMakeFiles/cra_sap.dir/heartbeat.cpp.o"
  "CMakeFiles/cra_sap.dir/heartbeat.cpp.o.d"
  "CMakeFiles/cra_sap.dir/messages.cpp.o"
  "CMakeFiles/cra_sap.dir/messages.cpp.o.d"
  "CMakeFiles/cra_sap.dir/report_json.cpp.o"
  "CMakeFiles/cra_sap.dir/report_json.cpp.o.d"
  "CMakeFiles/cra_sap.dir/service.cpp.o"
  "CMakeFiles/cra_sap.dir/service.cpp.o.d"
  "CMakeFiles/cra_sap.dir/swarm.cpp.o"
  "CMakeFiles/cra_sap.dir/swarm.cpp.o.d"
  "CMakeFiles/cra_sap.dir/verifier.cpp.o"
  "CMakeFiles/cra_sap.dir/verifier.cpp.o.d"
  "CMakeFiles/cra_sap.dir/vs_store.cpp.o"
  "CMakeFiles/cra_sap.dir/vs_store.cpp.o.d"
  "libcra_sap.a"
  "libcra_sap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_sap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
