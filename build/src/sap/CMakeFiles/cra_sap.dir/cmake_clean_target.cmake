file(REMOVE_RECURSE
  "libcra_sap.a"
)
