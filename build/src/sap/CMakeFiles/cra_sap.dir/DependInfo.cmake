
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sap/analysis.cpp" "src/sap/CMakeFiles/cra_sap.dir/analysis.cpp.o" "gcc" "src/sap/CMakeFiles/cra_sap.dir/analysis.cpp.o.d"
  "/root/repo/src/sap/energy.cpp" "src/sap/CMakeFiles/cra_sap.dir/energy.cpp.o" "gcc" "src/sap/CMakeFiles/cra_sap.dir/energy.cpp.o.d"
  "/root/repo/src/sap/heartbeat.cpp" "src/sap/CMakeFiles/cra_sap.dir/heartbeat.cpp.o" "gcc" "src/sap/CMakeFiles/cra_sap.dir/heartbeat.cpp.o.d"
  "/root/repo/src/sap/messages.cpp" "src/sap/CMakeFiles/cra_sap.dir/messages.cpp.o" "gcc" "src/sap/CMakeFiles/cra_sap.dir/messages.cpp.o.d"
  "/root/repo/src/sap/report_json.cpp" "src/sap/CMakeFiles/cra_sap.dir/report_json.cpp.o" "gcc" "src/sap/CMakeFiles/cra_sap.dir/report_json.cpp.o.d"
  "/root/repo/src/sap/service.cpp" "src/sap/CMakeFiles/cra_sap.dir/service.cpp.o" "gcc" "src/sap/CMakeFiles/cra_sap.dir/service.cpp.o.d"
  "/root/repo/src/sap/swarm.cpp" "src/sap/CMakeFiles/cra_sap.dir/swarm.cpp.o" "gcc" "src/sap/CMakeFiles/cra_sap.dir/swarm.cpp.o.d"
  "/root/repo/src/sap/verifier.cpp" "src/sap/CMakeFiles/cra_sap.dir/verifier.cpp.o" "gcc" "src/sap/CMakeFiles/cra_sap.dir/verifier.cpp.o.d"
  "/root/repo/src/sap/vs_store.cpp" "src/sap/CMakeFiles/cra_sap.dir/vs_store.cpp.o" "gcc" "src/sap/CMakeFiles/cra_sap.dir/vs_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cra_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/cra_device.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cra_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
