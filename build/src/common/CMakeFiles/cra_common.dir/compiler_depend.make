# Empty compiler generated dependencies file for cra_common.
# This may be replaced when dependencies are built.
