file(REMOVE_RECURSE
  "libcra_common.a"
)
