file(REMOVE_RECURSE
  "CMakeFiles/cra_common.dir/bytes.cpp.o"
  "CMakeFiles/cra_common.dir/bytes.cpp.o.d"
  "CMakeFiles/cra_common.dir/json.cpp.o"
  "CMakeFiles/cra_common.dir/json.cpp.o.d"
  "CMakeFiles/cra_common.dir/log.cpp.o"
  "CMakeFiles/cra_common.dir/log.cpp.o.d"
  "CMakeFiles/cra_common.dir/rng.cpp.o"
  "CMakeFiles/cra_common.dir/rng.cpp.o.d"
  "CMakeFiles/cra_common.dir/stats.cpp.o"
  "CMakeFiles/cra_common.dir/stats.cpp.o.d"
  "CMakeFiles/cra_common.dir/table.cpp.o"
  "CMakeFiles/cra_common.dir/table.cpp.o.d"
  "libcra_common.a"
  "libcra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
