
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/assembler.cpp" "src/device/CMakeFiles/cra_device.dir/assembler.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/assembler.cpp.o.d"
  "/root/repo/src/device/attest_asm.cpp" "src/device/CMakeFiles/cra_device.dir/attest_asm.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/attest_asm.cpp.o.d"
  "/root/repo/src/device/attest_tcb.cpp" "src/device/CMakeFiles/cra_device.dir/attest_tcb.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/attest_tcb.cpp.o.d"
  "/root/repo/src/device/clock.cpp" "src/device/CMakeFiles/cra_device.dir/clock.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/clock.cpp.o.d"
  "/root/repo/src/device/cpu.cpp" "src/device/CMakeFiles/cra_device.dir/cpu.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/cpu.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/device/CMakeFiles/cra_device.dir/device.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/device.cpp.o.d"
  "/root/repo/src/device/disasm.cpp" "src/device/CMakeFiles/cra_device.dir/disasm.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/disasm.cpp.o.d"
  "/root/repo/src/device/dma.cpp" "src/device/CMakeFiles/cra_device.dir/dma.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/dma.cpp.o.d"
  "/root/repo/src/device/isa.cpp" "src/device/CMakeFiles/cra_device.dir/isa.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/isa.cpp.o.d"
  "/root/repo/src/device/memory.cpp" "src/device/CMakeFiles/cra_device.dir/memory.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/memory.cpp.o.d"
  "/root/repo/src/device/mpu.cpp" "src/device/CMakeFiles/cra_device.dir/mpu.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/mpu.cpp.o.d"
  "/root/repo/src/device/secure_boot.cpp" "src/device/CMakeFiles/cra_device.dir/secure_boot.cpp.o" "gcc" "src/device/CMakeFiles/cra_device.dir/secure_boot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cra_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cra_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
