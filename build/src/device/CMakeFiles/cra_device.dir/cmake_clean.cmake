file(REMOVE_RECURSE
  "CMakeFiles/cra_device.dir/assembler.cpp.o"
  "CMakeFiles/cra_device.dir/assembler.cpp.o.d"
  "CMakeFiles/cra_device.dir/attest_asm.cpp.o"
  "CMakeFiles/cra_device.dir/attest_asm.cpp.o.d"
  "CMakeFiles/cra_device.dir/attest_tcb.cpp.o"
  "CMakeFiles/cra_device.dir/attest_tcb.cpp.o.d"
  "CMakeFiles/cra_device.dir/clock.cpp.o"
  "CMakeFiles/cra_device.dir/clock.cpp.o.d"
  "CMakeFiles/cra_device.dir/cpu.cpp.o"
  "CMakeFiles/cra_device.dir/cpu.cpp.o.d"
  "CMakeFiles/cra_device.dir/device.cpp.o"
  "CMakeFiles/cra_device.dir/device.cpp.o.d"
  "CMakeFiles/cra_device.dir/disasm.cpp.o"
  "CMakeFiles/cra_device.dir/disasm.cpp.o.d"
  "CMakeFiles/cra_device.dir/dma.cpp.o"
  "CMakeFiles/cra_device.dir/dma.cpp.o.d"
  "CMakeFiles/cra_device.dir/isa.cpp.o"
  "CMakeFiles/cra_device.dir/isa.cpp.o.d"
  "CMakeFiles/cra_device.dir/memory.cpp.o"
  "CMakeFiles/cra_device.dir/memory.cpp.o.d"
  "CMakeFiles/cra_device.dir/mpu.cpp.o"
  "CMakeFiles/cra_device.dir/mpu.cpp.o.d"
  "CMakeFiles/cra_device.dir/secure_boot.cpp.o"
  "CMakeFiles/cra_device.dir/secure_boot.cpp.o.d"
  "libcra_device.a"
  "libcra_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
