# Empty compiler generated dependencies file for cra_device.
# This may be replaced when dependencies are built.
