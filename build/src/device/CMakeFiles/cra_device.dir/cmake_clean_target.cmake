file(REMOVE_RECURSE
  "libcra_device.a"
)
