file(REMOVE_RECURSE
  "libcra_lisa.a"
)
