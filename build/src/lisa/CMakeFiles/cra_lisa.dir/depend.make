# Empty dependencies file for cra_lisa.
# This may be replaced when dependencies are built.
