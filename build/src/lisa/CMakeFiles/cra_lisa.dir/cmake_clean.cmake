file(REMOVE_RECURSE
  "CMakeFiles/cra_lisa.dir/lisa.cpp.o"
  "CMakeFiles/cra_lisa.dir/lisa.cpp.o.d"
  "libcra_lisa.a"
  "libcra_lisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_lisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
