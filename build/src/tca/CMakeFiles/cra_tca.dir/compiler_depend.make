# Empty compiler generated dependencies file for cra_tca.
# This may be replaced when dependencies are built.
