file(REMOVE_RECURSE
  "CMakeFiles/cra_tca.dir/efficiency.cpp.o"
  "CMakeFiles/cra_tca.dir/efficiency.cpp.o.d"
  "CMakeFiles/cra_tca.dir/security.cpp.o"
  "CMakeFiles/cra_tca.dir/security.cpp.o.d"
  "CMakeFiles/cra_tca.dir/soundness.cpp.o"
  "CMakeFiles/cra_tca.dir/soundness.cpp.o.d"
  "libcra_tca.a"
  "libcra_tca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_tca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
