file(REMOVE_RECURSE
  "libcra_tca.a"
)
