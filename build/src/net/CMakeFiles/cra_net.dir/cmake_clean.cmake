file(REMOVE_RECURSE
  "CMakeFiles/cra_net.dir/network.cpp.o"
  "CMakeFiles/cra_net.dir/network.cpp.o.d"
  "CMakeFiles/cra_net.dir/topology.cpp.o"
  "CMakeFiles/cra_net.dir/topology.cpp.o.d"
  "libcra_net.a"
  "libcra_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
