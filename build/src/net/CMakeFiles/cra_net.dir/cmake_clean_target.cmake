file(REMOVE_RECURSE
  "libcra_net.a"
)
