# Empty dependencies file for cra_net.
# This may be replaced when dependencies are built.
