# Empty dependencies file for cra_hw.
# This may be replaced when dependencies are built.
