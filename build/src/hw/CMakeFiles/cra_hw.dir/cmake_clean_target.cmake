file(REMOVE_RECURSE
  "libcra_hw.a"
)
