file(REMOVE_RECURSE
  "CMakeFiles/cra_hw.dir/hw_cost.cpp.o"
  "CMakeFiles/cra_hw.dir/hw_cost.cpp.o.d"
  "libcra_hw.a"
  "libcra_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
