file(REMOVE_RECURSE
  "libcra_sim.a"
)
