file(REMOVE_RECURSE
  "CMakeFiles/cra_sim.dir/scheduler.cpp.o"
  "CMakeFiles/cra_sim.dir/scheduler.cpp.o.d"
  "libcra_sim.a"
  "libcra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
