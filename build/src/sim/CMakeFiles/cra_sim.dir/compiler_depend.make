# Empty compiler generated dependencies file for cra_sim.
# This may be replaced when dependencies are built.
