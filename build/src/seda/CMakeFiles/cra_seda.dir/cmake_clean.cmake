file(REMOVE_RECURSE
  "CMakeFiles/cra_seda.dir/seda.cpp.o"
  "CMakeFiles/cra_seda.dir/seda.cpp.o.d"
  "libcra_seda.a"
  "libcra_seda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_seda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
