# Empty dependencies file for cra_seda.
# This may be replaced when dependencies are built.
