file(REMOVE_RECURSE
  "libcra_seda.a"
)
