file(REMOVE_RECURSE
  "libcra_crypto.a"
)
