file(REMOVE_RECURSE
  "CMakeFiles/cra_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/cra_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/cra_crypto.dir/ct.cpp.o"
  "CMakeFiles/cra_crypto.dir/ct.cpp.o.d"
  "CMakeFiles/cra_crypto.dir/kdf.cpp.o"
  "CMakeFiles/cra_crypto.dir/kdf.cpp.o.d"
  "CMakeFiles/cra_crypto.dir/sha1.cpp.o"
  "CMakeFiles/cra_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/cra_crypto.dir/sha256.cpp.o"
  "CMakeFiles/cra_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/cra_crypto.dir/x25519.cpp.o"
  "CMakeFiles/cra_crypto.dir/x25519.cpp.o.d"
  "libcra_crypto.a"
  "libcra_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
