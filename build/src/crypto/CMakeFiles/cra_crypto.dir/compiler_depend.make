# Empty compiler generated dependencies file for cra_crypto.
# This may be replaced when dependencies are built.
