file(REMOVE_RECURSE
  "libcra_power.a"
)
