file(REMOVE_RECURSE
  "CMakeFiles/cra_power.dir/power.cpp.o"
  "CMakeFiles/cra_power.dir/power.cpp.o.d"
  "libcra_power.a"
  "libcra_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cra_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
