# Empty dependencies file for cra_power.
# This may be replaced when dependencies are built.
