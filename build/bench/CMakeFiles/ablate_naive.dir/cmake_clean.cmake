file(REMOVE_RECURSE
  "CMakeFiles/ablate_naive.dir/ablate_naive.cpp.o"
  "CMakeFiles/ablate_naive.dir/ablate_naive.cpp.o.d"
  "ablate_naive"
  "ablate_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
