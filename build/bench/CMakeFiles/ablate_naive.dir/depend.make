# Empty dependencies file for ablate_naive.
# This may be replaced when dependencies are built.
