# Empty dependencies file for ablate_toctou.
# This may be replaced when dependencies are built.
