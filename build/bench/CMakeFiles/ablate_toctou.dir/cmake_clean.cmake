file(REMOVE_RECURSE
  "CMakeFiles/ablate_toctou.dir/ablate_toctou.cpp.o"
  "CMakeFiles/ablate_toctou.dir/ablate_toctou.cpp.o.d"
  "ablate_toctou"
  "ablate_toctou.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_toctou.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
