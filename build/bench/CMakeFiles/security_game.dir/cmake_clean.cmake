file(REMOVE_RECURSE
  "CMakeFiles/security_game.dir/security_game.cpp.o"
  "CMakeFiles/security_game.dir/security_game.cpp.o.d"
  "security_game"
  "security_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
