# Empty dependencies file for security_game.
# This may be replaced when dependencies are built.
