# Empty compiler generated dependencies file for fig3a_runtime.
# This may be replaced when dependencies are built.
