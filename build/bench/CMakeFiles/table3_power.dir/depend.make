# Empty dependencies file for table3_power.
# This may be replaced when dependencies are built.
