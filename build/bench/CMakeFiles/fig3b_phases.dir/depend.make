# Empty dependencies file for fig3b_phases.
# This may be replaced when dependencies are built.
