file(REMOVE_RECURSE
  "CMakeFiles/fig3b_phases.dir/fig3b_phases.cpp.o"
  "CMakeFiles/fig3b_phases.dir/fig3b_phases.cpp.o.d"
  "fig3b_phases"
  "fig3b_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
