file(REMOVE_RECURSE
  "CMakeFiles/ablate_contention.dir/ablate_contention.cpp.o"
  "CMakeFiles/ablate_contention.dir/ablate_contention.cpp.o.d"
  "ablate_contention"
  "ablate_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
