# Empty dependencies file for ablate_capture.
# This may be replaced when dependencies are built.
