file(REMOVE_RECURSE
  "CMakeFiles/ablate_capture.dir/ablate_capture.cpp.o"
  "CMakeFiles/ablate_capture.dir/ablate_capture.cpp.o.d"
  "ablate_capture"
  "ablate_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
