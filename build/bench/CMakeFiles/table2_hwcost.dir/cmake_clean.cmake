file(REMOVE_RECURSE
  "CMakeFiles/table2_hwcost.dir/table2_hwcost.cpp.o"
  "CMakeFiles/table2_hwcost.dir/table2_hwcost.cpp.o.d"
  "table2_hwcost"
  "table2_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
