# Empty compiler generated dependencies file for table2_hwcost.
# This may be replaced when dependencies are built.
