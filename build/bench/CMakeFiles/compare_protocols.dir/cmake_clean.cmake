file(REMOVE_RECURSE
  "CMakeFiles/compare_protocols.dir/compare_protocols.cpp.o"
  "CMakeFiles/compare_protocols.dir/compare_protocols.cpp.o.d"
  "compare_protocols"
  "compare_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
