# Empty compiler generated dependencies file for compare_protocols.
# This may be replaced when dependencies are built.
