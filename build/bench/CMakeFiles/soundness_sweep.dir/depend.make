# Empty dependencies file for soundness_sweep.
# This may be replaced when dependencies are built.
