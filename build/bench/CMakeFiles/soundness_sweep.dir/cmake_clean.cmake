file(REMOVE_RECURSE
  "CMakeFiles/soundness_sweep.dir/soundness_sweep.cpp.o"
  "CMakeFiles/soundness_sweep.dir/soundness_sweep.cpp.o.d"
  "soundness_sweep"
  "soundness_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soundness_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
