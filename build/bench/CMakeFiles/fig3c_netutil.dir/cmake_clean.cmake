file(REMOVE_RECURSE
  "CMakeFiles/fig3c_netutil.dir/fig3c_netutil.cpp.o"
  "CMakeFiles/fig3c_netutil.dir/fig3c_netutil.cpp.o.d"
  "fig3c_netutil"
  "fig3c_netutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_netutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
