# Empty compiler generated dependencies file for fig3c_netutil.
# This may be replaced when dependencies are built.
