# Empty compiler generated dependencies file for ablate_heterogeneous.
# This may be replaced when dependencies are built.
