file(REMOVE_RECURSE
  "CMakeFiles/ablate_heterogeneous.dir/ablate_heterogeneous.cpp.o"
  "CMakeFiles/ablate_heterogeneous.dir/ablate_heterogeneous.cpp.o.d"
  "ablate_heterogeneous"
  "ablate_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
