file(REMOVE_RECURSE
  "CMakeFiles/ablate_lossy.dir/ablate_lossy.cpp.o"
  "CMakeFiles/ablate_lossy.dir/ablate_lossy.cpp.o.d"
  "ablate_lossy"
  "ablate_lossy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_lossy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
