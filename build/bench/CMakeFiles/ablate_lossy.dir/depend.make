# Empty dependencies file for ablate_lossy.
# This may be replaced when dependencies are built.
