file(REMOVE_RECURSE
  "CMakeFiles/ablate_arity.dir/ablate_arity.cpp.o"
  "CMakeFiles/ablate_arity.dir/ablate_arity.cpp.o.d"
  "ablate_arity"
  "ablate_arity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_arity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
