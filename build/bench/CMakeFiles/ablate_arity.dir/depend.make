# Empty dependencies file for ablate_arity.
# This may be replaced when dependencies are built.
