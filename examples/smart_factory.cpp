// Smart factory: periodic swarm attestation with device-level fidelity.
//
// The paper's motivating setting: a factory floor of networked
// controllers that must be continuously attested. This example runs a
// mixed-fidelity deployment — eight production cells are full machine
// models (device::Device VMs with a real MPU, secure clock, and attest
// TCB executing over actual PMEM bytes) embedded in a 120-node swarm of
// synthetic line sensors — and drives a monitoring loop:
//
//   * attestation every 2 simulated seconds, in kIdentify QoA mode so
//     the operator learns *which* cell is compromised;
//   * at round 3 a worm infects cell #4's PMEM (a real byte-level write
//     through the machine's software path);
//   * the monitor pinpoints the infected cell, "dispatches a technician"
//     (re-flashes the expected firmware), and trust recovers.
#include <cstdio>
#include <memory>
#include <vector>

#include "device/device.hpp"
#include "sap/swarm.hpp"

namespace {

constexpr std::uint32_t kSwarmSize = 120;
constexpr std::uint32_t kCells = 8;
constexpr std::uint32_t kPmemSize = 8 * 1024;

std::string cell_firmware(std::uint32_t cell) {
  std::string fw = "PLC firmware v4.2 cell-" + std::to_string(cell) + " ";
  while (fw.size() < 600) fw += "ladder-logic-segment ";
  return fw;
}

}  // namespace

int main() {
  cra::sap::SapConfig config;
  config.pmem_size = kPmemSize;
  config.qoa = cra::sap::QoaMode::kIdentify;

  auto swarm = cra::sap::SapSimulation::balanced(config, kSwarmSize,
                                                 /*seed=*/7);

  // The first kCells device slots are the production cells - real VMs.
  std::vector<std::unique_ptr<cra::device::Device>> cells;
  for (std::uint32_t cell = 1; cell <= kCells; ++cell) {
    cra::device::DeviceConfig dcfg;
    dcfg.layout = cra::device::MemoryLayout{256, kPmemSize, 2048, 4096};
    auto vm = std::make_unique<cra::device::Device>(
        cell, dcfg, swarm.verifier().device_key(cell),
        cra::to_bytes("factory-platform-key-" + std::to_string(cell)));
    vm->load_firmware(cra::to_bytes(cell_firmware(cell)));
    vm->provision();
    if (!vm->boot()) {
      std::fprintf(stderr, "cell %u failed secure boot!\n", cell);
      return 1;
    }
    swarm.attach_vm(cell, vm.get());
    cells.push_back(std::move(vm));
  }

  std::printf("smart factory: %u nodes (%u VM-backed cells), depth %u, "
              "QoA = identify\n\n",
              swarm.device_count(), kCells, swarm.tree().max_depth());

  for (int round = 1; round <= 6; ++round) {
    if (round == 3) {
      std::printf(">>> worm infects production cell 4 (PMEM write)\n");
      cells[3]->adv_infect_pmem(128,
                                cra::to_bytes("WORM.PAYLOAD.STAGE2"));
    }

    const cra::sap::RoundReport r = swarm.run_round();
    std::printf("round %d @ t=%.2fs: %s (%u/%u reported, %.0f ms)\n",
                round, r.t_chal.sec(), r.verified ? "all clear" : "ALARM",
                r.responded, r.devices, r.total().ms());

    if (!r.verified) {
      for (auto id : r.identify.bad) {
        std::printf("  infected device: %u%s\n", id,
                    id <= kCells ? " (production cell)" : "");
      }
      for (auto id : r.identify.missing) {
        std::printf("  unresponsive device: %u\n", id);
      }
      // Remediate: re-flash every identified cell with its known-good
      // firmware image (cfg_i from the verifier's VS).
      for (auto id : r.identify.bad) {
        if (id <= kCells) {
          std::printf("  -> technician re-flashes cell %u\n", id);
          cells[id - 1]->memory().load(
              cra::device::Section::kPmem,
              swarm.verifier().expected_content(id));
        }
      }
    }
    swarm.advance_time(cra::sim::Duration::from_sec(2.0));
  }

  std::printf("\nfactory monitoring complete.\n");
  return 0;
}
