// Mobile fleet: attestation under continuous topology churn.
//
// A delivery-drone fleet regroups around its base station between
// missions: connectivity changes every epoch, the base rebuilds the
// spanning tree from the current radio graph, and attestation keeps
// working with zero re-keying — SAP's K_{mi,Vrf} binds a drone to the
// verifier, not to its neighbors (contrast with neighbor-keyed schemes
// where every membership change costs a key-agreement round).
//
// A drone is infected mid-run; the identify-mode monitor names it by its
// stable id even though it occupies a different tree position every
// epoch.
#include <cstdio>
#include <numeric>
#include <vector>

#include "sap/swarm.hpp"

namespace {

constexpr std::uint32_t kDrones = 80;

/// One churn epoch: drones moved, the radio graph changed; derive the
/// new tree (BFS from the base station) and the position mapping.
void regroup(cra::sap::SapSimulation& swarm, cra::Rng& rng) {
  const cra::net::Graph radio = cra::net::random_connected_graph(
      kDrones + 1, /*extra_edges=*/kDrones / 2, rng);
  std::vector<cra::net::NodeId> labels;
  cra::net::Tree tree = radio.bfs_spanning_tree(/*root=*/0, &labels);
  std::vector<cra::net::NodeId> device_at(tree.size());
  for (cra::net::NodeId id = 0; id < labels.size(); ++id) {
    device_at[labels[id]] = id;
  }
  swarm.rebuild_topology(std::move(tree), std::move(device_at));
}

}  // namespace

int main() {
  cra::sap::SapConfig config;
  config.pmem_size = 8 * 1024;
  config.qoa = cra::sap::QoaMode::kIdentify;

  auto swarm = cra::sap::SapSimulation::balanced(config, kDrones,
                                                 /*seed=*/42);
  cra::Rng rng(42);

  std::printf("mobile fleet: %u drones + base station, identify QoA, "
              "churn every epoch\n\n", kDrones);

  for (int epoch = 1; epoch <= 6; ++epoch) {
    regroup(swarm, rng);
    if (epoch == 3) {
      std::printf(">>> drone 57 compromised over the air\n");
      swarm.compromise_device(57);
    }
    if (epoch == 5) {
      std::printf(">>> drone 57 re-flashed at the base\n");
      swarm.restore_device(57);
    }

    const cra::sap::RoundReport r = swarm.run_round();
    std::printf("epoch %d: depth %u, drone 57 at position %u -> %s",
                epoch, swarm.tree().max_depth(), swarm.position_of(57),
                r.verified ? "fleet healthy\n" : "ALARM:");
    if (!r.verified) {
      for (auto id : r.identify.bad) std::printf(" infected drone %u", id);
      for (auto id : r.identify.missing) std::printf(" missing drone %u", id);
      std::printf("\n");
    }
    swarm.advance_time(cra::sim::Duration::from_sec(5.0));
  }

  std::printf("\nno re-keying happened at any epoch: the verifier's "
              "expected result depends only\non (keys, VS, chal), never "
              "on the topology.\n");
  return 0;
}
