// DoS mitigation via authenticated requests (paper §VIII).
//
// A network-level attacker injects a forged challenge that reaches
// device 1 just before the verifier's real one. Without request
// authentication the device believes the forgery: it schedules a full
// PMEM measurement against a bogus tick (wasting ~0.5 s of CPU and the
// matching energy), forwards the forgery to its whole subtree (each
// member wastes a measurement too), and then ignores the real challenge
// as a duplicate — so the legitimate round fails. With authentication
// the forgery dies at device 1's MAC check and the real round runs
// untouched.
#include <cstdio>

#include "sap/analysis.hpp"
#include "sap/swarm.hpp"

namespace {

constexpr std::uint32_t kDevices = 62;

struct Outcome {
  bool verified = false;
  std::uint32_t responded = 0;
};

Outcome run_scenario(bool authenticate) {
  cra::sap::SapConfig config;
  config.pmem_size = 16 * 1024;
  config.authenticate_requests = authenticate;
  config.qoa = cra::sap::QoaMode::kCount;
  auto swarm = cra::sap::SapSimulation::balanced(config, kDevices,
                                                 /*seed=*/11);

  // The attacker predicts a plausible near-future tick (it can see the
  // verifier's traffic pattern) and fires a forged chal at device 1,
  // racing ahead of the real request.
  const std::uint32_t forged_tick =
      swarm.clock().time_to_tick_ceil(
          swarm.scheduler().now() +
          cra::sap::request_lead_time(config, swarm.tree().max_depth())) +
      2;
  const cra::Bytes forged = cra::sap::encode_chal(
      forged_tick, /*auth_key=*/{}, config.chal_size());
  swarm.network().send(/*src=*/0, /*dst=*/1, cra::sap::kChalMsg, forged);

  const cra::sap::RoundReport r = swarm.run_round();
  return {r.verified, r.responded};
}

}  // namespace

int main() {
  std::printf("DoS mitigation demo: %u devices; attacker races a forged "
              "chal to device 1\n\n", kDevices);

  const Outcome plain = run_scenario(/*authenticate=*/false);
  std::printf("without request authentication:\n");
  std::printf("  round verified: %s, devices aggregated: %u/%u\n",
              plain.verified ? "yes" : "NO", plain.responded, kDevices);
  std::printf("  -> device 1's subtree (31 devices) burned a full PMEM "
              "measurement on the bogus\n     tick; their tokens cannot "
              "match the verifier's expectation for the real chal\n\n");

  const Outcome authed = run_scenario(/*authenticate=*/true);
  std::printf("with authenticated requests (group key K_req):\n");
  std::printf("  round verified: %s, devices aggregated: %u/%u\n",
              authed.verified ? "yes" : "NO", authed.responded, kDevices);
  std::printf("  -> the forgery died at device 1's MAC check; nobody "
              "wasted a measurement\n");

  return plain.verified || !authed.verified;  // exit 0 iff demo behaved
}
