// Lossy networks (paper §VIII): soundness degradation under packet loss
// and what retransmission buys back.
//
// TCA-Model assumes a reliable network; a real 802.15.4 deployment is
// not. This example sweeps the link loss rate and measures, over many
// rounds, how often a perfectly healthy swarm still fails verification
// (a false alarm) — first with the plain protocol, then with the repoll
// extension enabled.
#include <cstdio>

#include "sap/swarm.hpp"

namespace {

constexpr std::uint32_t kDevices = 126;
constexpr int kRounds = 25;

double false_alarm_rate(double loss, bool retransmit, std::uint64_t seed) {
  cra::sap::SapConfig config;
  config.pmem_size = 8 * 1024;
  config.retransmit = retransmit;
  config.max_retries = 3;
  auto swarm = cra::sap::SapSimulation::balanced(config, kDevices, seed);
  swarm.network().set_loss_rate(loss, seed);

  int failures = 0;
  for (int round = 0; round < kRounds; ++round) {
    if (!swarm.run_round().verified) ++failures;
    swarm.advance_time(cra::sim::Duration::from_ms(200));
  }
  return static_cast<double>(failures) / kRounds;
}

}  // namespace

int main() {
  std::printf("lossy swarm: %u healthy devices, %d rounds per point\n",
              kDevices, kRounds);
  std::printf("(every verification failure below is a FALSE alarm)\n\n");
  std::printf("%-12s | %-18s | %-18s\n", "loss rate", "plain false-alarm",
              "with retransmit");
  std::printf("-------------|--------------------|------------------\n");
  for (double loss : {0.0, 0.001, 0.005, 0.01, 0.02, 0.05}) {
    const double plain = false_alarm_rate(loss, false, /*seed=*/31);
    const double retry = false_alarm_rate(loss, true, /*seed=*/31);
    std::printf("%-12.3f | %-18.2f | %-18.2f\n", loss, plain, retry);
  }
  std::printf("\nretransmission recovers report-path losses; chal-path "
              "losses still darken a\nsubtree for the round (the paper "
              "leaves lossy-network soundness relaxation open).\n");
  return 0;
}
