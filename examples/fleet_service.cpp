// Fleet service: the operational monitoring loop with QoA escalation.
//
// Steady state runs cheap binary rounds (40 bytes/device). When a round
// fails, the service escalates to identify mode, pays the localization
// bandwidth exactly once per incident, names the devices, and
// de-escalates after the fleet stays clean. This is the §VIII QoA
// trade-off turned into policy.
#include <cstdio>

#include "sap/service.hpp"

int main() {
  using namespace cra;

  sap::SapConfig config;
  config.pmem_size = 8 * 1024;
  auto swarm = sap::SapSimulation::balanced(config, 254, /*seed=*/8);

  sap::ServicePolicy policy;
  policy.period = sim::Duration::from_sec(2.0);
  sap::AttestationService service(swarm, policy);

  std::printf("fleet service: %u devices, binary steady-state, "
              "identify on alarm\n\n", swarm.device_count());

  for (int round = 1; round <= 9; ++round) {
    if (round == 3) {
      std::printf(">>> devices 101 and 202 infected\n");
      swarm.compromise_device(101);
      swarm.compromise_device(202);
    }
    const sap::ServiceEvent e = service.run_once();
    std::printf("round %u @ %5.1fs  mode=%-8s  %-12s", e.round, e.at.sec(),
                sap::qoa_name(e.mode),
                sap::service_event_name(e.kind));
    for (auto id : e.bad) std::printf(" bad=%u", id);
    for (auto id : e.missing) std::printf(" missing=%u", id);
    std::printf("\n");

    if (e.kind == sap::ServiceEvent::Kind::kLocalized) {
      for (auto id : e.bad) {
        std::printf("        -> re-flashing device %u\n", id);
        swarm.restore_device(id);
      }
    }
  }

  std::printf("\nflag history: device 101 flagged %u time(s), device 202 "
              "%u time(s), device 7 %u\n",
              service.flag_count(101), service.flag_count(202),
              service.flag_count(7));
  return service.escalated() ? 1 : 0;
}
