// Quickstart: attest a 1,000-device swarm with SAP.
//
// Demonstrates the whole public API surface in ~60 lines:
//   1. configure the protocol (paper defaults: SHA-1, 50 KB PMEM,
//      24 MHz devices, 250 kbit/s links),
//   2. deploy a balanced binary tree of synthetic devices,
//   3. run an attestation round and inspect the phase-resolved report,
//   4. infect one device and watch verification fail,
//   5. restore it and watch trust return.
#include <cstdio>

#include "sap/analysis.hpp"
#include "sap/swarm.hpp"

namespace {

void print_report(const char* label, const cra::sap::RoundReport& r) {
  std::printf("%-22s verified=%s  chal_tick=%u\n", label,
              r.verified ? "YES" : "NO ", r.chal_tick);
  std::printf("  phases: inbound %.2f ms | slack %.2f ms | "
              "measurement %.1f ms | outbound %.2f ms\n",
              r.inbound().ms(), r.slack().ms(), r.measurement().ms(),
              r.outbound().ms());
  std::printf("  total %.3f s (T_CA %.3f s), network %llu bytes in %llu "
              "messages\n\n",
              r.total().sec(), r.t_ca().sec(),
              static_cast<unsigned long long>(r.u_ca_bytes),
              static_cast<unsigned long long>(r.messages));
}

}  // namespace

int main() {
  constexpr std::uint32_t kDevices = 1000;

  cra::sap::SapConfig config;  // paper-scale defaults
  auto swarm = cra::sap::SapSimulation::balanced(config, kDevices,
                                                 /*seed=*/2024);

  std::printf("SAP quickstart: %u devices, tree depth %u, l = %zu bits\n",
              swarm.device_count(), swarm.tree().max_depth(),
              8 * config.token_size());
  std::printf("analytic T_att = %.3f s, predicted round = %.3f s\n\n",
              cra::sap::attest_time(config).sec(),
              cra::sap::predicted_total(config,
                                        swarm.tree().max_depth()).sec());

  // 1. A healthy round.
  print_report("healthy swarm:", swarm.run_round());

  // 2. Malware lands on device 613.
  swarm.compromise_device(613);
  swarm.advance_time(cra::sim::Duration::from_ms(100));
  print_report("device 613 infected:", swarm.run_round());

  // 3. The device is re-flashed with its expected firmware.
  swarm.restore_device(613);
  swarm.advance_time(cra::sim::Duration::from_ms(100));
  print_report("after re-flash:", swarm.run_round());

  return 0;
}
