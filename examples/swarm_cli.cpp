// swarm_cli — drive SAP attestation rounds from the command line.
//
//   swarm_cli [options]
//     --devices N        swarm size                      (default 1000)
//     --arity K          tree arity                      (default 2)
//     --topology T       balanced | line | random        (default balanced)
//     --qoa M            binary | count | identify       (default binary)
//     --alg A            sha1 | sha256                   (default sha1)
//     --rounds R         attestation rounds to run       (default 3)
//     --period-ms P      idle time between rounds        (default 500)
//     --loss P           link loss probability           (default 0)
//     --retransmit       enable the repoll extension
//     --auth             authenticate requests (DoS ext.)
//     --compromise LIST  comma-separated device ids to infect
//     --seed S           deterministic seed              (default 1)
//     --json             emit one JSON object per round instead of rows
//
// Exit status: 0 if every round's verdict matched the injected ground
// truth, 1 otherwise (usable in scripts/CI).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sap/report_json.hpp"
#include "sap/swarm.hpp"

namespace {

using namespace cra;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--devices N] [--arity K] [--topology "
               "balanced|line|random]\n  [--qoa binary|count|identify] "
               "[--alg sha1|sha256] [--rounds R]\n  [--period-ms P] "
               "[--loss P] [--retransmit] [--auth]\n  [--compromise "
               "id,id,...] [--seed S]\n",
               argv0);
  std::exit(2);
}

std::vector<net::NodeId> parse_id_list(const std::string& s) {
  std::vector<net::NodeId> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? std::string::npos
                                                 : comma - pos);
    out.push_back(static_cast<net::NodeId>(std::strtoul(tok.c_str(),
                                                        nullptr, 10)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t devices = 1000;
  std::uint32_t arity = 2;
  std::string topology = "balanced";
  std::string qoa = "binary";
  std::string alg = "sha1";
  int rounds = 3;
  long period_ms = 500;
  double loss = 0.0;
  bool retransmit = false;
  bool auth = false;
  std::vector<net::NodeId> compromise;
  std::uint64_t seed = 1;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--devices") devices = static_cast<std::uint32_t>(
        std::strtoul(next(), nullptr, 10));
    else if (a == "--arity") arity = static_cast<std::uint32_t>(
        std::strtoul(next(), nullptr, 10));
    else if (a == "--topology") topology = next();
    else if (a == "--qoa") qoa = next();
    else if (a == "--alg") alg = next();
    else if (a == "--rounds") rounds = std::atoi(next());
    else if (a == "--period-ms") period_ms = std::atol(next());
    else if (a == "--loss") loss = std::atof(next());
    else if (a == "--retransmit") retransmit = true;
    else if (a == "--auth") auth = true;
    else if (a == "--compromise") compromise = parse_id_list(next());
    else if (a == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--json") json = true;
    else usage(argv[0]);
  }
  if (devices == 0 || arity == 0 || rounds <= 0) usage(argv[0]);

  sap::SapConfig config;
  config.tree_arity = arity;
  config.alg = alg == "sha256" ? crypto::HashAlg::kSha256
                               : crypto::HashAlg::kSha1;
  config.qoa = qoa == "count"      ? sap::QoaMode::kCount
               : qoa == "identify" ? sap::QoaMode::kIdentify
                                   : sap::QoaMode::kBinary;
  config.authenticate_requests = auth;
  config.retransmit = retransmit;

  Rng topo_rng(seed);
  net::Tree tree = topology == "line"
                       ? net::line_tree(devices)
                   : topology == "random"
                       ? net::random_tree(devices, arity + 1, topo_rng)
                       : net::balanced_kary_tree(devices, arity);

  sap::SapSimulation swarm(config, std::move(tree), seed);
  if (loss > 0) swarm.network().set_loss_rate(loss, seed);
  for (net::NodeId id : compromise) {
    if (id == 0 || id > devices) {
      std::fprintf(stderr, "bad --compromise id %u\n", id);
      return 2;
    }
    swarm.compromise_device(id);
  }

  if (!json) {
    std::printf("# swarm_cli: N=%u arity=%u topology=%s qoa=%s alg=%s "
                "loss=%.3f%s%s seed=%llu\n",
                devices, arity, topology.c_str(), qoa.c_str(), alg.c_str(),
                loss, retransmit ? " retransmit" : "",
                auth ? " auth" : "",
                static_cast<unsigned long long>(seed));
    std::printf("# depth=%u  T_att=%.3fs\n", swarm.tree().max_depth(),
                swarm.max_attest_time().sec());
    std::printf("round  verdict  total_s  t_ca_s  bytes      responded\n");
  }

  const bool expect_verified = compromise.empty() && loss == 0.0;
  bool all_as_expected = true;
  for (int r = 1; r <= rounds; ++r) {
    const sap::RoundReport report = swarm.run_round();
    if (json) {
      std::printf("%s\n", sap::report_to_json(report).c_str());
      if (expect_verified && !report.verified) all_as_expected = false;
      if (!compromise.empty() && report.verified) all_as_expected = false;
      swarm.advance_time(sim::Duration::from_ms(period_ms));
      continue;
    }
    std::printf("%-6d %-8s %-8.3f %-7.3f %-10llu %u/%u\n", r,
                report.verified ? "PASS" : "FAIL", report.total().sec(),
                report.t_ca().sec(),
                static_cast<unsigned long long>(report.u_ca_bytes),
                report.responded, report.devices);
    if (!report.identify.bad.empty()) {
      std::printf("       infected:");
      for (auto id : report.identify.bad) std::printf(" %u", id);
      std::printf("\n");
    }
    if (!report.identify.missing.empty()) {
      std::printf("       missing:");
      for (auto id : report.identify.missing) std::printf(" %u", id);
      std::printf("\n");
    }
    if (expect_verified && !report.verified) all_as_expected = false;
    if (!compromise.empty() && report.verified) all_as_expected = false;
    swarm.advance_time(sim::Duration::from_ms(period_ms));
  }
  return all_as_expected ? 0 : 1;
}
