// Bare metal: write firmware in assembly, run it on the TCA machine
// model, and attest it — the full device substrate in one tour.
//
// The firmware is a little sensor loop: it samples a memory-mapped GPIO
// cell, keeps a running sum in DMEM, and every 8 samples requests
// attestation through the ROM trampoline ABI (chal mailbox + call).
// We then play the attacker: patch the firmware's accumulator logic the
// way real malware would, and watch the next attestation expose it.
#include <cstdio>
#include <string>

#include "crypto/hmac.hpp"
#include "device/assembler.hpp"
#include "device/attest_asm.hpp"
#include "device/device.hpp"
#include "device/disasm.hpp"

using namespace cra;
using namespace cra::device;

int main() {
  // A device with the interpreted HMAC-SHA1 TCB: the attestation below
  // executes ~300k real instructions inside r4, under the MPU.
  DeviceConfig cfg = interpreted_attest_config(/*pmem_size=*/4 * 1024);
  const Bytes key(20, 0xA7);
  Device dev(1, cfg, key, to_bytes("platform-fuse-secret!"));

  const auto mb = dev.mailboxes();
  const Addr gpio = cfg.layout.dmem_base() + 0x80;   // "sensor" register
  const Addr accum = cfg.layout.dmem_base() + 0x84;  // running sum

  const std::string firmware_src = R"(
  ; --- sensor loop firmware v1.0 ---
  start:
    ldi r1, 0              ; sample counter
    ldi r2, 0              ; running sum
  loop:
    ldw r3, r10, 0         ; read the sensor (r10 = GPIO, set by boot)
    add r2, r2, r3         ; accumulate
    stw r2, r11, 0         ; publish to DMEM (r11 = accum)
    addi r1, r1, 1
    ldi r4, 8
    bne r1, r4, loop
    halt                   ; hand back to the host harness
  )";
  Program fw = assemble(firmware_src, cfg.layout.pmem_base());
  dev.load_firmware(fw.image);
  install_interpreted_attest(dev);  // HMAC-SHA1 as machine code in r4
  if (!dev.boot()) return 1;

  std::printf("firmware disassembly (first 8 words of PMEM):\n%s\n",
              dump_range(dev.memory(), cfg.layout.pmem_base(), 8).c_str());

  // Run the sensor loop: plant a sensor reading, point r10/r11 at the
  // MMIO cells, execute.
  dev.memory().write32(gpio, 5);
  dev.cpu().set_pc(cfg.layout.pmem_base());
  dev.cpu().set_reg(10, gpio);
  dev.cpu().set_reg(11, accum);
  dev.cpu().run(10'000);
  std::printf("sensor loop ran: 8 samples of 5 -> accumulator = %u "
              "(cycles: %llu)\n\n",
              dev.memory().read32(accum),
              static_cast<unsigned long long>(dev.cpu().cycles()));

  // Attest (interpreted HMAC-SHA1 over all of PMEM). The verifier's VS
  // holds cfg_i = the PMEM as provisioned — capture it now, before any
  // attack.
  const Bytes cfg_pmem = dev.expected_pmem();
  auto attest_once = [&](std::uint32_t chal) {
    dev.sync_clock(dev.clock().tick_to_time(chal));
    const std::uint64_t cycles = dev.invoke_attest(chal);
    std::printf("attest(chal=%u): token %s... (%llu TCB cycles)\n", chal,
                to_hex(BytesView(dev.read_token().data(), 8)).c_str(),
                static_cast<unsigned long long>(cycles));
    Bytes msg = cfg_pmem;
    append_u32le(msg, chal);
    const Bytes expected = crypto::hmac(crypto::HashAlg::kSha1, key, msg);
    return dev.read_token() == expected;
  };

  std::printf("clean firmware:   %s\n",
              attest_once(3) ? "token matches the verifier's expectation"
                             : "MISMATCH");

  // The attack: malware rewrites `add r2, r2, r3` into `sub r2, r2, r3`
  // — a one-word logic bomb in the accumulation path.
  const Addr target = fw.labels.at("loop") + 4;
  dev.adv_infect_pmem(target - cfg.layout.pmem_base(), [] {
    Bytes b;
    append_u32le(b, encode_r(Opcode::kSub, 2, 2, 3));
    return b;
  }());
  std::printf("\nmalware patches one instruction at 0x%x:\n  %s\n", target,
              disassemble(dev.memory().read32(target)).c_str());

  const bool still_clean = attest_once(7);
  std::printf("patched firmware: %s\n",
              still_clean
                  ? "UNDETECTED (bug!)"
                  : "token diverges -> the verifier flags this device");
  return still_clean ? 1 : 0;
}
