#include "crypto/tally.hpp"

namespace cra::crypto::detail {

thread_local std::uint64_t tls_compression_calls = 0;

}  // namespace cra::crypto::detail
