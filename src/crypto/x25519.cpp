#include "crypto/x25519.hpp"

#include <stdexcept>

namespace cra::crypto {
namespace {

// Field arithmetic modulo p = 2^255 - 19, radix 2^51 (five limbs).
using u64 = std::uint64_t;
__extension__ typedef unsigned __int128 u128;

constexpr u64 kMask51 = (u64{1} << 51) - 1;

struct Fe {
  u64 v[5];
};

Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe out;
  for (int i = 0; i < 5; ++i) out.v[i] = a.v[i] + b.v[i];
  return out;
}

/// a - b, with a bias of 2p added so limbs stay non-negative.
Fe fe_sub(const Fe& a, const Fe& b) {
  // 2p in radix-51: (2^255-19)*2 limbs.
  static constexpr u64 two_p0 = 0xfffffffffffda;
  static constexpr u64 two_p = 0xffffffffffffe;
  Fe out;
  out.v[0] = a.v[0] + two_p0 - b.v[0];
  out.v[1] = a.v[1] + two_p - b.v[1];
  out.v[2] = a.v[2] + two_p - b.v[2];
  out.v[3] = a.v[3] + two_p - b.v[3];
  out.v[4] = a.v[4] + two_p - b.v[4];
  return out;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  const u128 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
             a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3],
            b4 = b.v[4];
  const u64 b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19,
            b4_19 = b4 * 19;

  u128 t0 = a0 * b0 + a1 * b4_19 + a2 * b3_19 + a3 * b2_19 + a4 * b1_19;
  u128 t1 = a0 * b1 + a1 * b0 + a2 * b4_19 + a3 * b3_19 + a4 * b2_19;
  u128 t2 = a0 * b2 + a1 * b1 + a2 * b0 + a3 * b4_19 + a4 * b3_19;
  u128 t3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + a4 * b4_19;
  u128 t4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

  Fe out;
  u64 carry;
  out.v[0] = static_cast<u64>(t0) & kMask51;
  carry = static_cast<u64>(t0 >> 51);
  t1 += carry;
  out.v[1] = static_cast<u64>(t1) & kMask51;
  carry = static_cast<u64>(t1 >> 51);
  t2 += carry;
  out.v[2] = static_cast<u64>(t2) & kMask51;
  carry = static_cast<u64>(t2 >> 51);
  t3 += carry;
  out.v[3] = static_cast<u64>(t3) & kMask51;
  carry = static_cast<u64>(t3 >> 51);
  t4 += carry;
  out.v[4] = static_cast<u64>(t4) & kMask51;
  carry = static_cast<u64>(t4 >> 51);
  out.v[0] += carry * 19;
  carry = out.v[0] >> 51;
  out.v[0] &= kMask51;
  out.v[1] += carry;
  return out;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, u64 s) {
  u128 t0 = static_cast<u128>(a.v[0]) * s;
  u128 t1 = static_cast<u128>(a.v[1]) * s;
  u128 t2 = static_cast<u128>(a.v[2]) * s;
  u128 t3 = static_cast<u128>(a.v[3]) * s;
  u128 t4 = static_cast<u128>(a.v[4]) * s;
  Fe out;
  u64 carry;
  out.v[0] = static_cast<u64>(t0) & kMask51;
  carry = static_cast<u64>(t0 >> 51);
  t1 += carry;
  out.v[1] = static_cast<u64>(t1) & kMask51;
  carry = static_cast<u64>(t1 >> 51);
  t2 += carry;
  out.v[2] = static_cast<u64>(t2) & kMask51;
  carry = static_cast<u64>(t2 >> 51);
  t3 += carry;
  out.v[3] = static_cast<u64>(t3) & kMask51;
  carry = static_cast<u64>(t3 >> 51);
  t4 += carry;
  out.v[4] = static_cast<u64>(t4) & kMask51;
  carry = static_cast<u64>(t4 >> 51);
  out.v[0] += carry * 19;
  return out;
}

/// Constant-time swap of (a, b) when bit == 1.
void fe_cswap(Fe& a, Fe& b, u64 bit) {
  const u64 mask = 0 - bit;  // all-ones when bit == 1
  for (int i = 0; i < 5; ++i) {
    const u64 x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

/// Inversion via Fermat: a^(p-2) mod p, addition-chain from curve25519-donna.
Fe fe_invert(const Fe& z) {
  Fe z2 = fe_sq(z);                       // 2
  Fe z9 = fe_mul(fe_sq(fe_sq(z2)), z);    // 9
  Fe z11 = fe_mul(z9, z2);                // 11
  Fe z2_5_0 = fe_mul(fe_sq(z11), z9);     // 2^5 - 2^0 = 31
  Fe t = fe_sq(z2_5_0);
  for (int i = 1; i < 5; ++i) t = fe_sq(t);
  Fe z2_10_0 = fe_mul(t, z2_5_0);         // 2^10 - 2^0
  t = fe_sq(z2_10_0);
  for (int i = 1; i < 10; ++i) t = fe_sq(t);
  Fe z2_20_0 = fe_mul(t, z2_10_0);        // 2^20 - 2^0
  t = fe_sq(z2_20_0);
  for (int i = 1; i < 20; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_20_0);                 // 2^40 - 2^0
  t = fe_sq(t);
  for (int i = 1; i < 10; ++i) t = fe_sq(t);
  Fe z2_50_0 = fe_mul(t, z2_10_0);        // 2^50 - 2^0
  t = fe_sq(z2_50_0);
  for (int i = 1; i < 50; ++i) t = fe_sq(t);
  Fe z2_100_0 = fe_mul(t, z2_50_0);       // 2^100 - 2^0
  t = fe_sq(z2_100_0);
  for (int i = 1; i < 100; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_100_0);                // 2^200 - 2^0
  t = fe_sq(t);
  for (int i = 1; i < 50; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_50_0);                 // 2^250 - 2^0
  t = fe_sq(t);
  t = fe_sq(t);
  t = fe_sq(t);
  t = fe_sq(t);
  t = fe_sq(t);                           // 2^255 - 2^5
  return fe_mul(t, z11);                  // 2^255 - 21 = p - 2
}

Fe fe_frombytes(const std::uint8_t* s) {
  auto load64 = [&](int off) {
    u64 r = 0;
    for (int i = 7; i >= 0; --i) r = (r << 8) | s[off + i];
    return r;
  };
  Fe out;
  out.v[0] = load64(0) & kMask51;
  out.v[1] = (load64(6) >> 3) & kMask51;
  out.v[2] = (load64(12) >> 6) & kMask51;
  out.v[3] = (load64(19) >> 1) & kMask51;
  out.v[4] = (load64(24) >> 12) & kMask51;  // top bit of byte 31 masked
  return out;
}

void fe_tobytes(std::uint8_t* out, const Fe& in) {
  // Canonical contraction (the curve25519-donna fcontract sequence).
  Fe h = in;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      h.v[i + 1] += h.v[i] >> 51;
      h.v[i] &= kMask51;
    }
    h.v[0] += 19 * (h.v[4] >> 51);
    h.v[4] &= kMask51;
  }
  // Now 0 <= h < 2^255. Add 19 (maps [p, 2^255) onto >= 2^255 + ...).
  h.v[0] += 19;
  for (int i = 0; i < 4; ++i) {
    h.v[i + 1] += h.v[i] >> 51;
    h.v[i] &= kMask51;
  }
  h.v[0] += 19 * (h.v[4] >> 51);
  h.v[4] &= kMask51;
  // Add 2^255 - 19 (as per-limb offsets); the result is offset by 2^255
  // exactly when the original value was >= p, so discarding bit 255
  // yields the canonical representative in both cases.
  h.v[0] += (u64{1} << 51) - 19;
  h.v[1] += (u64{1} << 51) - 1;
  h.v[2] += (u64{1} << 51) - 1;
  h.v[3] += (u64{1} << 51) - 1;
  h.v[4] += (u64{1} << 51) - 1;
  for (int i = 0; i < 4; ++i) {
    h.v[i + 1] += h.v[i] >> 51;
    h.v[i] &= kMask51;
  }
  h.v[4] &= kMask51;  // discard 2^255
  std::uint64_t packed[4];
  packed[0] = h.v[0] | (h.v[1] << 51);
  packed[1] = (h.v[1] >> 13) | (h.v[2] << 38);
  packed[2] = (h.v[2] >> 26) | (h.v[3] << 25);
  packed[3] = (h.v[3] >> 39) | (h.v[4] << 12);
  for (int w = 0; w < 4; ++w) {
    for (int b = 0; b < 8; ++b) {
      out[8 * w + b] = static_cast<std::uint8_t>(packed[w] >> (8 * b));
    }
  }
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& u_bytes) {
  // Clamp the scalar per RFC 7748.
  X25519Key k = scalar;
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;

  const Fe x1 = fe_frombytes(u_bytes.data());
  Fe x2 = fe_one(), z2 = fe_zero();
  Fe x3 = x1, z3 = fe_one();
  u64 swap = 0;

  for (int t = 254; t >= 0; --t) {
    const u64 bit = (k[static_cast<std::size_t>(t) / 8] >>
                     (static_cast<std::size_t>(t) % 8)) & 1;
    swap ^= bit;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = bit;

    const Fe a = fe_add(x2, z2);
    const Fe aa = fe_sq(a);
    const Fe b = fe_sub(x2, z2);
    const Fe bb = fe_sq(b);
    const Fe e = fe_sub(aa, bb);
    const Fe c = fe_add(x3, z3);
    const Fe d = fe_sub(x3, z3);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    const Fe dacb = fe_add(da, cb);
    x3 = fe_sq(dacb);
    const Fe da_cb = fe_sub(da, cb);
    z3 = fe_mul(x1, fe_sq(da_cb));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(e, fe_add(aa, fe_mul_small(e, 121665)));
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  const Fe result = fe_mul(x2, fe_invert(z2));
  X25519Key out;
  fe_tobytes(out.data(), result);
  return out;
}

X25519Key x25519_base(const X25519Key& scalar) {
  X25519Key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

Bytes x25519(BytesView scalar, BytesView u) {
  if (scalar.size() != kX25519KeySize || u.size() != kX25519KeySize) {
    throw std::invalid_argument("x25519: inputs must be 32 bytes");
  }
  X25519Key s, p;
  std::copy(scalar.begin(), scalar.end(), s.begin());
  std::copy(u.begin(), u.end(), p.begin());
  const X25519Key r = x25519(s, p);
  return Bytes(r.begin(), r.end());
}

Bytes x25519_base(BytesView scalar) {
  if (scalar.size() != kX25519KeySize) {
    throw std::invalid_argument("x25519_base: scalar must be 32 bytes");
  }
  X25519Key s;
  std::copy(scalar.begin(), scalar.end(), s.begin());
  const X25519Key r = x25519_base(s);
  return Bytes(r.begin(), r.end());
}

}  // namespace cra::crypto
