// Host-side compression-call tally.
//
// The device timing model charges *simulated* cycles per compression
// call; this tally counts the *host* compression-function invocations
// the crypto substrate actually executes, so the perf-baseline harness
// (bench/perf_baseline) can prove optimisations like the HMAC midstate
// cache save real work — and CI can assert the count never regresses.
//
// The counter is thread-local: reading it is only meaningful for work
// executed on the calling thread. The perf harness runs its counter
// sections single-threaded, which makes the numbers exactly
// reproducible; wall-clock sections may use any thread count.
#pragma once

#include <cstdint>

namespace cra::crypto {

namespace detail {
extern thread_local std::uint64_t tls_compression_calls;
}  // namespace detail

/// Compression-function invocations (SHA-1 + SHA-256 blocks) executed on
/// this thread since the last reset.
inline std::uint64_t compression_calls_executed() noexcept {
  return detail::tls_compression_calls;
}

inline void reset_compression_tally() noexcept {
  detail::tls_compression_calls = 0;
}

}  // namespace cra::crypto
