// Pluggable crypto backends with batch MAC/verify APIs.
//
// The from-scratch scalar SHA-1/SHA-256 path (sha1.cpp / sha256.cpp)
// stays the reference implementation; a Backend bundles it — or an
// accelerated multi-lane engine — behind one interface so hot paths can
// hash many independent messages per instruction stream. The shape is
// modeled on lokinet's `Crypto` abstraction (llarp/crypto/crypto.hpp):
// one virtual interface, concrete backends registered at startup, call
// sites pinned to `active_backend()`.
//
// The verifier's workload is embarrassingly parallel: SAP's
// expected-token computation and SEDA's hop-by-hop report checks are
// thousands of independent HMACs under per-device keys. The batch entry
// points (`hmac_batch`, `verify_tokens_batch`) expose that shape; the
// SIMD backend (backend_simd.cpp, x86-64 only) packs 4 (SSE2) or 8
// (AVX2, runtime-dispatched) message schedules per stream and falls back
// to the scalar path for remainder lanes and odd-length groups.
//
// Invariants every backend must preserve:
//   * Identical digests to the scalar reference for every input.
//   * Identical crypto::tally accounting: one logical compression per
//     lane-message block, regardless of how many lanes share a stream.
//     BENCH_perf.json counters and all metrics exports are therefore
//     byte-identical across backends and thread counts.
//
// Backend selection: the CRA_CRYPTO_BACKEND environment variable
// ("scalar", "simd", or "auto"/unset = best available) is read on first
// use; set_active_backend() overrides it programmatically (benches
// expose it as --crypto-backend).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/mac_cache.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace cra::crypto {

/// One resumed-HMAC job: the digest of `prefix || suffix` under the
/// midstate-cached key held by `mac` (which must be ready()). All jobs
/// of one batch call must share the same HashAlg.
struct MacJob {
  const PrecomputedMac* mac = nullptr;
  BytesView prefix;
  BytesView suffix;
};

/// One token-verification job: recompute the expected MAC and compare it
/// against `expect` in constant time per lane.
struct VerifyJob {
  const PrecomputedMac* mac = nullptr;
  BytesView prefix;
  BytesView suffix;
  BytesView expect;
};

class Backend {
 public:
  virtual ~Backend() = default;

  Backend() = default;
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  virtual const char* name() const noexcept = 0;

  /// Independent message schedules per instruction stream for `alg`
  /// (1 = scalar). Batch callers need no awareness of this — remainder
  /// lanes fall back to scalar inside the backend — but benches report
  /// it and CI asserts the lanes=1 vs lanes=N counters agree.
  virtual std::size_t lanes(HashAlg alg) const noexcept = 0;

  /// One-shot hash batches: out[i] = H(msgs[i]). Lengths may differ
  /// across jobs; backends group compatible lengths internally.
  virtual void sha1_batch(const BytesView* msgs, std::size_t n,
                          Sha1::Digest* out) const = 0;
  virtual void sha256_batch(const BytesView* msgs, std::size_t n,
                            Sha256::Digest* out) const = 0;

  /// Resumed-HMAC batch over midstate-cached keys: out[i] receives
  /// digest_size(alg) bytes. Midstate-cache aware: the two pad-block
  /// compressions stay amortized exactly as in PrecomputedMac::mac_into.
  virtual void hmac_batch(const MacJob* jobs, std::size_t n,
                          MacBuf* out) const = 0;

  /// Batch token verification: ok[i] = 1 iff the recomputed MAC equals
  /// jobs[i].expect (constant-time compare per job). Returns the number
  /// of matches. `ok` may be nullptr when only the count is wanted.
  std::size_t verify_tokens_batch(const VerifyJob* jobs, std::size_t n,
                                  std::uint8_t* ok) const;
};

/// The from-scratch reference backend; always registered.
const Backend& scalar_backend() noexcept;

/// All backends compiled into this binary, scalar first. The SIMD
/// backend appears only on x86-64 builds (SSE2 baseline; 8-lane AVX2
/// engaged by runtime CPU dispatch).
const std::vector<const Backend*>& available_backends();

/// Lookup by name ("scalar", "simd"); nullptr when absent.
const Backend* backend_by_name(std::string_view name) noexcept;

/// Process-wide active backend. First call resolves CRA_CRYPTO_BACKEND
/// ("scalar" | "simd" | "auto"/unset = fastest available; an unknown or
/// unavailable name warns on stderr and falls back to auto).
const Backend& active_backend() noexcept;

/// Force the active backend; returns false (and changes nothing) when
/// `name` does not resolve. "auto" restores best-available selection.
bool set_active_backend(std::string_view name) noexcept;

}  // namespace cra::crypto
