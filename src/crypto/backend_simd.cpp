// The SIMD batch backend: multi-lane SHA over the SSE2/AVX2 kernels.
//
// This TU is portable code (no -m flags): it packs jobs into lanes,
// builds padded block streams, and calls the kernels declared in
// sha_mb.hpp. The AVX2 kernels live in their own -mavx2 TU and are only
// reachable after cpu_supports_avx2() says yes, so no illegal
// instruction can execute on an SSE2-only machine.
//
// Batching strategy: jobs are grouped by padded block count (equal-length
// messages share a group), full groups of `lanes` jobs run through a
// kernel, and every remainder — partial groups, odd lengths, batches
// smaller than the lane width — falls back to the scalar reference path.
// Digests are bit-identical to scalar either way, and the compression
// tally is charged one logical compression per lane-block so
// BENCH_perf.json counters cannot distinguish backends.
#include "crypto/backend.hpp"

#if defined(CRA_HAVE_SHA_MB)

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "crypto/sha_mb.hpp"
#include "crypto/tally.hpp"

namespace cra::crypto {
namespace {

constexpr std::size_t kMaxLanes = 8;
constexpr std::size_t kBlock = 64;

constexpr std::uint32_t kSha1Iv[5] = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                                      0x10325476u, 0xc3d2e1f0u};
constexpr std::uint32_t kSha256Iv[8] = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u,
                                        0xa54ff53au, 0x510e527fu, 0x9b05688cu,
                                        0x1f83d9abu, 0x5be0cd19u};

using KernelFn = void (*)(std::uint32_t*, const std::uint8_t* const*,
                          std::size_t) noexcept;

struct HashDesc {
  std::size_t words;        // chaining-value words (5 or 8)
  std::size_t digest_size;  // bytes
  const std::uint32_t* iv;
  KernelFn kernel;
  std::size_t lanes;
};

/// Blocks the padded tail of a message of `len` bytes occupies when
/// `absorbed` bytes (0 or one pad block) were already hashed.
std::size_t tail_blocks(std::size_t absorbed, std::size_t len) noexcept {
  return static_cast<std::size_t>((absorbed + len + 9 + kBlock - 1) / kBlock) -
         absorbed / kBlock;
}

/// Serialize one lane's padded stream: message || 0x80 || zeros ||
/// 64-bit big-endian bit length of (absorbed + message).
void fill_stream(std::uint8_t* dst, std::size_t stream_len,
                 std::size_t absorbed, BytesView prefix,
                 BytesView suffix) noexcept {
  std::size_t pos = 0;
  if (!prefix.empty()) {
    std::memcpy(dst, prefix.data(), prefix.size());
    pos += prefix.size();
  }
  if (!suffix.empty()) {
    std::memcpy(dst + pos, suffix.data(), suffix.size());
    pos += suffix.size();
  }
  dst[pos] = 0x80;
  std::memset(dst + pos + 1, 0, stream_len - pos - 1);
  const std::uint64_t bit_len =
      (static_cast<std::uint64_t>(absorbed) + pos) * 8;
  for (int i = 0; i < 8; ++i) {
    dst[stream_len - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
}

/// Scatter lane l's chaining words into the word-major kernel layout.
void load_lane_state(std::uint32_t* states, std::size_t lanes, std::size_t l,
                     const std::uint32_t* words, std::size_t nwords) noexcept {
  for (std::size_t w = 0; w < nwords; ++w) states[w * lanes + l] = words[w];
}

/// Big-endian digest of lane l from the word-major state array.
void store_lane_digest(std::uint8_t* out, const std::uint32_t* states,
                       std::size_t lanes, std::size_t l,
                       std::size_t nwords) noexcept {
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::uint32_t v = states[w * lanes + l];
    out[4 * w] = static_cast<std::uint8_t>(v >> 24);
    out[4 * w + 1] = static_cast<std::uint8_t>(v >> 16);
    out[4 * w + 2] = static_cast<std::uint8_t>(v >> 8);
    out[4 * w + 3] = static_cast<std::uint8_t>(v);
  }
}

std::vector<std::uint8_t>& stream_scratch() {
  thread_local std::vector<std::uint8_t> buf;
  return buf;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>& order_scratch() {
  thread_local std::vector<std::pair<std::uint32_t, std::uint32_t>> v;
  return v;
}

/// Stable job order grouped by padded tail length, so equal-length
/// messages become kernel groups. Returns (nblocks, job index) pairs.
template <typename LenOf>
std::vector<std::pair<std::uint32_t, std::uint32_t>>& group_jobs(
    std::size_t n, std::size_t absorbed, const LenOf& len_of) {
  auto& order = order_scratch();
  order.clear();
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    order.emplace_back(
        static_cast<std::uint32_t>(tail_blocks(absorbed, len_of(i))),
        static_cast<std::uint32_t>(i));
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  return order;
}

class SimdBackend final : public Backend {
 public:
  SimdBackend() noexcept {
    std::size_t lanes = 4;
    KernelFn sha1_kernel = &mb::sha1_x4_sse2;
    KernelFn sha256_kernel = &mb::sha256_x4_sse2;
#if defined(CRA_HAVE_SHA_MB_AVX2)
    if (mb::cpu_supports_avx2()) {
      lanes = 8;
      sha1_kernel = &mb::sha1_x8_avx2;
      sha256_kernel = &mb::sha256_x8_avx2;
    }
#endif
    sha1_ = HashDesc{5, Sha1::kDigestSize, kSha1Iv, sha1_kernel, lanes};
    sha256_ = HashDesc{8, Sha256::kDigestSize, kSha256Iv, sha256_kernel,
                       lanes};
  }

  const char* name() const noexcept override { return "simd"; }

  std::size_t lanes(HashAlg alg) const noexcept override {
    return desc(alg).lanes;
  }

  void sha1_batch(const BytesView* msgs, std::size_t n,
                  Sha1::Digest* out) const override {
    hash_batch(sha1_, msgs, n, [&](std::size_t i, const std::uint8_t* d) {
      std::memcpy(out[i].data(), d, Sha1::kDigestSize);
    }, [&](std::size_t i) { out[i] = Sha1::digest(msgs[i]); });
  }

  void sha256_batch(const BytesView* msgs, std::size_t n,
                    Sha256::Digest* out) const override {
    hash_batch(sha256_, msgs, n, [&](std::size_t i, const std::uint8_t* d) {
      std::memcpy(out[i].data(), d, Sha256::kDigestSize);
    }, [&](std::size_t i) { out[i] = Sha256::digest(msgs[i]); });
  }

  void hmac_batch(const MacJob* jobs, std::size_t n,
                  MacBuf* out) const override {
    if (n == 0) return;
    const HashAlg alg = jobs[0].mac->alg();
    const HashDesc& d = desc(alg);
    if (n < d.lanes) {
      for (std::size_t i = 0; i < n; ++i) scalar_one(jobs[i], out[i]);
      return;
    }
    auto& order = group_jobs(n, kBlock, [&](std::size_t i) {
      return jobs[i].prefix.size() + jobs[i].suffix.size();
    });
    std::size_t run = 0;
    while (run < n) {
      std::size_t end = run + 1;
      while (end < n && order[end].first == order[run].first) ++end;
      const std::size_t nblocks = order[run].first;
      while (end - run >= d.lanes) {
        hmac_group(alg, d, jobs, &order[run], nblocks, out);
        run += d.lanes;
      }
      for (; run < end; ++run) {  // remainder lanes: scalar reference
        scalar_one(jobs[order[run].second], out[order[run].second]);
      }
    }
  }

 private:
  const HashDesc& desc(HashAlg alg) const noexcept {
    return alg == HashAlg::kSha1 ? sha1_ : sha256_;
  }

  static void scalar_one(const MacJob& job, MacBuf& out) {
    job.mac->mac_into(job.prefix, job.suffix, out);
  }

  /// One full group of `lanes` resumed-HMAC jobs. order[l].second names
  /// the job in lane l; all lanes share `nblocks` inner tail blocks.
  void hmac_group(HashAlg alg, const HashDesc& d, const MacJob* jobs,
                  const std::pair<std::uint32_t, std::uint32_t>* order,
                  std::size_t nblocks, MacBuf* out) const {
    const std::size_t stream_len = nblocks * kBlock;
    auto& scratch = stream_scratch();
    scratch.resize(d.lanes * (stream_len + kBlock));
    std::uint8_t* inner_streams = scratch.data();
    // The outer stage is always exactly one block: digest || pad.
    std::uint8_t* outer_blocks = scratch.data() + d.lanes * stream_len;

    std::uint32_t states[8 * kMaxLanes];
    const std::uint8_t* blocks[kMaxLanes];
    for (std::size_t l = 0; l < d.lanes; ++l) {
      const MacJob& job = jobs[order[l].second];
      std::uint8_t* stream = inner_streams + l * stream_len;
      fill_stream(stream, stream_len, kBlock, job.prefix, job.suffix);
      blocks[l] = stream;
      load_lane_state(states, d.lanes, l, inner_words(alg, job), d.words);
    }
    d.kernel(states, blocks, nblocks);
    detail::tls_compression_calls += d.lanes * nblocks;

    // Inner digests become the single-block outer messages.
    for (std::size_t l = 0; l < d.lanes; ++l) {
      std::uint8_t digest[32];
      store_lane_digest(digest, states, d.lanes, l, d.words);
      std::uint8_t* block = outer_blocks + l * kBlock;
      fill_stream(block, kBlock, kBlock, BytesView(digest, d.digest_size),
                  {});
      blocks[l] = block;
      load_lane_state(states, d.lanes, l,
                      outer_words(alg, jobs[order[l].second]), d.words);
    }
    d.kernel(states, blocks, 1);
    detail::tls_compression_calls += d.lanes;

    for (std::size_t l = 0; l < d.lanes; ++l) {
      MacBuf& dst = out[order[l].second];
      std::uint8_t digest[32];
      store_lane_digest(digest, states, d.lanes, l, d.words);
      dst.assign(digest, d.digest_size);
    }
  }

  /// One-shot hash batch over the same grouping machinery. `emit`
  /// stores a SIMD-computed digest, `scalar` handles remainder jobs.
  template <typename Emit, typename Scalar>
  void hash_batch(const HashDesc& d, const BytesView* msgs, std::size_t n,
                  const Emit& emit, const Scalar& scalar) const {
    if (n < d.lanes) {
      for (std::size_t i = 0; i < n; ++i) scalar(i);
      return;
    }
    auto& order = group_jobs(n, 0, [&](std::size_t i) {
      return msgs[i].size();
    });
    std::size_t run = 0;
    while (run < n) {
      std::size_t end = run + 1;
      while (end < n && order[end].first == order[run].first) ++end;
      const std::size_t nblocks = order[run].first;
      while (end - run >= d.lanes) {
        hash_group(d, msgs, &order[run], nblocks, emit);
        run += d.lanes;
      }
      for (; run < end; ++run) scalar(order[run].second);
    }
  }

  template <typename Emit>
  void hash_group(const HashDesc& d, const BytesView* msgs,
                  const std::pair<std::uint32_t, std::uint32_t>* order,
                  std::size_t nblocks, const Emit& emit) const {
    const std::size_t stream_len = nblocks * kBlock;
    auto& scratch = stream_scratch();
    scratch.resize(d.lanes * stream_len);

    std::uint32_t states[8 * kMaxLanes];
    const std::uint8_t* blocks[kMaxLanes];
    for (std::size_t l = 0; l < d.lanes; ++l) {
      std::uint8_t* stream = scratch.data() + l * stream_len;
      fill_stream(stream, stream_len, 0, msgs[order[l].second], {});
      blocks[l] = stream;
      load_lane_state(states, d.lanes, l, d.iv, d.words);
    }
    d.kernel(states, blocks, nblocks);
    detail::tls_compression_calls += d.lanes * nblocks;

    for (std::size_t l = 0; l < d.lanes; ++l) {
      std::uint8_t digest[32];
      store_lane_digest(digest, states, d.lanes, l, d.words);
      emit(order[l].second, digest);
    }
  }

  static const std::uint32_t* inner_words(HashAlg alg,
                                          const MacJob& job) noexcept {
    return alg == HashAlg::kSha1 ? job.mac->sha1().inner_midstate().data()
                                 : job.mac->sha256().inner_midstate().data();
  }

  static const std::uint32_t* outer_words(HashAlg alg,
                                          const MacJob& job) noexcept {
    return alg == HashAlg::kSha1 ? job.mac->sha1().outer_midstate().data()
                                 : job.mac->sha256().outer_midstate().data();
  }

  HashDesc sha1_{};
  HashDesc sha256_{};
};

}  // namespace

namespace mb {

bool cpu_supports_avx2() noexcept {
#if defined(CRA_HAVE_SHA_MB_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Backend* simd_backend_or_null() {
  static const SimdBackend backend;
  return &backend;
}

}  // namespace mb
}  // namespace cra::crypto

#endif  // CRA_HAVE_SHA_MB
