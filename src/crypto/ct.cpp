#include "crypto/ct.hpp"

#include <cstring>

namespace cra::crypto {

bool ct_equal(BytesView a, BytesView b) noexcept {
  if (a.size() != b.size()) return false;
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<unsigned>(a[i] ^ b[i]);
  }
  return diff == 0;
}

void secure_wipe(void* p, std::size_t len) noexcept {
  if (p == nullptr || len == 0) return;
  std::memset(p, 0, len);
  // The asm body is empty but declares the pointed-to memory as read and
  // clobbered, so the memset above is an observable effect the optimizer
  // cannot drop even when the buffer's lifetime ends right after.
  __asm__ __volatile__("" : : "r"(p) : "memory");
}

}  // namespace cra::crypto
