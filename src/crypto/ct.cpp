#include "crypto/ct.hpp"

namespace cra::crypto {

bool ct_equal(BytesView a, BytesView b) noexcept {
  if (a.size() != b.size()) return false;
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<unsigned>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace cra::crypto
