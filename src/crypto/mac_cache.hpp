// HMAC midstate caching.
//
// HMAC_K(m) = H((K' ^ opad) || H((K' ^ ipad) || m)). The two pad blocks
// depend only on the key, and both are exactly one compression block, so
// their chaining values can be computed once per key and replayed per
// MAC. A resumed MAC skips two compressions, the key schedule, and the
// pad XORs — for SAP's token-sized messages (a 20-byte token plus an
// 8-byte challenge hashes in one block) that halves the compression
// count and removes every per-MAC allocation.
//
// Verifiers and devices hold one cache per long-lived key (K_{mi,Vrf},
// beat keys, SEDA join keys); only the midstate words are stored
// (20–32 bytes per hash), so a million-device swarm stays cheap.
// Midstates are key-derived secrets: both cache types zeroize themselves
// on destruction via crypto::secure_wipe.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace cra::crypto {

/// Midstate-cached HMAC over hash `H` (Sha1 or Sha256). init() pays the
/// full key schedule once; each mac() resumes the stored chaining
/// values.
template <typename H>
class PrecomputedHmac {
 public:
  static constexpr std::size_t kDigestSize = H::kDigestSize;

  PrecomputedHmac() = default;
  explicit PrecomputedHmac(BytesView key) { init(key); }

  PrecomputedHmac(const PrecomputedHmac&) = default;
  PrecomputedHmac& operator=(const PrecomputedHmac&) = default;

  ~PrecomputedHmac() {
    secure_wipe(inner_);
    secure_wipe(outer_);
  }

  void init(BytesView key) {
    std::array<std::uint8_t, H::kBlockSize> block_key{};
    if (key.size() > H::kBlockSize) {
      const auto d = H::digest(key);
      std::copy(d.begin(), d.end(), block_key.begin());
    } else {
      std::copy(key.begin(), key.end(), block_key.begin());
    }

    std::array<std::uint8_t, H::kBlockSize> pad;
    for (std::size_t i = 0; i < H::kBlockSize; ++i) {
      pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    }
    H inner;
    inner.update(BytesView(pad.data(), pad.size()));
    inner_ = inner.midstate();

    for (std::size_t i = 0; i < H::kBlockSize; ++i) {
      pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
    }
    H outer;
    outer.update(BytesView(pad.data(), pad.size()));
    outer_ = outer.midstate();

    secure_wipe(pad);
    secure_wipe(block_key);
    ready_ = true;
  }

  [[nodiscard]] bool ready() const noexcept { return ready_; }

  /// Zeroize the midstates and return to the not-ready state. A cleared
  /// cache can be re-keyed with init(); using it before that is a bug
  /// (callers gate on ready()).
  void clear() noexcept {
    secure_wipe(inner_);
    secure_wipe(outer_);
    ready_ = false;
  }

  /// MAC of `prefix || suffix`. The two-view form lets SAP stream
  /// PMEM || chal without first concatenating them into a scratch
  /// buffer; pass an empty suffix for the single-message case.
  [[nodiscard]] typename H::Digest mac(BytesView prefix,
                                       BytesView suffix = {}) const noexcept {
    H inner = H::resume(inner_, H::kBlockSize);
    inner.update(prefix);
    inner.update(suffix);
    const auto inner_digest = inner.finalize();

    H outer = H::resume(outer_, H::kBlockSize);
    outer.update(BytesView(inner_digest.data(), inner_digest.size()));
    return outer.finalize();
  }

  /// Compression calls a resumed MAC over `message_len` bytes executes:
  /// the full HMAC cost minus the two cached pad-block compressions.
  static std::uint64_t compression_calls(std::uint64_t message_len) noexcept {
    return Hmac<H>::compression_calls(message_len) - 2;
  }

  /// Raw chaining values after the ipad/opad block — the lane state the
  /// batch backends (crypto/backend.hpp) resume from. Key-derived
  /// secrets: treat like the key itself.
  const typename H::State& inner_midstate() const noexcept { return inner_; }
  const typename H::State& outer_midstate() const noexcept { return outer_; }

 private:
  typename H::State inner_{};
  typename H::State outer_{};
  bool ready_ = false;
};

using PrecomputedHmacSha1 = PrecomputedHmac<Sha1>;
using PrecomputedHmacSha256 = PrecomputedHmac<Sha256>;

/// Runtime-tagged midstate cache matching the hmac(HashAlg, ...)
/// dispatch layer. Holds midstates for the configured algorithm only;
/// the inactive member stays zero. ~52 bytes of state either way.
class PrecomputedMac {
 public:
  PrecomputedMac() = default;
  PrecomputedMac(HashAlg alg, BytesView key) { init(alg, key); }

  void init(HashAlg alg, BytesView key) {
    alg_ = alg;
    if (alg == HashAlg::kSha1) {
      sha1_.init(key);
      sha256_.clear();  // re-key must not retain the previous key's state
    } else {
      sha256_.init(key);
      sha1_.clear();
    }
  }

  [[nodiscard]] bool ready() const noexcept {
    return alg_ == HashAlg::kSha1 ? sha1_.ready() : sha256_.ready();
  }

  [[nodiscard]] HashAlg alg() const noexcept { return alg_; }

  [[nodiscard]] std::size_t digest_size() const noexcept {
    return crypto::digest_size(alg_);
  }

  /// MAC of `prefix || suffix` into a caller-owned buffer; empty suffix
  /// for the single-message case. Allocation-free.
  void mac_into(BytesView prefix, BytesView suffix, MacBuf& out) const {
    if (alg_ == HashAlg::kSha1) {
      const auto d = sha1_.mac(prefix, suffix);
      out.assign(d.data(), d.size());
    } else {
      const auto d = sha256_.mac(prefix, suffix);
      out.assign(d.data(), d.size());
    }
  }

  void mac_into(BytesView data, MacBuf& out) const {
    mac_into(data, BytesView(), out);
  }

  /// Heap-returning convenience for tests and non-hot-loop callers.
  [[nodiscard]] Bytes mac(BytesView prefix, BytesView suffix = {}) const {
    MacBuf buf;
    mac_into(prefix, suffix, buf);
    return Bytes(buf.bytes.begin(), buf.bytes.begin() + buf.len);
  }

  /// The algorithm-specific midstate caches, for the batch backends'
  /// lane packing. Only the member matching alg() holds live midstates.
  [[nodiscard]] const PrecomputedHmacSha1& sha1() const noexcept {
    return sha1_;
  }
  [[nodiscard]] const PrecomputedHmacSha256& sha256() const noexcept {
    return sha256_;
  }

  /// Compression calls a resumed MAC over `message_len` bytes executes.
  [[nodiscard]] static std::uint64_t compression_calls(
      HashAlg alg, std::uint64_t message_len) noexcept {
    return alg == HashAlg::kSha1
               ? PrecomputedHmacSha1::compression_calls(message_len)
               : PrecomputedHmacSha256::compression_calls(message_len);
  }

 private:
  HashAlg alg_ = HashAlg::kSha1;
  PrecomputedHmacSha1 sha1_;
  PrecomputedHmacSha256 sha256_;
};

}  // namespace cra::crypto
