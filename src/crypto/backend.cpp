#include "crypto/backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "crypto/ct.hpp"
#include "crypto/sha_mb.hpp"

namespace cra::crypto {
namespace {

/// The reference implementation: the from-scratch scalar hashes, one
/// message at a time. Every other backend must be digest- and
/// tally-equivalent to this one.
class ScalarBackend final : public Backend {
 public:
  const char* name() const noexcept override { return "scalar"; }

  std::size_t lanes(HashAlg) const noexcept override { return 1; }

  void sha1_batch(const BytesView* msgs, std::size_t n,
                  Sha1::Digest* out) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = Sha1::digest(msgs[i]);
  }

  void sha256_batch(const BytesView* msgs, std::size_t n,
                    Sha256::Digest* out) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = Sha256::digest(msgs[i]);
  }

  void hmac_batch(const MacJob* jobs, std::size_t n,
                  MacBuf* out) const override {
    for (std::size_t i = 0; i < n; ++i) {
      jobs[i].mac->mac_into(jobs[i].prefix, jobs[i].suffix, out[i]);
    }
  }
};

std::atomic<const Backend*> g_active{nullptr};

const Backend* best_available() {
  const auto& all = available_backends();
  return all.back();  // registration order: scalar first, fastest last
}

const Backend* resolve_from_env() {
  const char* env = std::getenv("CRA_CRYPTO_BACKEND");
  if (env == nullptr || *env == '\0' ||
      std::string_view(env) == "auto") {
    return best_available();
  }
  if (const Backend* b = backend_by_name(env)) return b;
  std::fprintf(stderr,
               "CRA_CRYPTO_BACKEND=%s: unknown or unavailable backend, "
               "falling back to auto (%s)\n",
               env, best_available()->name());
  return best_available();
}

}  // namespace

std::size_t Backend::verify_tokens_batch(const VerifyJob* jobs, std::size_t n,
                                         std::uint8_t* ok) const {
  constexpr std::size_t kChunk = 256;
  MacBuf outs[kChunk];
  MacJob macs[kChunk];
  std::size_t matches = 0;
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    for (std::size_t i = 0; i < m; ++i) {
      macs[i] = MacJob{jobs[base + i].mac, jobs[base + i].prefix,
                       jobs[base + i].suffix};
    }
    hmac_batch(macs, m, outs);
    for (std::size_t i = 0; i < m; ++i) {
      const bool match = ct_equal(outs[i].view(), jobs[base + i].expect);
      if (ok != nullptr) ok[base + i] = match ? 1 : 0;
      matches += match ? 1 : 0;
    }
  }
  return matches;
}

const Backend& scalar_backend() noexcept {
  static const ScalarBackend backend;
  return backend;
}

const std::vector<const Backend*>& available_backends() {
  static const std::vector<const Backend*> backends = [] {
    std::vector<const Backend*> v;
    v.push_back(&scalar_backend());
#if defined(CRA_HAVE_SHA_MB)
    if (const Backend* simd = mb::simd_backend_or_null()) v.push_back(simd);
#endif
    return v;
  }();
  return backends;
}

const Backend* backend_by_name(std::string_view name) noexcept {
  for (const Backend* b : available_backends()) {
    if (name == b->name()) return b;
  }
  return nullptr;
}

const Backend& active_backend() noexcept {
  const Backend* b = g_active.load(std::memory_order_acquire);
  if (b == nullptr) {
    b = resolve_from_env();
    // Several threads may race the first resolution; they all compute
    // the same answer, so any winner is fine.
    g_active.store(b, std::memory_order_release);
  }
  return *b;
}

bool set_active_backend(std::string_view name) noexcept {
  const Backend* b =
      name == "auto" ? best_available() : backend_by_name(name);
  if (b == nullptr) return false;
  g_active.store(b, std::memory_order_release);
  return true;
}

}  // namespace cra::crypto
