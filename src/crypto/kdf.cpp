#include "crypto/kdf.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace cra::crypto {

Bytes hkdf_extract(BytesView salt, BytesView ikm) {
  const auto prk = HmacSha256::mac(salt, ikm);
  return Bytes(prk.begin(), prk.end());
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
  constexpr std::size_t kHashLen = Sha256::kDigestSize;
  if (length > 255 * kHashLen) {
    throw std::invalid_argument("hkdf_expand: output too long");
  }
  Bytes out;
  out.reserve(length);
  Bytes previous;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Hmac<Sha256> h(prk);
    h.update(previous);
    h.update(info);
    h.update(BytesView(&counter, 1));
    const auto block = h.finalize();
    previous.assign(block.begin(), block.end());
    const std::size_t take = std::min(kHashLen, length - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return out;
}

Bytes hkdf(BytesView ikm, BytesView salt, BytesView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

Bytes derive_device_key(BytesView master, std::uint32_t device_id,
                        std::size_t key_len, std::string_view label) {
  Bytes info = to_bytes(label);
  append_u32le(info, device_id);
  return hkdf(master, /*salt=*/{}, info, key_len);
}

}  // namespace cra::crypto
