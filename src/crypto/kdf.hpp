// HKDF (RFC 5869) over HMAC-SHA256.
//
// SAP's setup provisions one symmetric key per device. Rather than
// storing N independent random keys at the verifier, our Verifier derives
// K_{mi,Vrf} = HKDF(master, "sap-device-key", mi) — standard practice for
// fleet key management and exactly equivalent to independent keys under
// the PRF assumption. Devices still store only their own key.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace cra::crypto {

/// HKDF-Extract: PRK = HMAC-SHA256(salt, ikm).
Bytes hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: `length` bytes of output keyed by `prk` and `info`.
/// length must be <= 255 * 32; throws std::invalid_argument otherwise.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// One-shot extract+expand.
Bytes hkdf(BytesView ikm, BytesView salt, BytesView info, std::size_t length);

/// Derive the per-device attestation key K_{mi,Vrf} from a master secret.
Bytes derive_device_key(BytesView master, std::uint32_t device_id,
                        std::size_t key_len, std::string_view label = "sap-device-key");

}  // namespace cra::crypto
