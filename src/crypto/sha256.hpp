// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Offered as the modern alternative hash for SAP deployments with
// l = 256; also the hash under HKDF key derivation in setup.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace cra::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(BytesView data) noexcept;
  Digest finalize() noexcept;

  static Digest digest(BytesView data) noexcept;
  static std::uint64_t compression_calls(std::uint64_t message_len) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace cra::crypto
