// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Offered as the modern alternative hash for SAP deployments with
// l = 256; also the hash under HKDF key derivation in setup.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace cra::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;
  /// Chaining value between compression calls (see sha1.hpp for the
  /// midstate()/resume() contract; identical here).
  using State = std::array<std::uint32_t, 8>;

  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(BytesView data) noexcept;
  Digest finalize() noexcept;

  /// Chaining value after the blocks absorbed so far; only meaningful at
  /// a block boundary.
  const State& midstate() const noexcept { return state_; }

  /// Rebuild a hash that already absorbed `bytes_hashed` bytes (multiple
  /// of kBlockSize) ending in chaining value `s`.
  static Sha256 resume(const State& s, std::uint64_t bytes_hashed) noexcept;

  /// Best-effort zeroization; leaves the object reset().
  void wipe() noexcept;

  static Digest digest(BytesView data) noexcept;
  static std::uint64_t compression_calls(std::uint64_t message_len) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace cra::crypto
