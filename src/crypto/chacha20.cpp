#include "crypto/chacha20.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace cra::crypto {
namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) noexcept {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

std::uint32_t load_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

ChaCha20::ChaCha20(BytesView key, BytesView nonce, std::uint32_t counter) {
  if (key.size() != kKeySize) {
    throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  }
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  }
  state_[0] = 0x61707865u;
  state_[1] = 0x3320646eu;
  state_[2] = 0x79622d32u;
  state_[3] = 0x6b206574u;
  for (std::size_t i = 0; i < 8; ++i) {
    state_[4 + i] = load_u32le(key.data() + 4 * i);
  }
  state_[12] = counter;
  for (std::size_t i = 0; i < 3; ++i) {
    state_[13 + i] = load_u32le(nonce.data() + 4 * i);
  }
}

std::array<std::uint8_t, ChaCha20::kBlockSize>
ChaCha20::next_block() noexcept {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  std::array<std::uint8_t, kBlockSize> out;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t word = x[i] + state_[i];
    out[4 * i] = static_cast<std::uint8_t>(word);
    out[4 * i + 1] = static_cast<std::uint8_t>(word >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(word >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(word >> 24);
  }
  ++state_[12];
  return out;
}

void ChaCha20::crypt_inplace(Bytes& data) noexcept {
  for (auto& byte : data) {
    if (partial_used_ == kBlockSize) {
      partial_ = next_block();
      partial_used_ = 0;
    }
    byte = static_cast<std::uint8_t>(byte ^ partial_[partial_used_++]);
  }
}

namespace {

ChaCha20 make_stream(BytesView seed) {
  Bytes key(ChaCha20::kKeySize, 0);
  const std::size_t n = std::min(seed.size(), key.size());
  std::memcpy(key.data(), seed.data(), n);
  const Bytes nonce(ChaCha20::kNonceSize, 0);
  return ChaCha20(key, nonce);
}

}  // namespace

SecureRandom::SecureRandom(BytesView seed) : stream_(make_stream(seed)) {}

SecureRandom::SecureRandom(std::uint64_t seed)
    : stream_(make_stream([&] {
        Bytes s;
        append_u64le(s, seed);
        return s;
      }())) {}

Bytes SecureRandom::bytes(std::size_t n) {
  Bytes out(n, 0);
  stream_.crypt_inplace(out);
  return out;
}

std::uint64_t SecureRandom::u64() {
  const Bytes b = bytes(8);
  return read_u64le(b, 0);
}

}  // namespace cra::crypto
