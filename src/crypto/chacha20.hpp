// ChaCha20 (RFC 8439 block function) and a CSPRNG built on it.
//
// setup generates one symmetric key K_{mi,Vrf} per device; in the paper
// this happens at deployment time from a trusted source of randomness.
// SecureRandom is that source in our reproduction: seeded explicitly it
// yields a reproducible-but-cryptographically-strong keystream, which
// keeps simulations deterministic while exercising exactly the code path
// a production deployment would use.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace cra::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  ChaCha20(BytesView key, BytesView nonce, std::uint32_t counter = 0);

  /// Generate the next 64-byte keystream block (advances the counter).
  std::array<std::uint8_t, kBlockSize> next_block() noexcept;

  /// XOR `data` with the keystream in place (stream-cipher encryption).
  void crypt_inplace(Bytes& data) noexcept;

 private:
  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, kBlockSize> partial_{};
  std::size_t partial_used_ = kBlockSize;  // empty
};

/// Deterministic CSPRNG: ChaCha20 keystream under a seed-derived key.
class SecureRandom {
 public:
  /// Seed from a 32-byte key; shorter seeds are zero-padded, longer ones
  /// truncated (tests use small tags).
  explicit SecureRandom(BytesView seed);
  /// Convenience: seed from a 64-bit value (expanded into the key).
  explicit SecureRandom(std::uint64_t seed);

  Bytes bytes(std::size_t n);
  std::uint64_t u64();

 private:
  ChaCha20 stream_;
};

}  // namespace cra::crypto
