// HMAC (RFC 2104 / FIPS 198-1), generic over the hash function.
//
// attest computes h_mi = HMAC_{K_mi,Vrf}(PMEM(mi, t=chal) || chal); the
// verifier recomputes the same value from the expected configuration
// cfg_i. Both sides use this implementation. A runtime-tagged variant
// (HashAlg + hmac()/hmac_into()) exists so protocol configuration can
// choose the security parameter l ∈ {160, 256} without templating every
// layer. For the per-MAC hot path prefer hmac_into() (no allocation) or,
// when the key is reused across MACs, the midstate cache in
// crypto/mac_cache.hpp.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/ct.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace cra::crypto {

/// Streaming HMAC over hash `H` (Sha1 or Sha256).
template <typename H>
class Hmac {
 public:
  static constexpr std::size_t kDigestSize = H::kDigestSize;

  explicit Hmac(BytesView key) { init(key); }

  Hmac(const Hmac&) = default;
  Hmac& operator=(const Hmac&) = default;

  /// The pads are key-derived: scrub them when the MAC context dies so
  /// copies of K_{mi,Vrf} do not linger on dead stack frames.
  ~Hmac() {
    secure_wipe(opad_);
    inner_.wipe();
  }

  void init(BytesView key) {
    std::array<std::uint8_t, H::kBlockSize> block_key{};
    if (key.size() > H::kBlockSize) {
      const auto d = H::digest(key);
      std::copy(d.begin(), d.end(), block_key.begin());
    } else {
      std::copy(key.begin(), key.end(), block_key.begin());
    }
    opad_ = block_key;
    for (auto& b : block_key) b = static_cast<std::uint8_t>(b ^ 0x36);
    for (auto& b : opad_) b = static_cast<std::uint8_t>(b ^ 0x5c);
    inner_.reset();
    inner_.update(BytesView(block_key.data(), block_key.size()));
    secure_wipe(block_key);
  }

  void update(BytesView data) { inner_.update(data); }

  typename H::Digest finalize() {
    const auto inner_digest = inner_.finalize();
    H outer;
    outer.update(BytesView(opad_.data(), opad_.size()));
    outer.update(BytesView(inner_digest.data(), inner_digest.size()));
    return outer.finalize();
  }

  /// One-shot HMAC.
  [[nodiscard]] static typename H::Digest mac(BytesView key, BytesView data) {
    Hmac h(key);
    h.update(data);
    return h.finalize();
  }

  /// Number of compression-function calls HMAC over `message_len` bytes
  /// costs: inner hash over (block + message), outer hash over
  /// (block + digest). Used by the device timing model.
  static std::uint64_t compression_calls(std::uint64_t message_len) noexcept {
    return H::compression_calls(H::kBlockSize + message_len) +
           H::compression_calls(H::kBlockSize + H::kDigestSize);
  }

 private:
  H inner_;
  std::array<std::uint8_t, H::kBlockSize> opad_{};
};

using HmacSha1 = Hmac<Sha1>;
using HmacSha256 = Hmac<Sha256>;

/// Runtime selector for the protocol's MAC algorithm (the security
/// parameter l is the digest size in bits).
enum class HashAlg { kSha1, kSha256 };

constexpr std::size_t digest_size(HashAlg alg) noexcept {
  return alg == HashAlg::kSha1 ? Sha1::kDigestSize : Sha256::kDigestSize;
}

constexpr std::size_t security_param_bits(HashAlg alg) noexcept {
  return digest_size(alg) * 8;
}

/// Fixed-capacity MAC output buffer sized for the largest supported
/// digest. Lets runtime-dispatched MAC code fill a caller-owned buffer
/// instead of returning a heap vector per MAC.
struct MacBuf {
  static constexpr std::size_t kCapacity = Sha256::kDigestSize;

  std::array<std::uint8_t, kCapacity> bytes{};
  std::size_t len = 0;

  [[nodiscard]] BytesView view() const noexcept {
    return BytesView(bytes.data(), len);
  }

  void assign(const std::uint8_t* src, std::size_t n) noexcept {
    len = n;
    std::copy(src, src + n, bytes.begin());
  }
};

/// One-shot, runtime-dispatched HMAC into a caller-owned buffer. The
/// allocation-free hot-path entry point; SAP tokens are exactly
/// digest_size(alg) bytes, which always fits MacBuf.
///
/// HashAlg has exactly two values, so dispatch is a single
/// well-predicted branch (SAP configures one algorithm per run) rather
/// than a switch whose fall-through throw the optimizer must keep live.
inline void hmac_into(HashAlg alg, BytesView key, BytesView data,
                      MacBuf& out) {
  if (alg == HashAlg::kSha1) {
    const auto d = HmacSha1::mac(key, data);
    out.assign(d.data(), d.size());
  } else {
    const auto d = HmacSha256::mac(key, data);
    out.assign(d.data(), d.size());
  }
}

/// One-shot, runtime-dispatched HMAC returning a heap buffer of
/// digest_size(alg) bytes. Convenience path: setup, tests, and
/// non-hot-loop call sites.
[[nodiscard]] inline Bytes hmac(HashAlg alg, BytesView key, BytesView data) {
  MacBuf buf;
  hmac_into(alg, key, data, buf);
  return Bytes(buf.bytes.begin(), buf.bytes.begin() + buf.len);
}

/// Compression calls for the runtime-dispatched variant.
[[nodiscard]] inline std::uint64_t hmac_compression_calls(
    HashAlg alg, std::uint64_t message_len) noexcept {
  return alg == HashAlg::kSha1 ? HmacSha1::compression_calls(message_len)
                               : HmacSha256::compression_calls(message_len);
}

}  // namespace cra::crypto
