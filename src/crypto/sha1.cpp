#include "crypto/sha1.hpp"

#include <bit>
#include <cstring>

#include "crypto/ct.hpp"
#include "crypto/tally.hpp"

namespace cra::crypto {

void Sha1::reset() noexcept {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  buffer_len_ = 0;
  total_len_ = 0;
}

Sha1 Sha1::resume(const State& s, std::uint64_t bytes_hashed) noexcept {
  Sha1 h;
  h.state_ = s;
  h.total_len_ = bytes_hashed;
  return h;
}

void Sha1::wipe() noexcept {
  secure_wipe(state_);
  secure_wipe(buffer_);
  buffer_len_ = 0;
  total_len_ = 0;
  reset();
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  ++detail::tls_compression_calls;
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t temp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(BytesView data) noexcept {
  if (data.empty()) return;  // memcpy from a null view is UB, even for 0
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take =
        std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha1::Digest Sha1::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  update(BytesView(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) {
    update(BytesView(&zero, 1));
  }
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass update()'s length accounting for the final length field.
  std::memcpy(buffer_.data() + 56, len_be, 8);
  process_block(buffer_.data());

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return out;
}

Sha1::Digest Sha1::digest(BytesView data) noexcept {
  Sha1 h;
  h.update(data);
  return h.finalize();
}

std::uint64_t Sha1::compression_calls(std::uint64_t message_len) noexcept {
  // Padding adds 1 byte of 0x80, zero padding to 56 mod 64, then an
  // 8-byte length: total padded length is the next multiple of 64 at or
  // above message_len + 9.
  return (message_len + 9 + kBlockSize - 1) / kBlockSize;
}

}  // namespace cra::crypto
