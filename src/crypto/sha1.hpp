// SHA-1 (FIPS 180-4), implemented from scratch.
//
// SAP's security parameter is l = 160 bits because the paper's TrustLite
// prototype builds attest's HMAC on SHA-1 ("The attest's HMAC is based on
// SHA-1, which is already implemented by TrustLite"). SHA-1 is broken for
// collision resistance in general, but HMAC-SHA1 remains a sound PRF for
// the model; we also expose SHA-256 (sha256.hpp) for deployments that
// want a modern parameter. Streaming interface plus a one-shot helper.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace cra::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;
  /// Chaining value between compression calls; capturable at any block
  /// boundary (see midstate()/resume()).
  using State = std::array<std::uint32_t, 5>;

  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(BytesView data) noexcept;
  /// Finalize and return the digest; the object must be reset() before
  /// further use.
  Digest finalize() noexcept;

  /// Chaining value after the blocks absorbed so far. Only meaningful at
  /// a block boundary (total bytes hashed divisible by kBlockSize) —
  /// buffered partial-block bytes are NOT part of the state. The HMAC
  /// midstate cache calls this right after absorbing the one-block
  /// ipad/opad prefix.
  const State& midstate() const noexcept { return state_; }

  /// Rebuild a hash mid-stream from a captured chaining value:
  /// equivalent to a Sha1 that already absorbed `bytes_hashed` bytes
  /// (must be a multiple of kBlockSize) ending in state `s`. This is the
  /// per-MAC fast path: restoring costs a small copy, not a compression.
  static Sha1 resume(const State& s, std::uint64_t bytes_hashed) noexcept;

  /// Best-effort zeroization of the chaining value and block buffer
  /// (used when the absorbed data is key material). Leaves the object
  /// in the reset() state.
  void wipe() noexcept;

  /// One-shot convenience.
  static Digest digest(BytesView data) noexcept;

  /// Number of 64-byte compression-function invocations a full hash of
  /// `message_len` bytes performs (padding included). The device timing
  /// model charges cycles per compression call.
  static std::uint64_t compression_calls(std::uint64_t message_len) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace cra::crypto
