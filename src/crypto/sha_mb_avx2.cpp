// 8-lane AVX2 multi-buffer SHA kernels.
//
// This is the ONLY translation unit compiled with -mavx2 (see
// src/crypto/CMakeLists.txt): keeping the flag per-TU guarantees the
// compiler cannot emit AVX2 instructions into portably-compiled code,
// and nothing here is reachable unless mb::cpu_supports_avx2() said yes
// at runtime. The lane algebra lives in sha_mb_impl.hpp; this file only
// binds it to __m256i.
#include "crypto/sha_mb.hpp"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "crypto/sha_mb_impl.hpp"

namespace cra::crypto::mb {
namespace {

struct Avx2V {
  using Reg = __m256i;
  static constexpr int kLanes = 8;

  static Reg add(Reg a, Reg b) noexcept { return _mm256_add_epi32(a, b); }
  static Reg xor_(Reg a, Reg b) noexcept { return _mm256_xor_si256(a, b); }
  static Reg and_(Reg a, Reg b) noexcept { return _mm256_and_si256(a, b); }
  static Reg andnot(Reg a, Reg b) noexcept {
    return _mm256_andnot_si256(a, b);
  }
  static Reg shr(Reg a, int n) noexcept { return _mm256_srli_epi32(a, n); }

  template <int N>
  static Reg rotr(Reg a) noexcept {
    return _mm256_or_si256(_mm256_srli_epi32(a, N),
                           _mm256_slli_epi32(a, 32 - N));
  }

  static Reg broadcast(std::uint32_t v) noexcept {
    return _mm256_set1_epi32(static_cast<int>(v));
  }

  static Reg load_state(const std::uint32_t* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }

  static void store_state(std::uint32_t* p, Reg v) noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }

  static std::uint32_t be_word(const std::uint8_t* p) noexcept {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return __builtin_bswap32(v);
  }

  static Reg load_word(const std::uint8_t* const* blocks, std::size_t blk,
                       int t) noexcept {
    const std::size_t off = blk * 64 + static_cast<std::size_t>(4 * t);
    return _mm256_set_epi32(static_cast<int>(be_word(blocks[7] + off)),
                            static_cast<int>(be_word(blocks[6] + off)),
                            static_cast<int>(be_word(blocks[5] + off)),
                            static_cast<int>(be_word(blocks[4] + off)),
                            static_cast<int>(be_word(blocks[3] + off)),
                            static_cast<int>(be_word(blocks[2] + off)),
                            static_cast<int>(be_word(blocks[1] + off)),
                            static_cast<int>(be_word(blocks[0] + off)));
  }
};

}  // namespace

void sha1_x8_avx2(std::uint32_t* states, const std::uint8_t* const* blocks,
                  std::size_t nblocks) noexcept {
  detail::sha1_multiway<Avx2V>(states, blocks, nblocks);
}

void sha256_x8_avx2(std::uint32_t* states, const std::uint8_t* const* blocks,
                    std::size_t nblocks) noexcept {
  detail::sha256_multiway<Avx2V>(states, blocks, nblocks);
}

}  // namespace cra::crypto::mb

#endif  // x86-64 && __AVX2__
