// Internal interface to the multi-buffer (lane-parallel) SHA kernels.
//
// Each kernel runs L independent compression streams in one instruction
// stream: lane l consumes its own `nblocks` 64-byte blocks starting at
// blocks[l] and carries its own chaining value. There is no cross-lane
// mixing — this is data parallelism over whole messages, not a
// parallelization of one hash.
//
// State layout is word-major so each round loads one vector register per
// state word: states[w * L + l] is word w of lane l. Kernels never touch
// crypto::tally — the backend wrapper (backend_simd.cpp) accounts one
// logical compression per lane per block so counters stay invariant
// across backends.
//
// The AVX2 kernels live in their own translation unit compiled with
// -mavx2 (see CMakeLists.txt); nothing here may be called unless the
// running CPU supports the ISA — cpu_supports_avx2() gates dispatch.
// These declarations are private to src/crypto; call through
// crypto::Backend instead.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cra::crypto {

class Backend;

namespace mb {

/// 4-lane SSE2 kernels (baseline on every x86-64 CPU).
void sha1_x4_sse2(std::uint32_t* states, const std::uint8_t* const* blocks,
                  std::size_t nblocks) noexcept;
void sha256_x4_sse2(std::uint32_t* states, const std::uint8_t* const* blocks,
                    std::size_t nblocks) noexcept;

/// 8-lane AVX2 kernels (sha_mb_avx2.cpp, per-TU -mavx2).
void sha1_x8_avx2(std::uint32_t* states, const std::uint8_t* const* blocks,
                  std::size_t nblocks) noexcept;
void sha256_x8_avx2(std::uint32_t* states, const std::uint8_t* const* blocks,
                    std::size_t nblocks) noexcept;

bool cpu_supports_avx2() noexcept;

/// The SIMD backend singleton, or nullptr when the build carries no
/// multi-buffer kernels for this target.
const Backend* simd_backend_or_null();

}  // namespace mb
}  // namespace cra::crypto
