// X25519 Diffie-Hellman (RFC 7748), implemented from scratch.
//
// SEDA's join phase establishes pairwise keys between neighbors from
// their certified static public keys. With X25519 in the substrate that
// exchange is real cryptography: both endpoints derive the identical
// shared secret from (their own private key, the peer's public key),
// and the pairwise MAC key is HKDF of that secret.
//
// Implementation: 5×51-bit limb field arithmetic over 2^255 − 19 with
// 128-bit intermediate products, constant-time conditional swaps, and
// the RFC 7748 Montgomery ladder. Verified against the RFC test vectors
// (including the 1,000-iteration vector) in tests/crypto/test_x25519.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace cra::crypto {

constexpr std::size_t kX25519KeySize = 32;
using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// The raw function: scalar * u-coordinate point (RFC 7748 §5).
/// The scalar is clamped internally as the RFC requires.
X25519Key x25519(const X25519Key& scalar, const X25519Key& u);

/// scalar * base point (u = 9): derive the public key for a private key.
X25519Key x25519_base(const X25519Key& scalar);

/// Convenience over Bytes (must be exactly 32 bytes; throws otherwise).
Bytes x25519(BytesView scalar, BytesView u);
Bytes x25519_base(BytesView scalar);

}  // namespace cra::crypto
