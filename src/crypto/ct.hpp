// Constant-time comparison.
//
// verify compares H_S against the precomputed RES_S; on a real verifier
// this comparison must not leak how many leading bytes matched. The
// device-side attest TCB never compares secrets, but tests exercising
// forged reports use this too.
#pragma once

#include "common/bytes.hpp"

namespace cra::crypto {

/// True iff a and b have equal length and equal contents; runs in time
/// dependent only on the lengths.
bool ct_equal(BytesView a, BytesView b) noexcept;

}  // namespace cra::crypto
