// Constant-time comparison and secure wiping.
//
// verify compares H_S against the precomputed RES_S; on a real verifier
// this comparison must not leak how many leading bytes matched. The
// device-side attest TCB never compares secrets, but tests exercising
// forged reports use this too.
//
// secure_wipe clears key-derived material (HMAC pads, midstate caches)
// in a way the optimizer cannot elide as a dead store — the attest key
// K_{mi,Vrf} is the one secret the whole TCA-Security game rests on, so
// copies of it (or of states derived from it) must not outlive the
// object that owned them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/bytes.hpp"

namespace cra::crypto {

/// True iff a and b have equal length and equal contents; runs in time
/// dependent only on the lengths.
bool ct_equal(BytesView a, BytesView b) noexcept;

/// Zero `len` bytes at `p` with a store the compiler must keep (memset
/// followed by a compiler barrier that treats the memory as observed).
void secure_wipe(void* p, std::size_t len) noexcept;

/// Convenience overloads for the fixed-size buffers key material lives
/// in (HMAC pad blocks, hash midstates).
template <typename T, std::size_t N>
inline void secure_wipe(std::array<T, N>& a) noexcept {
  static_assert(std::is_trivially_copyable_v<T>,
                "secure_wipe: array element must be trivially copyable");
  secure_wipe(a.data(), sizeof(T) * N);
}

inline void secure_wipe(Bytes& b) noexcept {
  if (!b.empty()) secure_wipe(b.data(), b.size());
}

}  // namespace cra::crypto
