// 4-lane SSE2 multi-buffer SHA kernels.
//
// SSE2 is part of the x86-64 baseline, so this TU compiles with the
// project's portable flags — no -m options, nothing to leak. The lane
// algebra lives in sha_mb_impl.hpp; this file only binds it to __m128i.
#include "crypto/sha_mb.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include <cstring>

#include "crypto/sha_mb_impl.hpp"

namespace cra::crypto::mb {
namespace {

struct Sse2V {
  using Reg = __m128i;
  static constexpr int kLanes = 4;

  static Reg add(Reg a, Reg b) noexcept { return _mm_add_epi32(a, b); }
  static Reg xor_(Reg a, Reg b) noexcept { return _mm_xor_si128(a, b); }
  static Reg and_(Reg a, Reg b) noexcept { return _mm_and_si128(a, b); }
  static Reg andnot(Reg a, Reg b) noexcept { return _mm_andnot_si128(a, b); }
  static Reg shr(Reg a, int n) noexcept { return _mm_srli_epi32(a, n); }

  template <int N>
  static Reg rotr(Reg a) noexcept {
    return _mm_or_si128(_mm_srli_epi32(a, N), _mm_slli_epi32(a, 32 - N));
  }

  static Reg broadcast(std::uint32_t v) noexcept {
    return _mm_set1_epi32(static_cast<int>(v));
  }

  static Reg load_state(const std::uint32_t* p) noexcept {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }

  static void store_state(std::uint32_t* p, Reg v) noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }

  static std::uint32_t be_word(const std::uint8_t* p) noexcept {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return __builtin_bswap32(v);
  }

  static Reg load_word(const std::uint8_t* const* blocks, std::size_t blk,
                       int t) noexcept {
    const std::size_t off = blk * 64 + static_cast<std::size_t>(4 * t);
    return _mm_set_epi32(static_cast<int>(be_word(blocks[3] + off)),
                         static_cast<int>(be_word(blocks[2] + off)),
                         static_cast<int>(be_word(blocks[1] + off)),
                         static_cast<int>(be_word(blocks[0] + off)));
  }
};

}  // namespace

void sha1_x4_sse2(std::uint32_t* states, const std::uint8_t* const* blocks,
                  std::size_t nblocks) noexcept {
  detail::sha1_multiway<Sse2V>(states, blocks, nblocks);
}

void sha256_x4_sse2(std::uint32_t* states, const std::uint8_t* const* blocks,
                    std::size_t nblocks) noexcept {
  detail::sha256_multiway<Sse2V>(states, blocks, nblocks);
}

}  // namespace cra::crypto::mb

#endif  // x86-64
