// Generic lane-parallel SHA-1 / SHA-256 compression, parameterized over
// a vector-ops traits class.
//
// This header is included ONLY by the per-ISA translation units
// (sha_mb_sse2.cpp, sha_mb_avx2.cpp) so every instantiation is compiled
// under exactly the -m flags of its TU — the functions here must never
// be instantiated from portably-compiled code, or illegal instructions
// would leak into it. That is also why everything lives in a detail
// namespace with internal linkage helpers rather than in sha_mb.hpp.
//
// A traits class V supplies:
//   using Reg                       — the vector register type
//   static constexpr int kLanes     — 32-bit words per register
//   Reg add(Reg, Reg)               — lane-wise uint32 add
//   Reg xor_(Reg, Reg) / and_(...) / or_(...) / andnot(a, b)  (~a & b)
//   Reg shr(Reg, int)               — lane-wise logical right shift
//   template <int N> Reg rotr(Reg)  — lane-wise rotate right
//   Reg broadcast(uint32)           — all lanes = constant
//   Reg load_word(blocks, blk, w)   — big-endian word w of block blk,
//                                     gathered across all lanes
#pragma once

#include <cstddef>
#include <cstdint>

namespace cra::crypto::mb::detail {

inline constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

template <class V>
void sha256_multiway(std::uint32_t* states, const std::uint8_t* const* blocks,
                     std::size_t nblocks) noexcept {
  using Reg = typename V::Reg;
  constexpr int L = V::kLanes;

  Reg s[8];
  for (int w = 0; w < 8; ++w) s[w] = V::load_state(states + w * L);

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    Reg msg[64];
    for (int t = 0; t < 16; ++t) msg[t] = V::load_word(blocks, blk, t);
    for (int t = 16; t < 64; ++t) {
      const Reg w15 = msg[t - 15];
      const Reg w2 = msg[t - 2];
      const Reg s0 = V::xor_(V::xor_(V::template rotr<7>(w15),
                                     V::template rotr<18>(w15)),
                             V::shr(w15, 3));
      const Reg s1 = V::xor_(V::xor_(V::template rotr<17>(w2),
                                     V::template rotr<19>(w2)),
                             V::shr(w2, 10));
      msg[t] = V::add(V::add(msg[t - 16], s0), V::add(msg[t - 7], s1));
    }

    Reg a = s[0], b = s[1], c = s[2], d = s[3];
    Reg e = s[4], f = s[5], g = s[6], h = s[7];
    for (int t = 0; t < 64; ++t) {
      const Reg s1 = V::xor_(V::xor_(V::template rotr<6>(e),
                                     V::template rotr<11>(e)),
                             V::template rotr<25>(e));
      const Reg ch = V::xor_(V::and_(e, f), V::andnot(e, g));
      const Reg t1 = V::add(V::add(h, s1),
                            V::add(V::add(ch, V::broadcast(kSha256K[t])),
                                   msg[t]));
      const Reg s0 = V::xor_(V::xor_(V::template rotr<2>(a),
                                     V::template rotr<13>(a)),
                             V::template rotr<22>(a));
      const Reg maj = V::xor_(V::xor_(V::and_(a, b), V::and_(a, c)),
                              V::and_(b, c));
      const Reg t2 = V::add(s0, maj);
      h = g;
      g = f;
      f = e;
      e = V::add(d, t1);
      d = c;
      c = b;
      b = a;
      a = V::add(t1, t2);
    }
    s[0] = V::add(s[0], a);
    s[1] = V::add(s[1], b);
    s[2] = V::add(s[2], c);
    s[3] = V::add(s[3], d);
    s[4] = V::add(s[4], e);
    s[5] = V::add(s[5], f);
    s[6] = V::add(s[6], g);
    s[7] = V::add(s[7], h);
  }

  for (int w = 0; w < 8; ++w) V::store_state(states + w * L, s[w]);
}

template <class V>
void sha1_multiway(std::uint32_t* states, const std::uint8_t* const* blocks,
                   std::size_t nblocks) noexcept {
  using Reg = typename V::Reg;
  constexpr int L = V::kLanes;

  Reg s[5];
  for (int w = 0; w < 5; ++w) s[w] = V::load_state(states + w * L);

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    Reg msg[80];
    for (int t = 0; t < 16; ++t) msg[t] = V::load_word(blocks, blk, t);
    for (int t = 16; t < 80; ++t) {
      const Reg x = V::xor_(V::xor_(msg[t - 3], msg[t - 8]),
                            V::xor_(msg[t - 14], msg[t - 16]));
      msg[t] = V::template rotr<31>(x);  // rotl 1
    }

    Reg a = s[0], b = s[1], c = s[2], d = s[3], e = s[4];
    for (int t = 0; t < 80; ++t) {
      Reg f, k;
      if (t < 20) {
        f = V::xor_(V::and_(b, c), V::andnot(b, d));
        k = V::broadcast(0x5a827999u);
      } else if (t < 40) {
        f = V::xor_(V::xor_(b, c), d);
        k = V::broadcast(0x6ed9eba1u);
      } else if (t < 60) {
        f = V::xor_(V::xor_(V::and_(b, c), V::and_(b, d)), V::and_(c, d));
        k = V::broadcast(0x8f1bbcdcu);
      } else {
        f = V::xor_(V::xor_(b, c), d);
        k = V::broadcast(0xca62c1d6u);
      }
      const Reg tmp = V::add(V::add(V::template rotr<27>(a), f),  // rotl 5
                             V::add(V::add(e, k), msg[t]));
      e = d;
      d = c;
      c = V::template rotr<2>(b);  // rotl 30
      b = a;
      a = tmp;
    }
    s[0] = V::add(s[0], a);
    s[1] = V::add(s[1], b);
    s[2] = V::add(s[2], c);
    s[3] = V::add(s[3], d);
    s[4] = V::add(s[4], e);
  }

  for (int w = 0; w < 5; ++w) V::store_state(states + w * L, s[w]);
}

}  // namespace cra::crypto::mb::detail
