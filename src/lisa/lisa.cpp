#include "lisa/lisa.hpp"

#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/ct.hpp"
#include "crypto/kdf.hpp"

namespace cra::lisa {
namespace {

enum LisaMessageKind : std::uint32_t {
  kRequestMsg = 1,
  kReportMsg = 2,  // kAlpha: one entry; kS: a bundle of entries
};

}  // namespace

const char* variant_name(LisaVariant variant) noexcept {
  switch (variant) {
    case LisaVariant::kAlpha: return "LISA-alpha";
    case LisaVariant::kS: return "LISA-s";
  }
  return "?";
}

LisaSimulation::LisaSimulation(LisaConfig config, net::Tree tree,
                               std::uint64_t seed)
    : config_(config),
      tree_(std::move(tree)),
      scheduler_(),
      network_(scheduler_, config.link),
      master_(crypto::SecureRandom(seed ^ 0x4c49'5341'6b65'79ULL)
                  .bytes(32)),
      devices_(tree_.device_count()) {
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    Dev& d = dev(id);
    d.key = crypto::derive_device_key(
        master_, id, crypto::digest_size(config_.alg), "lisa-device-key");
    d.mac.init(config_.alg, d.key);
    d.content = crypto::derive_device_key(master_, id,
                                          crypto::digest_size(config_.alg),
                                          "lisa-firmware");
    expected_.push_back(d.content);  // enrolled cfg_i
  }
  network_.set_handler([this](const net::Message& m) { on_message(m); });
  subtree_.assign(tree_.size(), 1);
  for (net::NodeId n = tree_.size() - 1; n >= 1; --n) {
    subtree_[tree_.parent(n)] += subtree_[n];
  }
}

LisaSimulation LisaSimulation::balanced(LisaConfig config,
                                        std::uint32_t devices,
                                        std::uint64_t seed) {
  return LisaSimulation(
      config, net::balanced_kary_tree(devices, config.tree_arity), seed);
}

void LisaSimulation::compromise_device(net::NodeId id) {
  Dev& d = dev(id);
  d.compromised = true;
  d.content[0] = static_cast<std::uint8_t>(d.content[0] ^ 0xff);
}

void LisaSimulation::restore_device(net::NodeId id) {
  Dev& d = dev(id);
  if (d.compromised) {
    d.content[0] = static_cast<std::uint8_t>(d.content[0] ^ 0xff);
    d.compromised = false;
  }
}

void LisaSimulation::set_device_unresponsive(net::NodeId id,
                                             bool unresponsive) {
  dev(id).unresponsive = unresponsive;
}

void LisaSimulation::advance_time(sim::Duration d) {
  scheduler_.run_until(scheduler_.now() + d);
}

sim::Duration LisaSimulation::attest_time() const {
  const std::uint64_t blocks =
      crypto::hmac_compression_calls(config_.alg, config_.pmem_size +
                                                      config_.nonce_size);
  return sim::cycles_to_time(
      config_.attest_overhead_cycles + blocks * config_.cycles_per_block,
      config_.device_hz);
}

Bytes LisaSimulation::make_entry(net::NodeId id) const {
  // token = HMAC_{K_i}(content || nonce) — content stands in for PMEM.
  const Dev& d = devices_[id - 1];
  crypto::MacBuf mac;
  d.mac.mac_into(d.content, round_nonce_, mac);
  Bytes entry;
  append_u32le(entry, id);
  entry.insert(entry.end(), mac.bytes.begin(), mac.bytes.begin() + mac.len);
  return entry;
}

LisaRoundReport LisaSimulation::run_round() {
  if (round_active_) {
    throw std::logic_error("LISA run_round: round already active");
  }
  round_active_ = true;

  for (net::NodeId id = 1; id <= device_count(); ++id) {
    Dev& d = dev(id);
    d.got_request = false;
    d.self_done = false;
    d.sent = false;
    d.waiting = static_cast<std::uint32_t>(tree_.children(id).size());
    d.bundle.clear();
    d.deadline = sim::EventHandle();
  }
  done_ = false;
  root_seen_.assign(device_count() + 1, 0);
  root_reports_.clear();
  root_waiting_bundles_ =
      static_cast<std::uint32_t>(tree_.children(0).size());
  network_.reset_accounting();

  LisaRoundReport report;
  report.devices = device_count();
  report.t_req = scheduler_.now();

  crypto::SecureRandom nonce_rng(
      static_cast<std::uint64_t>(scheduler_.now().ns()) ^ 0x4c6e6f6eULL);
  round_nonce_ = nonce_rng.bytes(config_.nonce_size);
  for (net::NodeId child : tree_.children(0)) {
    network_.send(0, child, kRequestMsg, round_nonce_);
  }

  // Give-up deadline: request wave + one measurement + the report path.
  const sim::Duration hop_req = network_.link_delay(config_.nonce_size);
  const sim::Duration relay =
      sim::cycles_to_time(config_.relay_cycles, config_.device_hz);
  const sim::Duration report_path =
      config_.variant == LisaVariant::kAlpha
          ? (network_.link_delay(config_.entry_size()) + relay) *
                static_cast<std::int64_t>(tree_.max_depth() + 1)
          : sim::transmission_delay(2ULL * (device_count() + 1) *
                                        config_.entry_size() * 8,
                                    config_.link.rate_bps) +
                (config_.link.per_hop_latency + relay) *
                    static_cast<std::int64_t>(tree_.max_depth() + 1);
  // With per-radio serialization every relay pushes its whole subtree's
  // reports through one transmitter; bound by the root children's load
  // (plus the arity-fold request fan-out on the way down).
  const sim::Duration contention_allowance =
      config_.link.serialize_tx
          ? sim::transmission_delay(
                static_cast<std::uint64_t>(device_count() + 2) *
                    (config_.entry_size() + config_.link.header_bytes) * 8,
                config_.link.rate_bps) +
                hop_req * static_cast<std::int64_t>(
                              config_.tree_arity * tree_.max_depth())
          : sim::Duration::zero();
  const sim::SimTime give_up =
      scheduler_.now() +
      hop_req * static_cast<std::int64_t>(tree_.max_depth() + 1) +
      attest_time() + report_path + contention_allowance +
      config_.report_margin *
          static_cast<std::int64_t>(tree_.max_depth() + 2);
  t_resp_ = give_up;
  root_deadline_ =
      scheduler_.schedule_at(give_up, [this] { finish_round(); });

  scheduler_.run();

  report.t_resp = t_resp_;
  report.u_ca_bytes = network_.bytes_transmitted();
  report.messages = network_.messages_sent();
  report.responded = static_cast<std::uint32_t>(root_reports_.size());

  // Vrf verification: per-device token against the enrolled cfg_i.
  crypto::MacBuf expected;
  for (const auto& [id, token] : root_reports_) {
    devices_[id - 1].mac.mac_into(expected_[id - 1], round_nonce_, expected);
    if (!crypto::ct_equal(token, expected.view())) {
      report.bad.push_back(id);
    }
  }
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    if (!root_seen_[id]) report.missing.push_back(id);
  }
  report.verified = report.bad.empty() && report.missing.empty();
  round_active_ = false;
  return report;
}

void LisaSimulation::on_message(const net::Message& msg) {
  if (msg.dst == 0) {
    root_receive(msg);
    return;
  }
  if (msg.dst > device_count() || dev(msg.dst).unresponsive) return;
  switch (msg.kind) {
    case kRequestMsg:
      handle_request(msg.dst, msg);
      break;
    case kReportMsg:
      handle_report(msg.dst, msg);
      break;
    default:
      break;
  }
}

void LisaSimulation::handle_request(net::NodeId id, const net::Message& msg) {
  Dev& d = dev(id);
  if (d.got_request) return;
  d.got_request = true;
  for (net::NodeId child : tree_.children(id)) {
    network_.send(id, child, kRequestMsg, msg.payload);
  }
  scheduler_.schedule_after(attest_time(), [this, id] { self_attested(id); });

  if (config_.variant == LisaVariant::kS && !tree_.children(id).empty()) {
    // Bundle deadline: children attest ~one hop later with the same
    // T_att; bundle transmission grows with the subtree (along the
    // deepest chain the payload roughly doubles per level, bounded by
    // pushing ~2x this node's subtree once).
    const sim::Duration hop_req = network_.link_delay(config_.nonce_size);
    const std::uint32_t levels = tree_.max_depth() - tree_.depth(id);
    const sim::Duration relay =
        sim::cycles_to_time(config_.relay_cycles, config_.device_hz);
    const std::uint64_t worst_bits =
        2ULL * subtree_[id] * config_.entry_size() * 8;
    const sim::SimTime deadline =
        scheduler_.now() + attest_time() +
        sim::transmission_delay(worst_bits, config_.link.rate_bps) +
        (hop_req + config_.link.per_hop_latency + relay) *
            static_cast<std::int64_t>(levels) +
        config_.report_margin * static_cast<std::int64_t>(levels + 1);
    d.deadline = scheduler_.schedule_at(deadline, [this, id] { flush(id); });
  }
}

void LisaSimulation::self_attested(net::NodeId id) {
  Dev& d = dev(id);
  if (d.unresponsive) return;
  const Bytes entry = make_entry(id);
  if (config_.variant == LisaVariant::kAlpha) {
    // Send the individual report toward Vrf; parents relay.
    network_.send(id, tree_.parent(id), kReportMsg, entry);
    return;
  }
  d.bundle.insert(d.bundle.end(), entry.begin(), entry.end());
  d.self_done = true;
  try_submit(id);
}

void LisaSimulation::handle_report(net::NodeId id, const net::Message& msg) {
  Dev& d = dev(id);
  const sim::Duration relay =
      sim::cycles_to_time(config_.relay_cycles, config_.device_hz);

  if (config_.variant == LisaVariant::kAlpha) {
    if (msg.payload.size() != config_.entry_size()) return;
    // Store-and-forward relay. Duplicates cannot arise on a tree from
    // honest traffic; the verifier deduplicates defensively anyway
    // (per-relay dedup state would cost O(N) per device).
    scheduler_.schedule_after(relay, [this, id, p = msg.payload] {
      network_.send(id, tree_.parent(id), kReportMsg, p);
    });
    return;
  }

  // kS: child bundle arrives; merge.
  if (d.sent) return;
  if (msg.payload.size() % config_.entry_size() != 0) return;
  d.bundle.insert(d.bundle.end(), msg.payload.begin(), msg.payload.end());
  if (d.waiting > 0) --d.waiting;
  try_submit(id);
}

void LisaSimulation::try_submit(net::NodeId id) {
  Dev& d = dev(id);
  if (d.sent || !d.self_done || d.waiting != 0) return;
  scheduler_.cancel(d.deadline);
  d.sent = true;
  const sim::Duration relay =
      sim::cycles_to_time(config_.relay_cycles, config_.device_hz);
  scheduler_.schedule_after(relay, [this, id, p = d.bundle] {
    network_.send(id, tree_.parent(id), kReportMsg, p);
  });
}

void LisaSimulation::flush(net::NodeId id) {
  Dev& d = dev(id);
  if (d.sent) return;
  d.sent = true;
  network_.send(id, tree_.parent(id), kReportMsg, d.bundle);
}

void LisaSimulation::root_receive(const net::Message& msg) {
  if (done_ || msg.kind != kReportMsg) return;
  if (msg.payload.size() % config_.entry_size() != 0 ||
      msg.payload.empty()) {
    return;
  }
  const std::size_t entry = config_.entry_size();
  for (std::size_t off = 0; off < msg.payload.size(); off += entry) {
    const std::uint32_t id = read_u32le(msg.payload, off);
    if (id == 0 || id > device_count() || root_seen_[id]) continue;
    root_seen_[id] = 1;
    root_reports_.emplace_back(
        id, Bytes(msg.payload.begin() +
                      static_cast<std::ptrdiff_t>(off + 4),
                  msg.payload.begin() +
                      static_cast<std::ptrdiff_t>(off + entry)));
  }
  if (config_.variant == LisaVariant::kS) {
    if (root_waiting_bundles_ > 0) --root_waiting_bundles_;
    if (root_waiting_bundles_ == 0) {
      scheduler_.cancel(root_deadline_);
      finish_round();
      return;
    }
  }
  if (root_reports_.size() == device_count()) {
    scheduler_.cancel(root_deadline_);
    finish_round();
  }
}

void LisaSimulation::finish_round() {
  if (done_) return;
  done_ = true;
  t_resp_ = scheduler_.now();
}

}  // namespace cra::lisa
