// LISA — the "two LISAs" from the paper's related work (Carpent et al.,
// AsiaCCS 2017), reproduced on the same substrate so the whole design
// space can be compared head-to-head (see bench/compare_protocols):
//
//   * LISAα (asynchronous): Vrf floods a nonce; every device attests on
//     receipt and emits its own full report (id || HMAC over nonce and
//     its measurement), which intermediate devices merely RELAY toward
//     Vrf (deduplicating). No aggregation at all: maximal QoA, O(N·depth)
//     transport, no clock needed, minimal device logic.
//   * LISAs (synchronous-ish): the tree variant — each device attests on
//     receipt, then waits for its children's bundles and submits the
//     concatenation. Same QoA, transport Θ(N·l·depth') where entries
//     cross each link once, plus parent bookkeeping.
//
// Both differ from SAP in the property TCA-Model makes central: devices
// attest at *different* times (whenever the request reaches them), so
// the verifier's verdict is a patchwork of per-device snapshots rather
// than one synchronized cut — roaming malware can, in principle, stay
// ahead of the measurement wave. SAP pays a secure synchronized clock
// for eliminating exactly that.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/mac_cache.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"

namespace cra::lisa {

enum class LisaVariant : std::uint8_t { kAlpha, kS };

const char* variant_name(LisaVariant variant) noexcept;

struct LisaConfig {
  LisaVariant variant = LisaVariant::kAlpha;
  crypto::HashAlg alg = crypto::HashAlg::kSha1;
  std::uint32_t pmem_size = 50 * 1024;
  std::uint64_t device_hz = 24'000'000;
  std::uint64_t attest_overhead_cycles = 5'000;
  std::uint64_t cycles_per_block = 14'400;
  std::uint64_t relay_cycles = 800;  // per relayed/merged report
  net::LinkParams link{};
  std::uint32_t tree_arity = 2;
  std::uint32_t nonce_size = 20;
  sim::Duration report_margin = sim::Duration::from_ms(20);

  std::size_t entry_size() const noexcept {
    return 4 + crypto::digest_size(alg);  // id || token
  }
};

struct LisaRoundReport {
  bool verified = false;
  std::uint32_t responded = 0;
  std::uint32_t devices = 0;
  sim::SimTime t_req;
  sim::SimTime t_resp;
  sim::Duration total_time() const noexcept { return t_resp - t_req; }
  std::uint64_t u_ca_bytes = 0;
  std::uint64_t messages = 0;
  std::vector<net::NodeId> bad;      // reported, wrong token
  std::vector<net::NodeId> missing;  // never reported
};

class LisaSimulation {
 public:
  LisaSimulation(LisaConfig config, net::Tree tree, std::uint64_t seed = 1);
  LisaSimulation(const LisaSimulation&) = delete;
  LisaSimulation& operator=(const LisaSimulation&) = delete;

  static LisaSimulation balanced(LisaConfig config, std::uint32_t devices,
                                 std::uint64_t seed = 1);

  const LisaConfig& config() const noexcept { return config_; }
  const net::Tree& tree() const noexcept { return tree_; }
  net::Network& network() noexcept { return network_; }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  std::uint32_t device_count() const noexcept { return tree_.device_count(); }

  void compromise_device(net::NodeId id);
  void restore_device(net::NodeId id);
  void set_device_unresponsive(net::NodeId id, bool unresponsive);

  LisaRoundReport run_round();
  void advance_time(sim::Duration d);

  sim::Duration attest_time() const;

 private:
  struct Dev {
    Bytes key;
    // Midstate cache over `key`, shared by the device's attest MAC and
    // Vrf's recomputation (both use the same enrolled key).
    crypto::PrecomputedMac mac;
    Bytes content;
    bool compromised = false;
    bool unresponsive = false;

    // Per-round state.
    bool got_request = false;
    bool self_done = false;   // kS: own measurement folded in
    bool sent = false;        // kS: bundle submitted
    std::uint32_t waiting = 0;
    Bytes bundle;  // kS: accumulated entries
    sim::EventHandle deadline;
  };

  Dev& dev(net::NodeId id) { return devices_[id - 1]; }

  Bytes make_entry(net::NodeId id) const;
  void on_message(const net::Message& msg);
  void handle_request(net::NodeId id, const net::Message& msg);
  void self_attested(net::NodeId id);
  void handle_report(net::NodeId id, const net::Message& msg);
  void try_submit(net::NodeId id);
  void flush(net::NodeId id);
  void root_receive(const net::Message& msg);
  void finish_round();

  LisaConfig config_;
  net::Tree tree_;
  sim::Scheduler scheduler_;
  net::Network network_;
  Bytes master_;
  Bytes round_nonce_;
  std::vector<Dev> devices_;
  std::vector<Bytes> expected_;  // enrolled cfg_i per device
  std::vector<std::uint32_t> subtree_;  // per tree node, incl. itself

  bool round_active_ = false;
  sim::SimTime t_resp_;
  bool done_ = false;
  std::vector<std::uint8_t> root_seen_;
  std::vector<std::pair<net::NodeId, Bytes>> root_reports_;
  std::uint32_t root_waiting_bundles_ = 0;
  sim::EventHandle root_deadline_;
};

}  // namespace cra::lisa
