// Execution-aware memory protection (paper Equations 15–20).
//
// TrustLite's EA-MPU decides data-access permissions based on *where the
// program counter currently is*, not just on the target address. That is
// exactly what makes the attest TCB implementable without a hypervisor:
//
//   (15) ∀t: r4 = attest            — attest's code region is immutable
//   (16) ∀t: r6 = K                 — the key region is immutable
//   (17) Read(r6) → PC ∈ r4         — only attest may read the key
//   (18) entering r4 only at first(r4)   (controlled invocation: entry)
//   (19) leaving r4 only from last(r4)   (controlled invocation: exit)
//   (20) PC ∈ r4 → ¬interrupt       — attest is uninterruptible
//
// The Mpu is consulted by the CPU on every fetch, data access, control
// transfer, and interrupt request; any violation yields a Fault and the
// machine traps (the access never happens). Section defaults are also
// enforced here: ROM is never writable, ProMEM outside registered
// regions is inaccessible to software, and execute permission is
// per-section configurable (execution from DMEM models
// malware-relocation attacks and is allowed by default).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "device/memory.hpp"

namespace cra::device {

enum class Access : std::uint8_t { kRead, kWrite, kExecute };

enum class FaultKind : std::uint8_t {
  kNone,
  kWriteToRom,
  kWriteToAttestCode,    // violates Eq. 15
  kWriteToKey,           // violates Eq. 16
  kKeyReadOutsideAttest, // violates Eq. 17
  kBadAttestEntry,       // violates Eq. 18
  kBadAttestExit,        // violates Eq. 19
  kProtectedAccess,      // unregistered ProMEM access
  kNoExecute,            // execute from a non-executable section
  kOutOfBounds,
};

const char* fault_name(FaultKind kind) noexcept;

struct Fault {
  FaultKind kind = FaultKind::kNone;
  Addr address = 0;  // offending target address
  Addr pc = 0;       // PC at the time of the violation
};

/// Per-section execute permission (read/write defaults are fixed by the
/// model: ROM R/X, PMEM R/W/X, DMEM R/W, ProMEM policy-only).
struct MpuConfig {
  bool dmem_executable = true;   // malware-relocation experiments need it
  bool pmem_writable = true;     // remote adversary can modify binaries

  // Per-rule enforcement switches. All default on; the security-game
  // ablation tests switch individual rules off to demonstrate that each
  // one is necessary (the corresponding adversary strategy then wins).
  bool enforce_immutability = true;          // Eqs. 15 & 16
  bool enforce_key_access = true;            // Eq. 17
  bool enforce_controlled_invocation = true; // Eqs. 18 & 19
  bool enforce_no_interrupt = true;          // Eq. 20
};

class Mpu {
 public:
  Mpu(const Memory& memory, MpuConfig config);

  /// Register the attest TCB regions (r4 = code, r6 = key). Both must lie
  /// inside ProMEM and not overlap; throws std::invalid_argument
  /// otherwise.
  void set_attest_regions(Region code, Region key);

  /// Additional ProMEM scratch readable/writable only while PC ∈ r4
  /// (attest's stack — keeps intermediate HMAC state out of Adv's reach).
  void set_attest_scratch(Region scratch);

  const Region& attest_code() const noexcept { return attest_code_; }
  const Region& attest_key() const noexcept { return attest_key_; }
  bool attest_registered() const noexcept { return attest_code_.size() > 0; }

  /// Check a data access performed while the PC is at `pc`.
  std::optional<Fault> check_data(Access access, Addr target,
                                  std::uint32_t len, Addr pc) const;

  /// Check an instruction fetch at `pc` (execute permission only).
  std::optional<Fault> check_fetch(Addr pc) const;

  /// Check a control transfer from `from_pc` to `to_pc` — enforces the
  /// controlled-invocation rules (18)/(19). `from_pc == to_pc` never
  /// occurs (every instruction advances or jumps).
  std::optional<Fault> check_transfer(Addr from_pc, Addr to_pc) const;

  /// Eq. 20: may an interrupt be taken while executing at `pc`?
  bool interrupts_allowed(Addr pc) const noexcept;

  /// First / last instruction addresses of r4 (entry and exit points).
  Addr attest_entry() const noexcept { return attest_code_.start; }
  Addr attest_exit() const noexcept { return attest_code_.end - 4; }

 private:
  const Memory& memory_;
  MpuConfig config_;
  Region attest_code_{};
  Region attest_key_{};
  Region attest_scratch_{};
};

}  // namespace cra::device
