// DMA controller — the §IV-A assumption made explicit, then violated.
//
// The TCA machine model assumes "there is no Direct Memory Access;
// thus, modifications to M and R occur through CPU instructions". That
// assumption is load-bearing: attest's temporal consistency (§V-C
// guarantee (b)) holds because nothing can write PMEM while the
// uninterruptible TCB is hashing it. Real microcontrollers have DMA, so
// a production EA-MPU must arbitrate it.
//
// This controller lets experiments have it both ways:
//   * guarded (default): a transfer that becomes due while the CPU is
//     executing inside r4 is stalled by the memory arbiter until the
//     TCB exits — the hardware rule a DMA-capable TrustLite needs;
//   * unguarded (`guard_attest = false`): the transfer lands mid-attest,
//     enabling the classic TOCTOU evasion — malware wipes itself from
//     the not-yet-hashed tail (or re-lands in the already-hashed head)
//     while attest runs, so the token reports a state the device never
//     coherently had. tests/device/test_dma.cpp demonstrates the attack
//     succeeding exactly and only on the unguarded platform.
//
// Transfers fire at an absolute CPU cycle count and complete as a burst
// (peripheral-speed modelling isn't needed for the security argument).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "device/cpu.hpp"
#include "device/memory.hpp"
#include "device/mpu.hpp"

namespace cra::device {

class DmaController {
 public:
  /// `guard_attest`: enforce the "no DMA writes while PC is in r4" rule.
  DmaController(Memory& memory, const Mpu& mpu, bool guard_attest = true);

  /// Queue a burst write of `data` to `dst`, due once the CPU's cycle
  /// counter reaches `due_cycle`.
  void queue_write(Addr dst, Bytes data, std::uint64_t due_cycle);

  /// Pump the controller: called by the CPU after every instruction (see
  /// Cpu::set_peripheral). Performs all due transfers permitted by the
  /// guard; stalled transfers stay queued.
  void tick(Cpu& cpu);

  std::size_t pending() const noexcept { return queue_.size(); }
  /// Transfers that were due but stalled by the attest guard at least
  /// once (observability for the tests).
  std::uint64_t stalled() const noexcept { return stalled_; }
  std::uint64_t completed() const noexcept { return completed_; }

  bool guard_enabled() const noexcept { return guard_attest_; }

 private:
  struct Transfer {
    Addr dst;
    Bytes data;
    std::uint64_t due_cycle;
  };

  Memory& memory_;
  const Mpu& mpu_;
  bool guard_attest_;
  std::vector<Transfer> queue_;
  std::uint64_t stalled_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace cra::device
