// Two-pass assembler for the TCA machine ISA.
//
// Example applications and the security tests need real firmware images
// (benign tasks, malware payloads, relocation loaders) without
// hand-encoding words. Syntax, one instruction or directive per line:
//
//   ; comment                      .org  0x400   (absolute, zero-fills)
//   start:                        .word 0xdeadbeef
//     ldi   r1, 42                .ascii "hi"
//     lui   r2, 0x1234            .space 16
//     add   r1, r2, r3
//     addi  r1, r2, -4
//     ldw   r1, r2, 8             ; rd, base, offset
//     stw   r1, r2, 8             ; src, base, offset
//     beq   r1, r2, label
//     jmp   label      /  call label  /  jr lr
//     rdclk r5         /  ei / di / iret / nop / halt
//
// Registers r0..r15 with aliases lr (r14) and sp (r13). Immediates are
// decimal or 0x-hex, optionally negative. Labels may be used before
// definition (pass 1 collects them, pass 2 encodes).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "device/memory.hpp"

namespace cra::device {

/// Error with line number context.
class AssemblerError : public std::runtime_error {
 public:
  AssemblerError(std::size_t line, const std::string& message);
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

struct Program {
  Addr base = 0;                      // load address of image[0]
  Bytes image;                        // contiguous bytes from base
  std::map<std::string, Addr> labels; // absolute label addresses
};

/// Assemble `source` with the first byte at `base`. Throws
/// AssemblerError on any syntax or range problem.
Program assemble(std::string_view source, Addr base);

}  // namespace cra::device
