#include "device/disasm.hpp"

#include <sstream>
#include <stdexcept>

namespace cra::device {
namespace {

std::string reg_name(std::uint8_t r) {
  if (r == kLinkReg) return "lr";
  return "r" + std::to_string(r);
}

std::string hex_word(std::uint32_t word) {
  std::ostringstream os;
  os << ".word 0x" << std::hex << word;
  return os.str();
}

}  // namespace

std::string disassemble(std::uint32_t word) {
  const auto decoded = decode(word);
  if (!decoded) return hex_word(word);
  const Instruction& ins = *decoded;
  const char* name = opcode_name(ins.op);
  std::ostringstream os;
  os << name;
  switch (ins.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kEi:
    case Opcode::kDi:
    case Opcode::kIret:
      break;
    case Opcode::kLdi:
    case Opcode::kLui:
      os << ' ' << reg_name(ins.rd) << ", "
         << (static_cast<std::uint32_t>(ins.imm) & 0xffffu);
      break;
    case Opcode::kRdclk:
      os << ' ' << reg_name(ins.rd);
      break;
    case Opcode::kMov:
      os << ' ' << reg_name(ins.rd) << ", " << reg_name(ins.rs1);
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
      os << ' ' << reg_name(ins.rd) << ", " << reg_name(ins.rs1) << ", "
         << reg_name(ins.rs2);
      break;
    case Opcode::kAddi:
    case Opcode::kLdb:
    case Opcode::kLdw:
    case Opcode::kStb:
    case Opcode::kStw:
      os << ' ' << reg_name(ins.rd) << ", " << reg_name(ins.rs1) << ", "
         << ins.imm;
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
      // B-format fields live in (rd, rs1) after decode.
      os << ' ' << reg_name(ins.rd) << ", " << reg_name(ins.rs1) << ", "
         << ins.imm;
      break;
    case Opcode::kJmp:
    case Opcode::kCall:
      os << ' ' << ins.target;
      break;
    case Opcode::kJr:
      os << ' ' << reg_name(ins.rs1);
      break;
    case Opcode::kMaxOpcode:
      return hex_word(word);
  }
  return os.str();
}

std::vector<DisasmLine> disassemble_range(const Memory& memory, Addr addr,
                                          std::uint32_t count) {
  if (addr % 4 != 0) {
    throw std::invalid_argument("disassemble_range: unaligned address");
  }
  std::vector<DisasmLine> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const Addr a = addr + 4 * i;
    const std::uint32_t word = memory.read32(a);
    out.push_back({a, word, disassemble(word)});
  }
  return out;
}

std::string dump_range(const Memory& memory, Addr addr,
                       std::uint32_t count) {
  std::ostringstream os;
  for (const DisasmLine& line : disassemble_range(memory, addr, count)) {
    os << "0x" << std::hex << line.addr << ": " << line.text << '\n';
  }
  return os.str();
}

}  // namespace cra::device
