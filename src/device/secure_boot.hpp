// Secure Boot (paper §VII-A).
//
// TrustLite's Secure Boot, keyed by the platform secret k_plat, ensures
// integrity and immutability of SAP's code and K_{mi,Vrf} before the OS
// runs (this is what backs Equations 15 and 16 at boot time; the EA-MPU
// backs them at run time). We model it as a keyed measurement of the
// boot-critical memory — ROM plus the attest code region r4 plus the key
// region r6 — compared against a reference MAC provisioned at
// deployment. A device whose TCB was altered while powered off refuses
// to boot.
#pragma once

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "device/memory.hpp"
#include "device/mpu.hpp"

namespace cra::device {

class SecureBoot {
 public:
  /// `k_plat` is the per-device platform secret fused at manufacture.
  SecureBoot(Bytes k_plat, crypto::HashAlg alg = crypto::HashAlg::kSha1);

  /// Measure the boot-critical state: ROM || r4 || r6.
  Bytes measure(const Memory& memory, const Mpu& mpu) const;

  /// Record the current measurement as the reference (done once at
  /// deployment, after provisioning firmware and keys).
  void provision(const Memory& memory, const Mpu& mpu);

  /// True iff the current measurement matches the reference. Must be
  /// called after provision(); throws std::logic_error otherwise.
  bool verify(const Memory& memory, const Mpu& mpu) const;

  bool provisioned() const noexcept { return !reference_.empty(); }

 private:
  Bytes k_plat_;
  crypto::HashAlg alg_;
  Bytes reference_;
};

}  // namespace cra::device
