// Disassembler for the TCA machine ISA.
//
// Inverse of the assembler at instruction granularity: the text it
// produces re-assembles to the identical word (the round-trip property
// the tests enforce). Used by debugging helpers and the firmware dump
// tooling in the examples.
#pragma once

#include <string>
#include <vector>

#include "device/isa.hpp"
#include "device/memory.hpp"

namespace cra::device {

/// Render one instruction word as assembler text ("add r1, r2, r3").
/// Unknown opcodes render as ".word 0x<hex>". Branch targets are
/// rendered as numeric offsets relative to `pc` when `pc` is provided
/// (and as raw offsets otherwise); jump targets are absolute.
std::string disassemble(std::uint32_t word);

struct DisasmLine {
  Addr addr = 0;
  std::uint32_t word = 0;
  std::string text;
};

/// Disassemble `count` words starting at `addr` (must be word-aligned).
std::vector<DisasmLine> disassemble_range(const Memory& memory, Addr addr,
                                          std::uint32_t count);

/// Multi-line dump ("0x0400: ldi r1, 42").
std::string dump_range(const Memory& memory, Addr addr, std::uint32_t count);

}  // namespace cra::device
