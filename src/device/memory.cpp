#include "device/memory.hpp"

#include <stdexcept>

namespace cra::device {

const char* section_name(Section s) noexcept {
  switch (s) {
    case Section::kRom: return "ROM";
    case Section::kPmem: return "PMEM";
    case Section::kDmem: return "DMEM";
    case Section::kPromem: return "ProMEM";
  }
  return "?";
}

Memory::Memory(MemoryLayout layout) : layout_(layout) {
  if (layout_.rom_size % 4 != 0 || layout_.pmem_size % 4 != 0 ||
      layout_.dmem_size % 4 != 0 || layout_.promem_size % 4 != 0) {
    throw std::invalid_argument("Memory: section sizes must be word-aligned");
  }
  if (layout_.total() == 0) {
    throw std::invalid_argument("Memory: empty layout");
  }
  data_.assign(layout_.total(), 0);
}

Section Memory::section_of(Addr a) const {
  if (a < layout_.pmem_base()) return Section::kRom;
  if (a < layout_.dmem_base()) return Section::kPmem;
  if (a < layout_.promem_base()) return Section::kDmem;
  if (a < layout_.total()) return Section::kPromem;
  throw std::out_of_range("Memory::section_of: address beyond memory");
}

Region Memory::section_region(Section s) const noexcept {
  switch (s) {
    case Section::kRom:
      return {layout_.rom_base(), layout_.pmem_base()};
    case Section::kPmem:
      return {layout_.pmem_base(), layout_.dmem_base()};
    case Section::kDmem:
      return {layout_.dmem_base(), layout_.promem_base()};
    case Section::kPromem:
      return {layout_.promem_base(), layout_.total()};
  }
  return {};
}

void Memory::bounds_check(Addr a, std::uint32_t len) const {
  if (a >= data_.size() || len > data_.size() - a) {
    throw std::out_of_range("Memory: access beyond address space");
  }
}

std::uint8_t Memory::read8(Addr a) const {
  bounds_check(a, 1);
  return data_[a];
}

std::uint32_t Memory::read32(Addr a) const {
  bounds_check(a, 4);
  return static_cast<std::uint32_t>(data_[a]) |
         (static_cast<std::uint32_t>(data_[a + 1]) << 8) |
         (static_cast<std::uint32_t>(data_[a + 2]) << 16) |
         (static_cast<std::uint32_t>(data_[a + 3]) << 24);
}

void Memory::write8(Addr a, std::uint8_t v) {
  bounds_check(a, 1);
  data_[a] = v;
}

void Memory::write32(Addr a, std::uint32_t v) {
  bounds_check(a, 4);
  data_[a] = static_cast<std::uint8_t>(v);
  data_[a + 1] = static_cast<std::uint8_t>(v >> 8);
  data_[a + 2] = static_cast<std::uint8_t>(v >> 16);
  data_[a + 3] = static_cast<std::uint8_t>(v >> 24);
}

Bytes Memory::read_range(Addr a, std::uint32_t len) const {
  bounds_check(a, len);
  return Bytes(data_.begin() + a, data_.begin() + a + len);
}

void Memory::write_range(Addr a, BytesView data) {
  bounds_check(a, static_cast<std::uint32_t>(data.size()));
  std::copy(data.begin(), data.end(), data_.begin() + a);
}

Bytes Memory::snapshot(Section s) const {
  const Region r = section_region(s);
  return read_range(r.start, r.size());
}

void Memory::load(Section s, BytesView image) {
  const Region r = section_region(s);
  if (image.size() > r.size()) {
    throw std::invalid_argument("Memory::load: image larger than section");
  }
  write_range(r.start, image);
}

}  // namespace cra::device
