// Interpreted attest TCB: HMAC-SHA1 written in the device's own ISA.
//
// The native attest routine (attest_tcb.hpp) models the TCB as an atomic
// hardware-assisted step. This module goes further: it generates a
// complete HMAC-SHA1 implementation in TCA machine code, installs it
// into the r4 region, and lets the ordinary fetch-execute interpreter
// run it — every instruction fetched from r4, every key byte read under
// Eq. 17, every scratch access under the ProMEM policy, entry/exit
// through first(r4)/last(r4) under Eqs. 18/19, interrupts vetoed by
// Eq. 20 on each cycle. The produced token is bit-identical to the
// native routine's (and hence to the verifier's expectation), and the
// cycle cost is the *measured* instruction stream, not a model.
//
// Program layout inside r4 (code size fixed by config.attest_code_size;
// the architectural exit `jr lr` sits at the region's last word):
//
//   entry:  save LR, read secure clock, compare with the chal mailbox
//           -> mismatch: zero the token mailbox, exit
//   body:   ipad block, 64-byte PMEM blocks, final block with the
//           little-endian chal + SHA-1 padding; then the outer hash over
//           opad || inner digest; write the 20-byte token big-endian
//   exit:   restore LR, jump to last(r4) = `jr lr`
//
// Constraints (checked, throws std::invalid_argument):
//   * config.attest.alg == HashAlg::kSha1 (l = 160)
//   * pmem_size % 64 == 0 (blocks align; all standard sizes qualify)
//   * attest_code_size large enough for the program (>= ~3 KB)
//   * attest scratch >= 512 bytes (SHA-1 state + block + W + spill)
#pragma once

#include <string>

#include "device/assembler.hpp"
#include "device/device.hpp"

namespace cra::device {

/// A device configuration whose ProMEM geometry fits the interpreted
/// TCB: 4 KB r4, key at +4096, 1 KB scratch at +4608 (ProMEM >= 8 KB).
/// `pmem_size` must be a multiple of 64.
DeviceConfig interpreted_attest_config(std::uint32_t pmem_size = 4 * 1024);

/// Generate the assembly source for the given device geometry.
/// Exposed for inspection/tests; install_interpreted_attest() is the
/// normal entry point.
std::string generate_attest_asm(const DeviceConfig& config);

/// Assemble the TCB for `config` at its r4 base address.
Program assemble_interpreted_attest(const DeviceConfig& config);

/// Replace `device`'s native attest routine with the interpreted one:
/// writes the program into r4 (manufacture-time raw access), clears the
/// native hook, and re-provisions Secure Boot over the new TCB.
void install_interpreted_attest(Device& device);

}  // namespace cra::device
