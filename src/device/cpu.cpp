#include "device/cpu.hpp"

#include <stdexcept>

namespace cra::device {

Cpu::Cpu(Memory& memory, Mpu& mpu, const SecureClock& clock, std::uint64_t hz)
    : memory_(memory), mpu_(mpu), clock_(clock), hz_(hz) {
  if (hz_ == 0) throw std::invalid_argument("Cpu: hz must be > 0");
}

std::uint32_t Cpu::reg(std::uint8_t idx) const {
  if (idx >= kNumRegs) throw std::out_of_range("Cpu::reg: bad index");
  return regs_[idx];
}

void Cpu::set_reg(std::uint8_t idx, std::uint32_t value) {
  if (idx >= kNumRegs) throw std::out_of_range("Cpu::set_reg: bad index");
  regs_[idx] = value;
}

void Cpu::reset(Addr entry) {
  for (auto& r : regs_) r = 0;
  pc_ = entry;
  epc_ = 0;
  interrupts_enabled_ = false;
  state_ = CpuState::kRunning;
  fault_.reset();
  irq_queue_.clear();
}

void Cpu::raise_interrupt(Addr handler) { irq_queue_.push_back(handler); }

std::uint32_t Cpu::read_secure_clock() const noexcept {
  return clock_.read_at_cycles(clock_base_ + cycles_);
}

void Cpu::set_attest_routine(NativeRoutine routine) {
  attest_routine_ = std::move(routine);
}

void Cpu::trap(const Fault& f) {
  state_ = CpuState::kFaulted;
  fault_ = f;
}

bool Cpu::deliver_interrupt() {
  if (irq_queue_.empty() || !interrupts_enabled_) return false;
  if (!mpu_.interrupts_allowed(pc_)) {
    // Eq. 20: the request stays pending until attest finishes.
    ++deferred_irqs_;
    return false;
  }
  const Addr handler = irq_queue_.front();
  irq_queue_.pop_front();
  // A vector that points into the middle of the attest region is itself
  // a controlled-invocation violation (Eq. 18 applies to every control
  // transfer, interrupt dispatch included).
  if (const auto f = mpu_.check_transfer(pc_, handler)) {
    trap(*f);
    return true;
  }
  epc_ = pc_;
  interrupts_enabled_ = false;
  pc_ = handler;
  cycles_ += 4;  // context-save latency
  return true;
}

bool Cpu::transfer_to(Addr from, Addr target) {
  if (const auto f = mpu_.check_transfer(from, target)) {
    trap(*f);
    return false;
  }
  // A controlled entry into the attest region runs the native TCB
  // atomically when one is registered.
  if (attest_routine_ && mpu_.attest_registered() &&
      target == mpu_.attest_entry() && !mpu_.attest_code().contains(from)) {
    cycles_ += attest_routine_(*this, memory_);
    // The routine "executes" from first(r4) through last(r4) and returns
    // via the link register, i.e. the exit transfer happens at last(r4)
    // which Eq. 19 permits.
    const Addr ret = regs_[kLinkReg];
    if (const auto f = mpu_.check_transfer(mpu_.attest_exit(), ret)) {
      trap(*f);
      return false;
    }
    pc_ = ret;
    return true;
  }
  pc_ = target;
  return true;
}

bool Cpu::step() {
  if (state_ != CpuState::kRunning) return false;
  if (deliver_interrupt()) return true;

  if (const auto f = mpu_.check_fetch(pc_)) {
    trap(*f);
    return false;
  }
  const std::uint32_t word = memory_.read32(pc_);
  const auto decoded = decode(word);
  if (!decoded) {
    trap(Fault{FaultKind::kNoExecute, pc_, pc_});
    return false;
  }
  const Instruction& ins = *decoded;
  cycles_ += opcode_cycles(ins.op);

  const Addr cur = pc_;
  const Addr next = pc_ + 4;
  const std::uint32_t uimm16 = static_cast<std::uint32_t>(ins.imm) & 0xffffu;

  auto data_addr = [&](std::uint8_t base) {
    return regs_[base] + static_cast<std::uint32_t>(ins.imm);
  };
  auto branch = [&](bool taken) {
    if (taken) {
      cycles_ += 1;
      return transfer_to(cur, cur + static_cast<std::uint32_t>(ins.imm));
    }
    return transfer_to(cur, next);
  };

  switch (ins.op) {
    case Opcode::kNop:
      return transfer_to(cur, next);
    case Opcode::kHalt:
      state_ = CpuState::kHalted;
      return true;
    case Opcode::kLdi:
      regs_[ins.rd] = uimm16;
      return transfer_to(cur, next);
    case Opcode::kLui:
      regs_[ins.rd] = uimm16 << 16;
      return transfer_to(cur, next);
    case Opcode::kMov:
      regs_[ins.rd] = regs_[ins.rs1];
      return transfer_to(cur, next);
    case Opcode::kAdd:
      regs_[ins.rd] = regs_[ins.rs1] + regs_[ins.rs2];
      return transfer_to(cur, next);
    case Opcode::kSub:
      regs_[ins.rd] = regs_[ins.rs1] - regs_[ins.rs2];
      return transfer_to(cur, next);
    case Opcode::kMul:
      regs_[ins.rd] = regs_[ins.rs1] * regs_[ins.rs2];
      return transfer_to(cur, next);
    case Opcode::kAnd:
      regs_[ins.rd] = regs_[ins.rs1] & regs_[ins.rs2];
      return transfer_to(cur, next);
    case Opcode::kOr:
      regs_[ins.rd] = regs_[ins.rs1] | regs_[ins.rs2];
      return transfer_to(cur, next);
    case Opcode::kXor:
      regs_[ins.rd] = regs_[ins.rs1] ^ regs_[ins.rs2];
      return transfer_to(cur, next);
    case Opcode::kShl:
      regs_[ins.rd] = regs_[ins.rs1] << (regs_[ins.rs2] & 31u);
      return transfer_to(cur, next);
    case Opcode::kShr:
      regs_[ins.rd] = regs_[ins.rs1] >> (regs_[ins.rs2] & 31u);
      return transfer_to(cur, next);
    case Opcode::kAddi:
      regs_[ins.rd] = regs_[ins.rs1] + static_cast<std::uint32_t>(ins.imm);
      return transfer_to(cur, next);
    case Opcode::kLdb: {
      const Addr a = data_addr(ins.rs1);
      if (const auto f = mpu_.check_data(Access::kRead, a, 1, cur)) {
        trap(*f);
        return false;
      }
      regs_[ins.rd] = memory_.read8(a);
      return transfer_to(cur, next);
    }
    case Opcode::kLdw: {
      const Addr a = data_addr(ins.rs1);
      if (const auto f = mpu_.check_data(Access::kRead, a, 4, cur)) {
        trap(*f);
        return false;
      }
      regs_[ins.rd] = memory_.read32(a);
      return transfer_to(cur, next);
    }
    case Opcode::kStb: {
      const Addr a = data_addr(ins.rs1);
      if (const auto f = mpu_.check_data(Access::kWrite, a, 1, cur)) {
        trap(*f);
        return false;
      }
      memory_.write8(a, static_cast<std::uint8_t>(regs_[ins.rd]));
      return transfer_to(cur, next);
    }
    case Opcode::kStw: {
      const Addr a = data_addr(ins.rs1);
      if (const auto f = mpu_.check_data(Access::kWrite, a, 4, cur)) {
        trap(*f);
        return false;
      }
      memory_.write32(a, regs_[ins.rd]);
      return transfer_to(cur, next);
    }
    case Opcode::kBeq:
      return branch(regs_[ins.rd] == regs_[ins.rs1]);
    case Opcode::kBne:
      return branch(regs_[ins.rd] != regs_[ins.rs1]);
    case Opcode::kBlt:
      return branch(static_cast<std::int32_t>(regs_[ins.rd]) <
                    static_cast<std::int32_t>(regs_[ins.rs1]));
    case Opcode::kBge:
      return branch(static_cast<std::int32_t>(regs_[ins.rd]) >=
                    static_cast<std::int32_t>(regs_[ins.rs1]));
    case Opcode::kBltu:
      return branch(regs_[ins.rd] < regs_[ins.rs1]);
    case Opcode::kJmp:
      return transfer_to(cur, ins.target);
    case Opcode::kCall:
      regs_[kLinkReg] = next;
      return transfer_to(cur, ins.target);
    case Opcode::kJr:
      return transfer_to(cur, regs_[ins.rs1]);
    case Opcode::kRdclk:
      regs_[ins.rd] = read_secure_clock();
      return transfer_to(cur, next);
    case Opcode::kEi:
      interrupts_enabled_ = true;
      return transfer_to(cur, next);
    case Opcode::kDi:
      interrupts_enabled_ = false;
      return transfer_to(cur, next);
    case Opcode::kIret:
      interrupts_enabled_ = true;
      return transfer_to(cur, epc_);
    case Opcode::kMaxOpcode:
      break;
  }
  trap(Fault{FaultKind::kNoExecute, cur, cur});
  return false;
}

StopReason Cpu::run(std::uint64_t max_cycles) {
  const std::uint64_t limit = cycles_ + max_cycles;
  while (state_ == CpuState::kRunning && cycles_ < limit) {
    const bool progressed = step();
    if (peripheral_) peripheral_(*this);
    if (!progressed) break;
  }
  if (state_ == CpuState::kHalted) return StopReason::kHalted;
  if (state_ == CpuState::kFaulted) return StopReason::kFaulted;
  return StopReason::kCycleBudget;
}

}  // namespace cra::device
