// Network-wide secure synchronized clock (paper §V-C / §VII-A).
//
// SAP's attest requires every device to agree on the current time and
// requires that malware cannot spoof readSecureClock(). The paper's
// TrustLite extension is a write-protected 32-bit register incremented
// every 250,000 cycles of the 24 MHz core (one tick ≈ 10.42 ms), which
// wraps around after ~2 years.
//
// The register is hardware-written only: software reaches it exclusively
// through the RDCLK instruction, and this class exposes no mutating API
// to machine code. Simulation "synchronizes" all devices by deriving the
// tick count from the shared simulation time plus a per-device boot
// offset (0 when perfectly synchronized; tests exercise skew).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace cra::device {

class SecureClock {
 public:
  /// `hz` is the core frequency driving the counter; `divisor` is the
  /// cycle count per tick. Defaults are the paper's (24 MHz / 250,000).
  explicit SecureClock(std::uint64_t hz = 24'000'000,
                       std::uint32_t divisor = 250'000);

  std::uint64_t hz() const noexcept { return hz_; }
  std::uint32_t divisor() const noexcept { return divisor_; }

  /// Tick period.
  sim::Duration tick_period() const noexcept;

  /// Time until the 32-bit register wraps (the paper: "almost 2 years").
  double wraparound_seconds() const noexcept;

  /// Read the register given the device's cumulative cycle count
  /// (standalone VM runs — the counter is driven by the core clock).
  std::uint32_t read_at_cycles(std::uint64_t cycles) const noexcept;

  /// Read the register given global simulation time (networked runs —
  /// the counter was synchronized at deployment). `skew` models residual
  /// synchronization error.
  std::uint32_t read_at_time(sim::SimTime now,
                             sim::Duration skew = sim::Duration::zero())
      const noexcept;

  /// Convert a tick value back to the start of that tick (used by the
  /// verifier to translate chal = t_att ticks into simulation time).
  sim::SimTime tick_to_time(std::uint32_t tick) const noexcept;

  /// First tick whose start time is >= `t`.
  std::uint32_t time_to_tick_ceil(sim::SimTime t) const noexcept;

 private:
  std::uint64_t hz_;
  std::uint32_t divisor_;
};

}  // namespace cra::device
