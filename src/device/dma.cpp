#include "device/dma.hpp"

#include <algorithm>

namespace cra::device {

DmaController::DmaController(Memory& memory, const Mpu& mpu,
                             bool guard_attest)
    : memory_(memory), mpu_(mpu), guard_attest_(guard_attest) {}

void DmaController::queue_write(Addr dst, Bytes data,
                                std::uint64_t due_cycle) {
  queue_.push_back(Transfer{dst, std::move(data), due_cycle});
}

void DmaController::tick(Cpu& cpu) {
  if (queue_.empty()) return;
  const std::uint64_t now = cpu.cycles();
  const bool in_attest =
      mpu_.attest_registered() && mpu_.attest_code().contains(cpu.pc());

  auto it = queue_.begin();
  while (it != queue_.end()) {
    if (it->due_cycle > now) {
      ++it;
      continue;
    }
    if (guard_attest_ && in_attest) {
      // The memory arbiter holds the transfer until the TCB exits.
      ++stalled_;
      ++it;
      continue;
    }
    memory_.write_range(it->dst, it->data);
    ++completed_;
    it = queue_.erase(it);
  }
}

}  // namespace cra::device
