#include "device/clock.hpp"

#include <stdexcept>

namespace cra::device {

SecureClock::SecureClock(std::uint64_t hz, std::uint32_t divisor)
    : hz_(hz), divisor_(divisor) {
  if (hz == 0 || divisor == 0) {
    throw std::invalid_argument("SecureClock: hz and divisor must be > 0");
  }
}

sim::Duration SecureClock::tick_period() const noexcept {
  return sim::cycles_to_time(divisor_, hz_);
}

double SecureClock::wraparound_seconds() const noexcept {
  return static_cast<double>(divisor_) / static_cast<double>(hz_) *
         4294967296.0;
}

std::uint32_t SecureClock::read_at_cycles(std::uint64_t cycles) const noexcept {
  return static_cast<std::uint32_t>(cycles / divisor_);
}

std::uint32_t SecureClock::read_at_time(sim::SimTime now,
                                        sim::Duration skew) const noexcept {
  const std::int64_t ns = now.ns() + skew.ns();
  if (ns <= 0) return 0;
  // ticks = ns * hz / (divisor * 1e9), computed in 128 bits to avoid
  // overflow over multi-year simulated spans.
  const sim::Uint128 cycles =
      static_cast<sim::Uint128>(ns) * hz_ / 1'000'000'000ULL;
  return static_cast<std::uint32_t>(cycles / divisor_);
}

sim::SimTime SecureClock::tick_to_time(std::uint32_t tick) const noexcept {
  // Round up so that reading the clock back at the returned instant
  // already yields `tick` (the register increments at the boundary).
  const sim::Uint128 ns = (static_cast<sim::Uint128>(tick) * divisor_ *
                               1'000'000'000ULL + hz_ - 1) / hz_;
  return sim::SimTime(static_cast<std::int64_t>(ns));
}

std::uint32_t SecureClock::time_to_tick_ceil(sim::SimTime t) const noexcept {
  if (t.ns() <= 0) return 0;
  const sim::Uint128 cycles =
      (static_cast<sim::Uint128>(t.ns()) * hz_ + 999'999'999ULL) /
      1'000'000'000ULL;
  const sim::Uint128 ticks = (cycles + divisor_ - 1) / divisor_;
  return static_cast<std::uint32_t>(ticks);
}

}  // namespace cra::device
