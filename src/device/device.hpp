// Device facade: one TCA-Model machine, fully assembled.
//
// Wires together Memory, Mpu, SecureClock, Cpu, SecureBoot and the
// attest TCB into the machine the paper's §IV-A + §V describe, and
// exposes the three interfaces the rest of the repository needs:
//
//   * the software interface — load firmware, boot, run cycles, request
//     attestation the way benign firmware would (mailbox + call);
//   * the hardware/deployment interface — key provisioning, clock
//     synchronization against simulation time;
//   * the adversary interface — the remote-attacker actions the
//     TCA-Security game grants Adv: rewriting any writable memory,
//     attempting key reads, clock tampering, interrupt injection.
//     These are deliberately explicit methods so security tests read as
//     attack scripts.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/hmac.hpp"
#include "device/attest_tcb.hpp"
#include "device/clock.hpp"
#include "device/cpu.hpp"
#include "device/memory.hpp"
#include "device/mpu.hpp"
#include "device/secure_boot.hpp"

namespace cra::device {

struct DeviceConfig {
  MemoryLayout layout{};
  MpuConfig mpu{};
  AttestTcbConfig attest{};
  std::uint64_t hz = 24'000'000;       // paper's 24 MHz TrustLite
  std::uint32_t clock_divisor = 250'000;
  /// r4/r6/scratch geometry inside ProMEM (offsets from promem_base).
  std::uint32_t attest_code_offset = 0;
  std::uint32_t attest_code_size = 512;
  std::uint32_t attest_key_offset = 512;
  std::uint32_t attest_scratch_offset = 1024;
  std::uint32_t attest_scratch_size = 1024;
  /// Ablation: a (deliberately broken) platform whose clock register is
  /// software-writable — adversary strategy (c) wins against it.
  bool clock_writable = false;
};

class Device {
 public:
  /// `id` is the network identity m_i; `key` is K_{mi,Vrf} provisioned
  /// at deployment; `k_plat` seeds Secure Boot.
  Device(std::uint32_t id, DeviceConfig config, BytesView key,
         BytesView k_plat);

  // Internal components hold references to each other (Mpu -> Memory,
  // Cpu -> Mpu); the object is pinned to its address.
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  std::uint32_t id() const noexcept { return id_; }
  const DeviceConfig& config() const noexcept { return config_; }

  Memory& memory() noexcept { return memory_; }
  const Memory& memory() const noexcept { return memory_; }
  Mpu& mpu() noexcept { return mpu_; }
  Cpu& cpu() noexcept { return cpu_; }
  const Cpu& cpu() const noexcept { return cpu_; }
  const SecureClock& clock() const noexcept { return clock_; }
  SecureBoot& secure_boot() noexcept { return boot_; }

  // --- Deployment-time operations ---
  /// Load the application firmware image into PMEM at offset 0.
  void load_firmware(BytesView image);
  /// Load boot/OS code into ROM at offset 0.
  void load_rom(BytesView image);
  /// Record the Secure Boot reference measurement (after loading ROM and
  /// provisioning the TCB).
  void provision();
  /// Run Secure Boot and reset the CPU to the ROM entry point. Returns
  /// false (device refuses to start) when the measurement mismatches.
  bool boot();

  /// Expected PMEM configuration cfg_i — what Vrf stores in VS.
  Bytes expected_pmem() const { return memory_.snapshot(Section::kPmem); }

  // --- Attestation (software path) ---
  AttestMailboxes mailboxes() const;
  Addr attest_entry() const { return mpu_.attest_entry(); }
  void write_chal(std::uint32_t chal);
  Bytes read_token() const;
  /// Invoke attest the way firmware does: LR <- resume point, jump to
  /// first(r4), let the TCB run. Returns the cycle cost charged.
  std::uint64_t invoke_attest(std::uint32_t chal);
  /// Analytic attest duration (T_att).
  std::uint64_t attest_cost_cycles() const;
  sim::Duration attest_cost_time() const;

  // --- Clock synchronization (hardware path) ---
  /// Align the secure clock with global simulation time `now` (network-
  /// wide synchronized clock). Optionally with residual skew.
  void sync_clock(sim::SimTime now, sim::Duration skew = sim::Duration::zero());
  std::uint32_t clock_ticks() const noexcept { return cpu_.read_secure_clock(); }
  std::uint32_t tick_at(sim::SimTime t) const noexcept {
    return clock_.read_at_time(t);
  }

  // --- Adversary interface (remote software attacker, §IV-D) ---
  /// Overwrite PMEM at `offset` — remote malware infestation. Goes
  /// through the MPU as a software write (PMEM is writable), so it
  /// succeeds; that is the attack SAP must *detect*, not prevent.
  void adv_infect_pmem(std::uint32_t offset, BytesView payload);
  /// Copy a PMEM range into DMEM and zero the original — the
  /// malware-relocation evasion the paper mentions.
  void adv_relocate_to_dmem(std::uint32_t pmem_offset, std::uint32_t len,
                            std::uint32_t dmem_offset);
  /// Attempt to read K_{mi,Vrf} as software running outside r4; returns
  /// the Fault raised by the MPU (nullopt means the read succeeded —
  /// only possible with enforce_key_access = false).
  std::optional<Fault> adv_try_read_key(Bytes* leaked = nullptr);
  /// Attempt to overwrite attest's code region; returns the Fault.
  std::optional<Fault> adv_try_patch_attest(BytesView patch);
  /// Attempt to set the secure clock forward/backward. Returns false on
  /// a correct platform (register is read-only); true (attack succeeded)
  /// when config.clock_writable.
  bool adv_try_set_clock(std::uint32_t ticks);
  /// Inject an interrupt request aimed at `handler`.
  void adv_raise_interrupt(Addr handler) { cpu_.raise_interrupt(handler); }

  /// The key region r6 (tests compare leaked bytes against it).
  Region key_region() const noexcept { return mpu_.attest_key(); }

 private:
  std::uint32_t id_;
  DeviceConfig config_;
  Memory memory_;
  Mpu mpu_;
  SecureClock clock_;
  Cpu cpu_;
  SecureBoot boot_;
};

}  // namespace cra::device
