// Memory of the TCA machine model (paper §IV-A).
//
// M consists of four sections, laid out contiguously in one 32-bit
// byte-addressable space:
//
//   ROM     — read-only memory (boot code, interrupt vectors)
//   PMEM    — executable program memory; this is what attest measures
//   DMEM    — standard RAM incl. memory-mapped GPIO
//   ProMEM  — protected memory readable/writable only per MPU policy
//             (hosts the attest implementation r4 and the key K r6)
//
// This class is storage + geometry only; the access-control policy that
// makes ProMEM "protected" is enforced per execution cycle by the Mpu
// (mpu.hpp), mirroring the paper's "trusted hardware which monitors, at
// each execution cycle, PC and M locations accessed by CPU".
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace cra::device {

using Addr = std::uint32_t;

enum class Section : std::uint8_t { kRom, kPmem, kDmem, kPromem };

const char* section_name(Section s) noexcept;

/// Sizes of the four sections in bytes; all must be word-multiples.
struct MemoryLayout {
  std::uint32_t rom_size = 1024;
  std::uint32_t pmem_size = 50 * 1024;  // paper's evaluation: 50 KB PMEM
  std::uint32_t dmem_size = 8 * 1024;
  std::uint32_t promem_size = 4 * 1024;

  std::uint32_t total() const noexcept {
    return rom_size + pmem_size + dmem_size + promem_size;
  }
  Addr rom_base() const noexcept { return 0; }
  Addr pmem_base() const noexcept { return rom_size; }
  Addr dmem_base() const noexcept { return rom_size + pmem_size; }
  Addr promem_base() const noexcept {
    return rom_size + pmem_size + dmem_size;
  }
};

/// A half-open address range [start, end).
struct Region {
  Addr start = 0;
  Addr end = 0;

  std::uint32_t size() const noexcept { return end - start; }
  bool contains(Addr a) const noexcept { return a >= start && a < end; }
  bool contains_range(Addr a, std::uint32_t len) const noexcept {
    return a >= start && a <= end && len <= end - a;
  }
  bool overlaps(const Region& other) const noexcept {
    return start < other.end && other.start < end;
  }
  bool operator==(const Region&) const noexcept = default;
};

class Memory {
 public:
  explicit Memory(MemoryLayout layout);

  const MemoryLayout& layout() const noexcept { return layout_; }

  /// Which section an address belongs to; throws std::out_of_range for
  /// addresses beyond the layout.
  Section section_of(Addr a) const;
  Region section_region(Section s) const noexcept;

  /// Raw (policy-free) accessors. The CPU never calls these directly —
  /// it goes through the MPU; tests, loaders, the attest TCB (which by
  /// construction may read all of M), and the adversary harness do.
  std::uint8_t read8(Addr a) const;
  std::uint32_t read32(Addr a) const;  // little-endian
  void write8(Addr a, std::uint8_t v);
  void write32(Addr a, std::uint32_t v);

  /// Bulk access; throws std::out_of_range when the range leaves the
  /// address space.
  Bytes read_range(Addr a, std::uint32_t len) const;
  void write_range(Addr a, BytesView data);

  /// Entire-section snapshot/load (firmware loading, PMEM measurement).
  Bytes snapshot(Section s) const;
  void load(Section s, BytesView image);

 private:
  void bounds_check(Addr a, std::uint32_t len) const;

  MemoryLayout layout_;
  Bytes data_;
};

}  // namespace cra::device
