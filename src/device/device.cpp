#include "device/device.hpp"

#include <stdexcept>

#include "device/isa.hpp"

namespace cra::device {
namespace {

/// ROM offsets of the built-in boot image.
constexpr Addr kBootEntryOffset = 0x00;
constexpr Addr kAttestTrampolineOffset = 0x40;

}  // namespace

Device::Device(std::uint32_t id, DeviceConfig config, BytesView key,
               BytesView k_plat)
    : id_(id),
      config_(config),
      memory_(config.layout),
      mpu_(memory_, config.mpu),
      clock_(config.hz, config.clock_divisor),
      cpu_(memory_, mpu_, clock_, config.hz),
      boot_(Bytes(k_plat.begin(), k_plat.end()), config.attest.alg) {
  const std::size_t key_len = crypto::digest_size(config.attest.alg);
  if (key.size() != key_len) {
    throw std::invalid_argument("Device: key length must equal digest size");
  }

  const Addr promem = config.layout.promem_base();
  const Region code{promem + config.attest_code_offset,
                    promem + config.attest_code_offset +
                        config.attest_code_size};
  const Region key_region{
      promem + config.attest_key_offset,
      promem + config.attest_key_offset +
          static_cast<std::uint32_t>(key_len)};
  mpu_.set_attest_regions(code, key_region);
  mpu_.set_attest_scratch(
      Region{promem + config.attest_scratch_offset,
             promem + config.attest_scratch_offset +
                 config.attest_scratch_size});

  // Hardware provisioning path: the key is written into r6 before the
  // MPU locks (constructor = manufacture time), so we use raw access.
  memory_.write_range(key_region.start, key);

  // r4 contents: a measured, immutable placeholder body whose final word
  // is the architectural exit (`jr lr`). The semantics run natively via
  // the registered routine; the bytes exist so Secure Boot has something
  // real to measure and Eq. 15 something real to protect.
  for (Addr a = code.start; a < code.end - 4; a += 4) {
    memory_.write32(a, encode_r(Opcode::kNop, 0, 0, 0));
  }
  memory_.write32(code.end - 4, encode_r(Opcode::kJr, 0, kLinkReg));
  cpu_.set_attest_routine(
      make_attest_routine(config.attest, key_region));

  // Built-in boot ROM: reset vector jumps to the firmware in PMEM; a
  // trampoline lets the (untrusted) OS request attestation and park.
  memory_.write32(config.layout.rom_base() + kBootEntryOffset,
                  encode_j(Opcode::kJmp, config.layout.pmem_base()));
  memory_.write32(config.layout.rom_base() + kAttestTrampolineOffset,
                  encode_j(Opcode::kCall, mpu_.attest_entry()));
  memory_.write32(config.layout.rom_base() + kAttestTrampolineOffset + 4,
                  encode_r(Opcode::kHalt, 0, 0, 0));
}

void Device::load_firmware(BytesView image) {
  memory_.load(Section::kPmem, image);
}

void Device::load_rom(BytesView image) {
  memory_.load(Section::kRom, image);
}

void Device::provision() { boot_.provision(memory_, mpu_); }

bool Device::boot() {
  if (!boot_.verify(memory_, mpu_)) return false;
  cpu_.reset(config_.layout.rom_base() + kBootEntryOffset);
  return true;
}

AttestMailboxes Device::mailboxes() const {
  return attest_mailboxes(config_.layout, config_.attest);
}

void Device::write_chal(std::uint32_t chal) {
  memory_.write32(mailboxes().chal, chal);
}

Bytes Device::read_token() const {
  return memory_.read_range(
      mailboxes().token,
      static_cast<std::uint32_t>(crypto::digest_size(config_.attest.alg)));
}

std::uint64_t Device::invoke_attest(std::uint32_t chal) {
  write_chal(chal);
  const std::uint64_t before = cpu_.cycles();
  cpu_.set_pc(config_.layout.rom_base() + kAttestTrampolineOffset);
  cpu_.set_reg(kLinkReg, 0);
  // `state` may be halted/faulted from a previous run; a fresh dispatch
  // through the trampoline needs a running CPU.
  if (cpu_.state() != CpuState::kRunning) {
    const std::uint64_t base = cpu_.clock_base_cycles();
    cpu_.reset(config_.layout.rom_base() + kAttestTrampolineOffset);
    cpu_.set_clock_base_cycles(base);
  }
  const std::uint64_t budget = attest_cost_cycles() + 1'000;
  const StopReason reason = cpu_.run(budget);
  if (reason == StopReason::kFaulted) {
    throw std::runtime_error("Device::invoke_attest: unexpected fault");
  }
  return cpu_.cycles() - before;
}

std::uint64_t Device::attest_cost_cycles() const {
  return attest_cycles(config_.attest, config_.layout.pmem_size);
}

sim::Duration Device::attest_cost_time() const {
  return sim::cycles_to_time(attest_cost_cycles(), config_.hz);
}

void Device::sync_clock(sim::SimTime now, sim::Duration skew) {
  const std::int64_t ns = now.ns() + skew.ns();
  const std::uint64_t cycles_at_now =
      ns <= 0 ? 0
              : static_cast<std::uint64_t>(
                    static_cast<sim::Uint128>(ns) * config_.hz /
                    1'000'000'000ULL);
  // After syncing, read_secure_clock() == clock ticks at global `now`.
  cpu_.set_clock_base_cycles(cycles_at_now >= cpu_.cycles()
                                 ? cycles_at_now - cpu_.cycles()
                                 : 0);
}

void Device::adv_infect_pmem(std::uint32_t offset, BytesView payload) {
  const Addr target = config_.layout.pmem_base() + offset;
  // Remote malware runs as software from PMEM; the MPU allows the write
  // (PMEM is writable) unless the platform locks it down.
  const Addr malware_pc = config_.layout.pmem_base();
  if (const auto fault = mpu_.check_data(
          Access::kWrite, target, static_cast<std::uint32_t>(payload.size()),
          malware_pc)) {
    throw std::runtime_error(std::string("adv_infect_pmem blocked: ") +
                             fault_name(fault->kind));
  }
  memory_.write_range(target, payload);
}

void Device::adv_relocate_to_dmem(std::uint32_t pmem_offset, std::uint32_t len,
                                  std::uint32_t dmem_offset) {
  const Addr src = config_.layout.pmem_base() + pmem_offset;
  const Addr dst = config_.layout.dmem_base() + dmem_offset;
  const Bytes chunk = memory_.read_range(src, len);
  memory_.write_range(dst, chunk);
  memory_.write_range(src, Bytes(len, 0));
}

std::optional<Fault> Device::adv_try_read_key(Bytes* leaked) {
  const Region key = mpu_.attest_key();
  const Addr malware_pc = config_.layout.pmem_base();  // outside r4
  if (const auto fault =
          mpu_.check_data(Access::kRead, key.start, key.size(), malware_pc)) {
    return fault;
  }
  if (leaked != nullptr) {
    *leaked = memory_.read_range(key.start, key.size());
  }
  return std::nullopt;
}

std::optional<Fault> Device::adv_try_patch_attest(BytesView patch) {
  const Region code = mpu_.attest_code();
  const Addr malware_pc = config_.layout.pmem_base();
  const auto len = static_cast<std::uint32_t>(
      std::min<std::size_t>(patch.size(), code.size()));
  if (const auto fault =
          mpu_.check_data(Access::kWrite, code.start, len, malware_pc)) {
    return fault;
  }
  memory_.write_range(code.start, patch.subspan(0, len));
  return std::nullopt;
}

bool Device::adv_try_set_clock(std::uint32_t ticks) {
  if (!config_.clock_writable) {
    return false;  // the register is read-only hardware; write ignored
  }
  const std::uint64_t target_cycles =
      static_cast<std::uint64_t>(ticks) * config_.clock_divisor;
  cpu_.set_clock_base_cycles(
      target_cycles >= cpu_.cycles() ? target_cycles - cpu_.cycles() : 0);
  return true;
}

}  // namespace cra::device
