// Instruction set of the TCA machine model.
//
// The paper models devices as RAMs whose instructions are Reads (memory
// -> registers), Writes (registers -> memory) and Executes (register
// -> register, including branches that modify PC). This ISA realizes
// that taxonomy as a small 32-bit-word load/store machine: 16 general
// registers, fixed 4-byte encodings, little-endian memory. It is rich
// enough to run real firmware images (the assembler in assembler.hpp
// produces them) and the malware used by the security tests, yet small
// enough to interpret at cycle granularity.
//
// Encoding (one 32-bit word, fields from the most significant byte):
//   [31:24] opcode
//   R-type : [23:20] rd  [19:16] rs1 [15:12] rs2
//   I-type : [23:20] rd  [19:16] rs1 [15:0]  imm16 (sign-extended)
//   U-type : [23:20] rd  [15:0] imm16 (LDI zero-extends, LUI shifts <<16)
//   B-type : [23:20] rs1 [19:16] rs2 [15:0]  imm16 (signed PC-relative,
//                                                    byte offset, ×4)
//   J-type : [23:0] imm24 (absolute byte address, word-aligned)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace cra::device {

enum class Opcode : std::uint8_t {
  kNop = 0,
  kHalt,
  kLdi,    // U: rd = zext(imm16)
  kLui,    // U: rd = imm16 << 16
  kMov,    // R: rd = rs1
  kAdd,    // R: rd = rs1 + rs2
  kSub,    // R: rd = rs1 - rs2
  kMul,    // R: rd = low32(rs1 * rs2)
  kAnd,    // R
  kOr,     // R
  kXor,    // R
  kShl,    // R: rd = rs1 << (rs2 & 31)
  kShr,    // R: rd = rs1 >> (rs2 & 31) (logical)
  kAddi,   // I: rd = rs1 + sext(imm16)
  kLdb,    // I: rd = zext(M8[rs1 + sext(imm16)])
  kLdw,    // I: rd = M32[rs1 + sext(imm16)]
  kStb,    // I: M8[rs1 + sext(imm16)] = rd & 0xff
  kStw,    // I: M32[rs1 + sext(imm16)] = rd
  kBeq,    // B: if rs1 == rs2 then PC += sext(imm16)
  kBne,    // B
  kBlt,    // B: signed <
  kBge,    // B: signed >=
  kBltu,   // B: unsigned <
  kJmp,    // J: PC = imm24
  kCall,   // J: LR = PC + 4; PC = imm24
  kJr,     // R: PC = rs1
  kRdclk,  // U(rd only): rd = secure clock ticks (read-only hardware)
  kEi,     // enable interrupts
  kDi,     // disable interrupts
  kIret,   // PC = EPC; enable interrupts
  kMaxOpcode,
};

/// Register indices; R14 doubles as the link register for kCall/kJr.
constexpr std::uint8_t kNumRegs = 16;
constexpr std::uint8_t kLinkReg = 14;

const char* opcode_name(Opcode op) noexcept;

/// Base cycle cost of an opcode (memory ops pay an extra cycle; taken
/// branches pay one more — the interpreter adds those).
std::uint32_t opcode_cycles(Opcode op) noexcept;

// --- Encoders (used by the assembler and tests) ---

std::uint32_t encode_r(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                       std::uint8_t rs2 = 0);
std::uint32_t encode_i(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                       std::int32_t imm16);
std::uint32_t encode_u(Opcode op, std::uint8_t rd, std::uint32_t imm16);
std::uint32_t encode_b(Opcode op, std::uint8_t rs1, std::uint8_t rs2,
                       std::int32_t offset_bytes);
std::uint32_t encode_j(Opcode op, std::uint32_t target_addr);

/// Decoded instruction fields (union of all formats).
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;        // sign-extended imm16 (I/B) or imm16 (U)
  std::uint32_t target = 0;    // imm24 (J)
};

/// Decode a word; returns nullopt for an unknown opcode (illegal
/// instruction — the CPU treats it as a fault-halt).
std::optional<Instruction> decode(std::uint32_t word) noexcept;

}  // namespace cra::device
