#include "device/mpu.hpp"

#include <stdexcept>

namespace cra::device {

const char* fault_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kWriteToRom: return "write-to-ROM";
    case FaultKind::kWriteToAttestCode: return "write-to-attest-code";
    case FaultKind::kWriteToKey: return "write-to-key";
    case FaultKind::kKeyReadOutsideAttest: return "key-read-outside-attest";
    case FaultKind::kBadAttestEntry: return "bad-attest-entry";
    case FaultKind::kBadAttestExit: return "bad-attest-exit";
    case FaultKind::kProtectedAccess: return "protected-access";
    case FaultKind::kNoExecute: return "no-execute";
    case FaultKind::kOutOfBounds: return "out-of-bounds";
  }
  return "?";
}

Mpu::Mpu(const Memory& memory, MpuConfig config)
    : memory_(memory), config_(config) {}

void Mpu::set_attest_regions(Region code, Region key) {
  const Region promem = memory_.section_region(Section::kPromem);
  if (!promem.contains_range(code.start, code.size()) ||
      !promem.contains_range(key.start, key.size())) {
    throw std::invalid_argument("Mpu: attest regions must lie in ProMEM");
  }
  if (code.size() < 8 || code.size() % 4 != 0 || code.start % 4 != 0) {
    throw std::invalid_argument("Mpu: attest code region malformed");
  }
  if (key.size() == 0 || code.overlaps(key)) {
    throw std::invalid_argument("Mpu: attest key region malformed");
  }
  attest_code_ = code;
  attest_key_ = key;
}

void Mpu::set_attest_scratch(Region scratch) {
  const Region promem = memory_.section_region(Section::kPromem);
  if (!promem.contains_range(scratch.start, scratch.size()) ||
      scratch.overlaps(attest_code_) || scratch.overlaps(attest_key_)) {
    throw std::invalid_argument("Mpu: attest scratch region malformed");
  }
  attest_scratch_ = scratch;
}

std::optional<Fault> Mpu::check_data(Access access, Addr target,
                                     std::uint32_t len, Addr pc) const {
  if (target >= memory_.layout().total() ||
      len > memory_.layout().total() - target) {
    return Fault{FaultKind::kOutOfBounds, target, pc};
  }
  const Section sec = memory_.section_of(target);
  const bool pc_in_attest = attest_code_.contains(pc);

  if (access == Access::kWrite) {
    if (sec == Section::kRom) {
      return Fault{FaultKind::kWriteToRom, target, pc};
    }
    if (attest_code_.overlaps(Region{target, target + len})) {
      if (config_.enforce_immutability) {
        return Fault{FaultKind::kWriteToAttestCode, target, pc};  // Eq. 15
      }
      return std::nullopt;  // ablated platform: the patch goes through
    }
    if (attest_key_.overlaps(Region{target, target + len})) {
      if (config_.enforce_immutability) {
        return Fault{FaultKind::kWriteToKey, target, pc};  // Eq. 16
      }
      return std::nullopt;
    }
    if (sec == Section::kPromem) {
      // Scratch is writable only from within attest; everything else in
      // ProMEM is off-limits to software stores.
      if (pc_in_attest && attest_scratch_.contains_range(target, len)) {
        return std::nullopt;
      }
      return Fault{FaultKind::kProtectedAccess, target, pc};
    }
    if (sec == Section::kPmem && !config_.pmem_writable) {
      return Fault{FaultKind::kProtectedAccess, target, pc};
    }
    return std::nullopt;
  }

  // Reads.
  if (attest_key_.overlaps(Region{target, target + len})) {
    if (!pc_in_attest && config_.enforce_key_access) {
      return Fault{FaultKind::kKeyReadOutsideAttest, target, pc};  // Eq. 17
    }
    return std::nullopt;
  }
  if (sec == Section::kPromem) {
    const Region want{target, target + len};
    const bool in_code = attest_code_.contains_range(target, len);
    const bool in_scratch = attest_scratch_.contains_range(target, len);
    (void)want;
    if (in_code) return std::nullopt;  // attest code is readable (it is
                                       // measured by secure boot)
    if (in_scratch) {
      if (pc_in_attest) return std::nullopt;
      return Fault{FaultKind::kProtectedAccess, target, pc};
    }
    return Fault{FaultKind::kProtectedAccess, target, pc};
  }
  return std::nullopt;
}

std::optional<Fault> Mpu::check_fetch(Addr pc) const {
  if (pc >= memory_.layout().total() || pc % 4 != 0) {
    return Fault{FaultKind::kOutOfBounds, pc, pc};
  }
  const Section sec = memory_.section_of(pc);
  switch (sec) {
    case Section::kRom:
    case Section::kPmem:
      return std::nullopt;
    case Section::kDmem:
      if (config_.dmem_executable) return std::nullopt;
      return Fault{FaultKind::kNoExecute, pc, pc};
    case Section::kPromem:
      if (attest_code_.contains(pc)) return std::nullopt;
      return Fault{FaultKind::kNoExecute, pc, pc};
  }
  return Fault{FaultKind::kNoExecute, pc, pc};
}

std::optional<Fault> Mpu::check_transfer(Addr from_pc, Addr to_pc) const {
  if (!attest_registered() || !config_.enforce_controlled_invocation) {
    return std::nullopt;
  }
  const bool from_inside = attest_code_.contains(from_pc);
  const bool to_inside = attest_code_.contains(to_pc);
  if (!from_inside && to_inside && to_pc != attest_entry()) {
    return Fault{FaultKind::kBadAttestEntry, to_pc, from_pc};  // Eq. 18
  }
  if (from_inside && !to_inside && from_pc != attest_exit()) {
    return Fault{FaultKind::kBadAttestExit, to_pc, from_pc};  // Eq. 19
  }
  return std::nullopt;
}

bool Mpu::interrupts_allowed(Addr pc) const noexcept {
  if (!config_.enforce_no_interrupt) return true;
  return !attest_code_.contains(pc);  // Eq. 20
}

}  // namespace cra::device
