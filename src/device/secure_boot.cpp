#include "device/secure_boot.hpp"

#include <stdexcept>

#include "crypto/ct.hpp"

namespace cra::device {

SecureBoot::SecureBoot(Bytes k_plat, crypto::HashAlg alg)
    : k_plat_(std::move(k_plat)), alg_(alg) {
  if (k_plat_.empty()) {
    throw std::invalid_argument("SecureBoot: empty platform key");
  }
}

Bytes SecureBoot::measure(const Memory& memory, const Mpu& mpu) const {
  Bytes message = memory.snapshot(Section::kRom);
  if (mpu.attest_registered()) {
    const Region code = mpu.attest_code();
    const Region key = mpu.attest_key();
    const Bytes code_bytes = memory.read_range(code.start, code.size());
    const Bytes key_bytes = memory.read_range(key.start, key.size());
    message.insert(message.end(), code_bytes.begin(), code_bytes.end());
    message.insert(message.end(), key_bytes.begin(), key_bytes.end());
  }
  return crypto::hmac(alg_, k_plat_, message);
}

void SecureBoot::provision(const Memory& memory, const Mpu& mpu) {
  reference_ = measure(memory, mpu);
}

bool SecureBoot::verify(const Memory& memory, const Mpu& mpu) const {
  if (!provisioned()) {
    throw std::logic_error("SecureBoot: verify before provision");
  }
  return crypto::ct_equal(measure(memory, mpu), reference_);
}

}  // namespace cra::device
