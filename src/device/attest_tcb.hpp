// The attest Trusted Computing Base (paper §V-C).
//
//   attest^mi:
//     time = readSecureClock()
//     if (chal != time)  h_mi = 0^l
//     else               h_mi = HMAC_{K_mi,Vrf}(PMEM(mi, chal) || chal)
//
// The TCB executes as the native routine of the MPU's r4 region: it is
// entered only at first(r4) (Eq. 18), runs to completion uninterruptibly
// (Eq. 20) — which is what makes the PMEM snapshot temporally consistent
// — reads K from r6 (legal: PC ∈ r4, Eq. 17), and leaves through
// last(r4) (Eq. 19). The cycle cost it reports is the analytic cost of
// HMAC over the whole PMEM at the configured cycles-per-compression
// rate, which is how the network simulation prices the measurement
// phase.
//
// Software ABI (what firmware does to request attestation):
//   - write the 32-bit challenge (the scheduled tick t_att) to the chal
//     mailbox in DMEM,
//   - `call` the attest entry point,
//   - read the l-byte token from the token mailbox afterwards.
#pragma once

#include <cstdint>

#include "crypto/hmac.hpp"
#include "device/cpu.hpp"
#include "device/memory.hpp"

namespace cra::device {

struct AttestTcbConfig {
  crypto::HashAlg alg = crypto::HashAlg::kSha1;
  /// DMEM offsets (relative to dmem_base) of the mailboxes.
  std::uint32_t chal_mailbox_offset = 0;    // 4-byte challenge
  std::uint32_t token_mailbox_offset = 16;  // digest_size(alg) bytes
  /// Timing model: entry/exit + bookkeeping, and the per-compression-
  /// block cost of the HMAC core (≈225 cycles/byte on a small in-order
  /// core; see DESIGN.md §4).
  std::uint64_t overhead_cycles = 5'000;
  std::uint64_t cycles_per_block = 14'400;
};

/// Addresses derived from a memory layout + config.
struct AttestMailboxes {
  Addr chal = 0;
  Addr token = 0;
};

AttestMailboxes attest_mailboxes(const MemoryLayout& layout,
                                 const AttestTcbConfig& config);

/// Analytic execution cost of one attest call (T_att in cycles).
std::uint64_t attest_cycles(const AttestTcbConfig& config,
                            std::uint32_t pmem_size);

/// Build the native routine implementing attest. `key_region` is r6 (the
/// routine reads K from there at run time, so key rotation through
/// hardware re-provisioning is visible to it).
Cpu::NativeRoutine make_attest_routine(AttestTcbConfig config,
                                       Region key_region);

}  // namespace cra::device
