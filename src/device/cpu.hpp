// Cycle-counting interpreter for the TCA machine model.
//
// Fetch-execute rounds exactly as §IV-A describes: each round the MPU
// vets the fetch at PC, the decoded instruction's data accesses, and the
// resulting control transfer; any violation raises a hardware fault and
// the machine traps (the offending access never takes effect). The CPU
// also owns interrupt delivery, which the MPU may veto while PC is inside
// the attest region (Eq. 20).
//
// Native regions: a memory region may be registered as hardware-assisted
// trusted code (the attest TCB). A valid controlled-invocation entry into
// such a region runs the registered routine atomically — charging its
// cycle cost in one step, mirroring uninterruptible execution from
// first(r4) to last(r4) — and returns through the link register.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "device/clock.hpp"
#include "device/isa.hpp"
#include "device/memory.hpp"
#include "device/mpu.hpp"

namespace cra::device {

enum class CpuState : std::uint8_t {
  kRunning,
  kHalted,    // executed HALT
  kFaulted,   // MPU violation or illegal instruction
};

/// Outcome of run(): why execution stopped.
enum class StopReason : std::uint8_t {
  kCycleBudget,  // budget exhausted, machine still runnable
  kHalted,
  kFaulted,
};

class Cpu {
 public:
  /// The native-routine hook: runs with full memory access (the TCB is
  /// trusted hardware/ROM code) and returns its cycle cost.
  using NativeRoutine = std::function<std::uint64_t(Cpu&, Memory&)>;

  Cpu(Memory& memory, Mpu& mpu, const SecureClock& clock,
      std::uint64_t hz = 24'000'000);

  // --- Architectural state ---
  std::uint32_t reg(std::uint8_t idx) const;
  void set_reg(std::uint8_t idx, std::uint32_t value);
  Addr pc() const noexcept { return pc_; }
  void set_pc(Addr pc) noexcept { pc_ = pc; }
  CpuState state() const noexcept { return state_; }
  const std::optional<Fault>& fault() const noexcept { return fault_; }
  std::uint64_t cycles() const noexcept { return cycles_; }
  std::uint64_t hz() const noexcept { return hz_; }
  bool interrupts_enabled() const noexcept { return interrupts_enabled_; }

  /// Reset to a boot state: PC at `entry`, registers cleared, cycle
  /// counter preserved (the secure clock must never move backwards).
  void reset(Addr entry);

  // --- Execution ---
  /// Execute at most `max_cycles` cycles; returns why execution stopped.
  StopReason run(std::uint64_t max_cycles);

  /// Execute one instruction (or deliver one pending interrupt).
  /// Returns false when the machine is not runnable.
  bool step();

  // --- Interrupts ---
  /// Queue an external interrupt request. Delivery happens before the
  /// next fetch if software has interrupts enabled AND the MPU allows
  /// (Eq. 20: never inside attest). `handler` is the vector address.
  void raise_interrupt(Addr handler);
  std::size_t pending_interrupts() const noexcept { return irq_queue_.size(); }
  /// Interrupt requests refused by the MPU while attest was executing
  /// (they stay queued; the counter exists for the security tests).
  std::uint64_t deferred_interrupts() const noexcept { return deferred_irqs_; }

  // --- Native trusted regions ---
  /// Register `routine` as the hardware-backed implementation of the
  /// MPU's attest region; a controlled entry at attest_entry() executes
  /// it atomically.
  void set_attest_routine(NativeRoutine routine);

  /// Peripheral pump, invoked after every executed instruction (DMA
  /// engines, timers). Peripherals observe the post-instruction state
  /// (PC, cycle counter) — a bus arbiter's view.
  using Peripheral = std::function<void(Cpu&)>;
  void set_peripheral(Peripheral peripheral) {
    peripheral_ = std::move(peripheral);
  }

  /// Secure-clock read as the RDCLK instruction sees it (derived from
  /// the cycle counter plus the boot offset set by the Device facade).
  std::uint32_t read_secure_clock() const noexcept;

  /// The Device facade sets this so RDCLK agrees with network time: the
  /// cycle count the core had executed at simulation time zero.
  void set_clock_base_cycles(std::uint64_t base) noexcept { clock_base_ = base; }
  std::uint64_t clock_base_cycles() const noexcept { return clock_base_; }

 private:
  bool deliver_interrupt();
  void trap(const Fault& fault);
  bool transfer_to(Addr from, Addr target);

  Memory& memory_;
  Mpu& mpu_;
  const SecureClock& clock_;
  std::uint64_t hz_;

  std::uint32_t regs_[kNumRegs] = {};
  Addr pc_ = 0;
  Addr epc_ = 0;
  bool interrupts_enabled_ = false;
  CpuState state_ = CpuState::kRunning;
  std::optional<Fault> fault_;
  std::uint64_t cycles_ = 0;
  std::uint64_t clock_base_ = 0;
  std::deque<Addr> irq_queue_;
  std::uint64_t deferred_irqs_ = 0;
  NativeRoutine attest_routine_;
  Peripheral peripheral_;
};

}  // namespace cra::device
