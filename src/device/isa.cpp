#include "device/isa.hpp"

#include <stdexcept>

namespace cra::device {

const char* opcode_name(Opcode op) noexcept {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kLdi: return "ldi";
    case Opcode::kLui: return "lui";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAddi: return "addi";
    case Opcode::kLdb: return "ldb";
    case Opcode::kLdw: return "ldw";
    case Opcode::kStb: return "stb";
    case Opcode::kStw: return "stw";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kBltu: return "bltu";
    case Opcode::kJmp: return "jmp";
    case Opcode::kCall: return "call";
    case Opcode::kJr: return "jr";
    case Opcode::kRdclk: return "rdclk";
    case Opcode::kEi: return "ei";
    case Opcode::kDi: return "di";
    case Opcode::kIret: return "iret";
    case Opcode::kMaxOpcode: break;
  }
  return "?";
}

std::uint32_t opcode_cycles(Opcode op) noexcept {
  switch (op) {
    case Opcode::kLdb:
    case Opcode::kLdw:
    case Opcode::kStb:
    case Opcode::kStw:
      return 2;
    case Opcode::kJmp:
    case Opcode::kCall:
    case Opcode::kJr:
    case Opcode::kIret:
      return 2;
    case Opcode::kMul:
      return 3;
    default:
      return 1;
  }
}

namespace {

void check_reg(std::uint8_t r) {
  if (r >= kNumRegs) throw std::invalid_argument("isa: bad register index");
}

std::uint32_t op_byte(Opcode op) {
  return static_cast<std::uint32_t>(op) << 24;
}

}  // namespace

std::uint32_t encode_r(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                       std::uint8_t rs2) {
  check_reg(rd);
  check_reg(rs1);
  check_reg(rs2);
  return op_byte(op) | (static_cast<std::uint32_t>(rd) << 20) |
         (static_cast<std::uint32_t>(rs1) << 16) |
         (static_cast<std::uint32_t>(rs2) << 12);
}

std::uint32_t encode_i(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                       std::int32_t imm16) {
  check_reg(rd);
  check_reg(rs1);
  if (imm16 < -32768 || imm16 > 32767) {
    throw std::invalid_argument("isa: imm16 out of range");
  }
  return op_byte(op) | (static_cast<std::uint32_t>(rd) << 20) |
         (static_cast<std::uint32_t>(rs1) << 16) |
         (static_cast<std::uint32_t>(imm16) & 0xffffu);
}

std::uint32_t encode_u(Opcode op, std::uint8_t rd, std::uint32_t imm16) {
  check_reg(rd);
  if (imm16 > 0xffffu) {
    throw std::invalid_argument("isa: imm16 out of range");
  }
  return op_byte(op) | (static_cast<std::uint32_t>(rd) << 20) | imm16;
}

std::uint32_t encode_b(Opcode op, std::uint8_t rs1, std::uint8_t rs2,
                       std::int32_t offset_bytes) {
  check_reg(rs1);
  check_reg(rs2);
  if (offset_bytes % 4 != 0) {
    throw std::invalid_argument("isa: branch offset must be word-aligned");
  }
  if (offset_bytes < -32768 || offset_bytes > 32767) {
    throw std::invalid_argument("isa: branch offset out of range");
  }
  return op_byte(op) | (static_cast<std::uint32_t>(rs1) << 20) |
         (static_cast<std::uint32_t>(rs2) << 16) |
         (static_cast<std::uint32_t>(offset_bytes) & 0xffffu);
}

std::uint32_t encode_j(Opcode op, std::uint32_t target_addr) {
  if (target_addr > 0xffffffu) {
    throw std::invalid_argument("isa: jump target beyond 24-bit range");
  }
  if (target_addr % 4 != 0) {
    throw std::invalid_argument("isa: jump target must be word-aligned");
  }
  return op_byte(op) | target_addr;
}

std::optional<Instruction> decode(std::uint32_t word) noexcept {
  const auto op_raw = static_cast<std::uint8_t>(word >> 24);
  if (op_raw >= static_cast<std::uint8_t>(Opcode::kMaxOpcode)) {
    return std::nullopt;
  }
  Instruction ins;
  ins.op = static_cast<Opcode>(op_raw);
  ins.rd = static_cast<std::uint8_t>((word >> 20) & 0xf);
  ins.rs1 = static_cast<std::uint8_t>((word >> 16) & 0xf);
  ins.rs2 = static_cast<std::uint8_t>((word >> 12) & 0xf);
  // Sign-extend the 16-bit immediate for I/B formats; U formats reread
  // it unsigned from `imm & 0xffff`.
  ins.imm = static_cast<std::int16_t>(word & 0xffffu);
  ins.target = word & 0xffffffu;
  return ins;
}

}  // namespace cra::device
