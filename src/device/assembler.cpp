#include "device/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <vector>

#include "device/isa.hpp"

namespace cra::device {

AssemblerError::AssemblerError(std::size_t line, const std::string& message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      line_(line) {}

namespace {

struct Token {
  std::string text;
};

std::string strip(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Split "op a, b, c" into mnemonic + operands (commas and spaces).
struct ParsedLine {
  std::string label;     // without ':'
  std::string mnemonic;  // lowercase, may be empty
  std::vector<std::string> operands;
  std::string string_literal;  // for .ascii
  bool has_string = false;
};

ParsedLine parse_line(std::string_view raw, std::size_t lineno) {
  ParsedLine out;
  // Cut comments (';' or '#'), but not inside a string literal.
  std::string line;
  bool in_string = false;
  for (char c : raw) {
    if (c == '"') in_string = !in_string;
    if (!in_string && (c == ';' || c == '#')) break;
    line.push_back(c);
  }
  if (in_string) throw AssemblerError(lineno, "unterminated string literal");

  std::string rest = strip(line);
  if (rest.empty()) return out;

  // Label?
  if (const auto colon = rest.find(':'); colon != std::string::npos) {
    const std::string candidate = strip(rest.substr(0, colon));
    const bool valid = !candidate.empty() &&
                       std::all_of(candidate.begin(), candidate.end(),
                                   [](unsigned char c) {
                                     return std::isalnum(c) || c == '_' ||
                                            c == '.';
                                   });
    if (valid) {
      out.label = candidate;
      rest = strip(rest.substr(colon + 1));
    }
  }
  if (rest.empty()) return out;

  // String literal directive (.ascii)?
  if (const auto quote = rest.find('"'); quote != std::string::npos) {
    out.mnemonic = lower(strip(rest.substr(0, quote)));
    const auto end_quote = rest.rfind('"');
    if (end_quote == quote) {
      throw AssemblerError(lineno, "unterminated string literal");
    }
    out.string_literal = rest.substr(quote + 1, end_quote - quote - 1);
    out.has_string = true;
    return out;
  }

  const auto space = rest.find_first_of(" \t");
  if (space == std::string::npos) {
    out.mnemonic = lower(rest);
    return out;
  }
  out.mnemonic = lower(rest.substr(0, space));
  std::string operand_str = strip(rest.substr(space));
  std::string current;
  for (char c : operand_str) {
    if (c == ',') {
      const std::string t = strip(current);
      if (t.empty()) throw AssemblerError(lineno, "empty operand");
      out.operands.push_back(t);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  const std::string t = strip(current);
  if (!t.empty()) out.operands.push_back(t);
  return out;
}

bool parse_number(std::string_view s, std::int64_t& out) {
  bool negative = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    negative = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) return false;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  }
  std::uint64_t magnitude = 0;
  const auto result =
      std::from_chars(s.data(), s.data() + s.size(), magnitude, base);
  if (result.ec != std::errc() || result.ptr != s.data() + s.size()) {
    return false;
  }
  out = negative ? -static_cast<std::int64_t>(magnitude)
                 : static_cast<std::int64_t>(magnitude);
  return true;
}

struct OperandResolver {
  const std::map<std::string, Addr>& labels;
  std::size_t lineno;

  std::uint8_t reg(const std::string& s) const {
    const std::string r = lower(s);
    if (r == "lr") return kLinkReg;
    if (r == "sp") return 13;
    if (r.size() >= 2 && r[0] == 'r') {
      std::int64_t idx;
      if (parse_number(r.substr(1), idx) && idx >= 0 && idx < kNumRegs) {
        return static_cast<std::uint8_t>(idx);
      }
    }
    throw AssemblerError(lineno, "expected register, got '" + s + "'");
  }

  std::int64_t imm_or_label(const std::string& s) const {
    std::int64_t v;
    if (parse_number(s, v)) return v;
    const auto it = labels.find(s);
    if (it == labels.end()) {
      throw AssemblerError(lineno, "undefined symbol '" + s + "'");
    }
    return static_cast<std::int64_t>(it->second);
  }
};

struct Emitter {
  Addr base;
  Addr cursor;
  Bytes image;  // relative to base; grown on demand

  void ensure(Addr addr, std::size_t len, std::size_t lineno) {
    if (addr < base) throw AssemblerError(lineno, ".org before base address");
    const std::size_t offset = addr - base;
    if (offset + len > image.size()) image.resize(offset + len, 0);
  }

  void emit_word(Addr addr, std::uint32_t word, std::size_t lineno) {
    ensure(addr, 4, lineno);
    const std::size_t o = addr - base;
    image[o] = static_cast<std::uint8_t>(word);
    image[o + 1] = static_cast<std::uint8_t>(word >> 8);
    image[o + 2] = static_cast<std::uint8_t>(word >> 16);
    image[o + 3] = static_cast<std::uint8_t>(word >> 24);
  }

  void emit_bytes(Addr addr, BytesView data, std::size_t lineno) {
    ensure(addr, data.size(), lineno);
    std::copy(data.begin(), data.end(), image.begin() + (addr - base));
  }
};

/// Size in bytes a parsed line will occupy (pass 1).
std::uint32_t line_size(const ParsedLine& line, std::size_t lineno) {
  if (line.mnemonic.empty()) return 0;
  if (line.mnemonic == ".org") return 0;  // handled by caller
  if (line.mnemonic == ".word") {
    if (line.operands.empty()) {
      throw AssemblerError(lineno, ".word needs at least one value");
    }
    return static_cast<std::uint32_t>(4 * line.operands.size());
  }
  if (line.mnemonic == ".space") {
    if (line.operands.size() != 1) {
      throw AssemblerError(lineno, ".space needs one size operand");
    }
    std::int64_t n;
    if (!parse_number(line.operands[0], n) || n < 0) {
      throw AssemblerError(lineno, ".space: bad size");
    }
    return static_cast<std::uint32_t>(n);
  }
  if (line.mnemonic == ".ascii") {
    if (!line.has_string) {
      throw AssemblerError(lineno, ".ascii needs a string literal");
    }
    return static_cast<std::uint32_t>(line.string_literal.size());
  }
  if (line.mnemonic[0] == '.') {
    throw AssemblerError(lineno, "unknown directive " + line.mnemonic);
  }
  return 4;  // every instruction is one word
}

struct MnemonicInfo {
  Opcode op;
  enum class Format { kNone, kU, kR2, kR3, kI, kMem, kB, kJ, kR1 } format;
};

const std::map<std::string, MnemonicInfo>& mnemonic_table() {
  using F = MnemonicInfo::Format;
  static const std::map<std::string, MnemonicInfo> table = {
      {"nop", {Opcode::kNop, F::kNone}},
      {"halt", {Opcode::kHalt, F::kNone}},
      {"ei", {Opcode::kEi, F::kNone}},
      {"di", {Opcode::kDi, F::kNone}},
      {"iret", {Opcode::kIret, F::kNone}},
      {"ldi", {Opcode::kLdi, F::kU}},
      {"lui", {Opcode::kLui, F::kU}},
      {"rdclk", {Opcode::kRdclk, F::kU}},  // rd only
      {"mov", {Opcode::kMov, F::kR2}},
      {"add", {Opcode::kAdd, F::kR3}},
      {"sub", {Opcode::kSub, F::kR3}},
      {"mul", {Opcode::kMul, F::kR3}},
      {"and", {Opcode::kAnd, F::kR3}},
      {"or", {Opcode::kOr, F::kR3}},
      {"xor", {Opcode::kXor, F::kR3}},
      {"shl", {Opcode::kShl, F::kR3}},
      {"shr", {Opcode::kShr, F::kR3}},
      {"addi", {Opcode::kAddi, F::kI}},
      {"ldb", {Opcode::kLdb, F::kMem}},
      {"ldw", {Opcode::kLdw, F::kMem}},
      {"stb", {Opcode::kStb, F::kMem}},
      {"stw", {Opcode::kStw, F::kMem}},
      {"beq", {Opcode::kBeq, F::kB}},
      {"bne", {Opcode::kBne, F::kB}},
      {"blt", {Opcode::kBlt, F::kB}},
      {"bge", {Opcode::kBge, F::kB}},
      {"bltu", {Opcode::kBltu, F::kB}},
      {"jmp", {Opcode::kJmp, F::kJ}},
      {"call", {Opcode::kCall, F::kJ}},
      {"jr", {Opcode::kJr, F::kR1}},
  };
  return table;
}

void expect_operands(const ParsedLine& line, std::size_t n,
                     std::size_t lineno) {
  if (line.operands.size() != n) {
    std::ostringstream os;
    os << line.mnemonic << " expects " << n << " operands, got "
       << line.operands.size();
    throw AssemblerError(lineno, os.str());
  }
}

std::uint32_t encode_line(const ParsedLine& line, Addr addr,
                          const OperandResolver& res, std::size_t lineno) {
  const auto it = mnemonic_table().find(line.mnemonic);
  if (it == mnemonic_table().end()) {
    throw AssemblerError(lineno, "unknown mnemonic '" + line.mnemonic + "'");
  }
  const auto [op, format] = it->second;
  using F = MnemonicInfo::Format;
  try {
    switch (format) {
      case F::kNone:
        expect_operands(line, 0, lineno);
        return encode_r(op, 0, 0, 0);
      case F::kU: {
        if (op == Opcode::kRdclk) {
          expect_operands(line, 1, lineno);
          return encode_u(op, res.reg(line.operands[0]), 0);
        }
        expect_operands(line, 2, lineno);
        const std::int64_t v = res.imm_or_label(line.operands[1]);
        if (v < 0 || v > 0xffff) {
          throw AssemblerError(lineno, "immediate out of 16-bit range");
        }
        return encode_u(op, res.reg(line.operands[0]),
                        static_cast<std::uint32_t>(v));
      }
      case F::kR2:
        expect_operands(line, 2, lineno);
        return encode_r(op, res.reg(line.operands[0]),
                        res.reg(line.operands[1]));
      case F::kR3:
        expect_operands(line, 3, lineno);
        return encode_r(op, res.reg(line.operands[0]),
                        res.reg(line.operands[1]), res.reg(line.operands[2]));
      case F::kR1:
        expect_operands(line, 1, lineno);
        return encode_r(op, 0, res.reg(line.operands[0]));
      case F::kI:
        expect_operands(line, 3, lineno);
        return encode_i(op, res.reg(line.operands[0]),
                        res.reg(line.operands[1]),
                        static_cast<std::int32_t>(
                            res.imm_or_label(line.operands[2])));
      case F::kMem:
        expect_operands(line, 3, lineno);
        return encode_i(op, res.reg(line.operands[0]),
                        res.reg(line.operands[1]),
                        static_cast<std::int32_t>(
                            res.imm_or_label(line.operands[2])));
      case F::kB: {
        expect_operands(line, 3, lineno);
        const std::int64_t target = res.imm_or_label(line.operands[2]);
        const std::int64_t offset = target - static_cast<std::int64_t>(addr);
        return encode_b(op, res.reg(line.operands[0]),
                        res.reg(line.operands[1]),
                        static_cast<std::int32_t>(offset));
      }
      case F::kJ: {
        expect_operands(line, 1, lineno);
        const std::int64_t target = res.imm_or_label(line.operands[0]);
        if (target < 0) throw AssemblerError(lineno, "negative jump target");
        return encode_j(op, static_cast<std::uint32_t>(target));
      }
    }
  } catch (const std::invalid_argument& e) {
    throw AssemblerError(lineno, e.what());
  }
  throw AssemblerError(lineno, "unhandled format");
}

}  // namespace

Program assemble(std::string_view source, Addr base) {
  // Split lines once, keeping line numbers.
  std::vector<ParsedLine> lines;
  {
    std::size_t lineno = 1;
    std::size_t start = 0;
    while (start <= source.size()) {
      const auto nl = source.find('\n', start);
      const auto end = nl == std::string_view::npos ? source.size() : nl;
      lines.push_back(parse_line(source.substr(start, end - start), lineno));
      if (nl == std::string_view::npos) break;
      start = nl + 1;
      ++lineno;
    }
  }

  // Pass 1: lay out addresses and collect labels.
  std::map<std::string, Addr> labels;
  {
    Addr cursor = base;
    std::size_t lineno = 1;
    for (const auto& line : lines) {
      if (!line.label.empty()) {
        if (!labels.emplace(line.label, cursor).second) {
          throw AssemblerError(lineno, "duplicate label '" + line.label + "'");
        }
      }
      if (line.mnemonic == ".org") {
        if (line.operands.size() != 1) {
          throw AssemblerError(lineno, ".org needs one operand");
        }
        std::int64_t target;
        if (!parse_number(line.operands[0], target) || target < cursor) {
          throw AssemblerError(lineno, ".org must move forward");
        }
        cursor = static_cast<Addr>(target);
        // Re-bind a label on the same line to the new origin.
        if (!line.label.empty()) labels[line.label] = cursor;
      } else {
        cursor += line_size(line, lineno);
      }
      ++lineno;
    }
  }

  // Pass 2: encode.
  Program out;
  out.base = base;
  out.labels = labels;
  Emitter em{base, base, {}};
  std::size_t lineno = 1;
  for (const auto& line : lines) {
    if (line.mnemonic.empty()) {
      ++lineno;
      continue;
    }
    if (line.mnemonic == ".org") {
      std::int64_t target;
      parse_number(line.operands[0], target);
      em.cursor = static_cast<Addr>(target);
    } else if (line.mnemonic == ".word") {
      const OperandResolver res{labels, lineno};
      for (const auto& opnd : line.operands) {
        const std::int64_t v = res.imm_or_label(opnd);
        em.emit_word(em.cursor, static_cast<std::uint32_t>(v), lineno);
        em.cursor += 4;
      }
    } else if (line.mnemonic == ".space") {
      std::int64_t n;
      parse_number(line.operands[0], n);
      em.ensure(em.cursor, static_cast<std::size_t>(n), lineno);
      em.cursor += static_cast<Addr>(n);
    } else if (line.mnemonic == ".ascii") {
      em.emit_bytes(em.cursor, to_bytes(line.string_literal), lineno);
      em.cursor += static_cast<Addr>(line.string_literal.size());
    } else {
      const OperandResolver res{labels, lineno};
      em.emit_word(em.cursor, encode_line(line, em.cursor, res, lineno),
                   lineno);
      em.cursor += 4;
    }
    ++lineno;
  }
  out.image = std::move(em.image);
  return out;
}

}  // namespace cra::device
