#include "device/attest_asm.hpp"

#include <sstream>
#include <stdexcept>

#include "device/attest_tcb.hpp"

namespace cra::device {
namespace {

/// Emits assembly with a tiny macro layer. Register conventions inside
/// the TCB:
///   r0        scratch for address materialization (la) and constants
///   r1..r5    SHA-1 working registers a..e (r5 doubles as the pad byte
///             argument of padblk outside compress)
///   r6..r8    temporaries
///   r9        loop counter
///   r10..r12  pointers / temporaries
///   r13       saved architectural return address (live for the whole
///             TCB invocation — nothing else may touch it)
///   r14 (lr)  link register for internal subroutine calls
class AsmWriter {
 public:
  void raw(const std::string& line) { out_ << "  " << line << "\n"; }
  void label(const std::string& name) { out_ << name << ":\n"; }
  void comment(const std::string& text) { out_ << "  ; " << text << "\n"; }

  /// Load a 32-bit literal into `reg` (clobbers r0 when reg != r0).
  void la(const std::string& reg, std::uint32_t value) {
    if (value <= 0xffff) {
      raw("ldi " + reg + ", " + std::to_string(value));
      return;
    }
    raw("lui " + reg + ", " + std::to_string(value >> 16));
    raw("ldi r0, " + std::to_string(value & 0xffff));
    raw("or " + reg + ", " + reg + ", r0");
  }

  /// Counted loop epilogue: decrement r9, loop while nonzero.
  void loop_dec_r9(const std::string& target) {
    raw("addi r9, r9, -1");
    raw("ldi r6, 0");
    raw("bne r9, r6, " + target);
  }

  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

struct Layout {
  Addr entry;       // first(r4)
  std::uint32_t code_size;
  Addr key;         // r6 base (20 bytes)
  Addr chal_mb;     // 4-byte chal mailbox
  Addr token_mb;    // 20-byte token mailbox
  Addr pmem_base;
  std::uint32_t pmem_size;
  // Scratch slots.
  Addr state;    // 5 words
  Addr block;    // 64 bytes
  Addr w;        // 80 words
  Addr idig;     // 20 bytes (inner digest, big-endian)
  Addr cursor;   // 1 word (PMEM position across compress calls)
};

Layout make_layout(const DeviceConfig& config) {
  if (config.attest.alg != crypto::HashAlg::kSha1) {
    throw std::invalid_argument(
        "interpreted attest: only HMAC-SHA1 (l=160) is implemented");
  }
  if (config.layout.pmem_size % 64 != 0) {
    throw std::invalid_argument(
        "interpreted attest: pmem_size must be a multiple of 64");
  }
  if (config.attest_scratch_size < 512) {
    throw std::invalid_argument(
        "interpreted attest: need >= 512 bytes of attest scratch");
  }
  const Addr promem = config.layout.promem_base();
  const AttestMailboxes mb = attest_mailboxes(config.layout, config.attest);
  Layout l;
  l.entry = promem + config.attest_code_offset;
  l.code_size = config.attest_code_size;
  l.key = promem + config.attest_key_offset;
  l.chal_mb = mb.chal;
  l.token_mb = mb.token;
  l.pmem_base = config.layout.pmem_base();
  l.pmem_size = config.layout.pmem_size;
  const Addr s = promem + config.attest_scratch_offset;
  l.state = s;
  l.block = s + 32;
  l.w = s + 96;
  l.idig = s + 416;
  l.cursor = s + 440;
  return l;
}

/// SHA-1 round constants and initial state.
constexpr std::uint32_t kH[5] = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                                 0x10325476u, 0xc3d2e1f0u};
constexpr std::uint32_t kK[4] = {0x5a827999u, 0x6ed9eba1u, 0x8f1bbcdcu,
                                 0xca62c1d6u};

void emit_zero_bytes(AsmWriter& a, const std::string& base_reg,
                     std::uint32_t offset, std::uint32_t count,
                     const std::string& tag) {
  a.raw("addi r12, " + base_reg + ", " + std::to_string(offset));
  a.raw("ldi r9, " + std::to_string(count));
  a.label(tag);
  a.raw("ldi r6, 0");
  a.raw("stb r6, r12, 0");
  a.raw("addi r12, r12, 1");
  a.loop_dec_r9(tag);
}

/// Store a 32-bit big-endian value held in r6 at [r12 + offset..+3].
void emit_store_be32(AsmWriter& a, std::uint32_t offset) {
  a.raw("ldi r8, 24");
  a.raw("shr r7, r6, r8");
  a.raw("stb r7, r12, " + std::to_string(offset));
  a.raw("ldi r8, 16");
  a.raw("shr r7, r6, r8");
  a.raw("stb r7, r12, " + std::to_string(offset + 1));
  a.raw("ldi r8, 8");
  a.raw("shr r7, r6, r8");
  a.raw("stb r7, r12, " + std::to_string(offset + 2));
  a.raw("stb r6, r12, " + std::to_string(offset + 3));
}

}  // namespace

DeviceConfig interpreted_attest_config(std::uint32_t pmem_size) {
  DeviceConfig cfg;
  cfg.layout = MemoryLayout{256, pmem_size, 1024, 8 * 1024};
  cfg.attest_code_offset = 0;
  cfg.attest_code_size = 4 * 1024;
  cfg.attest_key_offset = 4 * 1024;
  cfg.attest_scratch_offset = 4 * 1024 + 512;
  cfg.attest_scratch_size = 1024;
  return cfg;
}

std::string generate_attest_asm(const DeviceConfig& config) {
  const Layout l = make_layout(config);
  AsmWriter a;

  const std::uint32_t inner_bitlen =
      (64 + l.pmem_size + 4) * 8;            // ipad block + PMEM + chal
  constexpr std::uint32_t kOuterBitlen = (64 + 20) * 8;  // opad + digest

  // ---------------------------------------------------------------- main
  a.label("attest_entry");
  a.comment("controlled invocation lands here (first(r4)); save the");
  a.comment("architectural return address for the whole invocation");
  a.raw("mov r13, lr");

  a.comment("time = readSecureClock(); compare with the chal mailbox");
  a.raw("rdclk r1");
  a.la("r10", l.chal_mb);
  a.raw("ldw r2, r10, 0");
  a.raw("beq r1, r2, attest_go");

  a.comment("chal != time: h = 0^l");
  a.la("r11", l.token_mb);
  a.raw("ldi r9, 20");
  a.label("zero_token");
  a.raw("ldi r6, 0");
  a.raw("stb r6, r11, 0");
  a.raw("addi r11, r11, 1");
  a.loop_dec_r9("zero_token");
  a.raw("jmp attest_finish");

  a.label("attest_go");
  a.comment("inner hash: H(ipad-block || PMEM || chal || padding)");
  a.raw("ldi r5, 54");  // 0x36
  a.raw("call build_pad_block");
  a.raw("call sha1_init");
  a.raw("call sha1_compress");

  a.comment("stream PMEM through 64-byte blocks");
  a.la("r6", l.pmem_base);
  a.la("r10", l.cursor);
  a.raw("stw r6, r10, 0");
  a.label("pmem_loop");
  a.la("r10", l.cursor);
  a.raw("ldw r11, r10, 0");
  a.la("r12", l.block);
  a.raw("ldi r9, 16");
  a.label("pmem_copy");
  a.raw("ldw r6, r11, 0");
  a.raw("stw r6, r12, 0");
  a.raw("addi r11, r11, 4");
  a.raw("addi r12, r12, 4");
  a.loop_dec_r9("pmem_copy");
  a.la("r10", l.cursor);
  a.raw("stw r11, r10, 0");
  a.raw("call sha1_compress");
  a.la("r10", l.cursor);
  a.raw("ldw r11, r10, 0");
  a.la("r12", l.pmem_base + l.pmem_size);
  a.raw("bltu r11, r12, pmem_loop");

  a.comment("final inner block: chal(LE) || 0x80 || zeros || bitlen(BE)");
  a.la("r12", l.block);
  a.la("r10", l.chal_mb);
  a.raw("ldw r6, r10, 0");
  a.raw("stw r6, r12, 0");
  a.raw("ldi r6, 128");  // 0x80
  a.raw("stb r6, r12, 4");
  emit_zero_bytes(a, "r12", 5, 55, "zero_inner_pad");  // bytes 5..59
  a.la("r12", l.block);
  a.la("r6", inner_bitlen);
  emit_store_be32(a, 60);
  a.raw("call sha1_compress");

  a.comment("save the inner digest (big-endian bytes)");
  a.la("r11", l.idig);
  a.raw("call store_state_be");

  a.comment("outer hash: H(opad-block || inner-digest || padding)");
  a.raw("ldi r5, 92");  // 0x5c
  a.raw("call build_pad_block");
  a.raw("call sha1_init");
  a.raw("call sha1_compress");
  a.comment("final outer block: idig(20) || 0x80 || zeros || 672(BE)");
  a.la("r10", l.idig);
  a.la("r12", l.block);
  a.raw("ldi r9, 20");
  a.label("copy_idig");
  a.raw("ldb r6, r10, 0");
  a.raw("stb r6, r12, 0");
  a.raw("addi r10, r10, 1");
  a.raw("addi r12, r12, 1");
  a.loop_dec_r9("copy_idig");
  a.la("r12", l.block);
  a.raw("ldi r6, 128");
  a.raw("stb r6, r12, 20");
  emit_zero_bytes(a, "r12", 21, 39, "zero_outer_pad");  // bytes 21..59
  a.la("r12", l.block);
  a.la("r6", kOuterBitlen);
  emit_store_be32(a, 60);
  a.raw("call sha1_compress");

  a.comment("write the token (big-endian) to the mailbox");
  a.la("r11", l.token_mb);
  a.raw("call store_state_be");

  a.label("attest_finish");
  a.comment("restore the return address and leave through last(r4)");
  a.raw("mov lr, r13");
  a.raw("jmp attest_exit");

  // ------------------------------------------------------- subroutines
  a.comment("---- build_pad_block: block = (key ^ r5) padded with r5");
  a.label("build_pad_block");
  a.la("r10", l.key);
  a.la("r11", l.block);
  a.raw("ldi r9, 20");
  a.label("pad_key");
  a.raw("ldb r6, r10, 0");
  a.raw("xor r6, r6, r5");
  a.raw("stb r6, r11, 0");
  a.raw("addi r10, r10, 1");
  a.raw("addi r11, r11, 1");
  a.loop_dec_r9("pad_key");
  a.raw("ldi r9, 44");
  a.label("pad_fill");
  a.raw("stb r5, r11, 0");
  a.raw("addi r11, r11, 1");
  a.loop_dec_r9("pad_fill");
  a.raw("jr lr");

  a.comment("---- sha1_init: state = FIPS initial constants");
  a.label("sha1_init");
  a.la("r10", l.state);
  for (int i = 0; i < 5; ++i) {
    a.la("r6", kH[i]);
    a.raw("stw r6, r10, " + std::to_string(4 * i));
  }
  a.raw("jr lr");

  a.comment("---- store_state_be: 5 state words as big-endian to [r11]");
  a.label("store_state_be");
  a.la("r10", l.state);
  a.raw("ldi r9, 5");
  a.label("ssb_loop");
  a.raw("ldw r6, r10, 0");
  a.raw("mov r12, r11");
  emit_store_be32(a, 0);
  a.raw("addi r10, r10, 4");
  a.raw("addi r11, r11, 4");
  a.loop_dec_r9("ssb_loop");
  a.raw("jr lr");

  a.comment("---- sha1_compress: one 64-byte block from BLOCK into STATE");
  a.label("sha1_compress");
  a.comment("message schedule w[0..15]: big-endian words from the block");
  a.la("r10", l.block);
  a.la("r11", l.w);
  a.raw("ldi r9, 16");
  a.label("sc_sched1");
  a.raw("ldb r1, r10, 0");
  a.raw("ldb r2, r10, 1");
  a.raw("ldb r3, r10, 2");
  a.raw("ldb r4, r10, 3");
  a.raw("ldi r6, 24");
  a.raw("shl r1, r1, r6");
  a.raw("ldi r6, 16");
  a.raw("shl r2, r2, r6");
  a.raw("ldi r6, 8");
  a.raw("shl r3, r3, r6");
  a.raw("or r1, r1, r2");
  a.raw("or r1, r1, r3");
  a.raw("or r1, r1, r4");
  a.raw("stw r1, r11, 0");
  a.raw("addi r10, r10, 4");
  a.raw("addi r11, r11, 4");
  a.loop_dec_r9("sc_sched1");

  a.comment("w[16..79] = rotl1(w[i-3]^w[i-8]^w[i-14]^w[i-16])");
  a.raw("ldi r9, 64");
  a.label("sc_sched2");
  a.raw("ldw r1, r11, -12");
  a.raw("ldw r2, r11, -32");
  a.raw("ldw r3, r11, -56");
  a.raw("ldw r4, r11, -64");
  a.raw("xor r1, r1, r2");
  a.raw("xor r1, r1, r3");
  a.raw("xor r1, r1, r4");
  a.raw("ldi r6, 1");
  a.raw("shl r2, r1, r6");
  a.raw("ldi r6, 31");
  a.raw("shr r1, r1, r6");
  a.raw("or r1, r1, r2");
  a.raw("stw r1, r11, 0");
  a.raw("addi r11, r11, 4");
  a.loop_dec_r9("sc_sched2");

  a.comment("80 rounds over a..e (r1..r5)");
  a.la("r10", l.state);
  a.raw("ldw r1, r10, 0");
  a.raw("ldw r2, r10, 4");
  a.raw("ldw r3, r10, 8");
  a.raw("ldw r4, r10, 12");
  a.raw("ldw r5, r10, 16");
  a.la("r10", l.w);
  a.raw("ldi r9, 0");
  a.label("sc_round");
  a.raw("ldi r8, 20");
  a.raw("blt r9, r8, sc_f0");
  a.raw("ldi r8, 40");
  a.raw("blt r9, r8, sc_f1");
  a.raw("ldi r8, 60");
  a.raw("blt r9, r8, sc_f2");
  a.comment("f3: b^c^d");
  a.raw("xor r6, r2, r3");
  a.raw("xor r6, r6, r4");
  a.la("r7", kK[3]);
  a.raw("jmp sc_body");
  a.label("sc_f0");
  a.comment("f0: (b&c)|(~b&d)");
  a.raw("and r6, r2, r3");
  a.raw("ldi r8, 0");
  a.raw("addi r8, r8, -1");
  a.raw("xor r8, r2, r8");
  a.raw("and r8, r8, r4");
  a.raw("or r6, r6, r8");
  a.la("r7", kK[0]);
  a.raw("jmp sc_body");
  a.label("sc_f1");
  a.raw("xor r6, r2, r3");
  a.raw("xor r6, r6, r4");
  a.la("r7", kK[1]);
  a.raw("jmp sc_body");
  a.label("sc_f2");
  a.comment("f2: (b&c)|(b&d)|(c&d)");
  a.raw("and r6, r2, r3");
  a.raw("and r8, r2, r4");
  a.raw("or r6, r6, r8");
  a.raw("and r8, r3, r4");
  a.raw("or r6, r6, r8");
  a.la("r7", kK[2]);
  a.label("sc_body");
  a.comment("temp = rotl(a,5) + f + e + k + w[i]");
  a.raw("ldi r8, 5");
  a.raw("shl r11, r1, r8");
  a.raw("ldi r8, 27");
  a.raw("shr r12, r1, r8");
  a.raw("or r11, r11, r12");
  a.raw("add r11, r11, r6");
  a.raw("add r11, r11, r5");
  a.raw("add r11, r11, r7");
  a.raw("ldi r8, 2");
  a.raw("shl r12, r9, r8");
  a.raw("add r12, r12, r10");
  a.raw("ldw r12, r12, 0");
  a.raw("add r11, r11, r12");
  a.comment("e=d; d=c; c=rotl(b,30); b=a; a=temp");
  a.raw("mov r5, r4");
  a.raw("mov r4, r3");
  a.raw("ldi r8, 30");
  a.raw("shl r3, r2, r8");
  a.raw("ldi r8, 2");
  a.raw("shr r12, r2, r8");
  a.raw("or r3, r3, r12");
  a.raw("mov r2, r1");
  a.raw("mov r1, r11");
  a.raw("addi r9, r9, 1");
  a.raw("ldi r8, 80");
  a.raw("bne r9, r8, sc_round");

  a.comment("fold the working registers back into the state");
  a.la("r10", l.state);
  const char* working[5] = {"r1", "r2", "r3", "r4", "r5"};
  for (int i = 0; i < 5; ++i) {
    a.raw("ldw r6, r10, " + std::to_string(4 * i));
    a.raw(std::string("add r6, r6, ") + working[i]);
    a.raw("stw r6, r10, " + std::to_string(4 * i));
  }
  a.raw("jr lr");

  // --------------------------------------------- architectural exit
  a.raw(".org " + std::to_string(l.entry + l.code_size - 4));
  a.label("attest_exit");
  a.raw("jr lr");

  return a.str();
}

Program assemble_interpreted_attest(const DeviceConfig& config) {
  const Layout l = make_layout(config);
  Program p = assemble(generate_attest_asm(config), l.entry);
  if (p.image.size() != l.code_size) {
    throw std::invalid_argument(
        "interpreted attest: attest_code_size too small (need " +
        std::to_string(p.image.size() - 4) + "+ bytes before the exit)");
  }
  return p;
}

void install_interpreted_attest(Device& device) {
  const Program p = assemble_interpreted_attest(device.config());
  // Manufacture-time write into r4 (raw memory path, pre-lock).
  device.memory().write_range(device.mpu().attest_code().start, p.image);
  device.cpu().set_attest_routine(nullptr);
  device.provision();  // Secure Boot now measures the real TCB code
}

}  // namespace cra::device
