#include "device/attest_tcb.hpp"

namespace cra::device {

AttestMailboxes attest_mailboxes(const MemoryLayout& layout,
                                 const AttestTcbConfig& config) {
  AttestMailboxes mb;
  mb.chal = layout.dmem_base() + config.chal_mailbox_offset;
  mb.token = layout.dmem_base() + config.token_mailbox_offset;
  return mb;
}

std::uint64_t attest_cycles(const AttestTcbConfig& config,
                            std::uint32_t pmem_size) {
  // HMAC over PMEM || chal (4 bytes).
  const std::uint64_t blocks =
      crypto::hmac_compression_calls(config.alg, pmem_size + 4);
  return config.overhead_cycles + blocks * config.cycles_per_block;
}

Cpu::NativeRoutine make_attest_routine(AttestTcbConfig config,
                                       Region key_region) {
  return [config, key_region](Cpu& cpu, Memory& memory) -> std::uint64_t {
    const AttestMailboxes mb = attest_mailboxes(memory.layout(), config);
    const std::size_t l = crypto::digest_size(config.alg);

    // time = readSecureClock()
    const std::uint32_t time = cpu.read_secure_clock();
    const std::uint32_t chal = memory.read32(mb.chal);

    Bytes token(l, 0);
    if (chal == time) {
      const Bytes key = memory.read_range(key_region.start, key_region.size());
      Bytes message = memory.snapshot(Section::kPmem);
      append_u32le(message, chal);
      token = crypto::hmac(config.alg, key, message);
    }
    memory.write_range(mb.token, token);
    return attest_cycles(config, memory.layout().pmem_size);
  };
}

}  // namespace cra::device
