#include "power/power.hpp"

namespace cra::power {

MoteProfile micaz() {
  // Calibrated against Table III (see header): with 20-byte chal/token,
  // leaf = 0.3372 mW, inner = 0.5516 mW.
  return MoteProfile{"MICAz", /*send*/ 0.0050, /*recv*/ 0.00529,
                     /*attest*/ 0.0314, /*xor*/ 0.0014};
}

MoteProfile telosb() {
  // Leaf = 0.369 mW, inner = 0.6282 mW.
  return MoteProfile{"TelosB", /*send*/ 0.0045, /*recv*/ 0.00640,
                     /*attest*/ 0.0610, /*xor*/ 0.0016};
}

std::vector<MoteProfile> paper_motes() { return {micaz(), telosb()}; }

PowerEstimate estimate(const MoteProfile& mote, std::size_t chal_bytes,
                       std::size_t token_bytes, std::size_t children) {
  const double send =
      static_cast<double>(chal_bytes + token_bytes) * mote.send_per_byte;
  PowerEstimate out;
  out.leaf_mw = send + static_cast<double>(chal_bytes) * mote.recv_per_byte +
                mote.attest;
  out.inner_mw =
      send +
      static_cast<double>(chal_bytes + children * token_bytes) *
          mote.recv_per_byte +
      mote.attest + static_cast<double>(children) * mote.xor_op;
  return out;
}

}  // namespace cra::power
