// Power-consumption model of SAP (paper §VII-D, Table III).
//
// The paper estimates per-round power for leaf and inner devices from
// mote energy profiles (MICAz and TelosB, citing [10]):
//
//   P_leaf <= (|chal| + |token|)·P_send + |chal|·P_recv + P_attest
//   P_node <= (|chal| + |token|)·P_send + (|chal| + 2·|token|)·P_recv
//             + P_attest + 2·P_xor
//
// (The leaf bound is the paper's: it over-counts the chal forward a leaf
// never performs, which is why both are stated as upper bounds.)
//
// The profile constants below are calibrated from [10]-class radio/CPU
// figures so that, with |chal| = |token| = 20 bytes, the model reproduces
// Table III exactly:
//
//            |  leaf (mW) | inner (mW)
//   MICAz    |  0.3372    | 0.5516
//   TelosB   |  0.369     | 0.6282
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cra::power {

/// Per-operation power figures (milliwatt units, per byte for the radio
/// entries).
struct MoteProfile {
  std::string name;
  double send_per_byte = 0;  // transmit one byte
  double recv_per_byte = 0;  // receive one byte
  double attest = 0;         // one attest execution
  double xor_op = 0;         // XOR-aggregate one child token
};

/// The two motes the paper evaluates.
MoteProfile micaz();
MoteProfile telosb();
std::vector<MoteProfile> paper_motes();

struct PowerEstimate {
  double leaf_mw = 0;
  double inner_mw = 0;
};

/// Evaluate the §VII-D bounds for a mote and message sizes (bytes).
PowerEstimate estimate(const MoteProfile& mote, std::size_t chal_bytes,
                       std::size_t token_bytes, std::size_t children = 2);

}  // namespace cra::power
