// PADS wire format: the knowledge-gossip message.
//
// Every PADS exchange is one message shape — a device's current
// knowledge of the swarm (two bitsets over device ids: "I hold a
// verdict for d" and "d's verdict is untrusted") plus the sender's own
// self-attestation token, so the receiver can authenticate the sender
// before merging anything it claims. Layout (little-endian):
//
//   offset  size            field
//   0       4               sender device id
//   4       4               gossip epoch
//   8       4               knowledge width in bits (= swarm devices)
//   12      1               token length
//   13      token length    self-attestation token
//   ...     8 * blocks      `known` bitset, 64-bit words
//   ...     8 * blocks      `bad` bitset, 64-bit words
//
// with blocks = ceil(width / 64). GossipMsg is the owning form used by
// tests and tools; GossipView parses a payload in place for the
// simulator's receive path, which handles hundreds of thousands of
// these per round and must not copy kilobyte bitsets just to OR them.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "net/topology.hpp"

namespace cra::pads {

/// net::Message::kind of every PADS gossip exchange.
constexpr std::uint32_t kGossipKind = 0x50414453;  // "PADS"

inline std::size_t knowledge_blocks(std::uint32_t devices) {
  return (static_cast<std::size_t>(devices) + 63) / 64;
}

/// Read one little-endian word of a bitset straight out of the wire.
inline std::uint64_t load_u64le(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof v);  // the format is LE; so are our targets
  return v;
}

struct GossipMsg {
  net::NodeId sender = 0;
  std::uint32_t epoch = 0;
  std::uint32_t devices = 0;  // knowledge width in bits
  Bytes token;
  std::vector<std::uint64_t> known;
  std::vector<std::uint64_t> bad;

  std::size_t wire_size() const noexcept {
    return 13 + token.size() + 16 * knowledge_blocks(devices);
  }

  /// Append the wire encoding to `out` (which the caller may have
  /// acquired from a payload pool).
  void encode_into(Bytes& out) const;
  Bytes encode() const;

  /// Strict decode: returns nullopt on truncated input, oversized
  /// declared fields, or trailing garbage.
  static std::optional<GossipMsg> decode(BytesView wire);
};

/// Zero-copy parse of an encoded gossip message. Valid only while the
/// underlying payload buffer lives.
struct GossipView {
  net::NodeId sender = 0;
  std::uint32_t epoch = 0;
  std::uint32_t devices = 0;
  BytesView token;
  const std::uint8_t* known = nullptr;  // blocks 64-bit LE words
  const std::uint8_t* bad = nullptr;

  std::size_t blocks() const noexcept { return knowledge_blocks(devices); }
  std::uint64_t known_block(std::size_t i) const noexcept {
    return load_u64le(known + 8 * i);
  }
  std::uint64_t bad_block(std::size_t i) const noexcept {
    return load_u64le(bad + 8 * i);
  }

  /// False on any framing violation (same checks as GossipMsg::decode).
  static bool parse(BytesView wire, GossipView& out) noexcept;
};

}  // namespace cra::pads
