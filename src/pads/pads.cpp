#include "pads/pads.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "common/rng.hpp"
#include "crypto/backend.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/ct.hpp"
#include "crypto/kdf.hpp"
#include "crypto/sha256.hpp"
#include "obs/trace.hpp"
#include "pads/messages.hpp"

namespace cra::pads {
namespace {

Bytes master_from_seed(std::uint64_t seed) {
  crypto::SecureRandom rng(seed ^ 0x5041'4453'6d73'7472ULL);  // "PADSmstr"
  return rng.bytes(32);
}

}  // namespace

PadsSimulation::PadsSimulation(PadsConfig config, net::Tree tree,
                               std::uint64_t seed)
    : config_(config),
      tree_(std::move(tree)),
      scheduler_(),
      network_(scheduler_, config.link),
      master_(master_from_seed(seed)),
      devices_(tree_.device_count()) {
  if (config_.token_size == 0 ||
      config_.token_size > crypto::digest_size(config_.alg)) {
    throw std::invalid_argument(
        "PadsConfig: token_size must be in [1, digest_size(alg)]");
  }
  dev_at_.resize(tree_.size());
  pos_of_.resize(tree_.size());
  for (net::NodeId n = 0; n < tree_.size(); ++n) {
    dev_at_[n] = n;
    pos_of_[n] = n;
  }
  // Every node — the verifier included — holds a self-attestation key
  // provisioned at deployment; token authenticity is what gates merging.
  vrf_mac_.init(config_.alg,
                crypto::derive_device_key(
                    master_, 0, crypto::digest_size(config_.alg), "pads-key"));
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    dev(id).mac.init(config_.alg,
                     crypto::derive_device_key(
                         master_, id, crypto::digest_size(config_.alg),
                         "pads-key"));
  }
  present_.assign(tree_.size(), 1);
  vrf_present_.assign(tree_.size(), 1);
  blocks_ = knowledge_blocks(device_count());
  network_.set_handler([this](const net::Message& m) { on_message(m); });
  setup_engine();
}

PadsSimulation PadsSimulation::balanced(PadsConfig config,
                                        std::uint32_t devices,
                                        std::uint64_t seed) {
  return PadsSimulation(
      config, net::balanced_kary_tree(devices, config.tree_arity), seed);
}

void PadsSimulation::setup_engine() {
  // Same sharding precondition as SAP/SEDA: the conservative lookahead
  // is the per-hop processing latency, so zero-latency links pin the
  // simulation to the classic single-queue engine.
  if (!config_.sim.sharded() ||
      config_.link.per_hop_latency <= sim::Duration::zero()) {
    network_.bind_metrics(&metrics_);
    merge_ctrs_ = {&metrics_.counter("pads.merges")};
    reject_ctrs_ = {&metrics_.counter("pads.token_failures")};
    return;
  }
  // Entities are device ids, NOT tree positions: a mid-round rewire
  // reassigns positions but must not migrate device state across
  // shards, so the shard map has to be keyed by the stable identity.
  engine_ = std::make_unique<sim::ParallelScheduler>(
      tree_.size(), config_.sim, config_.link.per_hop_latency);
  network_.bind_metrics(nullptr);
  shard_nets_.reserve(engine_->shard_count());
  merge_ctrs_.reserve(engine_->shard_count());
  reject_ctrs_.reserve(engine_->shard_count());
  for (std::uint32_t s = 0; s < engine_->shard_count(); ++s) {
    auto net = std::make_unique<net::Network>(engine_->shard(s), config_.link);
    net->set_handler([this](const net::Message& m) { on_message(m); });
    net->bind_metrics(&engine_->shard_metrics(s));
    merge_ctrs_.push_back(&engine_->shard_metrics(s).counter("pads.merges"));
    reject_ctrs_.push_back(
        &engine_->shard_metrics(s).counter("pads.token_failures"));
    // Serialized cross-shard delivery; see sap::SapSimulation's router
    // for the spent-buffer recycling contract.
    net->set_router([this, s](net::Message m, sim::SimTime at) {
      Bytes spent =
          engine_->post_message(m.dst, at, m.src, m.kind, std::move(m.payload));
      if (spent.capacity() != 0) {
        shard_nets_[s]->recycle_payload(std::move(spent));
      }
    });
    shard_nets_.push_back(std::move(net));
  }
  engine_->set_message_sinks(
      [this](sim::ShardMessage&& sm) {
        net::Message m{sm.src, sm.entity, sm.kind, std::move(sm.payload)};
        on_message(m);
        net_of(m.dst).recycle_payload(std::move(m.payload));
      },
      [this](const sim::ShardMessageView& v) {
        net::Message m{v.src, v.entity, v.kind,
                       net_of(v.entity).acquire_payload()};
        m.payload.assign(v.payload.begin(), v.payload.end());
        on_message(m);
        net_of(m.dst).recycle_payload(std::move(m.payload));
      });
}

void PadsSimulation::sync_shard_networks() {
  if (network_.has_tamper_hook()) {
    throw std::logic_error(
        "PadsSimulation: tamper hooks require the single-threaded engine "
        "(construct with config.sim.threads == 1)");
  }
  for (std::uint32_t s = 0; s < shard_nets_.size(); ++s) {
    shard_nets_[s]->enable_per_link_accounting(network_.per_link_accounting());
    shard_nets_[s]->reset_accounting();
    if (network_.loss_rate() > 0.0) {
      SplitMix64 mix(network_.loss_seed() +
                     0x9e3779b97f4a7c15ULL * (s + 1) + rounds_run_);
      shard_nets_[s]->set_loss_rate(network_.loss_rate(), mix.next());
    } else {
      shard_nets_[s]->set_loss_rate(0.0);
    }
  }
}

void PadsSimulation::run_to(sim::SimTime t) {
  if (engine_) {
    engine_->run_until(t);
  } else {
    scheduler_.run_until(t);
  }
}

void PadsSimulation::compromise_device(net::NodeId id) {
  dev(id).compromised = true;
}

void PadsSimulation::restore_device(net::NodeId id) {
  dev(id).compromised = false;
}

void PadsSimulation::set_device_unresponsive(net::NodeId id,
                                             bool unresponsive) {
  dev(id).unresponsive = unresponsive;
}

void PadsSimulation::rebuild_topology(
    net::Tree tree, std::vector<net::NodeId> device_at_position) {
  if (tree.device_count() != device_count() ||
      device_at_position.size() != tree.size() ||
      device_at_position[0] != 0) {
    throw std::invalid_argument("rebuild_topology: shape mismatch");
  }
  std::vector<net::NodeId> new_pos(tree.size(), net::kNoNode);
  for (net::NodeId pos = 0; pos < tree.size(); ++pos) {
    const net::NodeId id = device_at_position[pos];
    if (id >= tree.size() || new_pos[id] != net::kNoNode) {
      throw std::invalid_argument("rebuild_topology: not a permutation");
    }
    new_pos[id] = pos;
  }
  // Safe mid-round: callers only reach here from the driver thread while
  // the engine is quiescent (between run_until slices), and gossip
  // consults the routing tables at send time.
  tree_ = std::move(tree);
  dev_at_ = std::move(device_at_position);
  pos_of_ = std::move(new_pos);
}

void PadsSimulation::set_rewire_schedule(std::vector<net::RewireStep> steps) {
  if (round_active_) {
    throw std::logic_error("set_rewire_schedule: round in progress");
  }
  std::stable_sort(steps.begin(), steps.end(),
                   [](const net::RewireStep& a, const net::RewireStep& b) {
                     return a.at < b.at;
                   });
  rewires_ = std::move(steps);
}

void PadsSimulation::apply_rewire(const net::RewireStep& step) {
  rebuild_topology(step.tree, step.device_at_position);
}

void PadsSimulation::advance_time(sim::Duration d) {
  const sim::SimTime target = current_time() + d;
  arm_faults(target);
  run_to(target);
}

void PadsSimulation::attach_fault_plan(fault::FaultPlan plan) {
  if (round_active_) {
    throw std::logic_error("attach_fault_plan: round in progress");
  }
  faults_ = std::make_unique<fault::FaultInjector>(std::move(plan));
}

void PadsSimulation::clear_fault_plan() {
  if (round_active_) {
    throw std::logic_error("clear_fault_plan: round in progress");
  }
  faults_.reset();
}

void PadsSimulation::arm_faults(sim::SimTime horizon) {
  if (!faults_) return;
  faults_->arm_until(horizon, [this](const fault::FaultEvent& ev) {
    fault::observe_event(metrics_, ev);
    schedule_fault(ev);
  });
}

void PadsSimulation::schedule_fault(const fault::FaultEvent& ev) {
  using fault::FaultKind;
  switch (ev.kind) {
    case FaultKind::kCrash:
    case FaultKind::kReboot:
    case FaultKind::kSleep:
    case FaultKind::kWake:
    case FaultKind::kClockSkew: {
      if (ev.device == 0 || ev.device > device_count()) {
        throw std::out_of_range("fault plan: device id out of range");
      }
      if (ev.at <= current_time()) {
        apply_device_fault(ev);
      } else {
        sched(ev.device).schedule_at(ev.at,
                                     [this, ev] { apply_device_fault(ev); });
      }
      break;
    }
    case FaultKind::kLeave:
    case FaultKind::kJoin: {
      if (ev.device == 0 || ev.device > device_count()) {
        throw std::out_of_range("fault plan: device id out of range");
      }
      const net::NodeId id = ev.device;
      const std::uint8_t present = ev.kind == FaultKind::kJoin ? 1 : 0;
      // Two views, two events, both scheduled now (engine idle) so
      // neither is a cross-shard post: the device's shard owns the
      // authoritative flag, and the verifier's shard keeps its own
      // mirror so the consensus check never reads cross-shard state.
      auto apply_dev = [this, id, present] { present_[id] = present; };
      auto apply_vrf = [this, id, present] {
        vrf_present_[id] = present;
        // A departure can shrink the consensus target to exactly what
        // the verifier already covers; a join can grow it past what a
        // latched verdict covered, which revokes the verdict until
        // gossip catches back up.
        if (consensus_reached_ && !verifier_covered()) {
          consensus_reached_ = false;
        }
        note_verifier_progress(sched(0).now());
      };
      if (ev.at <= current_time()) {
        apply_dev();
        apply_vrf();
      } else {
        sched(id).schedule_at(ev.at, apply_dev);
        sched(0).schedule_at(ev.at, apply_vrf);
      }
      break;
    }
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp: {
      if (ev.device >= tree_.size() || ev.peer >= tree_.size()) {
        throw std::out_of_range("fault plan: link endpoint out of range");
      }
      // Plans name tree POSITIONS; under mobility a position is a place,
      // not a device, so the outage binds to whoever occupies the
      // endpoints when the event is armed.
      const net::NodeId a = dev_at_[ev.device];
      const net::NodeId b = dev_at_[ev.peer];
      const bool down = ev.kind == FaultKind::kLinkDown;
      apply_link(a, b, down, ev.at);
      apply_link(b, a, down, ev.at);
      break;
    }
    case FaultKind::kPartition:
    case FaultKind::kHeal: {
      for (net::NodeId pos : ev.island) {
        if (pos >= tree_.size()) {
          throw std::out_of_range("fault plan: island position out of range");
        }
      }
      const bool down = ev.kind == FaultKind::kPartition;
      for (const auto& [a, b] : fault::partition_cut(tree_, ev.island)) {
        apply_link(dev_at_[a], dev_at_[b], down, ev.at);
        apply_link(dev_at_[b], dev_at_[a], down, ev.at);
      }
      break;
    }
    case FaultKind::kLossSpike:
      if (!loss_spiked_) {
        baseline_loss_rate_ = network_.loss_rate();
        baseline_loss_seed_ = network_.loss_seed();
        loss_spiked_ = true;
      }
      apply_loss(ev.rate, ev.draw, ev.at);
      break;
    case FaultKind::kLossClear:
      loss_spiked_ = false;
      apply_loss(baseline_loss_rate_, baseline_loss_seed_, ev.at);
      break;
    case FaultKind::kProcKill:
      break;  // process-level chaos: only the wire-chaos supervisor acts
  }
}

void PadsSimulation::apply_device_fault(const fault::FaultEvent& ev) {
  using fault::FaultKind;
  Dev& d = dev(ev.device);
  switch (ev.kind) {
    case FaultKind::kCrash:
      // Volatile state is gone with the power: the knowledge vectors and
      // this round's self-attestation. The device cannot re-attest until
      // the next round, so it stays silent even after a reboot.
      d.unresponsive = true;
      d.attested = false;
      std::fill_n(known_row(ev.device), blocks_, 0);
      std::fill_n(bad_row(ev.device), blocks_, 0);
      break;
    case FaultKind::kReboot:
    case FaultKind::kWake:
      d.unresponsive = false;
      break;
    case FaultKind::kSleep:
      d.unresponsive = true;
      break;
    case FaultKind::kClockSkew:
      // PADS needs no synchronized clock: epochs are local timers.
      break;
    case FaultKind::kLeave:
    case FaultKind::kJoin:
      break;  // handled by schedule_fault's membership path
    default:
      break;
  }
}

void PadsSimulation::apply_link(net::NodeId src, net::NodeId dst, bool down,
                               sim::SimTime at) {
  if (at <= current_time()) {
    net_of(src).set_link_down(src, dst, down);
    return;
  }
  sched(src).schedule_at(at, [this, src, dst, down] {
    net_of(src).set_link_down(src, dst, down);
  });
}

void PadsSimulation::apply_loss(double rate, std::uint64_t seed,
                               sim::SimTime at) {
  if (!engine_) {
    if (at <= scheduler_.now()) {
      network_.set_loss_rate(rate, seed);
    } else {
      scheduler_.schedule_at(
          at, [this, rate, seed] { network_.set_loss_rate(rate, seed); });
    }
    return;
  }
  network_.set_loss_rate(rate, seed);
  for (std::uint32_t s = 0; s < shard_nets_.size(); ++s) {
    SplitMix64 mix(seed + 0x9e3779b97f4a7c15ULL * (s + 1) + rounds_run_);
    const std::uint64_t shard_seed = mix.next();
    if (at <= engine_->now()) {
      shard_nets_[s]->set_loss_rate(rate, shard_seed);
    } else {
      engine_->shard(s).schedule_at(at, [this, s, rate, shard_seed] {
        shard_nets_[s]->set_loss_rate(rate, shard_seed);
      });
    }
  }
}

sim::Duration PadsSimulation::attest_time() const {
  const std::uint64_t blocks =
      crypto::hmac_compression_calls(config_.alg, config_.pmem_size + 4);
  return sim::cycles_to_time(
      config_.attest_overhead_cycles + blocks * config_.cycles_per_block,
      config_.device_hz);
}

std::size_t PadsSimulation::gossip_wire_size() const noexcept {
  return 13 + config_.token_size + 16 * knowledge_blocks(device_count());
}

sim::Duration PadsSimulation::effective_gossip_period() const {
  // Floor: one full gossip message must clear a link (plus a hair of
  // slack) within a period, or epoch e+1's send would outrun epoch e's
  // arrival and knowledge would never advance.
  const sim::Duration floor =
      network_.link_delay(gossip_wire_size()) + sim::Duration::from_us(1);
  return config_.gossip_period > floor ? config_.gossip_period : floor;
}

std::uint32_t PadsSimulation::effective_gossip_epochs() const noexcept {
  if (config_.gossip_epochs != 0) return config_.gossip_epochs;
  // Knowledge needs depth hops up plus depth hops down, one hop per
  // epoch; the slack absorbs rewires and stragglers.
  return 2 * tree_.max_depth() + 6;
}

void PadsSimulation::mark(net::NodeId owner, net::NodeId subject,
                          bool is_bad) noexcept {
  const std::uint32_t bit = subject - 1;
  known_row(owner)[bit / 64] |= 1ULL << (bit % 64);
  if (is_bad) bad_row(owner)[bit / 64] |= 1ULL << (bit % 64);
}

bool PadsSimulation::verifier_covered() const noexcept {
  const std::uint64_t* kr = known_.data();  // row 0 = the verifier
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    if (!vrf_present_[id]) continue;
    const std::uint32_t bit = id - 1;
    if ((kr[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

void PadsSimulation::note_verifier_progress(sim::SimTime at) noexcept {
  if (consensus_reached_) return;
  if (verifier_covered()) {
    consensus_reached_ = true;
    consensus_at_ = at;
  }
}

void PadsSimulation::compute_round_tokens() {
  // One SIMD-friendly batch computes every node's round token twice:
  // the value its hardware actually emits (state byte reflects
  // compromise) and the healthy value receivers expect. 2(N+1) MACs.
  const std::size_t n = static_cast<std::size_t>(device_count()) + 1;
  std::array<std::uint8_t, 4> nonce{};
  store_u32le(nonce.data(), round_nonce_);
  static constexpr std::uint8_t kHealthy = 0x00;
  static constexpr std::uint8_t kInfected = 0xff;
  std::vector<crypto::MacJob> jobs(2 * n);
  std::vector<crypto::MacBuf> outs(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const crypto::PrecomputedMac* mac =
        i == 0 ? &vrf_mac_ : &devices_[i - 1].mac;
    const bool infected = i != 0 && devices_[i - 1].compromised;
    jobs[i] = {mac, BytesView(nonce.data(), nonce.size()),
               BytesView(infected ? &kInfected : &kHealthy, 1)};
    jobs[n + i] = {mac, BytesView(nonce.data(), nonce.size()),
                   BytesView(&kHealthy, 1)};
  }
  crypto::active_backend().hmac_batch(jobs.data(), jobs.size(), outs.data());
  tokens_.assign(n, {});
  expected_tokens_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    tokens_[i].assign(outs[i].bytes.begin(),
                      outs[i].bytes.begin() + config_.token_size);
    expected_tokens_[i].assign(outs[n + i].bytes.begin(),
                               outs[n + i].bytes.begin() + config_.token_size);
  }
}

void PadsSimulation::self_attest(net::NodeId id) {
  Dev& d = dev(id);
  if (!present_[id] || d.unresponsive) return;  // was not awake to measure
  d.attested = true;
  // Honest self-verdict; a compromised device's claims never propagate
  // anyway because its token fails every receiver's check.
  mark(id, id, d.compromised);
}

void PadsSimulation::gossip_tick(net::NodeId id, std::uint32_t epoch) {
  // Reschedule unconditionally: a device that is absent or asleep now
  // may be back before the round ends, and the timer chain is the only
  // thing that brings it back into the gossip.
  if (epoch + 1 < epochs_total_) {
    sched(id).schedule_at(
        first_epoch_at_ + period_ * static_cast<std::int64_t>(epoch + 1),
        [this, id, epoch] { gossip_tick(id, epoch + 1); });
  }
  if (id != 0) {
    const Dev& d = dev(id);
    if (!present_[id] || d.unresponsive || !d.attested) return;
  }
  // Route over the CURRENT tree: position lookups happen at send time,
  // so a rewire applied mid-round redirects the very next epoch.
  const net::NodeId pos = pos_of_[id];
  const Bytes& token = tokens_[id];
  const std::uint64_t* kr = known_row(id);
  const std::uint64_t* br = bad_row(id);
  net::Network& net = net_of(id);
  auto send_to = [&](net::NodeId neighbor) {
    Bytes buf = net.acquire_payload();
    buf.reserve(gossip_wire_size());
    append_u32le(buf, id);
    append_u32le(buf, epoch);
    append_u32le(buf, device_count());
    buf.push_back(static_cast<std::uint8_t>(token.size()));
    buf.insert(buf.end(), token.begin(), token.end());
    for (std::size_t b = 0; b < blocks_; ++b) append_u64le(buf, kr[b]);
    for (std::size_t b = 0; b < blocks_; ++b) append_u64le(buf, br[b]);
    net.send(id, neighbor, kGossipKind, std::move(buf));
  };
  if (pos != 0) send_to(dev_at_[tree_.parent(pos)]);
  for (const net::NodeId child_pos : tree_.children(pos)) {
    send_to(dev_at_[child_pos]);
  }
}

void PadsSimulation::on_message(const net::Message& msg) {
  if (msg.kind != kGossipKind) return;
  GossipView v;
  if (!GossipView::parse(msg.payload, v)) return;
  if (v.devices != device_count() || v.sender != msg.src ||
      v.sender >= tree_.size()) {
    return;
  }
  const net::NodeId dst = msg.dst;
  if (dst != 0) {
    const Dev& d = dev(dst);
    if (!present_[dst] || d.unresponsive) return;  // radio is off
  }
  const Bytes& expect = expected_tokens_[v.sender];
  const bool authentic =
      v.token.size() == expect.size() &&
      crypto::ct_equal(v.token, BytesView(expect.data(), expect.size()));
  if (!authentic) {
    reject_counter(dst).inc();
    // The sender is alive but cannot produce the healthy token: that IS
    // the untrusted verdict. Nothing it claims gets merged.
    if (v.sender != 0) mark(dst, v.sender, true);
  } else {
    if (v.sender != 0) mark(dst, v.sender, false);
    std::uint64_t* kr = known_row(dst);
    std::uint64_t* br = bad_row(dst);
    for (std::size_t b = 0; b < blocks_; ++b) {
      kr[b] |= v.known_block(b);
      br[b] |= v.bad_block(b);
    }
    merge_counter(dst).inc();
  }
  if (dst == 0) note_verifier_progress(sched(0).now());
}

PadsRoundReport PadsSimulation::run_round() {
  if (round_active_) {
    throw std::logic_error("PADS run_round: round already active");
  }
  round_active_ = true;

  blocks_ = knowledge_blocks(device_count());
  known_.assign((static_cast<std::size_t>(device_count()) + 1) * blocks_, 0);
  bad_.assign(known_.size(), 0);
  for (auto& d : devices_) d.attested = false;
  consensus_reached_ = false;
  // The verifier's membership view starts from the authoritative one —
  // both are only written by the driver thread between rounds.
  vrf_present_ = present_;

  obs::Span round_span("pads.round");
  metrics_.reset_values();
  if (engine_) engine_->reset_shard_metrics();
  network_.reset_accounting();
  if (engine_) sync_shard_networks();

  t_start_ = current_time();
  round_nonce_ = static_cast<std::uint32_t>(rounds_run_ + 1);
  compute_round_tokens();

  // Rewires scheduled at or before the round start describe the initial
  // deployment: apply them before anything is in flight.
  std::size_t ri = 0;
  while (ri < rewires_.size() && rewires_[ri].at <= t_start_) {
    apply_rewire(rewires_[ri]);
    ++ri;
  }

  period_ = effective_gossip_period();
  epochs_total_ = effective_gossip_epochs();
  first_epoch_at_ = t_start_ + attest_time();

  // Every node measures itself first (the HMAC over PMEM occupies its
  // CPU for attest_time), then the gossip timer chain starts.
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    sched(id).schedule_at(first_epoch_at_, [this, id] { self_attest(id); });
  }
  for (net::NodeId id = 0; id <= device_count(); ++id) {
    sched(id).schedule_at(first_epoch_at_, [this, id] { gossip_tick(id, 0); });
  }

  const sim::SimTime horizon =
      first_epoch_at_ + period_ * static_cast<std::int64_t>(epochs_total_ + 1);
  arm_faults(horizon);

  // Slice the run at each rewire instant: run_until parks the engine at
  // a quiescent barrier, the driver thread swaps the routing tables,
  // and the next slice (or the final run to quiescence) continues with
  // identical event order on every engine.
  for (; ri < rewires_.size(); ++ri) {
    run_to(rewires_[ri].at);
    apply_rewire(rewires_[ri]);
  }
  if (engine_) {
    engine_->run();
  } else {
    scheduler_.run();
  }
  ++rounds_run_;

  if (engine_) engine_->merge_metrics_into(metrics_);
  network_.assert_ledgers_consistent();
  for (const auto& net : shard_nets_) net->assert_ledgers_consistent();

  PadsRoundReport report;
  report.devices = device_count();
  report.t_start = t_start_;
  report.t_end = current_time();
  const std::uint64_t* vk = known_.data();
  const std::uint64_t* vb = bad_.data();
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    if (!vrf_present_[id]) continue;
    ++report.present;
    const std::uint32_t bit = id - 1;
    const std::uint64_t m = 1ULL << (bit % 64);
    if (vk[bit / 64] & m) ++report.known;
    if (vb[bit / 64] & m) {
      ++report.untrusted;
      if (!dev(id).compromised) ++report.false_untrusted;
    }
  }
  report.converged = verifier_covered();
  report.consensus_at = consensus_reached_ ? consensus_at_ : report.t_end;
  report.u_ca_bytes = metrics_.counter_value("net.bytes_transmitted");
  report.messages = metrics_.counter_value("net.messages_sent");
  report.token_failures = static_cast<std::uint32_t>(
      metrics_.counter_value("pads.token_failures"));
  report.epochs = epochs_total_;
  report.digest = round_digest(report);

  rewires_.clear();
  round_active_ = false;
  round_span.sim_range(report.t_start.ns(), report.t_end.ns());
  return report;
}

std::string PadsSimulation::round_digest(const PadsRoundReport& report) const {
  // Canonical serialization of everything the round decided: membership
  // (both views), every node's knowledge vectors, the consensus instant
  // and the traffic ledgers. Any divergence between engines or thread
  // counts — a reordered merge, a lost message, a misrouted rewire —
  // lands in at least one of these.
  Bytes blob;
  blob.reserve(16 + 2 * present_.size() + 16 * known_.size());
  append_u32le(blob, report.devices);
  blob.insert(blob.end(), present_.begin(), present_.end());
  blob.insert(blob.end(), vrf_present_.begin(), vrf_present_.end());
  for (const std::uint64_t w : known_) append_u64le(blob, w);
  for (const std::uint64_t w : bad_) append_u64le(blob, w);
  append_u64le(blob, static_cast<std::uint64_t>(report.consensus_at.ns()));
  append_u64le(blob, static_cast<std::uint64_t>(report.t_end.ns()));
  append_u64le(blob, report.u_ca_bytes);
  append_u64le(blob, report.messages);
  append_u64le(blob, report.token_failures);
  const crypto::Sha256::Digest d = crypto::Sha256::digest(blob);
  return to_hex(BytesView(d.data(), d.size()));
}

}  // namespace cra::pads
