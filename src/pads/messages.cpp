#include "pads/messages.hpp"

#include <limits>

namespace cra::pads {

void GossipMsg::encode_into(Bytes& out) const {
  const std::size_t blocks = knowledge_blocks(devices);
  out.reserve(out.size() + wire_size());
  append_u32le(out, sender);
  append_u32le(out, epoch);
  append_u32le(out, devices);
  out.push_back(static_cast<std::uint8_t>(token.size()));
  out.insert(out.end(), token.begin(), token.end());
  // encode() accepts vectors shorter than the declared width (treated as
  // all-zero tail) so builders can stay sparse; the wire always carries
  // full blocks.
  for (std::size_t i = 0; i < blocks; ++i) {
    append_u64le(out, i < known.size() ? known[i] : 0);
  }
  for (std::size_t i = 0; i < blocks; ++i) {
    append_u64le(out, i < bad.size() ? bad[i] : 0);
  }
}

Bytes GossipMsg::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

std::optional<GossipMsg> GossipMsg::decode(BytesView wire) {
  GossipView view;
  if (!GossipView::parse(wire, view)) return std::nullopt;
  GossipMsg msg;
  msg.sender = view.sender;
  msg.epoch = view.epoch;
  msg.devices = view.devices;
  msg.token.assign(view.token.begin(), view.token.end());
  const std::size_t blocks = view.blocks();
  msg.known.resize(blocks);
  msg.bad.resize(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    msg.known[i] = view.known_block(i);
    msg.bad[i] = view.bad_block(i);
  }
  return msg;
}

bool GossipView::parse(BytesView wire, GossipView& out) noexcept {
  if (wire.size() < 13) return false;
  out.sender = read_u32le(wire, 0);
  out.epoch = read_u32le(wire, 4);
  out.devices = read_u32le(wire, 8);
  // Guard the width before computing sizes: a hostile 0xffffffff width
  // must not overflow the frame arithmetic.
  if (out.devices > (std::numeric_limits<std::uint32_t>::max() >> 7)) {
    return false;
  }
  const std::size_t token_len = wire[12];
  const std::size_t blocks = knowledge_blocks(out.devices);
  const std::size_t need = 13 + token_len + 16 * blocks;
  if (wire.size() != need) return false;
  out.token = wire.subspan(13, token_len);
  out.known = wire.data() + 13 + token_len;
  out.bad = out.known + 8 * blocks;
  return true;
}

}  // namespace cra::pads
