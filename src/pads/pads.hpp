// PADS — practical attestation for highly dynamic swarms (Ambrosin et
// al., arXiv 1806.05766) — as the repo's third full protocol.
//
// Where SAP and SEDA pull reports up a spanning tree that must hold
// still for a whole round, PADS is built for swarms whose topology
// churns mid-round: every device periodically *self-attests* (its
// secure hardware produces an unforgeable token bound to its current
// software state) and gossips its *knowledge* — a verdict bitset over
// the whole swarm — to whoever its neighbors happen to be right now.
// Verdicts merge by min-consensus: "untrusted" dominates "trusted"
// dominates "unknown", which for one attestation epoch is exactly a
// monotone bitwise OR over (known, bad) pairs. Because OR is
// commutative and associative, the converged state — and the round
// digest derived from it — is independent of message arrival order,
// which is what lets one round produce byte-identical results on the
// serial Scheduler and the sharded ParallelScheduler at any thread
// count.
//
// Dynamism enters three ways, all deterministic:
//   * a rewire schedule (net::mobility_schedule) swaps the neighbor
//     tree at fixed simulated times while the engine is quiescent;
//   * fault plans replay crash/sleep/loss exactly as for SAP/SEDA;
//   * kLeave/kJoin membership events shrink/grow the *present* set the
//     verifier must cover for consensus.
//
// Trust model: a receiver authenticates the sender's token against the
// expected healthy value before merging anything the sender claims. A
// compromised device therefore cannot poison knowledge — its gossip is
// rejected and it is marked untrusted by every neighbor that hears it —
// but it also relays nothing, so pockets behind compromised or absent
// devices only drain as mobility rewires routes around them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/mac_cache.hpp"
#include "fault/injector.hpp"
#include "net/mobility.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"

namespace cra::pads {

struct PadsConfig {
  crypto::HashAlg alg = crypto::HashAlg::kSha1;
  std::uint32_t pmem_size = 50 * 1024;
  std::uint64_t device_hz = 24'000'000;

  /// Self-attestation cost model — the same HMAC core as SAP/SEDA.
  std::uint64_t attest_overhead_cycles = 5'000;
  std::uint64_t cycles_per_block = 14'400;

  net::LinkParams link{};
  std::uint32_t tree_arity = 2;

  /// Gossip cadence. Every present device pushes its knowledge to all
  /// current neighbors once per period; the simulation floors this at
  /// one link traversal of a full gossip message so information always
  /// advances at least one hop per epoch.
  sim::Duration gossip_period = sim::Duration::from_ms(100);
  /// Number of gossip epochs per round; 0 = auto (2 * initial tree
  /// depth + 6 — enough for knowledge to cross the swarm twice, with
  /// slack for rewires and losses).
  std::uint32_t gossip_epochs = 0;

  /// Self-attestation token bytes carried in every gossip message.
  std::uint32_t token_size = 12;

  /// Simulation engine knobs (same semantics as SapConfig::sim).
  sim::SimConfig sim{};
};

struct PadsRoundReport {
  std::uint32_t devices = 0;     // swarm size (verifier excluded)
  std::uint32_t present = 0;     // devices in the swarm at round end
  std::uint32_t known = 0;       // present devices with a verdict at Vrf
  std::uint32_t untrusted = 0;   // present devices marked bad at Vrf
  std::uint32_t false_untrusted = 0;  // of those, not actually compromised
  bool converged = false;        // Vrf covered every present device
  sim::SimTime t_start;
  sim::SimTime t_end;
  /// First simulated instant the verifier held a verdict for every
  /// present device (== t_end when the round never converged).
  sim::SimTime consensus_at;
  std::uint64_t u_ca_bytes = 0;
  std::uint64_t messages = 0;
  std::uint32_t token_failures = 0;  // gossip rejected by token check
  std::uint32_t epochs = 0;          // gossip epochs executed
  /// SHA-256 over the round's canonical final state (membership, every
  /// device's knowledge vectors, consensus time, traffic counters) —
  /// the determinism probe the cross-engine tests compare.
  std::string digest;

  double completion() const noexcept {
    return present == 0 ? 1.0
                        : static_cast<double>(known) /
                              static_cast<double>(present);
  }
  sim::Duration time_to_consensus() const noexcept {
    return consensus_at - t_start;
  }
  sim::Duration total_time() const noexcept { return t_end - t_start; }
};

class PadsSimulation {
 public:
  PadsSimulation(PadsConfig config, net::Tree tree, std::uint64_t seed = 1);

  // Pinned to its address (the network references the owned scheduler).
  PadsSimulation(const PadsSimulation&) = delete;
  PadsSimulation& operator=(const PadsSimulation&) = delete;

  static PadsSimulation balanced(PadsConfig config, std::uint32_t devices,
                                 std::uint64_t seed = 1);

  const PadsConfig& config() const noexcept { return config_; }
  const net::Tree& tree() const noexcept { return tree_; }
  net::Network& network() noexcept { return network_; }
  std::uint32_t device_count() const noexcept {
    return static_cast<std::uint32_t>(devices_.size());
  }
  bool parallel() const noexcept { return engine_ != nullptr; }
  sim::SimTime current_time() const noexcept {
    return engine_ ? engine_->now() : scheduler_.now();
  }

  /// Merged metrics of the last run_round(): net.* plus pads.*. Same
  /// determinism contract as the SAP/SEDA registries.
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  void compromise_device(net::NodeId id);
  void restore_device(net::NodeId id);
  void set_device_unresponsive(net::NodeId id, bool unresponsive);
  bool device_present(net::NodeId id) const { return present_.at(id); }

  /// Replace the topology between rounds (same contract as
  /// sap::SapSimulation::rebuild_topology: position 0 is the verifier,
  /// `device_at_position` a permutation of the device ids).
  void rebuild_topology(net::Tree tree,
                        std::vector<net::NodeId> device_at_position);

  /// Mid-round mobility: apply each step's topology at its simulated
  /// time during the next run_round() (steps at or before round start
  /// apply immediately). Cleared after the round.
  void set_rewire_schedule(std::vector<net::RewireStep> steps);

  /// --- Scripted fault injection (src/fault) ---
  /// Same replay contract as SAP/SEDA. PADS runs without a synchronized
  /// clock, so kClockSkew is accepted and ignored; kLeave/kJoin update
  /// swarm membership (absent devices are excluded from the consensus
  /// target).
  void attach_fault_plan(fault::FaultPlan plan);
  void clear_fault_plan();
  bool has_fault_plan() const noexcept { return faults_ != nullptr; }
  const fault::FaultTally* fault_tally() const noexcept {
    return faults_ ? &faults_->tally() : nullptr;
  }

  PadsRoundReport run_round();
  void advance_time(sim::Duration d);

  /// Cost-model probes (for benches and analytic checks).
  sim::Duration attest_time() const;
  std::size_t gossip_wire_size() const noexcept;
  sim::Duration effective_gossip_period() const;
  std::uint32_t effective_gossip_epochs() const noexcept;

 private:
  struct Dev {
    crypto::PrecomputedMac mac;  // midstate cache over the device key
    bool compromised = false;
    bool unresponsive = false;
    bool attested = false;  // this round's self-attestation completed
  };

  Dev& dev(net::NodeId id) { return devices_[id - 1]; }
  const Dev& dev(net::NodeId id) const { return devices_[id - 1]; }

  // Engine routing — entities are DEVICE IDS (0 = verifier), not tree
  // positions: mobility reassigns positions mid-round, and keying shards
  // by device id keeps every device's state on one shard regardless of
  // where it wanders. The tree is only a routing table consulted at
  // send time.
  sim::Scheduler& sched(net::NodeId id) noexcept {
    return engine_ ? engine_->shard_for(id) : scheduler_;
  }
  net::Network& net_of(net::NodeId id) noexcept {
    return engine_ ? *shard_nets_[engine_->shard_of(id)] : network_;
  }
  obs::Counter& merge_counter(net::NodeId id) noexcept {
    return *merge_ctrs_[engine_ ? engine_->shard_of(id) : 0];
  }
  obs::Counter& reject_counter(net::NodeId id) noexcept {
    return *reject_ctrs_[engine_ ? engine_->shard_of(id) : 0];
  }
  void setup_engine();
  void sync_shard_networks();
  void run_to(sim::SimTime t);

  // Fault-plan replay (device ids ARE the wire node ids; link/partition
  // events name tree positions and bind to the devices occupying them
  // when the event is armed).
  void arm_faults(sim::SimTime horizon);
  void schedule_fault(const fault::FaultEvent& ev);
  void apply_device_fault(const fault::FaultEvent& ev);
  void apply_link(net::NodeId src, net::NodeId dst, bool down,
                  sim::SimTime at);
  void apply_loss(double rate, std::uint64_t seed, sim::SimTime at);
  void apply_rewire(const net::RewireStep& step);

  // Knowledge plumbing. Vectors are rows of `blocks_` 64-bit words per
  // node id (verifier = row 0); bit d-1 = device d.
  std::uint64_t* known_row(net::NodeId id) noexcept {
    return known_.data() + static_cast<std::size_t>(id) * blocks_;
  }
  std::uint64_t* bad_row(net::NodeId id) noexcept {
    return bad_.data() + static_cast<std::size_t>(id) * blocks_;
  }
  void mark(net::NodeId owner, net::NodeId subject, bool is_bad) noexcept;
  bool verifier_covered() const noexcept;
  void note_verifier_progress(sim::SimTime at) noexcept;

  void compute_round_tokens();
  void self_attest(net::NodeId id);
  void gossip_tick(net::NodeId id, std::uint32_t epoch);
  void on_message(const net::Message& msg);
  std::string round_digest(const PadsRoundReport& report) const;

  PadsConfig config_;
  net::Tree tree_;
  std::vector<net::NodeId> dev_at_;  // position -> device id
  std::vector<net::NodeId> pos_of_;  // device id -> position
  sim::Scheduler scheduler_;
  net::Network network_;
  std::unique_ptr<sim::ParallelScheduler> engine_;
  std::vector<std::unique_ptr<net::Network>> shard_nets_;
  obs::MetricsRegistry metrics_;
  std::vector<obs::Counter*> merge_ctrs_;   // per shard: "pads.merges"
  std::vector<obs::Counter*> reject_ctrs_;  // per shard: "pads.token_failures"
  std::uint64_t rounds_run_ = 0;

  std::unique_ptr<fault::FaultInjector> faults_;
  bool loss_spiked_ = false;
  double baseline_loss_rate_ = 0.0;
  std::uint64_t baseline_loss_seed_ = 0;

  std::vector<net::RewireStep> rewires_;

  Bytes master_;
  std::vector<Dev> devices_;
  crypto::PrecomputedMac vrf_mac_;
  /// Membership by device id; index 0 (the verifier) is always true.
  /// Written by fault events on the owning device's shard.
  std::vector<std::uint8_t> present_;
  /// The verifier's copy of the membership view, written only on the
  /// verifier's shard (membership events are mirrored there) so the
  /// consensus check never reads cross-shard state.
  std::vector<std::uint8_t> vrf_present_;

  // Per-round state.
  std::size_t blocks_ = 0;
  std::vector<std::uint64_t> known_;  // (devices+1) rows x blocks_
  std::vector<std::uint64_t> bad_;
  std::vector<Bytes> tokens_;          // what each device actually sends
  std::vector<Bytes> expected_tokens_; // the healthy value receivers check
  std::uint32_t round_nonce_ = 0;
  std::uint32_t epochs_total_ = 0;
  sim::Duration period_;
  sim::SimTime t_start_;
  sim::SimTime first_epoch_at_;
  bool round_active_ = false;
  bool consensus_reached_ = false;
  sim::SimTime consensus_at_;
};

}  // namespace cra::pads
