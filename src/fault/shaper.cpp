#include "fault/shaper.hpp"

#include <algorithm>

namespace cra::fault {

TrafficShaper::TrafficShaper(const ShaperConfig& config, const FaultPlan* plan)
    : config_(config), draws_(config.seed) {
  segments_.push_back(LossSegment{0, config_.baseline_loss});
  if (plan == nullptr) return;

  // Compile the plan's network events into flat timelines once; decide()
  // then runs two binary searches per datagram.
  std::vector<std::size_t> open;  // indices of un-healed windows
  for (const FaultEvent& ev : plan->events()) {
    const std::uint64_t at =
        static_cast<std::uint64_t>(std::max<std::int64_t>(ev.at.ns(), 0));
    switch (ev.kind) {
      case FaultKind::kLossSpike:
        segments_.push_back(LossSegment{at, ev.rate});
        break;
      case FaultKind::kLossClear:
        segments_.push_back(LossSegment{at, config_.baseline_loss});
        break;
      case FaultKind::kPartition: {
        PartitionWindow w;
        w.start_ns = at;
        w.end_ns = ~0ull;
        w.island = ev.island;
        open.push_back(windows_.size());
        windows_.push_back(std::move(w));
        break;
      }
      case FaultKind::kHeal: {
        // Close the earliest still-open window with the same island
        // (the plan pairs partition/heal on identical island lists).
        for (auto it = open.begin(); it != open.end(); ++it) {
          if (windows_[*it].island == ev.island) {
            windows_[*it].end_ns = at;
            open.erase(it);
            break;
          }
        }
        break;
      }
      default:
        break;  // device/link faults are endpoint state, not pipe state
    }
  }
  // Events are already time-sorted in the plan, so both timelines are
  // sorted too; keep the invariant explicit for the searches below.
  std::stable_sort(segments_.begin(), segments_.end(),
                   [](const LossSegment& a, const LossSegment& b) {
                     return a.start_ns < b.start_ns;
                   });
}

double TrafficShaper::loss_at(std::uint64_t elapsed_ns) const noexcept {
  // Last segment with start_ns <= elapsed: upper_bound then step back.
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), elapsed_ns,
      [](std::uint64_t t, const LossSegment& s) { return t < s.start_ns; });
  return std::prev(it)->rate;  // segments_[0].start_ns == 0, never empty
}

bool TrafficShaper::partitioned_at(std::uint64_t elapsed_ns,
                                   std::uint32_t device_id) const noexcept {
  for (const PartitionWindow& w : windows_) {
    if (w.start_ns > elapsed_ns) break;
    if (elapsed_ns < w.end_ns &&
        std::find(w.island.begin(), w.island.end(), device_id) !=
            w.island.end()) {
      return true;
    }
  }
  return false;
}

TrafficShaper::Verdict TrafficShaper::decide(std::uint64_t elapsed_ns,
                                             std::uint32_t device_id) {
  ++decisions_;
  if (partitioned_at(elapsed_ns, device_id)) {
    ++dropped_;
    return Verdict{Fate::kDrop, 0};
  }
  const double loss = loss_at(elapsed_ns);
  if (loss > 0.0 && draws_.next_bool(loss)) {
    ++dropped_;
    return Verdict{Fate::kDrop, 0};
  }
  if (config_.reorder > 0.0 && draws_.next_bool(config_.reorder)) {
    ++delayed_;
    return Verdict{Fate::kDelay, config_.reorder_delay_ns};
  }
  return Verdict{Fate::kDeliver, 0};
}

}  // namespace cra::fault
