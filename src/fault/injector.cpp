#include "fault/injector.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace cra::fault {

void FaultTally::count(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: ++crashes; break;
    case FaultKind::kReboot: ++reboots; break;
    case FaultKind::kSleep: ++sleeps; break;
    case FaultKind::kWake: ++wakes; break;
    case FaultKind::kLinkDown: ++links_down; break;
    case FaultKind::kLinkUp: ++links_up; break;
    case FaultKind::kPartition: ++partitions; break;
    case FaultKind::kHeal: ++heals; break;
    case FaultKind::kLossSpike: ++loss_spikes; break;
    case FaultKind::kLossClear: ++loss_clears; break;
    case FaultKind::kClockSkew: ++clock_skews; break;
    case FaultKind::kLeave: ++leaves; break;
    case FaultKind::kJoin: ++joins; break;
    case FaultKind::kProcKill: ++proc_kills; break;
  }
}

const char* fault_metric_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "fault.crashes";
    case FaultKind::kReboot: return "fault.reboots";
    case FaultKind::kSleep: return "fault.sleeps";
    case FaultKind::kWake: return "fault.wakes";
    case FaultKind::kLinkDown: return "fault.links_down";
    case FaultKind::kLinkUp: return "fault.links_up";
    case FaultKind::kPartition: return "fault.partitions";
    case FaultKind::kHeal: return "fault.heals";
    case FaultKind::kLossSpike: return "fault.loss_spikes";
    case FaultKind::kLossClear: return "fault.loss_clears";
    case FaultKind::kClockSkew: return "fault.clock_skews";
    case FaultKind::kLeave: return "fault.leaves";
    case FaultKind::kJoin: return "fault.joins";
    case FaultKind::kProcKill: return "fault.proc_kills";
  }
  return "fault.unknown";
}

void observe_event(obs::MetricsRegistry& reg, const FaultEvent& ev) {
  // Arming happens on the driver thread before the window runs, so these
  // writes land in the central registry and survive the shard merge
  // (merge adds counters).
  reg.counter(fault_metric_name(ev.kind)).inc();
  if (ev.duration > sim::Duration::zero()) {
    if (obs::TraceSink* sink = obs::global_sink()) {
      std::string name = "fault.";
      name += fault_kind_name(ev.kind);
      sink->sim_span(name, ev.at.ns(), (ev.at + ev.duration).ns());
    }
  }
}

std::vector<std::pair<net::NodeId, net::NodeId>> partition_cut(
    const net::Tree& tree, const std::vector<net::NodeId>& island) {
  std::vector<bool> inside(tree.size(), false);
  for (net::NodeId pos : island) {
    if (pos < tree.size()) inside[pos] = true;
  }
  std::vector<std::pair<net::NodeId, net::NodeId>> cut;
  for (net::NodeId pos : island) {
    if (pos == 0 || pos >= tree.size()) continue;
    const net::NodeId parent = tree.parent(pos);
    if (!inside[parent]) cut.emplace_back(pos, parent);
    for (net::NodeId child : tree.children(pos)) {
      if (!inside[child]) cut.emplace_back(pos, child);
    }
  }
  return cut;
}

std::size_t FaultInjector::arm_until(
    sim::SimTime horizon,
    const std::function<void(const FaultEvent&)>& arm) {
  const std::vector<FaultEvent>& events = plan_.events();
  std::size_t armed = 0;
  while (cursor_ < events.size() && events[cursor_].at <= horizon) {
    const FaultEvent& ev = events[cursor_];
    tally_.count(ev.kind);
    arm(ev);
    ++cursor_;
    ++armed;
  }
  return armed;
}

}  // namespace cra::fault
