#include "fault/plan.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cra::fault {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kReboot: return "reboot";
    case FaultKind::kSleep: return "sleep";
    case FaultKind::kWake: return "wake";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kLossSpike: return "loss";
    case FaultKind::kLossClear: return "loss-clear";
    case FaultKind::kClockSkew: return "skew";
    case FaultKind::kLeave: return "leave";
    case FaultKind::kJoin: return "join";
    case FaultKind::kProcKill: return "proc-kill";
  }
  return "?";
}

std::vector<net::NodeId> subtree_positions(const net::Tree& tree,
                                           net::NodeId root) {
  std::vector<net::NodeId> out;
  out.push_back(root);
  // Children always have larger indices than their parent, so one pass
  // over the growing worklist visits the whole subtree in BFS order.
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (net::NodeId child : tree.children(out[i])) {
      out.push_back(child);
    }
  }
  return out;
}

FaultPlan::FaultPlan(std::uint64_t draw_seed) : draws_(draw_seed) {}

FaultEvent& FaultPlan::add(sim::SimTime at, FaultKind kind) {
  if (at < sim::SimTime::zero()) {
    throw std::invalid_argument("FaultPlan: event time must be >= 0");
  }
  FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.draw = draws_.next();
  ev.seq = next_seq_++;
  events_.push_back(std::move(ev));
  sorted_ = false;
  return events_.back();
}

FaultPlan& FaultPlan::crash(sim::SimTime at, net::NodeId device) {
  add(at, FaultKind::kCrash).device = device;
  return *this;
}

FaultPlan& FaultPlan::reboot(sim::SimTime at, net::NodeId device) {
  add(at, FaultKind::kReboot).device = device;
  return *this;
}

FaultPlan& FaultPlan::crash_for(sim::SimTime at, net::NodeId device,
                                sim::Duration downtime) {
  FaultEvent& ev = add(at, FaultKind::kCrash);
  ev.device = device;
  ev.duration = downtime;
  return reboot(at + downtime, device);
}

FaultPlan& FaultPlan::sleep(sim::SimTime at, net::NodeId device) {
  add(at, FaultKind::kSleep).device = device;
  return *this;
}

FaultPlan& FaultPlan::wake(sim::SimTime at, net::NodeId device) {
  add(at, FaultKind::kWake).device = device;
  return *this;
}

FaultPlan& FaultPlan::sleep_for(sim::SimTime at, net::NodeId device,
                                sim::Duration downtime) {
  FaultEvent& ev = add(at, FaultKind::kSleep);
  ev.device = device;
  ev.duration = downtime;
  return wake(at + downtime, device);
}

FaultPlan& FaultPlan::link_down(sim::SimTime at, net::NodeId a,
                                net::NodeId b) {
  FaultEvent& ev = add(at, FaultKind::kLinkDown);
  ev.device = a;
  ev.peer = b;
  return *this;
}

FaultPlan& FaultPlan::link_up(sim::SimTime at, net::NodeId a, net::NodeId b) {
  FaultEvent& ev = add(at, FaultKind::kLinkUp);
  ev.device = a;
  ev.peer = b;
  return *this;
}

FaultPlan& FaultPlan::link_down_for(sim::SimTime at, net::NodeId a,
                                    net::NodeId b, sim::Duration downtime) {
  FaultEvent& ev = add(at, FaultKind::kLinkDown);
  ev.device = a;
  ev.peer = b;
  ev.duration = downtime;
  return link_up(at + downtime, a, b);
}

FaultPlan& FaultPlan::partition(sim::SimTime at,
                                std::vector<net::NodeId> island) {
  if (island.empty()) {
    throw std::invalid_argument("FaultPlan: empty partition island");
  }
  add(at, FaultKind::kPartition).island = std::move(island);
  return *this;
}

FaultPlan& FaultPlan::heal(sim::SimTime at, std::vector<net::NodeId> island) {
  if (island.empty()) {
    throw std::invalid_argument("FaultPlan: empty heal island");
  }
  add(at, FaultKind::kHeal).island = std::move(island);
  return *this;
}

FaultPlan& FaultPlan::partition_for(sim::SimTime at,
                                    std::vector<net::NodeId> island,
                                    sim::Duration downtime) {
  if (island.empty()) {
    throw std::invalid_argument("FaultPlan: empty partition island");
  }
  FaultEvent& ev = add(at, FaultKind::kPartition);
  ev.island = island;
  ev.duration = downtime;
  return heal(at + downtime, std::move(island));
}

FaultPlan& FaultPlan::partition_subtree(sim::SimTime at,
                                        const net::Tree& tree,
                                        net::NodeId root,
                                        sim::Duration downtime) {
  return partition_for(at, subtree_positions(tree, root), downtime);
}

FaultPlan& FaultPlan::loss_spike(sim::SimTime at, double rate) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("FaultPlan: loss rate must be in [0,1]");
  }
  add(at, FaultKind::kLossSpike).rate = rate;
  return *this;
}

FaultPlan& FaultPlan::loss_clear(sim::SimTime at) {
  add(at, FaultKind::kLossClear);
  return *this;
}

FaultPlan& FaultPlan::loss_spike_for(sim::SimTime at, double rate,
                                     sim::Duration downtime) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("FaultPlan: loss rate must be in [0,1]");
  }
  FaultEvent& ev = add(at, FaultKind::kLossSpike);
  ev.rate = rate;
  ev.duration = downtime;
  return loss_clear(at + downtime);
}

FaultPlan& FaultPlan::clock_skew(sim::SimTime at, net::NodeId device,
                                 sim::Duration skew) {
  FaultEvent& ev = add(at, FaultKind::kClockSkew);
  ev.device = device;
  ev.skew_ns = skew.ns();
  return *this;
}

FaultPlan& FaultPlan::leave(sim::SimTime at, net::NodeId device) {
  add(at, FaultKind::kLeave).device = device;
  return *this;
}

FaultPlan& FaultPlan::join(sim::SimTime at, net::NodeId device) {
  add(at, FaultKind::kJoin).device = device;
  return *this;
}

FaultPlan& FaultPlan::leave_for(sim::SimTime at, net::NodeId device,
                                sim::Duration absence) {
  FaultEvent& ev = add(at, FaultKind::kLeave);
  ev.device = device;
  ev.duration = absence;
  return join(at + absence, device);
}

FaultPlan& FaultPlan::proc_kill(sim::SimTime at, net::NodeId proc) {
  add(at, FaultKind::kProcKill).device = proc;
  return *this;
}

FaultPlan& FaultPlan::proc_kill_for(sim::SimTime at, net::NodeId proc,
                                    sim::Duration downtime) {
  if (downtime < sim::Duration::zero()) {
    throw std::invalid_argument("FaultPlan: negative proc-kill downtime");
  }
  FaultEvent& ev = add(at, FaultKind::kProcKill);
  ev.device = proc;
  ev.duration = downtime;
  return *this;
}

const std::vector<FaultEvent>& FaultPlan::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       if (a.at != b.at) return a.at < b.at;
                       return a.seq < b.seq;
                     });
    sorted_ = true;
  }
  return events_;
}

// --- Text grammar ---
//
//   @<time> crash <device>
//   @<time> reboot <device>
//   @<time> sleep <device>
//   @<time> wake <device>
//   @<time> leave <device>
//   @<time> join <device>
//   @<time> link-down <a> <b>
//   @<time> link-up <a> <b>
//   @<time> partition <nodes>      nodes: comma list with ranges, 3,9-12
//   @<time> heal <nodes>
//   @<time> loss <rate>
//   @<time> loss-clear
//   @<time> skew <device> <signed duration>
//   @<time> proc-kill <proc> [<downtime>]
//
// with <time>/<duration> = <number><unit>, unit in {ns, us, ms, s}.
// '#' starts a comment; blank lines are ignored.

namespace {

std::string format_ns(std::int64_t ns) {
  char buf[48];
  const char* sign = ns < 0 ? "-" : "";
  const std::int64_t mag = ns < 0 ? -ns : ns;
  if (mag % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%s%llds", sign,
                  static_cast<long long>(mag / 1'000'000'000));
  } else if (mag % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%s%lldms", sign,
                  static_cast<long long>(mag / 1'000'000));
  } else if (mag % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%s%lldus", sign,
                  static_cast<long long>(mag / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%s%lldns", sign,
                  static_cast<long long>(mag));
  }
  return buf;
}

/// A token plus its 1-based starting column, so every rejection can say
/// exactly where in the line the offending text sits.
struct Token {
  std::string_view text;
  std::size_t col = 1;
};

[[noreturn]] void parse_fail(std::size_t line_no, std::size_t col,
                             const std::string& why) {
  throw std::invalid_argument("FaultPlan::parse: line " +
                              std::to_string(line_no) + ", col " +
                              std::to_string(col) + ": " + why);
}

std::int64_t parse_duration_ns(const Token& tok, std::size_t line_no,
                               bool allow_negative) {
  std::int64_t scale = 0;
  std::string number;
  const std::string_view t = tok.text;
  if (t.size() > 2 && t.substr(t.size() - 2) == "ns") {
    scale = 1;
    number = std::string(t.substr(0, t.size() - 2));
  } else if (t.size() > 2 && t.substr(t.size() - 2) == "us") {
    scale = 1'000;
    number = std::string(t.substr(0, t.size() - 2));
  } else if (t.size() > 2 && t.substr(t.size() - 2) == "ms") {
    scale = 1'000'000;
    number = std::string(t.substr(0, t.size() - 2));
  } else if (t.size() > 1 && t.back() == 's') {
    scale = 1'000'000'000;
    number = std::string(t.substr(0, t.size() - 1));
  } else {
    parse_fail(line_no, tok.col,
               "time needs a unit (ns/us/ms/s): '" + std::string(t) + "'");
  }
  char* end = nullptr;
  const double value = std::strtod(number.c_str(), &end);
  if (end == number.c_str() || *end != '\0') {
    parse_fail(line_no, tok.col, "bad number '" + number + "'");
  }
  // Reject inf/nan and magnitudes the int64 nanosecond grid cannot hold
  // BEFORE the cast — static_cast of an out-of-range double is UB, and
  // "@infs" used to reach it.
  const double ns = value * static_cast<double>(scale);
  if (!(ns >= -9.2e18 && ns <= 9.2e18)) {  // !(..) also catches NaN
    parse_fail(line_no, tok.col,
               "duration out of range: '" + std::string(t) + "'");
  }
  if (!allow_negative && ns < 0) {
    parse_fail(line_no, tok.col,
               "negative duration not allowed here: '" + std::string(t) +
                   "'");
  }
  return static_cast<std::int64_t>(ns + (ns < 0 ? -0.5 : 0.5));
}

std::uint32_t parse_node(std::string_view text, std::size_t col,
                         std::size_t line_no) {
  // strtoul silently wraps negative input ("-3" parses as 4294967293)
  // and silently truncates values past 2^32, so validate by hand: plain
  // decimal digits only, value must fit a NodeId.
  if (text.empty()) parse_fail(line_no, col, "empty node id");
  unsigned long long v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      parse_fail(line_no, col, "bad node id '" + std::string(text) + "'");
    }
    v = v * 10 + static_cast<unsigned long long>(c - '0');
    if (v > 0xffff'ffffULL) {
      parse_fail(line_no, col,
                 "node id out of range '" + std::string(text) + "'");
    }
  }
  return static_cast<std::uint32_t>(v);
}

std::uint32_t parse_node(const Token& tok, std::size_t line_no) {
  return parse_node(tok.text, tok.col, line_no);
}

std::vector<net::NodeId> parse_node_list(const Token& tok,
                                         std::size_t line_no) {
  std::vector<net::NodeId> out;
  const std::string_view t = tok.text;
  std::size_t pos = 0;
  // Walk comma-separated parts; an empty part (leading, doubled, or
  // trailing comma — "3,5," used to pass silently) is a parse error.
  while (true) {
    std::size_t comma = t.find(',', pos);
    if (comma == std::string_view::npos) comma = t.size();
    const std::string_view part = t.substr(pos, comma - pos);
    const std::size_t part_col = tok.col + pos;
    if (part.empty()) {
      parse_fail(line_no, part_col, "empty entry in node list '" +
                                        std::string(t) + "'");
    }
    const std::size_t dash = part.find('-');
    if (dash == std::string_view::npos) {
      out.push_back(parse_node(part, part_col, line_no));
    } else {
      const std::uint32_t lo =
          parse_node(part.substr(0, dash), part_col, line_no);
      const std::uint32_t hi =
          parse_node(part.substr(dash + 1), part_col + dash + 1, line_no);
      if (hi < lo) parse_fail(line_no, part_col, "descending range");
      for (std::uint32_t n = lo; n <= hi; ++n) out.push_back(n);
    }
    if (comma == t.size()) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<Token> split_ws(std::string_view line) {
  std::vector<Token> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) toks.push_back({line.substr(start, i - start), start + 1});
  }
  return toks;
}

std::string format_node_list(const std::vector<net::NodeId>& nodes) {
  // Compress consecutive runs back into ranges.
  std::vector<net::NodeId> sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(sorted[i]);
    if (j > i) {
      out += '-';
      out += std::to_string(sorted[j]);
    }
    i = j + 1;
  }
  return out;
}

}  // namespace

std::string FaultPlan::format() const {
  std::string out;
  char buf[64];
  for (const FaultEvent& ev : events()) {
    out += '@';
    out += format_ns(ev.at.ns());
    out += ' ';
    out += fault_kind_name(ev.kind);
    switch (ev.kind) {
      case FaultKind::kCrash:
      case FaultKind::kReboot:
      case FaultKind::kSleep:
      case FaultKind::kWake:
      case FaultKind::kLeave:
      case FaultKind::kJoin:
        out += ' ';
        out += std::to_string(ev.device);
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        out += ' ';
        out += std::to_string(ev.device);
        out += ' ';
        out += std::to_string(ev.peer);
        break;
      case FaultKind::kPartition:
      case FaultKind::kHeal:
        out += ' ';
        out += format_node_list(ev.island);
        break;
      case FaultKind::kLossSpike:
        std::snprintf(buf, sizeof buf, " %.6f", ev.rate);
        out += buf;
        break;
      case FaultKind::kLossClear:
        break;
      case FaultKind::kClockSkew:
        out += ' ';
        out += std::to_string(ev.device);
        out += ' ';
        out += format_ns(ev.skew_ns);
        break;
      case FaultKind::kProcKill:
        out += ' ';
        out += std::to_string(ev.device);
        if (ev.duration > sim::Duration::zero()) {
          out += ' ';
          out += format_ns(ev.duration.ns());
        }
        break;
    }
    out += '\n';
  }
  return out;
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const std::vector<Token> toks = split_ws(line);
    if (toks.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (toks[0].text.size() < 2 || toks[0].text[0] != '@') {
      parse_fail(line_no, toks[0].col, "expected '@<time>'");
    }
    const Token time_tok{toks[0].text.substr(1), toks[0].col + 1};
    // Event times must be non-negative; FaultPlan::add would also throw,
    // but without saying which line put the event before t=0.
    const sim::SimTime at(
        parse_duration_ns(time_tok, line_no, /*allow_negative=*/false));
    if (toks.size() < 2) {
      parse_fail(line_no, toks[0].col + toks[0].text.size(),
                 "missing fault kind");
    }
    const std::string_view kind = toks[1].text;
    // Argument-count contract doubles as the trailing-garbage check: a
    // well-formed event followed by extra tokens names the first
    // unconsumed token instead of silently ignoring it.
    auto want = [&](std::size_t n) {
      if (toks.size() > 2 + n) {
        parse_fail(line_no, toks[2 + n].col,
                   "trailing garbage after " + std::string(kind) + ": '" +
                       std::string(toks[2 + n].text) + "'");
      }
      if (toks.size() < 2 + n) {
        parse_fail(line_no, toks.back().col + toks.back().text.size(),
                   std::string(kind) + " takes " + std::to_string(n) +
                       " argument(s)");
      }
    };
    if (kind == "crash") {
      want(1);
      plan.crash(at, parse_node(toks[2], line_no));
    } else if (kind == "reboot") {
      want(1);
      plan.reboot(at, parse_node(toks[2], line_no));
    } else if (kind == "sleep") {
      want(1);
      plan.sleep(at, parse_node(toks[2], line_no));
    } else if (kind == "wake") {
      want(1);
      plan.wake(at, parse_node(toks[2], line_no));
    } else if (kind == "leave") {
      want(1);
      plan.leave(at, parse_node(toks[2], line_no));
    } else if (kind == "join") {
      want(1);
      plan.join(at, parse_node(toks[2], line_no));
    } else if (kind == "link-down") {
      want(2);
      plan.link_down(at, parse_node(toks[2], line_no),
                     parse_node(toks[3], line_no));
    } else if (kind == "link-up") {
      want(2);
      plan.link_up(at, parse_node(toks[2], line_no),
                   parse_node(toks[3], line_no));
    } else if (kind == "partition") {
      want(1);
      plan.partition(at, parse_node_list(toks[2], line_no));
    } else if (kind == "heal") {
      want(1);
      plan.heal(at, parse_node_list(toks[2], line_no));
    } else if (kind == "loss") {
      want(1);
      char* end = nullptr;
      const std::string s(toks[2].text);
      const double rate = std::strtod(s.c_str(), &end);
      if (end == s.c_str() || *end != '\0' || !(rate >= 0.0) || rate > 1.0) {
        parse_fail(line_no, toks[2].col, "bad loss rate '" + s + "'");
      }
      plan.loss_spike(at, rate);
    } else if (kind == "loss-clear") {
      want(0);
      plan.loss_clear(at);
    } else if (kind == "skew") {
      want(2);
      plan.clock_skew(
          at, parse_node(toks[2], line_no),
          sim::Duration(parse_duration_ns(toks[3], line_no,
                                          /*allow_negative=*/true)));
    } else if (kind == "proc-kill") {
      // One or two args: the restart downtime is optional.
      if (toks.size() == 3) {
        plan.proc_kill(at, parse_node(toks[2], line_no));
      } else {
        want(2);
        plan.proc_kill_for(
            at, parse_node(toks[2], line_no),
            sim::Duration(parse_duration_ns(toks[3], line_no,
                                            /*allow_negative=*/false)));
      }
    } else {
      parse_fail(line_no, toks[1].col,
                 "unknown fault kind '" + std::string(kind) + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::churn(std::uint64_t seed, const net::Tree& tree,
                           sim::SimTime start, sim::SimTime end,
                           const ChurnProfile& profile) {
  if (profile.period <= sim::Duration::zero()) {
    throw std::invalid_argument("churn: period must be positive");
  }
  if (profile.max_downtime < profile.min_downtime) {
    throw std::invalid_argument("churn: max_downtime < min_downtime");
  }
  FaultPlan plan(seed);
  Rng rng(seed ^ 0x6368'7572'6e21ULL);  // "churn!"
  const std::uint32_t devices = tree.device_count();
  const std::int64_t period_ns = profile.period.ns();
  auto events_this_period = [&](double rate) {
    const double expected = rate * static_cast<double>(devices);
    std::uint64_t n = static_cast<std::uint64_t>(expected);
    if (rng.next_bool(expected - static_cast<double>(n))) ++n;
    return n;
  };
  // Knuth's inversion sampler: exact Poisson counts from the plan's own
  // pre-seeded stream, so membership churn replays identically on both
  // engines. Fine for the mean values churn sweeps use (< ~30/period).
  auto poisson = [&](double mean) -> std::uint64_t {
    if (mean <= 0.0) return 0;
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.next_double();
    } while (p > limit);
    return k - 1;
  };
  auto downtime = [&]() {
    const std::int64_t span =
        profile.max_downtime.ns() - profile.min_downtime.ns();
    return sim::Duration(profile.min_downtime.ns() +
                         (span > 0 ? static_cast<std::int64_t>(
                                         rng.next_below(
                                             static_cast<std::uint64_t>(
                                                 span + 1)))
                                   : 0));
  };
  for (sim::SimTime t0 = start; t0 < end; t0 += profile.period) {
    auto jitter = [&]() {
      return t0 + sim::Duration(static_cast<std::int64_t>(
                      rng.next_below(static_cast<std::uint64_t>(period_ns))));
    };
    const std::uint64_t crashes = events_this_period(profile.crash_rate);
    for (std::uint64_t i = 0; i < crashes; ++i) {
      const net::NodeId device = static_cast<net::NodeId>(
          rng.next_range(1, devices));
      plan.crash_for(jitter(), device, downtime());
    }
    const std::uint64_t sleeps = events_this_period(profile.sleep_rate);
    for (std::uint64_t i = 0; i < sleeps; ++i) {
      const net::NodeId device = static_cast<net::NodeId>(
          rng.next_range(1, devices));
      plan.sleep_for(jitter(), device, downtime());
    }
    const std::uint64_t leaves =
        poisson(profile.leave_rate * static_cast<double>(devices));
    for (std::uint64_t i = 0; i < leaves; ++i) {
      const net::NodeId device = static_cast<net::NodeId>(
          rng.next_range(1, devices));
      plan.leave_for(jitter(), device, downtime());
    }
    const std::uint64_t joins =
        poisson(profile.join_rate * static_cast<double>(devices));
    for (std::uint64_t i = 0; i < joins; ++i) {
      const net::NodeId device = static_cast<net::NodeId>(
          rng.next_range(1, devices));
      plan.join(jitter(), device);
    }
    if (profile.partition_rate > 0.0 && devices > 1 &&
        rng.next_bool(profile.partition_rate)) {
      // Cut a random non-root subtree; deep positions give small islands,
      // which matches how real partitions isolate pockets of the mesh.
      const net::NodeId root = static_cast<net::NodeId>(
          rng.next_range(1, tree.size() - 1));
      plan.partition_subtree(jitter(), tree, root,
                             profile.partition_duration);
    }
    if (profile.loss_spike_rate > 0.0 &&
        rng.next_bool(profile.loss_spike_rate)) {
      plan.loss_spike_for(jitter(), profile.loss_spike,
                          profile.loss_spike_duration);
    }
  }
  return plan;
}

}  // namespace cra::fault
