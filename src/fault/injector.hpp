// Replays a FaultPlan onto a running simulation.
//
// The injector is engine-agnostic by design: it owns only the windowing
// cursor (which events have been handed over) and the tally. The
// simulation passes a callback to arm_until(); for every not-yet-armed
// event inside the horizon the callback either applies the fault
// immediately (event time already in the past — e.g. a plan attached
// mid-run) or schedules it on the scheduler shard that owns the touched
// state. Because arming happens on the driver thread between runs, and
// every event carries pre-drawn randomness, replay is byte-identical on
// the sequential Scheduler and the sharded ParallelScheduler at any
// thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace cra::fault {

/// Cumulative count of armed events by kind.
struct FaultTally {
  std::uint64_t crashes = 0;
  std::uint64_t reboots = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t wakes = 0;
  std::uint64_t links_down = 0;
  std::uint64_t links_up = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t loss_spikes = 0;
  std::uint64_t loss_clears = 0;
  std::uint64_t clock_skews = 0;
  std::uint64_t leaves = 0;
  std::uint64_t joins = 0;
  std::uint64_t proc_kills = 0;

  void count(FaultKind kind) noexcept;
  std::uint64_t total() const noexcept {
    return crashes + reboots + sleeps + wakes + links_down + links_up +
           partitions + heals + loss_spikes + loss_clears + clock_skews +
           leaves + joins + proc_kills;
  }
};

/// Metric name an armed event of this kind increments ("fault.crashes",
/// "fault.partitions", ...).
const char* fault_metric_name(FaultKind kind) noexcept;

/// Record one armed event: bump the matching fault.* counter in `reg`
/// and, for paired events with a known duration, emit a simulated-time
/// span on the global trace sink (fault.partition, fault.crash, ...).
void observe_event(obs::MetricsRegistry& reg, const FaultEvent& ev);

/// The directed tree edges a partition island severs: every (inside,
/// outside) pair where exactly one endpoint is in `island`. The caller
/// takes each pair down in both directions.
std::vector<std::pair<net::NodeId, net::NodeId>> partition_cut(
    const net::Tree& tree, const std::vector<net::NodeId>& island);

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Hand every not-yet-armed event with time <= `horizon` to `arm`, in
  /// (time, insertion) order. Returns how many events were armed. The
  /// cursor only moves forward: each event is armed exactly once over
  /// the injector's lifetime.
  std::size_t arm_until(sim::SimTime horizon,
                        const std::function<void(const FaultEvent&)>& arm);

  bool exhausted() const { return cursor_ >= plan_.events().size(); }
  const FaultTally& tally() const noexcept { return tally_; }

 private:
  FaultPlan plan_;
  std::size_t cursor_ = 0;
  FaultTally tally_;
};

}  // namespace cra::fault
