// Socket-layer traffic shaper: FaultPlan semantics for live datagrams.
//
// The simulator injects faults through the scheduler; a real UDP
// deployment has no scheduler, so the wire agent (and the loopback
// tests) shape traffic at the socket boundary instead. A TrafficShaper
// replays the network-facing subset of a FaultPlan — loss spikes
// (kLossSpike/kLossClear) and partitions (kPartition/kHeal) — against
// wall-clock time elapsed since start(), plus a steady-state baseline:
// uniform loss and probabilistic reordering (a datagram held back for
// a fixed delay, re-ordering it behind its successors).
//
// Determinism mirrors the plan's philosophy: all randomness comes from
// one SplitMix64 stream seeded at construction, so two runs that make
// the same sequence of decide() calls shed and delay the exact same
// datagrams. (Across runs the *set* of calls shifts with wall-clock
// timing — the stream pins the per-call draws, which is what makes
// loss-rate assertions in tests tight.)
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/plan.hpp"

namespace cra::fault {

struct ShaperConfig {
  /// Steady-state drop probability applied to every datagram.
  double baseline_loss = 0.0;
  /// Probability a delivered datagram is delayed by `reorder_delay_ns`
  /// instead of going out immediately (lands behind later traffic).
  double reorder = 0.0;
  std::uint64_t reorder_delay_ns = 2'000'000;  // 2 ms
  std::uint64_t seed = 0x73686170;             // "shap"
};

class TrafficShaper {
 public:
  enum class Fate : std::uint8_t {
    kDeliver,  // send now
    kDrop,     // shed silently
    kDelay,    // hold for `delay_ns`, then send
  };

  struct Verdict {
    Fate fate = Fate::kDeliver;
    std::uint64_t delay_ns = 0;
  };

  /// `plan` may be null (baseline-only shaping). Only kLossSpike,
  /// kLossClear, kPartition, and kHeal events are consulted; the plan's
  /// device/link faults belong to the endpoints, not the pipe.
  TrafficShaper(const ShaperConfig& config, const FaultPlan* plan = nullptr);

  /// Decide the fate of one datagram owned by device `device_id`
  /// (an agent's base id, or 0 for verifier traffic), `elapsed_ns`
  /// after the shaping clock started.
  Verdict decide(std::uint64_t elapsed_ns, std::uint32_t device_id);

  /// Effective loss probability at `elapsed_ns`: baseline overlaid by
  /// any active plan spike (spikes replace, not stack — matching the
  /// injector's loss_spike/loss_clear semantics).
  double loss_at(std::uint64_t elapsed_ns) const noexcept;

  /// True if `device_id` sits in a partition island active at
  /// `elapsed_ns` (its traffic is dropped outright).
  bool partitioned_at(std::uint64_t elapsed_ns,
                      std::uint32_t device_id) const noexcept;

  std::uint64_t decisions() const noexcept { return decisions_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t delayed() const noexcept { return delayed_; }

 private:
  struct LossSegment {
    std::uint64_t start_ns;
    double rate;  // absolute loss probability from start_ns on
  };
  struct PartitionWindow {
    std::uint64_t start_ns;
    std::uint64_t end_ns;  // UINT64_MAX when never healed
    std::vector<std::uint32_t> island;
  };

  ShaperConfig config_;
  std::vector<LossSegment> segments_;     // sorted by start_ns
  std::vector<PartitionWindow> windows_;  // sorted by start_ns
  Rng draws_;
  std::uint64_t decisions_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delayed_ = 0;
};

}  // namespace cra::fault
