// Deterministic fault timelines for attestation-under-failure runs.
//
// A FaultPlan is a seeded, reproducible schedule of fault events —
// device crash/reboot, sleep/wake, directed link outages, tree
// partitions, transient loss-rate spikes, and secure-clock skew — that a
// simulation replays with identical semantics on the sequential
// Scheduler and the sharded ParallelScheduler at any thread count.
//
// Determinism is by construction, not by discipline:
//   * every event carries pre-drawn randomness (`draw`), assigned from a
//     SplitMix64 stream at build time, so nothing about a fault's effect
//     depends on shard execution order or OS scheduling;
//   * events are totally ordered by (time, insertion sequence), and the
//     injector hands them to the simulation before the affected window
//     runs — each lands on the scheduler shard that owns the touched
//     state, exactly like ordinary protocol events.
//
// Plans are built three ways: programmatically (the fluent builders),
// from text (parse() — the grammar docs/robustness.md specifies), or
// randomly (churn() — a seeded churn generator the chaos bench sweeps).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace cra::fault {

enum class FaultKind : std::uint8_t {
  kCrash,      // device loses power: volatile round state is gone
  kReboot,     // crashed device comes back (flagged `rebooted`)
  kSleep,      // radio off, state retained
  kWake,       // radio back on
  kLinkDown,   // one tree edge stops carrying traffic (both directions)
  kLinkUp,     // the edge heals
  kPartition,  // an island of positions is cut off from the rest
  kHeal,       // the island rejoins
  kLossSpike,  // network-wide loss rate jumps to `rate`
  kLossClear,  // loss rate returns to the configured baseline
  kClockSkew,  // a device's secure clock drifts by `skew_ns`
  kLeave,      // device departs the swarm (mobility churn; excluded from
               // membership until it joins again)
  kJoin,       // the device (re)joins the swarm
  kProcKill,   // process-level chaos (bench/wire_chaos): SIGKILL the
               // process at index `device` (0 = verifier, 1.. = agents);
               // `duration` = downtime before the supervisor restarts it.
               // A no-op for in-simulator runs — only the wire-chaos
               // supervisor interprets it.
};

const char* fault_kind_name(FaultKind kind) noexcept;

struct FaultEvent {
  sim::SimTime at;
  FaultKind kind = FaultKind::kCrash;
  net::NodeId device = 0;  // device events; link events: endpoint a
  net::NodeId peer = 0;    // link events: endpoint b
  std::vector<net::NodeId> island;  // kPartition/kHeal: cut-off positions
  double rate = 0.0;                // kLossSpike
  std::int64_t skew_ns = 0;         // kClockSkew
  /// Paired-builder duration (crash_for/partition_for/...): how long the
  /// fault lasts before its matching recovery event. Zero for unpaired
  /// events; used for trace spans only.
  sim::Duration duration = sim::Duration::zero();
  /// Pre-drawn per-event randomness: any stochastic consequence of the
  /// fault (e.g. per-shard loss sub-streams) derives from this value, so
  /// replay cannot depend on execution order.
  std::uint64_t draw = 0;
  std::uint32_t seq = 0;  // insertion order; breaks same-time ties
};

/// All tree positions in the subtree rooted at `root` (including it).
std::vector<net::NodeId> subtree_positions(const net::Tree& tree,
                                           net::NodeId root);

class FaultPlan {
 public:
  /// `draw_seed` seeds the pre-drawn randomness stream; two plans built
  /// by the same call sequence from the same seed are identical.
  explicit FaultPlan(std::uint64_t draw_seed = 0x6661756c74ULL);  // "fault"

  // --- Fluent builders (times are absolute simulation times) ---
  FaultPlan& crash(sim::SimTime at, net::NodeId device);
  FaultPlan& reboot(sim::SimTime at, net::NodeId device);
  /// crash + reboot `downtime` later.
  FaultPlan& crash_for(sim::SimTime at, net::NodeId device,
                       sim::Duration downtime);
  FaultPlan& sleep(sim::SimTime at, net::NodeId device);
  FaultPlan& wake(sim::SimTime at, net::NodeId device);
  FaultPlan& sleep_for(sim::SimTime at, net::NodeId device,
                       sim::Duration downtime);
  FaultPlan& link_down(sim::SimTime at, net::NodeId a, net::NodeId b);
  FaultPlan& link_up(sim::SimTime at, net::NodeId a, net::NodeId b);
  FaultPlan& link_down_for(sim::SimTime at, net::NodeId a, net::NodeId b,
                           sim::Duration downtime);
  FaultPlan& partition(sim::SimTime at, std::vector<net::NodeId> island);
  FaultPlan& heal(sim::SimTime at, std::vector<net::NodeId> island);
  FaultPlan& partition_for(sim::SimTime at, std::vector<net::NodeId> island,
                           sim::Duration downtime);
  /// Cut off the whole subtree under `root` (positions from `tree`).
  FaultPlan& partition_subtree(sim::SimTime at, const net::Tree& tree,
                               net::NodeId root, sim::Duration downtime);
  FaultPlan& loss_spike(sim::SimTime at, double rate);
  FaultPlan& loss_clear(sim::SimTime at);
  FaultPlan& loss_spike_for(sim::SimTime at, double rate,
                            sim::Duration downtime);
  FaultPlan& clock_skew(sim::SimTime at, net::NodeId device,
                        sim::Duration skew);
  FaultPlan& leave(sim::SimTime at, net::NodeId device);
  FaultPlan& join(sim::SimTime at, net::NodeId device);
  /// leave + join `absence` later.
  FaultPlan& leave_for(sim::SimTime at, net::NodeId device,
                       sim::Duration absence);
  /// SIGKILL process `proc` (0 = verifier, 1.. = agents); the wire-chaos
  /// supervisor restarts it after `downtime` (zero = its default).
  FaultPlan& proc_kill(sim::SimTime at, net::NodeId proc);
  FaultPlan& proc_kill_for(sim::SimTime at, net::NodeId proc,
                           sim::Duration downtime);

  /// Events sorted by (time, insertion order).
  const std::vector<FaultEvent>& events() const;
  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }

  /// Canonical text form (one event per line); parse(format()) is the
  /// identity on the event list.
  std::string format() const;
  /// Parse the text grammar (see docs/robustness.md). Throws
  /// std::invalid_argument with a line number on malformed input.
  static FaultPlan parse(std::string_view text);

  /// Random-churn generator knobs: expected fault load per `period` of
  /// simulated time over [start, end).
  struct ChurnProfile {
    /// Fraction of the swarm crashed per period (fractional remainders
    /// resolve by Bernoulli draw).
    double crash_rate = 0.01;
    sim::Duration period = sim::Duration::from_ms(500);
    sim::Duration min_downtime = sim::Duration::from_ms(100);
    sim::Duration max_downtime = sim::Duration::from_ms(400);
    /// Fraction of the swarm put to sleep per period.
    double sleep_rate = 0.0;
    /// Probability (per period) of partitioning one random subtree.
    double partition_rate = 0.0;
    sim::Duration partition_duration = sim::Duration::from_ms(200);
    /// Probability (per period) of a transient loss spike.
    double loss_spike_rate = 0.0;
    double loss_spike = 0.2;
    sim::Duration loss_spike_duration = sim::Duration::from_ms(150);
    /// Membership churn (mobility): expected fraction of the swarm
    /// leaving per period. Unlike crash_rate's floor-plus-Bernoulli
    /// resolution, the per-period event count is Poisson-distributed
    /// with mean leave_rate * devices — departures are independent
    /// arrivals, the textbook mobility model. Each leave pairs with a
    /// join after a downtime drawn from [min_downtime, max_downtime].
    double leave_rate = 0.0;
    /// Expected fraction of the swarm (re)joining per period, also
    /// Poisson-sampled. Standalone joins are idempotent on present
    /// devices, so this models devices wandering back into radio range.
    double join_rate = 0.0;
  };

  /// Generate a random churn timeline over `tree` for [start, end).
  /// A pure function of (seed, tree shape, profile).
  static FaultPlan churn(std::uint64_t seed, const net::Tree& tree,
                         sim::SimTime start, sim::SimTime end,
                         const ChurnProfile& profile);

 private:
  FaultEvent& add(sim::SimTime at, FaultKind kind);

  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
  SplitMix64 draws_;
  std::uint32_t next_seq_ = 0;
};

}  // namespace cra::fault
