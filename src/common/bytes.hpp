// Byte-buffer utilities shared by every module.
//
// The whole code base passes raw octet strings around (memory snapshots,
// MACs, protocol messages), so we standardize on `cra::Bytes` =
// std::vector<std::uint8_t> plus a handful of helpers: hex codecs,
// constant-size XOR (the SAP aggregation operator), and span views.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cra {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encode `data` as lowercase hex ("deadbeef").
std::string to_hex(BytesView data);

/// Decode a hex string; throws std::invalid_argument on odd length or
/// non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copy a std::string's characters into a byte buffer (no encoding).
Bytes to_bytes(std::string_view s);

/// XOR `rhs` into `lhs` element-wise; throws std::invalid_argument if the
/// lengths differ. This is SAP's token-aggregation operator: it never
/// changes the bit-length of its inputs (Lemma 2 of the paper depends on
/// this).
void xor_inplace(Bytes& lhs, BytesView rhs);

/// Pure XOR of two equal-length buffers.
Bytes xor_bytes(BytesView lhs, BytesView rhs);

/// True iff every byte is zero (e.g. an all-zero attestation token).
bool all_zero(BytesView data) noexcept;

/// Append the little-endian encoding of `v` to `out`.
void append_u32le(Bytes& out, std::uint32_t v);
void append_u64le(Bytes& out, std::uint64_t v);

/// Write the little-endian encoding of `v` into `out[0..3]`; the caller
/// guarantees capacity. Allocation-free counterpart to append_u32le for
/// hot paths that stage a challenge/tick into a stack buffer.
inline void store_u32le(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

/// Read little-endian integers back; throws std::out_of_range if the
/// buffer is too short.
std::uint32_t read_u32le(BytesView data, std::size_t offset);
std::uint64_t read_u64le(BytesView data, std::size_t offset);

}  // namespace cra
