// Statistics helpers used by the TCA-Efficiency harness and the benches.
//
// Beyond the usual running summary, this provides least-squares fits
// against the asymptotic shapes TCA-Model asserts: U_CA(SAP) = O(N·l)
// (linear in N) and T_CA(SAP) = O(log N · c1 + c2) (logarithmic in N).
// The `tca` module fits measured sweeps against both models and checks
// which explains the data better — that is how we turn the paper's
// Lemmas 2 and 3 into executable assertions.
#pragma once

#include <cstddef>
#include <vector>

namespace cra {

/// Streaming summary: count / mean / variance (Welford) / min / max.
class Summary {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (Bessel-corrected, m2/(n-1)); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Result of a least-squares fit y ≈ slope·f(x) + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // coefficient of determination
};

/// Ordinary least squares of y against x. Requires xs.size() == ys.size()
/// and at least two distinct x values; throws std::invalid_argument
/// otherwise.
LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Least squares of y against log2(x); all xs must be > 0.
LinearFit fit_log2(const std::vector<double>& xs,
                   const std::vector<double>& ys);

/// Convenience: does a linear model in x explain the data clearly better
/// than a logarithmic one (or vice versa)? Returns r²(linear) − r²(log).
double linear_vs_log_preference(const std::vector<double>& xs,
                                const std::vector<double>& ys);

}  // namespace cra
