// ASCII table printer for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables or figure
// series; this renders aligned, pipe-separated rows so bench output can
// be compared side-by-side with the paper and pasted into EXPERIMENTS.md.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace cra {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; throws std::invalid_argument if the cell count does
  /// not match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed string/numeric rows built by the caller.
  void add_row(std::initializer_list<std::string> cells);

  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Format a double with `precision` significant decimal places.
  static std::string num(double value, int precision = 3);
  /// Format an integer with thousands separators ("1,000,000").
  static std::string count(std::uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cra
