// Minimal JSON writer.
//
// Round reports and bench outputs need a machine-readable form for
// tooling (the CLI's --json mode, CI trend tracking). This is a small
// streaming writer with nesting validation — not a parser, not a DOM.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cra {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(std::uint32_t u) {
    return value(static_cast<std::uint64_t>(u));
  }
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// Finish and return the document; throws std::logic_error if any
  /// container is still open.
  std::string str() const;

  static std::string escape(std::string_view s);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

}  // namespace cra
