#include "common/stats.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cra {

void Summary::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
  // Sample variance (Bessel's correction): the benches feed repetitions
  // of a stochastic run and report spread as an estimate of the
  // population's, so dividing by n would bias every error bar low.
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_linear: need >= 2 paired samples");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < std::numeric_limits<double>::epsilon() * n * sxx) {
    throw std::invalid_argument("fit_linear: degenerate x values");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double mean_y = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_log2(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  std::vector<double> logs;
  logs.reserve(xs.size());
  for (double x : xs) {
    if (x <= 0) throw std::invalid_argument("fit_log2: x must be positive");
    logs.push_back(std::log2(x));
  }
  return fit_linear(logs, ys);
}

double linear_vs_log_preference(const std::vector<double>& xs,
                                const std::vector<double>& ys) {
  return fit_linear(xs, ys).r_squared - fit_log2(xs, ys).r_squared;
}

}  // namespace cra
