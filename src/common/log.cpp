#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cra {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace cra
