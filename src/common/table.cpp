#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace cra {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row(std::initializer_list<std::string> cells) {
  add_row(std::vector<std::string>(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace cra
