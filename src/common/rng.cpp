#include "common/rng.hpp"

#include <bit>

namespace cra {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless rejection method would be overkill here;
  // plain rejection keeps the distribution exactly uniform.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t v = next();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(v));
      v >>= 8;
    }
  }
  return out;
}

Rng Rng::fork(std::string_view label) noexcept {
  // FNV-1a over the label, mixed with fresh output from this generator.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return Rng(h ^ next());
}

}  // namespace cra
