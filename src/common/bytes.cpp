#include "common/bytes.hpp"

#include <stdexcept>

namespace cra {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex character");
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

void xor_inplace(Bytes& lhs, BytesView rhs) {
  if (lhs.size() != rhs.size()) {
    throw std::invalid_argument("xor_inplace: length mismatch");
  }
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    lhs[i] = static_cast<std::uint8_t>(lhs[i] ^ rhs[i]);
  }
}

Bytes xor_bytes(BytesView lhs, BytesView rhs) {
  if (lhs.size() != rhs.size()) {
    throw std::invalid_argument("xor_bytes: length mismatch");
  }
  Bytes out(lhs.begin(), lhs.end());
  xor_inplace(out, rhs);
  return out;
}

bool all_zero(BytesView data) noexcept {
  for (std::uint8_t b : data) {
    if (b != 0) return false;
  }
  return true;
}

void append_u32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64le(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32le(BytesView data, std::size_t offset) {
  if (offset + 4 > data.size()) {
    throw std::out_of_range("read_u32le: buffer too short");
  }
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data[offset + static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint64_t read_u64le(BytesView data, std::size_t offset) {
  if (offset + 8 > data.size()) {
    throw std::out_of_range("read_u64le: buffer too short");
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data[offset + static_cast<std::size_t>(i)];
  }
  return v;
}

}  // namespace cra
