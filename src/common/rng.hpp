// Deterministic random number generation for reproducible simulation.
//
// Every stochastic component in the repository (topology generation,
// adversary strategies, loss injection, key generation in tests) draws
// from an explicitly seeded `Rng` so that a run is a pure function of its
// seed. The generator is xoshiro256** seeded through SplitMix64, which is
// the standard recommendation of the xoshiro authors; it is NOT a CSPRNG —
// cryptographic key material in the protocol proper is produced by
// crypto::SecureRandom (ChaCha20-based) instead.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace cra {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 256-bit-state PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// n uniformly random bytes (NOT cryptographically secure).
  Bytes next_bytes(std::size_t n);

  /// Derive an independent child generator; `label` decorrelates children
  /// drawn from the same parent for different purposes.
  Rng fork(std::string_view label) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace cra
