#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cra {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Frame::kObject && !have_key_) {
    throw std::logic_error("JsonWriter: value in object requires a key");
  }
  if (need_comma_ && !have_key_) out_ += ',';
  have_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || have_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  stack_.pop_back();
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  stack_.pop_back();
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (have_key_) throw std::logic_error("JsonWriter: duplicate key call");
  if (need_comma_) out_ += ',';
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  have_key_ = true;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  before_value();
  if (std::isfinite(d)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", d);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  before_value();
  out_ += std::to_string(i);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  before_value();
  out_ += std::to_string(u);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: unclosed containers");
  }
  return out_;
}

}  // namespace cra
