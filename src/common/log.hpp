// Minimal leveled logger.
//
// The simulator and protocol agents emit trace/debug lines that are
// invaluable when debugging a million-device run but must cost nothing
// when disabled; the level check happens before any formatting.
#pragma once

#include <sstream>
#include <string>

namespace cra {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one formatted line to stderr (thread-safe at line granularity).
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace cra

// Usage: CRA_LOG(kInfo, "sap") << "verified N=" << n;
#define CRA_LOG(level, component)                          \
  if (::cra::LogLevel::level < ::cra::log_level()) {       \
  } else                                                   \
    ::cra::detail::LogStream(::cra::LogLevel::level, (component))
