// Message-passing network on top of the discrete-event scheduler.
//
// Implements the TCA network model (paper §IV-B): constant transmission
// rate µ on every link, per-hop delay dominated by transmission
// (propagation/queuing negligible — we optionally add the fixed 1 ms/hop
// processing latency the paper's evaluation uses in τ(N)). The network
// keeps per-window byte accounting so the driver can measure network
// utilization U_CA exactly as Equation 7 defines it: total bits crossing
// all links between t_chal and t_resp.
//
// Fault and adversary injection live here too: probabilistic loss
// (the §VIII lossy-network extension) and a tamper hook that lets the
// TCA-Security game mutate, drop, or duplicate any in-flight message
// (Adv controls network communication).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace cra::net {

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  std::uint32_t kind = 0;   // protocol-defined discriminator
  Bytes payload;
};

/// Per-link parameters of the TCA network model.
struct LinkParams {
  std::uint64_t rate_bps = 250'000;       // µ — IEEE 802.15.4 class
  sim::Duration per_hop_latency = sim::Duration::from_ms(1);
  std::uint32_t header_bytes = 0;         // optional per-message framing

  /// TCA-Model fidelity knob. The paper's model (Equation 5) has no
  /// contention: every link transmits independently. Real motes have
  /// one radio — with this on, a node's transmissions serialize on its
  /// own transmitter (back-to-back sends queue). Off by default so the
  /// paper's analysis holds exactly; bench/ablate_contention measures
  /// what the assumption hides (it flatters relay-heavy protocols like
  /// LISAα far more than aggregate-and-forward ones like SAP).
  bool serialize_tx = false;
};

/// What the tamper hook decided to do with a message.
enum class TamperAction { kDeliver, kDrop, kDeliverModified };

struct TamperResult {
  TamperAction action = TamperAction::kDeliver;
  Bytes modified_payload;  // used iff action == kDeliverModified
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  using TamperHook = std::function<TamperResult(const Message&)>;
  /// Delivery override for the sharded engine: receives the message and
  /// its absolute arrival time instead of the default schedule-on-own-
  /// scheduler path. The router owns getting the message to the
  /// destination's shard (sim::ParallelScheduler::post) and invoking the
  /// protocol handler there.
  using Router = std::function<void(Message msg, sim::SimTime deliver_at)>;

  Network(sim::Scheduler& scheduler, LinkParams params);

  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  const LinkParams& params() const noexcept { return params_; }

  /// Deliver callback for all nodes; the protocol driver dispatches on
  /// Message::dst. Must be set before any send().
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Route deliveries through the sharded engine instead of this
  /// network's own scheduler (loss, tamper and accounting still happen
  /// here, on the sending side). Unset = classic single-queue delivery.
  void set_router(Router router) { router_ = std::move(router); }

  /// Send over one direct link (src and dst adjacent). Delay is
  /// transmission (size/µ) + per-hop latency; bytes are charged to the
  /// accounting window.
  void send(NodeId src, NodeId dst, std::uint32_t kind, Bytes payload);

  /// Multi-hop unicast through `hops` links (used by the naive baseline
  /// where Vrf talks to each device over the routed shortest path).
  /// Charges `hops` × size bytes and `hops` × per-link delay.
  void send_multihop(NodeId src, NodeId dst, std::uint32_t hops,
                     std::uint32_t kind, Bytes payload);

  /// --- Accounting (Equation 7) ---
  /// Clears the byte/message ledgers, the per-link map, AND the
  /// radio-contention backlog (serialize_tx reservations) — a reset
  /// starts the next measurement window from a quiet network, so
  /// benchmark repetitions don't inherit queued radios.
  void reset_accounting() noexcept;
  std::uint64_t bytes_transmitted() const noexcept { return bytes_transmitted_; }
  std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  std::uint64_t messages_dropped() const noexcept { return messages_dropped_; }
  /// Every send attempt lands in exactly one ledger:
  /// messages_sent() + messages_dropped() == messages_attempted().
  std::uint64_t messages_attempted() const noexcept {
    return messages_sent_ + messages_dropped_;
  }

  /// Per-link byte counts (keyed by directed (src,dst)); only recorded
  /// when enabled — the map is too heavy for million-node sweeps.
  /// Dropped/tampered messages still burn air time, so they are charged
  /// here exactly as they are to bytes_transmitted(): with accounting
  /// enabled for a whole window, sum(per-link) == total.
  void enable_per_link_accounting(bool on) { per_link_accounting_ = on; }
  std::uint64_t bytes_on_link(NodeId src, NodeId dst) const;
  /// Sum of the per-link ledger.
  std::uint64_t per_link_total() const noexcept;
  /// Throws std::logic_error if per-link accounting is on and the two
  /// byte ledgers disagree (they cannot, unless accounting was toggled
  /// mid-window); cheap no-op when per-link accounting is off.
  void assert_ledgers_consistent() const;

  /// --- Metrics (obs layer) ---
  /// Register this network's instruments in `reg` (names below) and
  /// mirror all subsequent accounting into them; the registry must
  /// outlive the network (or be unbound with nullptr first). Counters:
  /// net.bytes_transmitted, net.messages_sent, net.messages_dropped,
  /// net.messages_attempted, net.per_link_bytes (per-link mode only).
  /// Histogram: net.payload_bytes (log2 buckets of payload sizes).
  /// reset_accounting() zeroes the bound instruments too, keeping both
  /// views of the window in lock-step.
  void bind_metrics(obs::MetricsRegistry* reg);

  /// --- Fault / adversary injection ---
  /// Directed link outage (fault-injection layer): while (src,dst) is
  /// down, every send over it still burns air time — charged to the
  /// dropped ledger, same as probabilistic loss — but never arrives.
  /// Partition events expand to sets of directed links; take both
  /// directions down for a bidirectional cut.
  void set_link_down(NodeId src, NodeId dst, bool down);
  bool link_is_down(NodeId src, NodeId dst) const;
  std::size_t links_down() const noexcept { return down_links_.size(); }
  void clear_link_faults() { down_links_.clear(); }
  void set_loss_rate(double p, std::uint64_t seed = 0);
  void set_tamper_hook(TamperHook hook) { tamper_ = std::move(hook); }
  double loss_rate() const noexcept { return loss_rate_; }
  std::uint64_t loss_seed() const noexcept { return loss_seed_; }
  bool has_tamper_hook() const noexcept { return static_cast<bool>(tamper_); }
  bool per_link_accounting() const noexcept { return per_link_accounting_; }

  /// Delay model exposed for analytical checks: time for one message of
  /// `payload_bytes` to cross one link.
  sim::Duration link_delay(std::size_t payload_bytes) const noexcept;

  /// --- Payload pooling ---
  /// A delivered message's payload buffer is recycled into a per-network
  /// freelist once the handler returns; acquire_payload() hands the
  /// capacity back to the next sender instead of the allocator. The pool
  /// is confined to this network (one network per shard), so it needs no
  /// synchronization, and hit/miss counts are as deterministic as the
  /// message trace itself. The tallies are exposed as accessors, NOT as
  /// bound metrics: recycling is shard-local, so the counts are a
  /// function of the shard layout, and folding them into the registry
  /// would break the engine-invariance of the merged metrics view
  /// (serial and sharded runs must export identical registries).
  /// Returns an empty buffer, with recycled capacity when available.
  Bytes acquire_payload();
  /// Return a spent buffer to the freelist (clears it; keeps capacity).
  void recycle_payload(Bytes&& b) noexcept;
  std::uint64_t payload_pool_hits() const noexcept { return pool_hits_; }
  std::uint64_t payload_pool_misses() const noexcept { return pool_misses_; }
  /// Capacity bytes handed out from the pool instead of the allocator.
  std::uint64_t payload_bytes_pooled() const noexcept { return pool_bytes_; }

 private:
  /// Freelist depth cap: beyond this, recycled buffers are released to
  /// the allocator (bounds idle memory after report-heavy rounds).
  static constexpr std::size_t kMaxPooledBuffers = 1024;

  void deliver(Message msg, sim::Duration delay, std::uint32_t charged_hops);
  /// One send attempt hit the air: charge every ledger (total bytes,
  /// per-link bytes, sent-or-dropped message count) and the bound
  /// metrics in one place, so the ledgers cannot diverge.
  void charge(const Message& msg, std::uint64_t wire_bytes, bool delivered);
  /// With serialize_tx: when src's radio can start this transmission
  /// (and reserve it). Returns the extra queueing delay.
  sim::Duration reserve_radio(NodeId src, sim::Duration tx_time);

  sim::Scheduler& scheduler_;
  LinkParams params_;
  Handler handler_;
  Router router_;
  TamperHook tamper_;
  double loss_rate_ = 0.0;
  std::uint64_t loss_seed_ = 0;
  Rng loss_rng_{0};
  bool per_link_accounting_ = false;
  std::uint64_t bytes_transmitted_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> per_link_bytes_;
  std::unordered_set<std::uint64_t> down_links_;  // directed (src,dst)
  std::unordered_map<NodeId, sim::SimTime> radio_free_;  // serialize_tx

  std::vector<Bytes> payload_pool_;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t pool_misses_ = 0;
  std::uint64_t pool_bytes_ = 0;

  // Bound metric handles (null when no registry is attached). Resolved
  // once in bind_metrics(); hot-path updates are plain increments.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  obs::Counter* m_attempts_ = nullptr;
  obs::Counter* m_link_bytes_ = nullptr;
  obs::Histogram* m_payload_ = nullptr;
};

}  // namespace cra::net
