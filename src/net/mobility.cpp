#include "net/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cra::net {

WaypointField::WaypointField(std::uint32_t devices, MobilityConfig config,
                             std::uint64_t seed)
    : config_(config), rng_(seed ^ 0x6d6f'7665ULL) {  // "move"
  if (config_.speed < 0.0) {
    throw std::invalid_argument("WaypointField: negative speed");
  }
  if (config_.step <= sim::Duration::zero()) {
    throw std::invalid_argument("WaypointField: step must be positive");
  }
  if (config_.max_children == 0) {
    throw std::invalid_argument("WaypointField: max_children must be >= 1");
  }
  const std::uint32_t nodes = devices + 1;
  x_.resize(nodes);
  y_.resize(nodes);
  wx_.resize(nodes);
  wy_.resize(nodes);
  // Verifier pinned at the center of the deployment area.
  x_[0] = wx_[0] = 0.5;
  y_[0] = wy_[0] = 0.5;
  for (NodeId n = 1; n < nodes; ++n) {
    x_[n] = rng_.next_double();
    y_[n] = rng_.next_double();
    wx_[n] = rng_.next_double();
    wy_[n] = rng_.next_double();
  }
}

void WaypointField::advance(sim::Duration dt) {
  if (dt <= sim::Duration::zero()) return;
  const double seconds = static_cast<double>(dt.ns()) / 1e9;
  double budgeted = config_.speed * seconds;  // distance each device covers
  for (NodeId n = 1; n < nodes(); ++n) {
    double remaining = budgeted;
    // A fast device may pass through several waypoints in one step.
    while (remaining > 0.0) {
      const double dx = wx_[n] - x_[n];
      const double dy = wy_[n] - y_[n];
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (dist <= remaining) {
        x_[n] = wx_[n];
        y_[n] = wy_[n];
        remaining -= dist;
        wx_[n] = rng_.next_double();
        wy_[n] = rng_.next_double();
        if (dist == 0.0) break;  // degenerate waypoint; try again next step
      } else {
        x_[n] += dx / dist * remaining;
        y_[n] += dy / dist * remaining;
        remaining = 0.0;
      }
    }
  }
}

RewireStep WaypointField::snapshot(sim::SimTime at) const {
  const std::uint32_t n = nodes();
  // Attach order: distance from the verifier, ties on node id — devices
  // near the verifier become the upper tree layers, exactly how a
  // proximity mesh self-organizes.
  std::vector<NodeId> order;
  order.reserve(n - 1);
  for (NodeId id = 1; id < n; ++id) order.push_back(id);
  auto dist2_to_vrf = [&](NodeId id) {
    const double dx = x_[id] - x_[0];
    const double dy = y_[id] - y_[0];
    return dx * dx + dy * dy;
  };
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double da = dist2_to_vrf(a), db = dist2_to_vrf(b);
    if (da != db) return da < db;
    return a < b;
  });

  // Greedy nearest-attached attachment under the degree bound. Because
  // each node attaches to an already-placed one, positions come out in
  // topological order (parent position < child position), which is
  // exactly the Tree invariant.
  std::vector<NodeId> parent(n, kNoNode);          // by position
  std::vector<NodeId> device_at_position(n, 0);    // position -> node id
  std::vector<std::uint32_t> child_count(n, 0);    // by position
  device_at_position[0] = 0;
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    const NodeId id = order[i];
    const NodeId pos = static_cast<NodeId>(i + 1);
    NodeId best = kNoNode;
    double best_d = std::numeric_limits<double>::infinity();
    for (NodeId cand = 0; cand < pos; ++cand) {
      if (child_count[cand] >= config_.max_children) continue;
      const NodeId cand_id = device_at_position[cand];
      const double dx = x_[id] - x_[cand_id];
      const double dy = y_[id] - y_[cand_id];
      const double d = dx * dx + dy * dy;
      if (d < best_d) {
        best_d = d;
        best = cand;
      }
    }
    // The degree bound cannot exhaust (k placed positions have used only
    // k-1 child slots), but guard anyway rather than corrupt memory.
    if (best == kNoNode) {
      throw std::logic_error("WaypointField: no attachment slot free");
    }
    parent[pos] = best;
    ++child_count[best];
    device_at_position[pos] = id;
  }
  return RewireStep{at, Tree(std::move(parent)),
                    std::move(device_at_position)};
}

std::vector<RewireStep> mobility_schedule(std::uint32_t devices,
                                          const MobilityConfig& config,
                                          std::uint64_t seed,
                                          sim::SimTime start,
                                          sim::SimTime end) {
  WaypointField field(devices, config, seed);
  std::vector<RewireStep> steps;
  steps.push_back(field.snapshot(start));
  for (sim::SimTime t = start + config.step; t < end; t += config.step) {
    field.advance(config.step);
    steps.push_back(field.snapshot(t));
  }
  return steps;
}

}  // namespace cra::net
