#include "net/network.hpp"

#include <stdexcept>
#include <utility>

namespace cra::net {
namespace {

std::uint64_t link_key(NodeId src, NodeId dst) noexcept {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

}  // namespace

Network::Network(sim::Scheduler& scheduler, LinkParams params)
    : scheduler_(scheduler), params_(params) {
  if (params_.rate_bps == 0) {
    throw std::invalid_argument("Network: rate must be positive");
  }
}

sim::Duration Network::link_delay(std::size_t payload_bytes) const noexcept {
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(payload_bytes) + params_.header_bytes) * 8;
  return sim::transmission_delay(bits, params_.rate_bps) +
         params_.per_hop_latency;
}

void Network::charge(const Message& msg, std::uint64_t wire_bytes,
                     bool delivered) {
  bytes_transmitted_ += wire_bytes;
  if (per_link_accounting_) {
    // Dropped/tampered messages burned the same air time as delivered
    // ones; charging them here keeps sum(per-link) == total, which is
    // what fig3c's utilization breakdown relies on under loss.
    per_link_bytes_[link_key(msg.src, msg.dst)] += wire_bytes;
  }
  if (delivered) {
    ++messages_sent_;
  } else {
    ++messages_dropped_;
  }
  if (metrics_ != nullptr) {
    m_bytes_->inc(wire_bytes);
    m_attempts_->inc();
    (delivered ? m_sent_ : m_dropped_)->inc();
    if (per_link_accounting_) m_link_bytes_->inc(wire_bytes);
    m_payload_->record(msg.payload.size());
  }
}

void Network::deliver(Message msg, sim::Duration delay,
                      std::uint32_t charged_hops) {
  if (!handler_ && !router_) {
    throw std::logic_error("Network: handler not set before send");
  }
  const std::uint64_t wire_bytes =
      (msg.payload.size() + params_.header_bytes) *
      static_cast<std::uint64_t>(charged_hops);

  if (tamper_) {
    TamperResult t = tamper_(msg);
    switch (t.action) {
      case TamperAction::kDrop:
        charge(msg, wire_bytes, /*delivered=*/false);
        return;
      case TamperAction::kDeliverModified:
        msg.payload = std::move(t.modified_payload);
        break;
      case TamperAction::kDeliver:
        break;
    }
  }
  // Link outage beats probabilistic loss: a severed link drops
  // deterministically, without consuming a draw from the loss stream, so
  // adding a partition never perturbs which *other* messages get lost.
  if (!down_links_.empty() &&
      down_links_.count(link_key(msg.src, msg.dst)) != 0) {
    charge(msg, wire_bytes, /*delivered=*/false);
    return;
  }
  if (loss_rate_ > 0.0 && loss_rng_.next_bool(loss_rate_)) {
    charge(msg, wire_bytes, /*delivered=*/false);
    return;
  }

  charge(msg, wire_bytes, /*delivered=*/true);
  if (router_) {
    router_(std::move(msg), scheduler_.now() + delay);
    return;
  }
  scheduler_.schedule_after(delay, [this, m = std::move(msg)]() mutable {
    handler_(m);
    // The handler sees a const Message&, so the buffer is intact here —
    // harvest its capacity for the next send on this network.
    recycle_payload(std::move(m.payload));
  });
}

Bytes Network::acquire_payload() {
  if (!payload_pool_.empty()) {
    Bytes b = std::move(payload_pool_.back());
    payload_pool_.pop_back();
    ++pool_hits_;
    pool_bytes_ += b.capacity();
    return b;
  }
  ++pool_misses_;
  return Bytes{};
}

void Network::recycle_payload(Bytes&& b) noexcept {
  if (b.capacity() == 0 || payload_pool_.size() >= kMaxPooledBuffers) return;
  b.clear();
  payload_pool_.push_back(std::move(b));
}

sim::Duration Network::reserve_radio(NodeId src, sim::Duration tx_time) {
  if (!params_.serialize_tx) return sim::Duration::zero();
  sim::SimTime& free_at = radio_free_[src];
  const sim::SimTime start =
      free_at > scheduler_.now() ? free_at : scheduler_.now();
  free_at = start + tx_time;
  return start - scheduler_.now();
}

void Network::send(NodeId src, NodeId dst, std::uint32_t kind, Bytes payload) {
  const std::uint64_t bits =
      (payload.size() + params_.header_bytes) * 8;
  const sim::Duration tx = sim::transmission_delay(bits, params_.rate_bps);
  const sim::Duration queue = reserve_radio(src, tx);
  deliver(Message{src, dst, kind, std::move(payload)},
          queue + tx + params_.per_hop_latency,
          /*charged_hops=*/1);
}

void Network::send_multihop(NodeId src, NodeId dst, std::uint32_t hops,
                            std::uint32_t kind, Bytes payload) {
  if (hops == 0) {
    throw std::invalid_argument("send_multihop: zero hops");
  }
  const std::uint64_t bits =
      (payload.size() + params_.header_bytes) * 8;
  const sim::Duration tx = sim::transmission_delay(bits, params_.rate_bps);
  // Contention is modelled at the originating radio only; intermediate
  // relays of a routed unicast are not tracked per hop.
  const sim::Duration queue = reserve_radio(src, tx);
  const sim::Duration delay =
      queue + (tx + params_.per_hop_latency) *
                  static_cast<std::int64_t>(hops);
  deliver(Message{src, dst, kind, std::move(payload)}, delay, hops);
}

void Network::reset_accounting() noexcept {
  bytes_transmitted_ = 0;
  messages_sent_ = 0;
  messages_dropped_ = 0;
  per_link_bytes_.clear();
  // Radio reservations are part of the measurement window too: without
  // this, a contention sweep's second repetition starts with the radios
  // still queued behind the previous window's backlog.
  radio_free_.clear();
  // Pool *statistics* restart with the window (they feed the per-round
  // metrics view); the pooled buffers themselves survive — capacity
  // carried across rounds is the whole point of the freelist.
  pool_hits_ = 0;
  pool_misses_ = 0;
  pool_bytes_ = 0;
  if (metrics_ != nullptr) {
    m_bytes_->reset();
    m_sent_->reset();
    m_dropped_->reset();
    m_attempts_->reset();
    m_link_bytes_->reset();
    m_payload_->reset();
  }
}

std::uint64_t Network::bytes_on_link(NodeId src, NodeId dst) const {
  const auto it = per_link_bytes_.find(link_key(src, dst));
  return it == per_link_bytes_.end() ? 0 : it->second;
}

std::uint64_t Network::per_link_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [key, bytes] : per_link_bytes_) total += bytes;
  return total;
}

void Network::assert_ledgers_consistent() const {
  if (!per_link_accounting_) return;
  if (per_link_total() != bytes_transmitted_) {
    throw std::logic_error(
        "Network: per-link byte ledger diverged from bytes_transmitted "
        "(was per-link accounting toggled mid-window?)");
  }
}

void Network::bind_metrics(obs::MetricsRegistry* reg) {
  metrics_ = reg;
  if (reg == nullptr) {
    m_bytes_ = m_sent_ = m_dropped_ = m_attempts_ = m_link_bytes_ = nullptr;
    m_payload_ = nullptr;
    return;
  }
  m_bytes_ = &reg->counter("net.bytes_transmitted");
  m_sent_ = &reg->counter("net.messages_sent");
  m_dropped_ = &reg->counter("net.messages_dropped");
  m_attempts_ = &reg->counter("net.messages_attempted");
  m_link_bytes_ = &reg->counter("net.per_link_bytes");
  m_payload_ = &reg->histogram("net.payload_bytes");
}

void Network::set_link_down(NodeId src, NodeId dst, bool down) {
  if (down) {
    down_links_.insert(link_key(src, dst));
  } else {
    down_links_.erase(link_key(src, dst));
  }
}

bool Network::link_is_down(NodeId src, NodeId dst) const {
  return down_links_.count(link_key(src, dst)) != 0;
}

void Network::set_loss_rate(double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("set_loss_rate: p must be in [0,1]");
  }
  loss_rate_ = p;
  loss_seed_ = seed;
  loss_rng_ = Rng(seed ^ 0x106f5f2d1c0ffee5ULL);
}

}  // namespace cra::net
