// Network topologies for attestation groups.
//
// SAP's setup deploys S as a balanced binary tree rooted on Vrf
// (node 0); SEDA builds a BFS spanning tree over whatever connectivity
// exists. `Tree` stores parent links plus a CSR (compressed sparse row)
// child table so a million-node topology costs a few machine words per
// node. Builders cover the paper's deployment (balanced k-ary), the
// degenerate shapes used by tests (line, star), and random trees for
// property sweeps.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace cra::net {

using NodeId = std::uint32_t;
constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Rooted tree over nodes 0..size()-1; node 0 is the root (the verifier).
class Tree {
 public:
  /// Build from a parent array: parent[0] must be kNoNode, every other
  /// parent[i] < i (nodes are in BFS/topological order). Throws
  /// std::invalid_argument on malformed input.
  explicit Tree(std::vector<NodeId> parent);

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(parent_.size());
  }
  /// Number of devices (all nodes except the root verifier).
  std::uint32_t device_count() const noexcept { return size() - 1; }

  NodeId parent(NodeId n) const { return parent_.at(n); }
  std::span<const NodeId> children(NodeId n) const;
  std::uint32_t degree(NodeId n) const;
  bool is_leaf(NodeId n) const { return children(n).empty(); }

  /// Hops from the root (depth(0) == 0).
  std::uint32_t depth(NodeId n) const { return depth_.at(n); }
  std::uint32_t max_depth() const noexcept { return max_depth_; }
  std::uint32_t max_degree() const noexcept { return max_degree_; }

  /// Hops between two arbitrary nodes (via lowest common ancestor).
  std::uint32_t hops(NodeId a, NodeId b) const;

  /// Number of edges (= size() - 1).
  std::uint32_t edge_count() const noexcept { return size() - 1; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> child_offset_;  // CSR offsets, size()+1
  std::vector<NodeId> child_list_;
  std::vector<std::uint32_t> depth_;
  std::uint32_t max_depth_ = 0;
  std::uint32_t max_degree_ = 0;
};

/// Balanced k-ary tree over `devices` devices plus the root verifier:
/// node i's children are k*i+1 .. k*i+k (heap layout), so the verifier
/// has up to k children and every device has degree <= k+1.
/// The paper's setup uses arity = 2.
Tree balanced_kary_tree(std::uint32_t devices, std::uint32_t arity = 2);

/// Path graph: 0 - 1 - 2 - ... - devices (worst-case depth).
Tree line_tree(std::uint32_t devices);

/// Star: every device is a direct child of the verifier (worst-case
/// degree; violates TCA-Efficiency's O(1)-degree goal — used by the
/// naive-baseline ablation).
Tree star_tree(std::uint32_t devices);

/// Random tree: each node's parent is drawn uniformly among earlier
/// nodes whose degree is still below `max_children`.
Tree random_tree(std::uint32_t devices, std::uint32_t max_children, Rng& rng);

/// Undirected connected graph, used to exercise spanning-tree
/// construction (SEDA joins an existing mesh).
class Graph {
 public:
  explicit Graph(std::uint32_t nodes);

  void add_edge(NodeId a, NodeId b);
  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  const std::vector<NodeId>& neighbors(NodeId n) const {
    return adjacency_.at(n);
  }
  bool connected() const;

  /// BFS spanning tree rooted at `root`; node ids are relabelled into BFS
  /// order (root becomes 0). `labels_out`, if non-null, receives the
  /// mapping old-id -> new-id. Throws std::invalid_argument if the graph
  /// is disconnected.
  Tree bfs_spanning_tree(NodeId root,
                         std::vector<NodeId>* labels_out = nullptr) const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
};

/// Connected random graph: a random spanning tree plus `extra_edges`
/// uniformly random non-duplicate edges.
Graph random_connected_graph(std::uint32_t nodes, std::uint32_t extra_edges,
                             Rng& rng);

}  // namespace cra::net
