#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

namespace cra::net {

Tree::Tree(std::vector<NodeId> parent) : parent_(std::move(parent)) {
  if (parent_.empty()) {
    throw std::invalid_argument("Tree: need at least the root");
  }
  if (parent_[0] != kNoNode) {
    throw std::invalid_argument("Tree: parent[0] must be kNoNode");
  }
  const std::uint32_t n = size();
  std::vector<std::uint32_t> child_count(n, 0);
  for (std::uint32_t i = 1; i < n; ++i) {
    if (parent_[i] >= i) {
      throw std::invalid_argument(
          "Tree: nodes must be topologically ordered (parent[i] < i)");
    }
    ++child_count[parent_[i]];
  }

  child_offset_.assign(n + 1, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    child_offset_[i + 1] = child_offset_[i] + child_count[i];
  }
  child_list_.assign(n - 1, 0);
  std::vector<std::uint32_t> cursor(child_offset_.begin(),
                                    child_offset_.end() - 1);
  for (std::uint32_t i = 1; i < n; ++i) {
    child_list_[cursor[parent_[i]]++] = i;
  }

  depth_.assign(n, 0);
  for (std::uint32_t i = 1; i < n; ++i) {
    depth_[i] = depth_[parent_[i]] + 1;
    max_depth_ = std::max(max_depth_, depth_[i]);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    max_degree_ = std::max(max_degree_, degree(i));
  }
}

std::span<const NodeId> Tree::children(NodeId n) const {
  if (n >= size()) throw std::out_of_range("Tree::children: bad node");
  return std::span<const NodeId>(child_list_.data() + child_offset_[n],
                                 child_offset_[n + 1] - child_offset_[n]);
}

std::uint32_t Tree::degree(NodeId n) const {
  const auto kids = static_cast<std::uint32_t>(children(n).size());
  return n == 0 ? kids : kids + 1;
}

std::uint32_t Tree::hops(NodeId a, NodeId b) const {
  if (a >= size() || b >= size()) {
    throw std::out_of_range("Tree::hops: bad node");
  }
  std::uint32_t h = 0;
  while (depth_[a] > depth_[b]) {
    a = parent_[a];
    ++h;
  }
  while (depth_[b] > depth_[a]) {
    b = parent_[b];
    ++h;
  }
  while (a != b) {
    a = parent_[a];
    b = parent_[b];
    h += 2;
  }
  return h;
}

Tree balanced_kary_tree(std::uint32_t devices, std::uint32_t arity) {
  if (arity == 0) throw std::invalid_argument("balanced_kary_tree: arity 0");
  const std::uint32_t n = devices + 1;
  std::vector<NodeId> parent(n);
  parent[0] = kNoNode;
  for (std::uint32_t i = 1; i < n; ++i) {
    parent[i] = (i - 1) / arity;
  }
  return Tree(std::move(parent));
}

Tree line_tree(std::uint32_t devices) {
  const std::uint32_t n = devices + 1;
  std::vector<NodeId> parent(n);
  parent[0] = kNoNode;
  for (std::uint32_t i = 1; i < n; ++i) parent[i] = i - 1;
  return Tree(std::move(parent));
}

Tree star_tree(std::uint32_t devices) {
  const std::uint32_t n = devices + 1;
  std::vector<NodeId> parent(n);
  parent[0] = kNoNode;
  for (std::uint32_t i = 1; i < n; ++i) parent[i] = 0;
  return Tree(std::move(parent));
}

Tree random_tree(std::uint32_t devices, std::uint32_t max_children, Rng& rng) {
  if (max_children == 0) {
    throw std::invalid_argument("random_tree: max_children 0");
  }
  const std::uint32_t n = devices + 1;
  std::vector<NodeId> parent(n);
  parent[0] = kNoNode;
  std::vector<std::uint32_t> child_count(n, 0);
  // `open` holds nodes that can still accept children.
  std::vector<NodeId> open{0};
  for (std::uint32_t i = 1; i < n; ++i) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.next_below(open.size()));
    const NodeId p = open[pick];
    parent[i] = p;
    if (++child_count[p] == max_children) {
      open[pick] = open.back();
      open.pop_back();
    }
    open.push_back(i);
  }
  return Tree(std::move(parent));
}

Graph::Graph(std::uint32_t nodes) : adjacency_(nodes) {
  if (nodes == 0) throw std::invalid_argument("Graph: empty");
}

void Graph::add_edge(NodeId a, NodeId b) {
  if (a >= size() || b >= size() || a == b) {
    throw std::invalid_argument("Graph::add_edge: bad endpoints");
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

bool Graph::connected() const {
  std::vector<bool> seen(size(), false);
  std::deque<NodeId> frontier{0};
  seen[0] = true;
  std::uint32_t visited = 1;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop_front();
    for (NodeId next : adjacency_[n]) {
      if (!seen[next]) {
        seen[next] = true;
        ++visited;
        frontier.push_back(next);
      }
    }
  }
  return visited == size();
}

Tree Graph::bfs_spanning_tree(NodeId root,
                              std::vector<NodeId>* labels_out) const {
  if (root >= size()) {
    throw std::invalid_argument("bfs_spanning_tree: bad root");
  }
  std::vector<NodeId> label(size(), kNoNode);
  std::vector<NodeId> parent_new;
  parent_new.reserve(size());
  std::deque<NodeId> frontier{root};
  label[root] = 0;
  parent_new.push_back(kNoNode);
  std::uint32_t next_label = 1;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop_front();
    for (NodeId nb : adjacency_[n]) {
      if (label[nb] == kNoNode) {
        label[nb] = next_label++;
        parent_new.push_back(label[n]);
        frontier.push_back(nb);
      }
    }
  }
  if (next_label != size()) {
    throw std::invalid_argument("bfs_spanning_tree: graph is disconnected");
  }
  if (labels_out != nullptr) *labels_out = std::move(label);
  return Tree(std::move(parent_new));
}

Graph random_connected_graph(std::uint32_t nodes, std::uint32_t extra_edges,
                             Rng& rng) {
  Graph g(nodes);
  // Random spanning tree: attach each node to a uniformly random earlier
  // node, then permute nothing (ids are arbitrary anyway).
  for (std::uint32_t i = 1; i < nodes; ++i) {
    g.add_edge(i, static_cast<NodeId>(rng.next_below(i)));
  }
  std::uint32_t added = 0;
  std::uint32_t attempts = 0;
  const std::uint32_t max_attempts = extra_edges * 20 + 100;
  while (added < extra_edges && attempts < max_attempts && nodes > 2) {
    ++attempts;
    const auto a = static_cast<NodeId>(rng.next_below(nodes));
    const auto b = static_cast<NodeId>(rng.next_below(nodes));
    if (a == b) continue;
    const auto& nbs = g.neighbors(a);
    if (std::find(nbs.begin(), nbs.end(), b) != nbs.end()) continue;
    g.add_edge(a, b);
    ++added;
  }
  return g;
}

}  // namespace cra::net
