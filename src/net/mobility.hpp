// Mobility models for dynamic-topology attestation scenarios.
//
// SAP/SEDA assume the spanning tree is fixed for the life of a round;
// PADS-class protocols are designed for swarms whose links rewire as
// devices move. This module supplies the movement side of that axis:
// a seeded random-waypoint field over the unit square (the standard
// mobility model in the MANET literature) plus a deterministic rule
// that derives a spanning tree from the current node positions.
//
// Everything here is a pure function of (seed, config): the field is
// advanced on the driver thread between simulation slices, so the
// resulting rewire schedule — and therefore every simulation that
// replays it — is byte-identical on the serial and sharded engines at
// any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace cra::net {

struct MobilityConfig {
  /// Movement speed in unit-square widths per simulated second. 0.05
  /// means a device crosses the deployment area in ~20 s.
  double speed = 0.05;
  /// How often the topology is re-derived from positions (the rewire
  /// cadence mid-round).
  sim::Duration step = sim::Duration::from_ms(200);
  /// Degree bound of the derived tree: a node accepts at most this many
  /// children (keeps the topology in the paper's O(1)-degree regime).
  std::uint32_t max_children = 4;
};

/// One topology change: at `at`, the swarm's links become `tree` with
/// device `device_at_position[pos]` sitting at tree position `pos`
/// (position 0 is always the verifier, device 0).
struct RewireStep {
  sim::SimTime at;
  Tree tree;
  std::vector<NodeId> device_at_position;
};

/// Seeded random-waypoint field over the unit square. The verifier
/// (node 0) is pinned at the center; every device moves in a straight
/// line toward a uniformly drawn waypoint, drawing the next one on
/// arrival.
class WaypointField {
 public:
  /// `devices` moving devices plus the pinned verifier.
  WaypointField(std::uint32_t devices, MobilityConfig config,
                std::uint64_t seed);

  std::uint32_t nodes() const noexcept {
    return static_cast<std::uint32_t>(x_.size());
  }
  double x(NodeId n) const { return x_.at(n); }
  double y(NodeId n) const { return y_.at(n); }

  /// Move every device for `dt` of simulated time (waypoints redraw
  /// deterministically in node order on arrival).
  void advance(sim::Duration dt);

  /// Derive the current topology: devices attach nearest-first — nodes
  /// sorted by distance from the verifier each link to the closest
  /// already-attached node with spare child capacity. Deterministic
  /// (ties break on node id) and always connected.
  RewireStep snapshot(sim::SimTime at) const;

 private:
  MobilityConfig config_;
  Rng rng_;
  std::vector<double> x_, y_;    // current positions
  std::vector<double> wx_, wy_;  // current waypoints
};

/// Precompute a whole round's rewire timeline: the field advances in
/// `config.step` increments over [start, end) and snapshots after each
/// step. The first entry is the initial topology at `start`. A pure
/// function of (devices, config, seed, start, end).
std::vector<RewireStep> mobility_schedule(std::uint32_t devices,
                                          const MobilityConfig& config,
                                          std::uint64_t seed,
                                          sim::SimTime start,
                                          sim::SimTime end);

}  // namespace cra::net
