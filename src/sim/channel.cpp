#include "sim/channel.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "sim/process_group.hpp"
#include "sim/spsc_ring.hpp"

namespace cra::sim {
namespace {

// ---------------------------------------------------------------------------
// In-process lanes

class InprocChannel final : public ChannelTransport {
 public:
  explicit InprocChannel(std::uint32_t shard_count)
      : shard_count_(shard_count) {
    lanes_.reserve(static_cast<std::size_t>(shard_count) * shard_count);
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(shard_count) * shard_count; ++i) {
      lanes_.push_back(std::make_unique<Lane>());
    }
  }

  Kind kind() const noexcept override { return Kind::kInproc; }
  const char* name() const noexcept override { return "inproc"; }

  bool post_callback(std::uint32_t from, std::uint32_t to, SimTime at,
                     Scheduler::Callback cb) override {
    Lane& l = lane(from, to);
    if (l.items.size() == l.items.capacity()) ++l.reallocs;
    l.items.push_back(Posted{at, std::move(cb)});
    return true;
  }

  Bytes post_message(std::uint32_t from, std::uint32_t to,
                     ShardMessage&& m) override {
    // Wrap the owned message now; it rides the lane as a closure and the
    // payload never copies. The sink closure is installed by the engine
    // at drain time, so the lane stores the raw message via a deferred
    // tag — simplest encoding: a callback that the engine interprets.
    // (The engine passes a sched_msg-materializing wrapper instead; see
    // ParallelScheduler::post_message, which never reaches here for the
    // in-process transport.)
    (void)from;
    (void)to;
    (void)m;
    throw std::logic_error(
        "InprocChannel: post_message is handled by the engine (wrapped "
        "as a callback before it reaches the transport)");
  }

  void drain(std::uint32_t to,
             const std::function<void(SimTime, Scheduler::Callback&&)>&
                 sched_cb,
             const std::function<void(const ShardMessageView&)>& /*sched_msg*/)
      override {
    for (std::uint32_t from = 0; from < shard_count_; ++from) {
      Lane& l = lane(from, to);
      for (Posted& p : l.items) sched_cb(p.at, std::move(p.cb));
      // clear() keeps capacity: next epoch's posts land in warm storage.
      l.items.clear();
    }
  }

  std::uint64_t lane_reallocs() const noexcept override {
    std::uint64_t n = 0;
    for (const auto& l : lanes_) n += l->reallocs;
    return n;
  }

 private:
  struct Posted {
    SimTime at;
    Scheduler::Callback cb;
  };
  // Heap-allocated and cacheline-aligned: a lane's single writer and
  // single reader run on different workers in alternating phases.
  struct alignas(64) Lane {
    std::vector<Posted> items;
    std::uint64_t reallocs = 0;
  };

  Lane& lane(std::uint32_t from, std::uint32_t to) noexcept {
    return *lanes_[static_cast<std::size_t>(from) * shard_count_ + to];
  }

  std::uint32_t shard_count_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

// ---------------------------------------------------------------------------
// Shared-memory rings

/// Wire header of a serialized ShardMessage inside a ring record.
struct RecordHeader {
  std::int64_t at_ns;
  std::uint32_t entity;
  std::uint32_t src;
  std::uint32_t kind;
};
static_assert(sizeof(RecordHeader) == 24);

class ShmChannel final : public ChannelTransport {
 public:
  ShmChannel(std::uint32_t shard_count, std::uint32_t ring_slots,
             SharedArena& arena)
      : shard_count_(shard_count), ring_slots_(ring_slots) {
    rings_.resize(static_cast<std::size_t>(shard_count) * shard_count,
                  nullptr);
    for (std::uint32_t from = 0; from < shard_count; ++from) {
      for (std::uint32_t to = 0; to < shard_count; ++to) {
        if (from == to) continue;  // same-shard events never reach a channel
        void* mem = arena.alloc(SpscRing::region_bytes(ring_slots));
        rings_[static_cast<std::size_t>(from) * shard_count + to] =
            SpscRing::create(mem, ring_slots);
      }
    }
  }

  Kind kind() const noexcept override { return Kind::kShm; }
  const char* name() const noexcept override { return "shm"; }

  bool post_callback(std::uint32_t, std::uint32_t, SimTime,
                     Scheduler::Callback) override {
    return false;  // closures don't serialize; engine reports the misuse
  }

  Bytes post_message(std::uint32_t from, std::uint32_t to,
                     ShardMessage&& m) override {
    RecordHeader h{m.at.ns(), m.entity, m.src, m.kind};
    SpscRing* ring = rings_[static_cast<std::size_t>(from) * shard_count_ + to];
    if (!ring->try_push2(&h, sizeof(h), m.payload.data(),
                         static_cast<std::uint32_t>(m.payload.size()))) {
      throw std::logic_error(
          "ShmChannel: cross-shard ring " + std::to_string(from) + "->" +
          std::to_string(to) + " full (" + std::to_string(ring_slots_) +
          " slots) — one epoch posted more traffic than the ring holds; "
          "raise SimConfig::ring_slots or CRA_SHARD_RING_SLOTS");
    }
    Bytes spent = std::move(m.payload);
    spent.clear();
    return spent;
  }

  void drain(std::uint32_t to,
             const std::function<void(SimTime, Scheduler::Callback&&)>&
             /*sched_cb*/,
             const std::function<void(const ShardMessageView&)>& sched_msg)
      override {
    for (std::uint32_t from = 0; from < shard_count_; ++from) {
      if (from == to) continue;
      SpscRing* ring =
          rings_[static_cast<std::size_t>(from) * shard_count_ + to];
      std::uint32_t len = 0;
      const std::uint8_t* rec;
      while ((rec = ring->peek(len)) != nullptr) {
        if (len < sizeof(RecordHeader)) {
          throw std::runtime_error("ShmChannel: truncated record");
        }
        RecordHeader h;
        std::memcpy(&h, rec, sizeof(h));
        ShardMessageView v{SimTime(h.at_ns), h.entity, h.src, h.kind,
                           BytesView(rec + sizeof(h),
                                     len - sizeof(RecordHeader))};
        sched_msg(v);  // copies the payload before we release the slot
        ring->pop();
      }
    }
  }

  std::uint64_t lane_reallocs() const noexcept override { return 0; }

 private:
  std::uint32_t shard_count_;
  std::uint32_t ring_slots_;
  std::vector<SpscRing*> rings_;  // arena-owned storage
};

}  // namespace

std::unique_ptr<ChannelTransport> make_inproc_channel(
    std::uint32_t shard_count) {
  return std::make_unique<InprocChannel>(shard_count);
}

std::unique_ptr<ChannelTransport> make_shm_channel(std::uint32_t shard_count,
                                                   std::uint32_t ring_slots,
                                                   SharedArena& arena) {
  return std::make_unique<ShmChannel>(shard_count, ring_slots, arena);
}

}  // namespace cra::sim
