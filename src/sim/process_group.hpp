// SPMD process group for multi-process shard placement.
//
// The multi-process engine runs the SAME deterministic driver code in
// every process ("single program, multiple data"): the simulation is
// constructed once, the group forks, and each rank executes the round
// driver while owning a contiguous group of shards. Everything the
// ranks share — SPSC rings, the epoch-control cells, per-shard metrics
// images — lives in one MAP_SHARED|MAP_ANONYMOUS arena created BEFORE
// the fork, so every process maps it at the same address; all private
// simulation state is inherited copy-on-write.
//
// Lifecycle (see bench/pdes_scale.cpp for the canonical driver):
//
//   auto sim = SapSimulation::balanced(cfg, devices, seed);  // pre-fork
//   auto& pg = sim::ProcessGroup::instance();
//   const std::uint32_t rank = pg.spawn(cfg.sim.processes);
//   auto report = sim.run_round();      // every rank, SPMD
//   if (rank != 0) pg.child_exit(0);    // children stop here
//   pg.join();                          // parent reaps, throws on failure
//
// Rank 0 is the parent and owns shard 0, so verifier/root state and the
// RoundReport are authoritative in the parent. Children suppress their
// output duties and leave through child_exit() (`_exit`, no destructors
// or atexit hooks — their buffered stdio was flushed before the fork).
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cra::sim {

/// Bump allocator over one MAP_SHARED|MAP_ANONYMOUS mapping. Create
/// before fork; every process then sees the same memory at the same
/// address. 64-byte aligned allocations, no free (the arena's lifetime
/// is the engine's).
class SharedArena {
 public:
  explicit SharedArena(std::size_t bytes);
  ~SharedArena();
  SharedArena(const SharedArena&) = delete;
  SharedArena& operator=(const SharedArena&) = delete;

  /// Zero-initialized (fresh anonymous pages). Throws std::bad_alloc
  /// when the arena is exhausted — sizes are computed up front, so this
  /// indicates a sizing bug, not load.
  void* alloc(std::size_t n, std::size_t align = 64);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return used_; }

 private:
  void* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

class ProcessGroup {
 public:
  /// One group per process tree. Not thread-safe: spawn/join from the
  /// main thread only, with no engine running.
  static ProcessGroup& instance();

  /// Fork `nprocs - 1` children; returns this process's rank (0 = the
  /// original parent). stdio is flushed first so children inherit empty
  /// buffers. Throws std::logic_error on nested spawn and
  /// std::runtime_error if a fork fails.
  std::uint32_t spawn(std::uint32_t nprocs);

  std::uint32_t rank() const noexcept { return rank_; }
  std::uint32_t size() const noexcept { return size_; }
  bool is_root() const noexcept { return rank_ == 0; }

  /// Child ranks leave through here: flush nothing, run no destructors,
  /// just _exit. (A child that falls off main instead would re-run
  /// atexit hooks on inherited state.)
  [[noreturn]] void child_exit(int code) noexcept;

  /// Parent: reap every child; throws std::runtime_error naming the
  /// first rank that exited nonzero or died on a signal. Resets the
  /// group to size 1 so it can spawn again.
  void join();

  /// Liveness probe for barrier watchdogs. Parent: polls children with
  /// WNOHANG (an early exit of any kind counts as dead — SPMD peers
  /// only leave together). Child: checks the parent still exists.
  bool peers_alive() noexcept;

 private:
  ProcessGroup() = default;

  struct Child {
    pid_t pid;
    std::uint32_t rank;
    bool reaped = false;
    int status = 0;
  };

  std::uint32_t rank_ = 0;
  std::uint32_t size_ = 1;
  std::vector<Child> children_;  // parent only
  pid_t parent_pid_ = 0;         // child only
};

}  // namespace cra::sim
