#include "sim/scheduler.hpp"

#include <stdexcept>

namespace cra::sim {

EventHandle Scheduler::schedule_at(SimTime at, Callback cb) {
  if (at < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  const std::uint64_t seq = next_seq_++;
  live_.insert(seq);
  queue_.push(Event{at, seq, seq, std::move(cb)});
  return EventHandle(seq);
}

EventHandle Scheduler::schedule_after(Duration delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool Scheduler::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (live_.find(handle.id_) == live_.end()) return false;
  return cancelled_.insert(handle.id_).second;
}

bool Scheduler::dispatch_next() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the callback is moved out via a
    // const_cast that is safe because pop() immediately follows.
    Event& top = const_cast<Event&>(queue_.top());
    const SimTime at = top.at;
    const std::uint64_t id = top.id;
    Callback cb = std::move(top.cb);
    queue_.pop();
    live_.erase(id);
    if (cancelled_.erase(id) > 0) {
      continue;  // cancelled while pending
    }
    now_ = at;
    ++dispatched_;
    cb();
    return true;
  }
  return false;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (dispatch_next()) ++n;
  return n;
}

std::size_t Scheduler::run_until(SimTime until) {
  std::size_t n = 0;
  purge_cancelled();
  while (!queue_.empty() && queue_.top().at <= until) {
    if (dispatch_next()) ++n;
    purge_cancelled();
  }
  if (now_ < until) now_ = until;
  return n;
}

std::size_t Scheduler::run_before(SimTime limit) {
  std::size_t n = 0;
  purge_cancelled();
  while (!queue_.empty() && queue_.top().at < limit) {
    if (dispatch_next()) ++n;
    purge_cancelled();
  }
  return n;
}

std::optional<SimTime> Scheduler::peek_next_time() {
  purge_cancelled();
  if (queue_.empty()) return std::nullopt;
  return queue_.top().at;
}

void Scheduler::purge_cancelled() {
  while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
    const std::uint64_t id = queue_.top().id;
    queue_.pop();
    live_.erase(id);
    cancelled_.erase(id);
  }
}

bool Scheduler::step() { return dispatch_next(); }

void Scheduler::clear_pending() noexcept {
  queue_ = decltype(queue_){};
  live_.clear();
  cancelled_.clear();
}

}  // namespace cra::sim
