// NUMA-aware worker pinning for the sharded engine (no libnuma).
//
// Topology comes straight from sysfs: each
// /sys/devices/system/node/node<N>/cpulist gives one NUMA node's CPUs,
// intersected with this process's affinity mask (so cgroup/cpuset
// restrictions are respected — CPUs the container cannot run on are
// never picked). When sysfs is absent (non-Linux-ish mounts, stripped
// containers) or lists nothing usable, the plan degrades to a single
// pseudo-node holding the allowed CPUs; when even the affinity mask is
// unreadable, pinning becomes a no-op. Every fallback is graceful:
// `--pin` can always be passed, it just does less on weaker hosts.
//
// Placement policy (deterministic, computed identically in every rank):
// shard processes spread round-robin over nodes, workers within a
// process round-robin over their node's CPUs. With the engine's
// first-touch behavior — a shard's queues and rings are faulted in by
// the pinned worker that owns them (copy-on-write after fork, demand
// paging for the arena) — a shard's hot state lands on the node its
// worker runs on.
#pragma once

#include <cstdint>
#include <vector>

namespace cra::sim {

struct CpuPlan {
  /// CPUs usable by this process, grouped by NUMA node (empty groups
  /// dropped). Empty outer vector = pinning unavailable.
  std::vector<std::vector<int>> nodes;

  bool usable() const noexcept { return !nodes.empty(); }
  std::size_t cpu_count() const noexcept {
    std::size_t n = 0;
    for (const auto& g : nodes) n += g.size();
    return n;
  }
};

/// Detect NUMA groups ∩ affinity mask. Never throws.
CpuPlan detect_cpu_plan() noexcept;

/// CPU for worker `worker` (of `workers`) in process `rank` (of
/// `nprocs`), or -1 when the plan is unusable.
int pick_cpu(const CpuPlan& plan, std::uint32_t rank, std::uint32_t nprocs,
             std::uint32_t worker, std::uint32_t workers) noexcept;

/// Pin the calling thread; false (and no change) on failure or cpu < 0.
bool pin_current_thread(int cpu) noexcept;

}  // namespace cra::sim
