#include "sim/process_group.hpp"

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <new>
#include <stdexcept>
#include <string>

namespace cra::sim {

SharedArena::SharedArena(std::size_t bytes) {
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  capacity_ = (bytes + page - 1) / page * page;
  void* p = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    throw std::runtime_error("SharedArena: mmap of " +
                             std::to_string(capacity_) + " bytes failed");
  }
  base_ = p;
}

SharedArena::~SharedArena() {
  if (base_ != nullptr) ::munmap(base_, capacity_);
}

void* SharedArena::alloc(std::size_t n, std::size_t align) {
  const std::size_t start = (used_ + align - 1) / align * align;
  if (start + n > capacity_) throw std::bad_alloc();
  used_ = start + n;
  return static_cast<std::uint8_t*>(base_) + start;
}

ProcessGroup& ProcessGroup::instance() {
  static ProcessGroup group;
  return group;
}

std::uint32_t ProcessGroup::spawn(std::uint32_t nprocs) {
  if (size_ != 1 || rank_ != 0) {
    throw std::logic_error("ProcessGroup: spawn() from inside a group");
  }
  if (nprocs <= 1) return 0;
  // Children inherit stdio buffers; flush now so nothing is printed
  // twice when they write (or _exit) later.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t parent = ::getpid();
  children_.clear();
  children_.reserve(nprocs - 1);
  for (std::uint32_t r = 1; r < nprocs; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Undo: reap whoever we already forked, then report.
      for (Child& c : children_) {
        ::kill(c.pid, SIGKILL);
        ::waitpid(c.pid, nullptr, 0);
      }
      children_.clear();
      throw std::runtime_error("ProcessGroup: fork failed at rank " +
                               std::to_string(r));
    }
    if (pid == 0) {
      rank_ = r;
      size_ = nprocs;
      parent_pid_ = parent;
      children_.clear();
      return rank_;
    }
    children_.push_back(Child{pid, r});
  }
  size_ = nprocs;
  return 0;
}

void ProcessGroup::child_exit(int code) noexcept {
  ::_exit(code);
}

void ProcessGroup::join() {
  if (rank_ != 0) {
    throw std::logic_error("ProcessGroup: join() from a child rank");
  }
  std::string failure;
  for (Child& c : children_) {
    if (!c.reaped) {
      if (::waitpid(c.pid, &c.status, 0) < 0) c.status = -1;
      c.reaped = true;
    }
    if (failure.empty()) {
      if (WIFEXITED(c.status) && WEXITSTATUS(c.status) != 0) {
        failure = "shard process rank " + std::to_string(c.rank) +
                  " exited with status " + std::to_string(WEXITSTATUS(c.status));
      } else if (WIFSIGNALED(c.status)) {
        failure = "shard process rank " + std::to_string(c.rank) +
                  " killed by signal " + std::to_string(WTERMSIG(c.status));
      }
    }
  }
  children_.clear();
  size_ = 1;
  if (!failure.empty()) throw std::runtime_error("ProcessGroup: " + failure);
}

bool ProcessGroup::peers_alive() noexcept {
  if (rank_ != 0) {
    // Reparented == parent died. (The launch parent is never init.)
    return ::getppid() == parent_pid_;
  }
  for (Child& c : children_) {
    if (c.reaped) return false;
    const pid_t r = ::waitpid(c.pid, &c.status, WNOHANG);
    if (r == c.pid) {
      // Any early exit is a failure from a barrier's point of view:
      // SPMD peers only leave after the run completes.
      c.reaped = true;
      return false;
    }
  }
  return true;
}

}  // namespace cra::sim
