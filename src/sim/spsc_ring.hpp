// Lock-free single-producer/single-consumer ring over shared memory.
//
// The multi-process shard transport (sim/channel.hpp) moves serialized
// cross-shard events through one of these per directed (src, dst) shard
// pair — exactly one writer (the source shard's worker) and one reader
// (the destination shard's worker), possibly in different processes.
//
// Layout: a 128-byte header (producer and consumer cursors on separate
// cache lines) followed by `slot_count` fixed 64-byte slots. Records are
// length-prefixed ([u32 len][len bytes of payload]) and always start at
// a slot boundary; a record that would straddle the wrap point is
// preceded by a pad marker (len == 0xFFFFFFFF) and written at offset 0
// instead. Cursors are free-running 32-bit slot counts — `slot_count`
// is a power of two, so indices reduce with a mask and the cursors wrap
// naturally at 2^32 (covered by a unit test via reset_cursors()). The
// 32-bit width is deliberate: a futex word is 32 bits, so a blocked
// peer can sleep directly on the cursor it is waiting to move.
//
// Fast path is wait-free: one acquire load of the peer cursor, memcpy,
// one release store of the own cursor. The blocking variants spin
// briefly, then publish a sleeper flag and wait on the peer's cursor
// futex in bounded slices (a missed wake self-heals at the next slice).
// The consumer additionally validates every record length before
// trusting it — a torn or trampled size field throws instead of walking
// the ring off into the weeds.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

namespace cra::sim {

class SpscRing {
 public:
  static constexpr std::uint32_t kSlotSize = 64;
  static constexpr std::uint32_t kPadMarker = 0xFFFFFFFFu;
  static constexpr std::uint32_t kHeaderBytes = 4;  // u32 length prefix

  /// Bytes of (shared) memory needed for a ring of `slot_count` slots.
  static std::size_t region_bytes(std::uint32_t slot_count) noexcept {
    return sizeof(SpscRing) + static_cast<std::size_t>(slot_count) * kSlotSize;
  }

  /// Placement-construct a ring in `mem` (64-byte aligned, at least
  /// region_bytes() long). `slot_count` must be a power of two >= 2;
  /// throws std::invalid_argument otherwise.
  static SpscRing* create(void* mem, std::uint32_t slot_count);

  std::uint32_t slot_count() const noexcept { return slot_count_; }
  /// Largest payload one record may carry. Capped at half the ring so a
  /// maximal record can always be pushed again after a wrap pad.
  std::size_t max_record_bytes() const noexcept {
    return static_cast<std::size_t>(slot_count_ / 2) * kSlotSize - kHeaderBytes;
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  std::uint32_t used_slots() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  /// --- Producer side ---
  /// Append one record made of two contiguous segments (header +
  /// payload; either may be empty). Returns false when the ring lacks
  /// space; throws std::invalid_argument when the record can never fit.
  bool try_push2(const void* a, std::uint32_t a_len, const void* b,
                 std::uint32_t b_len);
  bool try_push(const void* data, std::uint32_t len) {
    return try_push2(data, len, nullptr, 0);
  }
  /// Blocking push: bounded spin, then futex-wait on the consumer
  /// cursor in slices. Returns false if `timeout_ns` elapses first.
  bool push(const void* data, std::uint32_t len, std::int64_t timeout_ns);

  /// --- Consumer side ---
  /// Expose the next record (pointer into the ring, valid until pop()).
  /// Returns nullptr when the ring is empty. A length field that cannot
  /// belong to a well-formed record — larger than max_record_bytes() or
  /// extending past the published tail — throws std::runtime_error.
  const std::uint8_t* peek(std::uint32_t& len);
  /// Release the record returned by the last successful peek().
  void pop() noexcept;
  /// Wait until the ring is non-empty; false if `timeout_ns` elapses.
  bool wait_nonempty(std::int64_t timeout_ns);

  /// Test hook: start both cursors at `v` (ring must be empty). Lets
  /// unit tests exercise the 2^32 cursor wrap without 4 billion pushes.
  void reset_cursors(std::uint32_t v) noexcept;

 private:
  SpscRing(std::uint32_t slot_count) noexcept
      : slot_count_(slot_count), mask_(slot_count - 1) {}

  std::uint8_t* slot_ptr(std::uint32_t index) noexcept {
    return reinterpret_cast<std::uint8_t*>(this) + sizeof(SpscRing) +
           static_cast<std::size_t>(index) * kSlotSize;
  }
  const std::uint8_t* slot_ptr(std::uint32_t index) const noexcept {
    return const_cast<SpscRing*>(this)->slot_ptr(index);
  }
  static std::uint32_t slots_for(std::uint32_t payload_len) noexcept {
    return (kHeaderBytes + payload_len + kSlotSize - 1) / kSlotSize;
  }

  // Cursors on their own cache lines: the producer writes tail_ and
  // reads head_, the consumer the reverse — no line ping-pongs with the
  // payload slots.
  alignas(64) std::atomic<std::uint32_t> head_{0};  // slots consumed
  std::atomic<std::uint32_t> cons_sleeping_{0};
  alignas(64) std::atomic<std::uint32_t> tail_{0};  // slots published
  std::atomic<std::uint32_t> prod_sleeping_{0};
  alignas(64) std::uint32_t slot_count_;
  std::uint32_t mask_;
  std::uint32_t pending_pop_slots_ = 0;  // set by peek, used by pop
};

}  // namespace cra::sim
