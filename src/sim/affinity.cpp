#include "sim/affinity.hpp"

#include <sched.h>

#include <cctype>
#include <cstdio>
#include <string>

namespace cra::sim {
namespace {

/// Parse a sysfs cpulist ("0-3,8,10-11") into CPU numbers. Ignores
/// malformed pieces rather than failing the whole plan.
std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::size_t i = 0;
  while (i < list.size()) {
    if (!std::isdigit(static_cast<unsigned char>(list[i]))) {
      ++i;
      continue;
    }
    std::size_t end = i;
    const long lo = std::stol(list.substr(i), &end);
    end += i;
    long hi = lo;
    if (end < list.size() && list[end] == '-') {
      std::size_t end2 = 0;
      hi = std::stol(list.substr(end + 1), &end2);
      end = end + 1 + end2;
    }
    for (long c = lo; c <= hi && c - lo < 4096; ++c) {
      cpus.push_back(static_cast<int>(c));
    }
    i = end;
  }
  return cpus;
}

std::string read_small_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  return std::string(buf, n);
}

}  // namespace

CpuPlan detect_cpu_plan() noexcept {
  CpuPlan plan;
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) {
    return plan;  // no mask, no pinning
  }
  try {
    for (int node = 0; node < 1024; ++node) {
      const std::string list = read_small_file(
          "/sys/devices/system/node/node" + std::to_string(node) + "/cpulist");
      if (list.empty()) {
        if (node == 0) break;  // no sysfs NUMA topology at all
        break;                 // nodes are contiguous; first gap ends them
      }
      std::vector<int> group;
      for (const int cpu : parse_cpulist(list)) {
        if (cpu < CPU_SETSIZE && CPU_ISSET(cpu, &allowed)) group.push_back(cpu);
      }
      if (!group.empty()) plan.nodes.push_back(std::move(group));
    }
    if (plan.nodes.empty()) {
      // Single pseudo-node over the affinity mask.
      std::vector<int> group;
      for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
        if (CPU_ISSET(cpu, &allowed)) group.push_back(cpu);
      }
      if (!group.empty()) plan.nodes.push_back(std::move(group));
    }
  } catch (...) {
    plan.nodes.clear();
  }
  return plan;
}

int pick_cpu(const CpuPlan& plan, std::uint32_t rank, std::uint32_t nprocs,
             std::uint32_t worker, std::uint32_t workers) noexcept {
  if (!plan.usable()) return -1;
  const std::vector<int>& node =
      plan.nodes[rank % plan.nodes.size()];
  // Stagger ranks that share a node so their workers interleave over
  // the node's CPUs instead of piling onto the same ones.
  (void)nprocs;
  const std::uint32_t slot =
      worker + (rank / static_cast<std::uint32_t>(plan.nodes.size())) *
                   (workers != 0 ? workers : 1);
  return node[slot % node.size()];
}

bool pin_current_thread(int cpu) noexcept {
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
}

}  // namespace cra::sim
