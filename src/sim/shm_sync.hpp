// Shared-memory synchronization primitives for the multi-process engine.
//
// The sharded engine's cross-process epoch protocol (sim/parallel.cpp)
// and the SPSC rings (sim/spsc_ring.hpp) coordinate through 32-bit words
// in MAP_SHARED memory. Everything here is built on the two Linux futex
// operations that work across processes (FUTEX_WAIT / FUTEX_WAKE on a
// non-private futex):
//
//   * futex_wait / futex_wake — thin syscall wrappers.
//   * ShmBarrierCell — a sense-reversing barrier for P processes: the
//     last arriver runs a reduction closure while every peer is parked,
//     then bumps the generation word and wakes the futex. Waits are
//     time-bounded so a crashed peer turns into a liveness-callback
//     failure instead of a hang.
//   * ShmHorizonCell — a seqlock-published {horizon, done, epoch}
//     triple: the barrier's last arriver writes it (seq odd while
//     writing), every process re-reads until it observes a stable even
//     sequence. The barrier already orders the write before the reads;
//     the seqlock additionally makes the cell safe to sample from
//     outside the barrier (watchdogs, debuggers) and keeps the publish
//     protocol explicit.
//
// All waits spin briefly before sleeping. The spin budget is tiny on
// purpose: shard processes are frequently co-scheduled on fewer cores
// than there are waiters, and a long spin there is pure waste.
#pragma once

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <ctime>

namespace cra::sim {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// FUTEX_WAIT on `word` while it equals `expected`; returns once woken,
/// on timeout, on EINTR, or immediately if the value already changed.
/// `timeout_ns < 0` waits forever (the engine never does).
inline void futex_wait(const std::atomic<std::uint32_t>* word,
                       std::uint32_t expected,
                       std::int64_t timeout_ns) noexcept {
  timespec ts;
  timespec* tsp = nullptr;
  if (timeout_ns >= 0) {
    ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000);
    ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000);
    tsp = &ts;
  }
  // Non-private futex: the word lives in MAP_SHARED memory and peers are
  // separate processes.
  syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
          FUTEX_WAIT, expected, tsp, nullptr, 0);
}

inline void futex_wake(std::atomic<std::uint32_t>* word, int waiters) noexcept {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE,
          waiters, nullptr, nullptr, 0);
}

inline void futex_wake_all(std::atomic<std::uint32_t>* word) noexcept {
  futex_wake(word, 0x7fffffff);
}

/// Sense-reversing barrier for `nprocs` processes (one leader thread
/// each). Lives in shared memory; zero-initialized is ready to use.
struct alignas(64) ShmBarrierCell {
  std::atomic<std::uint32_t> arrived{0};
  std::atomic<std::uint32_t> generation{0};  // the futex word
  /// Sticky catastrophic-failure flag: set by the first waiter whose
  /// liveness probe fails (a peer process died mid-epoch), broadcast so
  /// every OTHER waiter gives up too instead of parking forever on a
  /// barrier the dead peer can never complete. Distinct from a graceful
  /// abort (a captured exception), which still participates in barriers
  /// and drains through the normal done-publication.
  std::atomic<std::uint32_t> failed{0};

  /// Enter the barrier. The last arriver runs `on_last` (with every
  /// peer parked), then releases the generation. Waiters poll `alive`
  /// roughly every 10 ms; if it returns false — or another waiter has
  /// already flagged failure — the wait gives up and wait() returns
  /// false (the caller aborts the run). on_last must not throw — it
  /// runs inside the barrier, where an unwind would strand every peer.
  template <typename OnLast, typename Liveness>
  bool wait(std::uint32_t nprocs, OnLast&& on_last, Liveness&& alive) noexcept {
    if (failed.load(std::memory_order_acquire) != 0) return false;
    const std::uint32_t gen = generation.load(std::memory_order_acquire);
    if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == nprocs) {
      on_last();
      arrived.store(0, std::memory_order_relaxed);
      generation.store(gen + 1, std::memory_order_release);
      futex_wake_all(&generation);
      return true;
    }
    // Short spin (peers on other cores release in nanoseconds), then
    // sleep in 10 ms slices so a dead peer is noticed promptly.
    for (int i = 0; i < 128; ++i) {
      if (generation.load(std::memory_order_acquire) != gen) return true;
      cpu_relax();
    }
    while (generation.load(std::memory_order_acquire) == gen) {
      if (failed.load(std::memory_order_acquire) != 0) return false;
      if (!alive()) {
        failed.store(1, std::memory_order_release);
        futex_wake_all(&generation);
        return false;
      }
      futex_wait(&generation, gen, 10'000'000);
    }
    return true;
  }
};

/// Seqlock-published epoch decision: {horizon_ns, done, epoch}. One
/// writer (the barrier's last arriver), many readers.
struct alignas(64) ShmHorizonCell {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::int64_t> horizon_ns{0};
  std::atomic<std::uint32_t> done{0};
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::int64_t> global_now_ns{0};  // end-of-run clock reduction

  void publish(std::int64_t horizon, bool is_done, std::uint64_t e) noexcept {
    const std::uint32_t s = seq.load(std::memory_order_relaxed);
    seq.store(s + 1, std::memory_order_release);  // odd: write in progress
    horizon_ns.store(horizon, std::memory_order_relaxed);
    done.store(is_done ? 1 : 0, std::memory_order_relaxed);
    epoch.store(e, std::memory_order_relaxed);
    seq.store(s + 2, std::memory_order_release);
  }

  void read(std::int64_t& horizon, bool& is_done,
            std::uint64_t& e) const noexcept {
    for (;;) {
      const std::uint32_t s0 = seq.load(std::memory_order_acquire);
      if (s0 & 1u) {
        cpu_relax();
        continue;
      }
      horizon = horizon_ns.load(std::memory_order_relaxed);
      is_done = done.load(std::memory_order_relaxed) != 0;
      e = epoch.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq.load(std::memory_order_relaxed) == s0) return;
      cpu_relax();
    }
  }
};

}  // namespace cra::sim
