// Sharded parallel discrete-event engine (conservative PDES).
//
// The single-threaded Scheduler dispatches a global event queue in time
// order; a million-device SAP round schedules a few million events on
// one core. This engine partitions simulation endpoints ("entities" —
// for the protocol layers, tree positions) into contiguous shards, one
// classic Scheduler per shard, and runs the shards concurrently over a
// worker pool. Correctness rests on the classic conservative-lookahead
// argument (Chandy/Misra/Bryant):
//
//   every cross-shard interaction is a message with latency >= L
//   (the network's minimum link latency), so if no shard holds an
//   event earlier than T, no cross-shard event can arrive before
//   T + L — and every shard may safely execute its local events in
//   [T, T + L) without hearing from anyone.
//
// Execution proceeds in epochs. Each epoch has two phases separated by
// barriers: (A) every shard drains its inbound mailboxes and reports
// the time of its earliest event; a completion step reduces these to
// the global minimum T and publishes the horizon T + L; (B) every shard
// runs run_before(horizon). Events posted across shards during (B) go
// into per-(source, destination) mailbox lanes — each lane has exactly
// one writer (the source shard's worker) and one reader (the
// destination shard's worker), and the phases alternate under a
// barrier, so the lanes need no locks or atomics at all.
//
// Determinism: each shard is a deterministic Scheduler (FIFO among
// same-time events), mailbox lanes are drained in fixed source-shard
// order, and the horizon sequence depends only on event timestamps —
// so a run is a pure function of (inputs, shard count), independent of
// the number of worker threads and of OS scheduling. With one shard
// the engine *is* the classic Scheduler: run() forwards directly, so
// threads=1 reproduces the single-threaded event order bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace cra::sim {

/// Execution knobs for the simulation engine, carried by protocol
/// configs (sap::SapConfig::sim, seda::SedaConfig::sim).
struct SimConfig {
  /// Worker threads. 1 = run on the calling thread (with shards=0 this
  /// is exactly the classic single-queue engine).
  std::uint32_t threads = 1;
  /// Shard count; 0 = one shard per thread. Results are a function of
  /// the shard count, not the thread count: fix `shards` and any
  /// `threads` value reproduces the same run (see docs/simulation.md).
  std::uint32_t shards = 0;

  std::uint32_t effective_shards() const noexcept {
    return shards != 0 ? shards : threads;
  }
  bool sharded() const noexcept { return effective_shards() > 1; }
};

class ParallelScheduler {
 public:
  using Callback = Scheduler::Callback;

  /// Partitions entities 0..entities-1 into contiguous blocks, one per
  /// shard. `lookahead` is the minimum cross-shard event latency and
  /// must be positive when more than one shard is configured.
  ParallelScheduler(std::uint32_t entities, SimConfig config,
                    Duration lookahead);
  ~ParallelScheduler();

  ParallelScheduler(const ParallelScheduler&) = delete;
  ParallelScheduler& operator=(const ParallelScheduler&) = delete;

  std::uint32_t shard_count() const noexcept { return shard_count_; }
  std::uint32_t threads() const noexcept { return threads_; }
  Duration lookahead() const noexcept { return lookahead_; }

  std::uint32_t shard_of(std::uint32_t entity) const noexcept {
    const std::uint32_t s = entity / block_;
    return s < shard_count_ ? s : shard_count_ - 1;
  }
  Scheduler& shard(std::uint32_t s) noexcept { return shards_[s]->sched; }
  Scheduler& shard_for(std::uint32_t entity) noexcept {
    return shard(shard_of(entity));
  }

  /// Global clock: the maximum of the shard clocks. run()/run_until()
  /// synchronize every shard to this value on completion, so between
  /// runs all shards agree on the time.
  SimTime now() const noexcept;

  /// Schedule `cb` at absolute time `at` on `entity`'s shard. Safe to
  /// call from any shard's worker while the engine runs: same-shard
  /// posts schedule directly (preserving local FIFO order); cross-shard
  /// posts go through the mailbox lanes and must respect the lookahead
  /// (`at` >= the current epoch horizon), which holds by construction
  /// for any message of latency >= lookahead. Violations throw
  /// std::logic_error rather than silently racing.
  void post(std::uint32_t entity, SimTime at, Callback cb);

  /// Run all shards to global quiescence; returns events dispatched.
  std::size_t run();

  /// Run events with time <= `until`; every shard clock advances to
  /// `until`. Uses the same worker pool as run() (the horizon sequence —
  /// and therefore the result — is identical to the serial epoch path),
  /// so drivers can slice a round at topology-rewire points without
  /// giving up parallelism.
  std::size_t run_until(SimTime until);

  /// Total events dispatched over the engine's lifetime.
  std::uint64_t dispatched() const noexcept;
  /// Barrier windows executed (observability: epochs × 2 barrier waits).
  std::uint64_t epochs() const noexcept { return epochs_; }
  /// Events that crossed a shard boundary through the mailbox lanes.
  std::uint64_t cross_shard_posts() const noexcept;

  /// --- Per-shard metrics (obs layer) ---
  /// Each shard carries its own MetricsRegistry, written only by the
  /// worker that owns the shard (same confinement as the shard's
  /// Scheduler), so instrument updates need no locks or atomics. The
  /// registries are reduced with merge_metrics_into() on the caller's
  /// thread once run() has returned — i.e. at the final barrier, when
  /// every worker is quiescent — always in ascending shard order, so
  /// the merged view is a deterministic function of the run itself, not
  /// of thread interleaving.
  obs::MetricsRegistry& shard_metrics(std::uint32_t s) noexcept {
    return shards_[s]->metrics;
  }
  const obs::MetricsRegistry& shard_metrics(std::uint32_t s) const noexcept {
    return shards_[s]->metrics;
  }
  /// Fold every shard registry into `out` in shard order (deterministic;
  /// see shard_metrics). Call only while the engine is idle.
  void merge_metrics_into(obs::MetricsRegistry& out) const;
  /// Zero every shard registry's instruments (round boundary).
  void reset_shard_metrics() noexcept;

 private:
  struct Posted {
    SimTime at;
    Callback cb;
  };
  // Shards and lanes are heap-allocated and cacheline-aligned so that
  // workers hammering their own shard never share a line.
  struct alignas(64) Shard {
    Scheduler sched;
    std::optional<SimTime> next;     // written by owner in phase A
    std::size_t dispatched_run = 0;  // events run in the current run()
    std::uint64_t cross_posts = 0;   // lane posts originated here
    obs::MetricsRegistry metrics;    // written only by the owning worker
  };
  struct alignas(64) Lane {
    std::vector<Posted> items;  // one writer (src), one reader (dst)
  };

  Lane& lane(std::uint32_t from, std::uint32_t to) noexcept {
    return *lanes_[from * shard_count_ + to];
  }
  /// Move every lane targeting shard `s` into its scheduler, in fixed
  /// source-shard order (this is what keeps drains deterministic).
  void drain_into(std::uint32_t s);
  void sync_clocks();
  std::size_t run_serial_epochs(std::optional<SimTime> until);
  std::size_t run_threaded(std::optional<SimTime> until);

  std::uint32_t shard_count_;
  std::uint32_t threads_;
  std::uint32_t block_;
  Duration lookahead_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  // Epoch state: written only while every worker is parked at a barrier
  // (completion step) or by the single thread of the serial path; the
  // barrier provides the happens-before for workers reading them.
  SimTime horizon_;
  bool done_ = false;
  bool running_ = false;
  std::uint64_t epochs_ = 0;
};

}  // namespace cra::sim
