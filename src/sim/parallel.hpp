// Sharded parallel discrete-event engine (conservative PDES).
//
// The single-threaded Scheduler dispatches a global event queue in time
// order; a million-device SAP round schedules a few million events on
// one core. This engine partitions simulation endpoints ("entities" —
// for the protocol layers, tree positions) into contiguous shards, one
// classic Scheduler per shard, and runs the shards concurrently over a
// worker pool. Correctness rests on the classic conservative-lookahead
// argument (Chandy/Misra/Bryant):
//
//   every cross-shard interaction is a message with latency >= L
//   (the network's minimum link latency), so if no shard holds an
//   event earlier than T, no cross-shard event can arrive before
//   T + L — and every shard may safely execute its local events in
//   [T, T + L) without hearing from anyone.
//
// Execution proceeds in epochs. Each epoch has two phases separated by
// barriers: (A) every shard drains its inbound channel and reports the
// time of its earliest event; a reduction step folds these to the
// global minimum T and publishes the horizon T + L; (B) every shard
// runs run_before(horizon). Events posted across shards during (B) go
// through an explicit ChannelTransport (sim/channel.hpp) — each
// directed (source, destination) lane has exactly one writer and one
// reader, and the phases alternate under barriers, so the in-process
// lanes need no locks and the shared-memory rings need only their SPSC
// ordering.
//
// Two transports carry the shard boundary (SimConfig::transport /
// CRA_SHARD_TRANSPORT):
//
//   * inproc — per-lane vectors of closures, zero-copy, one process.
//   * shm    — per-lane SPSC rings in a MAP_SHARED arena; events are
//     serialized ShardMessages, shard groups may live in separate
//     forked processes (SimConfig::processes + sim::ProcessGroup), and
//     the epoch reduction runs over shared-memory cells with a
//     seqlock-published horizon instead of a std::barrier.
//
// Determinism: each shard is a deterministic Scheduler (FIFO among
// same-time events), channel lanes are drained in fixed source-shard
// order, and the horizon sequence depends only on event timestamps —
// so a run is a pure function of (inputs, shard count), independent of
// the number of worker threads, the transport, and the shard-to-process
// placement. With one shard the engine *is* the classic Scheduler:
// run() forwards directly, so threads=1 reproduces the single-threaded
// event order bit-for-bit.
//
// Threading contract for post(): safe from any of THIS engine's shard
// workers while the engine runs, and from the driver thread while the
// engine is idle (round setup). Any other thread posting into a running
// engine throws std::logic_error — the old behavior silently
// schedule_at()'d into a live shard, a data race.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace cra::sim {

class SharedArena;
struct ShmBarrierCell;
struct ShmHorizonCell;

/// Which channel implementation carries the shard boundary.
enum class ShardTransport : std::uint8_t {
  kAuto = 0,    // CRA_SHARD_TRANSPORT env if set, else inproc (shm when
                // processes > 1)
  kInproc = 1,  // in-process lanes (closures; zero-copy)
  kShm = 2,     // shared-memory SPSC rings (serialized messages)
};

/// Execution knobs for the simulation engine, carried by protocol
/// configs (sap::SapConfig::sim, seda::SedaConfig::sim).
struct SimConfig {
  /// Worker threads (per process). 1 = run on the calling thread (with
  /// shards=0 this is exactly the classic single-queue engine).
  std::uint32_t threads = 1;
  /// Shard count; 0 = one shard per thread. Results are a function of
  /// the shard count, not the thread count: fix `shards` and any
  /// `threads` value reproduces the same run (see docs/simulation.md).
  std::uint32_t shards = 0;
  /// Shard-boundary transport. kAuto resolves via CRA_SHARD_TRANSPORT
  /// ("inproc" / "shm") and defaults to inproc (shm when processes > 1).
  ShardTransport transport = ShardTransport::kAuto;
  /// Shard processes (shm transport only). Shards split into
  /// `processes` contiguous groups; rank r of the ProcessGroup owns
  /// group r. Construct the simulation FIRST (the shared arena must
  /// predate the fork), then ProcessGroup::spawn(processes), then run.
  std::uint32_t processes = 1;
  /// Per-lane ring capacity in 64-byte slots (shm transport; power of
  /// two). 0 = sized from the entity count, overridable via
  /// CRA_SHARD_RING_SLOTS.
  std::uint32_t ring_slots = 0;
  /// Pin workers to CPUs, NUMA-aware when sysfs exposes node topology
  /// (see sim/affinity.hpp). Placement-neutral: affects wall clock only.
  bool pin = false;

  std::uint32_t effective_shards() const noexcept {
    return shards != 0 ? shards : threads;
  }
  bool sharded() const noexcept { return effective_shards() > 1; }
  /// Resolve kAuto against the environment. Stable for a given
  /// (config, environment) pair.
  ShardTransport resolved_transport() const noexcept;
};

class ParallelScheduler {
 public:
  using Callback = Scheduler::Callback;
  /// Protocol delivery sinks for serialized cross-shard messages (see
  /// post_message). The owning sink receives messages whose payload
  /// buffer traveled intact (same-shard and inproc paths, zero-copy);
  /// the view sink receives borrowed payloads (shm path) and must copy
  /// what it keeps. Both run on the destination shard's worker at the
  /// event's time; a protocol must install behavior-identical sinks or
  /// transports would diverge.
  using MessageSink = std::function<void(ShardMessage&&)>;
  using MessageViewSink = std::function<void(const ShardMessageView&)>;

  /// Partitions entities 0..entities-1 into contiguous blocks, one per
  /// shard. `lookahead` is the minimum cross-shard event latency and
  /// must be positive when more than one shard is configured.
  ParallelScheduler(std::uint32_t entities, SimConfig config,
                    Duration lookahead);
  ~ParallelScheduler();

  ParallelScheduler(const ParallelScheduler&) = delete;
  ParallelScheduler& operator=(const ParallelScheduler&) = delete;

  std::uint32_t shard_count() const noexcept { return shard_count_; }
  std::uint32_t threads() const noexcept { return threads_; }
  Duration lookahead() const noexcept { return lookahead_; }
  /// Resolved transport actually in use ("inproc" for 1 shard).
  ShardTransport transport() const noexcept { return transport_; }
  const char* transport_name() const noexcept;
  std::uint32_t processes() const noexcept { return processes_; }

  std::uint32_t shard_of(std::uint32_t entity) const noexcept {
    const std::uint32_t s = entity / block_;
    return s < shard_count_ ? s : shard_count_ - 1;
  }
  Scheduler& shard(std::uint32_t s) noexcept { return shards_[s]->sched; }
  Scheduler& shard_for(std::uint32_t entity) noexcept {
    return shard(shard_of(entity));
  }
  /// Contiguous shard range owned by process `rank` (all shards when
  /// single-process).
  std::pair<std::uint32_t, std::uint32_t> owned_shards(
      std::uint32_t rank) const noexcept;

  /// Global clock: the maximum of the shard clocks. run()/run_until()
  /// synchronize every shard to this value on completion — across
  /// processes too (a shared-memory max-reduction) — so between runs
  /// all shards in all ranks agree on the time.
  SimTime now() const noexcept;

  /// Schedule `cb` at absolute time `at` on `entity`'s shard.
  ///
  /// Contract: callable (a) from this engine's shard workers while the
  /// engine runs — same-shard posts schedule directly (preserving local
  /// FIFO order); cross-shard posts ride the channel and must respect
  /// the lookahead (`at` >= the current epoch horizon), which holds by
  /// construction for any message of latency >= lookahead — and (b)
  /// from any thread while the engine is idle (setup between runs).
  /// A foreign thread posting into a RUNNING engine throws
  /// std::logic_error instead of racing a live shard queue. Under the
  /// shm transport, cross-shard closures also throw (closures don't
  /// serialize): protocol traffic uses post_message.
  void post(std::uint32_t entity, SimTime at, Callback cb);

  /// Schedule delivery of a serialized message to `entity`'s shard at
  /// `at` — the transport-portable sibling of post(), used by the
  /// protocol network routers. Requires sinks (set_message_sinks).
  /// Returns the spent payload buffer when the transport serialized it
  /// out (caller recycles the capacity into its shard-local pool);
  /// returns an empty buffer when the payload moved onward intact.
  Bytes post_message(std::uint32_t entity, SimTime at, std::uint32_t src,
                     std::uint32_t kind, Bytes&& payload);

  /// Install the delivery sinks post_message dispatches to. Call at
  /// setup, before any run with message traffic.
  void set_message_sinks(MessageSink deliver, MessageViewSink deliver_view);

  /// Run all shards to global quiescence; returns events dispatched
  /// (across ALL processes in multi-process mode — every rank returns
  /// the same total).
  std::size_t run();

  /// Run events with time <= `until`; every shard clock advances to
  /// `until`. Uses the same worker pool as run() (the horizon sequence —
  /// and therefore the result — is identical to the serial epoch path),
  /// so drivers can slice a round at topology-rewire points without
  /// giving up parallelism.
  std::size_t run_until(SimTime until);

  /// Total events dispatched over the engine's lifetime (global across
  /// processes in multi-process mode).
  std::uint64_t dispatched() const noexcept;
  /// Barrier windows executed (observability: epochs × 2 barrier waits).
  std::uint64_t epochs() const noexcept { return epochs_; }
  /// Events that crossed a shard boundary through the channel (global
  /// across processes in multi-process mode).
  std::uint64_t cross_shard_posts() const noexcept;
  /// Lane-capacity growth events in the channel (0 for shm rings, and 0
  /// steady-state for warm inproc lanes — the recycling guarantee).
  std::uint64_t lane_reallocs() const noexcept;

  /// Write the engine's own counters (pdes.events_dispatched,
  /// pdes.cross_posts, pdes.lane_reallocs, pdes.epochs) into `reg`.
  /// Deliberately NOT folded into the per-shard registries: those merge
  /// into the protocol metrics view, which must stay engine-invariant
  /// (a serial run and a sharded run export identical registries) —
  /// benches export these into their own bench-level registry instead.
  void export_pdes_metrics(obs::MetricsRegistry& reg) const;

  /// --- Per-shard metrics (obs layer) ---
  /// Each shard carries its own MetricsRegistry, written only by the
  /// worker that owns the shard (same confinement as the shard's
  /// Scheduler), so instrument updates need no locks or atomics. The
  /// registries are reduced with merge_metrics_into() on the caller's
  /// thread once run() has returned — i.e. at the final barrier, when
  /// every worker is quiescent — always in ascending shard order, so
  /// the merged view is a deterministic function of the run itself, not
  /// of thread interleaving.
  obs::MetricsRegistry& shard_metrics(std::uint32_t s) noexcept {
    return shards_[s]->metrics;
  }
  const obs::MetricsRegistry& shard_metrics(std::uint32_t s) const noexcept {
    return shards_[s]->metrics;
  }
  /// Fold every shard registry into `out` in shard order (deterministic;
  /// see shard_metrics). Call only while the engine is idle. In
  /// multi-process mode, non-owned shards merge from the binary images
  /// their owners published to shared memory at the end of the last run
  /// — every rank reduces the same global view.
  void merge_metrics_into(obs::MetricsRegistry& out) const;
  /// Zero every shard registry's instruments (round boundary).
  void reset_shard_metrics() noexcept;

 private:
  // Shards are heap-allocated and cacheline-aligned so that workers
  // hammering their own shard never share a line.
  struct alignas(64) Shard {
    Scheduler sched;
    std::optional<SimTime> next;     // written by owner in phase A
    std::size_t dispatched_run = 0;  // events run in the current run()
    std::uint64_t cross_posts = 0;   // channel posts originated here
    obs::MetricsRegistry metrics;    // written only by the owning worker
    std::vector<Bytes> spare;        // recycled shm-delivery buffers
  };

  /// Per-shard shared-memory cell (shm transport): the owner publishes
  /// its earliest-event time each phase A and its clock/counters/metrics
  /// image at end of run; peers reduce over all cells.
  struct alignas(64) ShardCell {
    std::atomic<std::int64_t> next_ns;
    std::atomic<std::int64_t> clock_ns;
    std::atomic<std::uint64_t> dispatched_run;
    std::atomic<std::uint64_t> dispatched_total;
    std::atomic<std::uint64_t> cross_posts;
    std::atomic<std::uint32_t> metrics_len;
  };

  bool owns_shard(std::uint32_t s) const noexcept;
  void deliver_view_into(std::uint32_t s, const ShardMessageView& v);
  /// Move every channel lane targeting shard `s` into its scheduler, in
  /// fixed source-shard order (this is what keeps drains deterministic).
  void drain_into(std::uint32_t s);
  void sync_clocks();
  void publish_shard_outputs(std::uint32_t s);
  std::size_t run_serial_epochs(std::optional<SimTime> until);
  std::size_t run_threaded(std::optional<SimTime> until);
  std::size_t run_shm(std::optional<SimTime> until);
  void maybe_pin(std::uint32_t worker, std::uint32_t workers) const;

  std::uint32_t shard_count_;
  std::uint32_t threads_;
  std::uint32_t block_;
  Duration lookahead_;
  ShardTransport transport_ = ShardTransport::kInproc;
  std::uint32_t processes_ = 1;
  std::uint32_t ring_slots_ = 0;
  bool pin_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ChannelTransport> channel_;
  MessageSink sink_;
  MessageViewSink view_sink_;

  // Shared-memory control plane (shm transport only). The arena is
  // created at construction — i.e. before any ProcessGroup::spawn() —
  // so all ranks map it at the same address.
  std::unique_ptr<SharedArena> arena_;
  ShmBarrierCell* barrier_ = nullptr;
  ShmHorizonCell* control_ = nullptr;
  std::atomic<std::uint32_t>* shm_abort_ = nullptr;
  ShardCell* cells_ = nullptr;
  std::uint8_t* metrics_blobs_ = nullptr;
  std::uint32_t metrics_blob_cap_ = 0;

  // Epoch state: written only while every worker is parked at a barrier
  // (completion step) or by the single thread of the serial path; the
  // barrier provides the happens-before for workers reading them.
  SimTime horizon_;
  bool done_ = false;
  std::atomic<bool> running_{false};
  std::uint64_t epochs_ = 0;
};

}  // namespace cra::sim
