// Simulation time.
//
// The paper's network model measures delay as hops × bits/µ with µ in
// bits per second; device-side costs come in CPU cycles at 24 MHz. Both
// resolve exactly in integer nanoseconds, so SimTime is a strong int64
// nanosecond count (~292 years of range — far beyond the secure clock's
// 2-year wraparound, which the device model handles separately).
#pragma once

#include <compare>
#include <cstdint>

namespace cra::sim {

/// 128-bit intermediate for overflow-free cycle/time arithmetic.
/// (__extension__ silences -Wpedantic; __int128 is available on every
/// 64-bit target GCC/Clang support.)
__extension__ typedef unsigned __int128 Uint128;

/// A point in simulated time (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() noexcept : ns_(0) {}
  constexpr explicit SimTime(std::int64_t ns) noexcept : ns_(ns) {}

  static constexpr SimTime zero() noexcept { return SimTime(0); }
  static constexpr SimTime from_ns(std::int64_t ns) noexcept { return SimTime(ns); }
  static constexpr SimTime from_us(std::int64_t us) noexcept { return SimTime(us * 1'000); }
  static constexpr SimTime from_ms(std::int64_t ms) noexcept { return SimTime(ms * 1'000'000); }
  /// Rounds to the nearest nanosecond (ties away from zero). Truncation
  /// here caused 1 ns drift for values like 2.9 whose product with 1e9
  /// is not exactly representable (2.9e9 computes as 2899999999.9999995,
  /// which used to truncate to 2899999999); service periods built from
  /// seconds then drifted off the tick grid by one period per round.
  static constexpr SimTime from_sec(double sec) noexcept {
    const double ns = sec * 1e9;
    return SimTime(static_cast<std::int64_t>(ns + (ns < 0 ? -0.5 : 0.5)));
  }

  constexpr std::int64_t ns() const noexcept { return ns_; }
  constexpr double us() const noexcept { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const noexcept { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const noexcept { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime operator+(SimTime d) const noexcept { return SimTime(ns_ + d.ns_); }
  constexpr SimTime operator-(SimTime d) const noexcept { return SimTime(ns_ - d.ns_); }
  constexpr SimTime& operator+=(SimTime d) noexcept { ns_ += d.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime d) noexcept { ns_ -= d.ns_; return *this; }
  constexpr SimTime operator*(std::int64_t k) const noexcept { return SimTime(ns_ * k); }

 private:
  std::int64_t ns_;
};

/// Durations share SimTime's representation; the alias documents intent.
using Duration = SimTime;

/// Time to push `bits` through a link of `bits_per_sec`, rounded up to a
/// whole nanosecond so that repeated hops never under-count.
constexpr Duration transmission_delay(std::uint64_t bits,
                                      std::uint64_t bits_per_sec) noexcept {
  const std::uint64_t numerator = bits * 1'000'000'000ULL;
  return Duration(static_cast<std::int64_t>(
      (numerator + bits_per_sec - 1) / bits_per_sec));
}

/// Time for `cycles` CPU cycles at `hz`, rounded up.
constexpr Duration cycles_to_time(std::uint64_t cycles,
                                  std::uint64_t hz) noexcept {
  const Uint128 numerator = static_cast<Uint128>(cycles) * 1'000'000'000ULL;
  return Duration(
      static_cast<std::int64_t>((numerator + hz - 1) / hz));
}

}  // namespace cra::sim
