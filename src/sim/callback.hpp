// Small-buffer-optimized event callback.
//
// The scheduler previously stored events as std::function<void()>;
// libstdc++'s std::function inlines only 16 bytes of captures, and every
// network delivery captures a whole net::Message (~40 bytes), so a
// million-device round paid one heap round-trip per event. InlineCallback
// is a move-only type-erased void() callable with enough inline storage
// for every hot-path lambda in the codebase; oversized or
// throwing-to-move callables fall back to the heap transparently.
//
// Dispatch semantics match how Scheduler uses std::function: the
// callback is moved out of the queue, invoked exactly once, and
// destroyed. Copying is deliberately unsupported — event queues never
// copy, and banning it keeps captured buffers single-owner.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cra::sim {

class InlineCallback {
 public:
  /// Inline capture budget. The largest hot-path lambda is the network
  /// delivery closure (`this` + a ~40-byte net::Message); 56 bytes keeps
  /// the whole object at one cache line together with the vtable
  /// pointer.
  static constexpr std::size_t kInlineSize = 56;

  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &InlineModel<Fn>::kVTable;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      vt_ = &HeapModel<Fn>::kVTable;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

  /// True when the stored callable lives in the inline buffer (test
  /// hook; lets the SBO coverage assert which path a capture took).
  bool is_inline() const noexcept { return vt_ != nullptr && vt_->inline_storage; }

  /// Compile-time answer for a callable type: does it take the inline
  /// path? Requires nothrow move so queue reshuffles stay noexcept.
  template <typename Fn>
  static constexpr bool fits_inline() noexcept {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct VTable {
    void (*invoke)(void* obj);
    // Move-construct into dst's buffer and destroy the source.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* obj) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  struct InlineModel {
    static void invoke(void* obj) { (*std::launder(reinterpret_cast<Fn*>(obj)))(); }
    static void relocate(void* src, void* dst) noexcept {
      Fn* s = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void destroy(void* obj) noexcept {
      std::launder(reinterpret_cast<Fn*>(obj))->~Fn();
    }
    static constexpr VTable kVTable{&invoke, &relocate, &destroy, true};
  };

  template <typename Fn>
  struct HeapModel {
    static Fn* ptr(void* obj) noexcept { return *reinterpret_cast<Fn**>(obj); }
    static void invoke(void* obj) { (*ptr(obj))(); }
    static void relocate(void* src, void* dst) noexcept {
      *reinterpret_cast<Fn**>(dst) = ptr(src);
    }
    static void destroy(void* obj) noexcept { delete ptr(obj); }
    static constexpr VTable kVTable{&invoke, &relocate, &destroy, false};
  };

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  void steal(InlineCallback& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

}  // namespace cra::sim
