// Shard-boundary channel transports for the parallel engine.
//
// Every cross-shard interaction in the sharded engine crosses exactly
// one of these. Two currencies travel:
//
//   * Callbacks (InlineCallback closures) — cheap and zero-copy, but
//     meaningful only inside one address space. The in-process
//     transport carries them; the shared-memory transport refuses (a
//     closure cannot be serialized), which is why the protocol layers
//     route network traffic as ShardMessages instead.
//   * ShardMessages — plain serializable records {at, entity, src,
//     kind, payload}. Both transports carry them: in-process as a
//     closure wrapping the owned message (zero-copy move), shared
//     memory as a length-prefixed record in a per-(src,dst) SPSC ring.
//
// The epoch protocol guarantees exclusivity: post_* is called only by
// the source shard's worker during phase B, drain() only by the
// destination shard's worker during phase A, with a barrier between
// them — so lanes need no locks and rings need exactly their SPSC
// ordering. drain() visits source shards in ascending order and each
// lane FIFO, which is what keeps the merged event order (and therefore
// every digest) a pure function of (inputs, shard count), independent
// of transport, thread count, and process placement.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace cra::sim {

class SharedArena;

/// A serializable cross-shard event: deliver `payload` to `entity` at
/// absolute time `at`. src/kind are opaque to the engine (the protocol
/// layers put the network source node and message discriminator there).
struct ShardMessage {
  SimTime at{};
  std::uint32_t entity = 0;
  std::uint32_t src = 0;
  std::uint32_t kind = 0;
  Bytes payload;
};

/// Borrowed view of a ShardMessage (payload aliases transport or engine
/// storage; valid only for the duration of the callback it is passed to).
struct ShardMessageView {
  SimTime at{};
  std::uint32_t entity = 0;
  std::uint32_t src = 0;
  std::uint32_t kind = 0;
  BytesView payload;
};

class ChannelTransport {
 public:
  enum class Kind : std::uint8_t { kInproc, kShm };

  virtual ~ChannelTransport() = default;

  virtual Kind kind() const noexcept = 0;
  virtual const char* name() const noexcept = 0;

  /// Queue a closure from shard `from` to shard `to`. Returns false when
  /// this transport cannot carry closures (shared memory).
  virtual bool post_callback(std::uint32_t from, std::uint32_t to, SimTime at,
                             Scheduler::Callback cb) = 0;

  /// Queue a serialized message. Returns the spent payload buffer when
  /// the transport copied it out (so the caller can recycle the
  /// capacity); returns an empty buffer when the payload moved onward.
  /// Throws std::logic_error when the channel is full (the epoch
  /// protocol drains only at phase boundaries, so "full" cannot resolve
  /// itself — the ring must be sized for the heaviest epoch).
  virtual Bytes post_message(std::uint32_t from, std::uint32_t to,
                             ShardMessage&& m) = 0;

  /// Deliver everything queued for shard `to`, visiting source shards
  /// in ascending order, each FIFO. Callback records go to `sched_cb`,
  /// serialized records to `sched_msg` (the view's payload is valid
  /// only during the call — the engine copies it into an owned buffer
  /// before the record's storage is released).
  virtual void drain(
      std::uint32_t to,
      const std::function<void(SimTime, Scheduler::Callback&&)>& sched_cb,
      const std::function<void(const ShardMessageView&)>& sched_msg) = 0;

  /// Lane-capacity growth events since construction (0 for rings, which
  /// never reallocate). Exported as the pdes.lane_reallocs counter.
  virtual std::uint64_t lane_reallocs() const noexcept = 0;
};

/// In-process transport: per-(src,dst) vectors of posted events. Lane
/// capacity is recycled across epochs — drain() clears contents but
/// keeps the allocation, so steady-state epochs push into warm storage
/// and lane_reallocs() stops moving after the first heavy epoch.
std::unique_ptr<ChannelTransport> make_inproc_channel(
    std::uint32_t shard_count);

/// Shared-memory transport: one SpscRing per ordered shard pair,
/// allocated from `arena` (create the arena — and therefore the engine —
/// before ProcessGroup::spawn()). `ring_slots` is the per-ring slot
/// count (power of two; 64-byte slots).
std::unique_ptr<ChannelTransport> make_shm_channel(std::uint32_t shard_count,
                                                   std::uint32_t ring_slots,
                                                   SharedArena& arena);

}  // namespace cra::sim
