#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace cra::sim {
namespace {

// Identifies the engine (and shard) the current thread is executing for,
// so post() can tell same-shard scheduling from cross-shard mailbox
// traffic. Thread-locals rather than members: workers of nested or
// concurrent engines must not observe each other.
thread_local const ParallelScheduler* tls_engine = nullptr;
thread_local std::uint32_t tls_shard = 0;

}  // namespace

ParallelScheduler::ParallelScheduler(std::uint32_t entities, SimConfig config,
                                     Duration lookahead)
    : lookahead_(lookahead) {
  if (entities == 0) entities = 1;
  std::uint32_t shards = config.effective_shards();
  if (shards == 0) shards = 1;
  shard_count_ = std::min(shards, entities);
  threads_ = std::max<std::uint32_t>(1, std::min(config.threads, shard_count_));
  if (shard_count_ > 1 && lookahead_ <= Duration::zero()) {
    throw std::invalid_argument(
        "ParallelScheduler: sharding requires positive lookahead");
  }
  block_ = (entities + shard_count_ - 1) / shard_count_;
  shards_.reserve(shard_count_);
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  lanes_.reserve(static_cast<std::size_t>(shard_count_) * shard_count_);
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(shard_count_) * shard_count_; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

ParallelScheduler::~ParallelScheduler() = default;

SimTime ParallelScheduler::now() const noexcept {
  SimTime t = SimTime::zero();
  for (const auto& s : shards_) {
    if (s->sched.now() > t) t = s->sched.now();
  }
  return t;
}

std::uint64_t ParallelScheduler::dispatched() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->sched.dispatched();
  return n;
}

std::uint64_t ParallelScheduler::cross_shard_posts() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->cross_posts;
  return n;
}

void ParallelScheduler::merge_metrics_into(obs::MetricsRegistry& out) const {
  for (const auto& s : shards_) out.merge_from(s->metrics);
}

void ParallelScheduler::reset_shard_metrics() noexcept {
  for (auto& s : shards_) s->metrics.reset_values();
}

void ParallelScheduler::post(std::uint32_t entity, SimTime at, Callback cb) {
  const std::uint32_t to = shard_of(entity);
  if (running_ && tls_engine == this && tls_shard != to) {
    if (at < horizon_) {
      throw std::logic_error(
          "ParallelScheduler: cross-shard event inside the lookahead "
          "window — source latency is below the configured lookahead");
    }
    lane(tls_shard, to).items.push_back(Posted{at, std::move(cb)});
    ++shards_[tls_shard]->cross_posts;
    return;
  }
  // Same shard, or the engine is idle (round setup): schedule directly,
  // preserving the scheduler's local FIFO order.
  shard(to).schedule_at(at, std::move(cb));
}

void ParallelScheduler::drain_into(std::uint32_t s) {
  for (std::uint32_t from = 0; from < shard_count_; ++from) {
    Lane& l = lane(from, s);
    for (Posted& p : l.items) {
      shards_[s]->sched.schedule_at(p.at, std::move(p.cb));
    }
    l.items.clear();
  }
}

void ParallelScheduler::sync_clocks() {
  const SimTime target = now();
  for (auto& s : shards_) {
    if (s->sched.now() < target) s->sched.run_until(target);
  }
}

std::size_t ParallelScheduler::run() {
  if (shard_count_ == 1) return shards_[0]->sched.run();
  for (auto& s : shards_) s->dispatched_run = 0;
  const std::size_t n = threads_ > 1 ? run_threaded(std::nullopt)
                                     : run_serial_epochs(std::nullopt);
  sync_clocks();
  return n;
}

std::size_t ParallelScheduler::run_until(SimTime until) {
  if (shard_count_ == 1) return shards_[0]->sched.run_until(until);
  for (auto& s : shards_) s->dispatched_run = 0;
  const std::size_t n = threads_ > 1 ? run_threaded(until)
                                     : run_serial_epochs(until);
  for (auto& s : shards_) s->sched.run_until(until);
  return n;
}

std::size_t ParallelScheduler::run_serial_epochs(
    std::optional<SimTime> until) {
  running_ = true;
  tls_engine = this;
  // Reset the running flag and the thread-local even when a handler (or
  // a lookahead-violation check) throws out of the epoch loop.
  struct Cleanup {
    ParallelScheduler* self;
    ~Cleanup() {
      self->running_ = false;
      tls_engine = nullptr;
    }
  } cleanup{this};
  std::size_t n = 0;
  for (;;) {
    std::optional<SimTime> min_next;
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      tls_shard = s;
      drain_into(s);
      const auto next = shards_[s]->sched.peek_next_time();
      if (next && (!min_next || *next < *min_next)) min_next = next;
    }
    if (!min_next || (until && *min_next > *until)) break;
    horizon_ = *min_next + lookahead_;
    if (until && horizon_ > *until + Duration::from_ns(1)) {
      horizon_ = *until + Duration::from_ns(1);  // run_before is exclusive
    }
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      tls_shard = s;
      n += shards_[s]->sched.run_before(horizon_);
    }
    ++epochs_;
  }
  return n;
}

std::size_t ParallelScheduler::run_threaded(std::optional<SimTime> until) {
  running_ = true;
  std::atomic<bool> abort{false};
  std::mutex error_mu;
  std::exception_ptr error;
  done_ = false;

  auto record_error = [&]() noexcept {
    const std::lock_guard<std::mutex> lock(error_mu);
    if (!error) error = std::current_exception();
    abort.store(true, std::memory_order_relaxed);
  };

  // Completion step: runs on exactly one thread while every worker is
  // parked at a barrier, so it may read all shard `next` fields and
  // publish the epoch horizon without atomics. std::barrier invokes it
  // at BOTH the phase-A and phase-B barriers; only the phase-A
  // completion (when fresh `next` values were just published) computes.
  bool phase_a = true;
  auto completion = [this, &abort, &phase_a, until]() noexcept {
    if (!phase_a) {
      phase_a = true;
      return;
    }
    phase_a = false;
    std::optional<SimTime> min_next;
    for (const auto& s : shards_) {
      if (s->next && (!min_next || *s->next < *min_next)) min_next = s->next;
    }
    if (!min_next || (until && *min_next > *until) ||
        abort.load(std::memory_order_relaxed)) {
      done_ = true;
      return;
    }
    horizon_ = *min_next + lookahead_;
    if (until && horizon_ > *until + Duration::from_ns(1)) {
      horizon_ = *until + Duration::from_ns(1);  // run_before is exclusive
    }
    ++epochs_;
  };
  std::barrier sync(threads_, completion);

  auto worker_loop = [this, &sync, &abort, &record_error](std::uint32_t w) {
    tls_engine = this;
    for (;;) {
      // Phase A: drain inbound lanes, publish earliest local event.
      for (std::uint32_t s = w; s < shard_count_; s += threads_) {
        tls_shard = s;
        try {
          drain_into(s);
        } catch (...) {
          record_error();
        }
        shards_[s]->next = shards_[s]->sched.peek_next_time();
      }
      sync.arrive_and_wait();
      if (done_) break;
      // Phase B: execute one lookahead window on each owned shard.
      for (std::uint32_t s = w; s < shard_count_; s += threads_) {
        tls_shard = s;
        try {
          shards_[s]->dispatched_run += shards_[s]->sched.run_before(horizon_);
        } catch (...) {
          record_error();
        }
      }
      sync.arrive_and_wait();
    }
    tls_engine = nullptr;
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(threads_ - 1);
    for (std::uint32_t w = 1; w < threads_; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    worker_loop(0);
  }  // jthread joins here

  running_ = false;
  if (error) std::rethrow_exception(error);
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->dispatched_run;
  return n;
}

}  // namespace cra::sim
