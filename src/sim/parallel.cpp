#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>

#include "sim/affinity.hpp"
#include "sim/process_group.hpp"
#include "sim/shm_sync.hpp"
#include "sim/spsc_ring.hpp"

namespace cra::sim {
namespace {

// Identifies the engine (and shard) the current thread is executing for,
// so post() can tell same-shard scheduling from cross-shard channel
// traffic. Thread-locals rather than members: workers of nested or
// concurrent engines must not observe each other.
thread_local const ParallelScheduler* tls_engine = nullptr;
thread_local std::uint32_t tls_shard = 0;

/// Recycled shm-delivery buffers kept per shard (same cap as the
/// network payload pools).
constexpr std::size_t kMaxSpareBuffers = 1024;

/// Per-shard shared-memory window for the end-of-run metrics image.
constexpr std::uint32_t kMetricsBlobCap = 256 * 1024;

std::uint32_t resolve_ring_slots(std::uint32_t configured,
                                 std::uint32_t block) noexcept {
  std::uint64_t slots = configured;
  if (slots == 0) {
    if (const char* env = std::getenv("CRA_SHARD_RING_SLOTS")) {
      slots = std::strtoull(env, nullptr, 10);
    }
  }
  if (slots == 0) {
    // Sized for the heaviest plausible epoch: a burst where a sizable
    // fraction of one shard's entities post to a single peer shard
    // within one lookahead window (synchronized attestation responses
    // do exactly this). ~3 slots per message, 4 per entity is generous.
    slots = std::max<std::uint64_t>(4096, 4ull * block);
  }
  slots = std::min<std::uint64_t>(slots, 1u << 16);
  return std::bit_ceil(static_cast<std::uint32_t>(slots));
}

}  // namespace

ShardTransport SimConfig::resolved_transport() const noexcept {
  if (transport != ShardTransport::kAuto) return transport;
  if (const char* env = std::getenv("CRA_SHARD_TRANSPORT")) {
    if (std::strcmp(env, "shm") == 0) return ShardTransport::kShm;
    if (std::strcmp(env, "inproc") == 0) return ShardTransport::kInproc;
  }
  return processes > 1 ? ShardTransport::kShm : ShardTransport::kInproc;
}

ParallelScheduler::ParallelScheduler(std::uint32_t entities, SimConfig config,
                                     Duration lookahead)
    : lookahead_(lookahead) {
  if (entities == 0) entities = 1;
  std::uint32_t shards = config.effective_shards();
  if (shards == 0) shards = 1;
  shard_count_ = std::min(shards, entities);
  threads_ = std::max<std::uint32_t>(1, std::min(config.threads, shard_count_));
  if (shard_count_ > 1 && lookahead_ <= Duration::zero()) {
    throw std::invalid_argument(
        "ParallelScheduler: sharding requires positive lookahead");
  }
  block_ = (entities + shard_count_ - 1) / shard_count_;
  pin_ = config.pin;
  processes_ = std::max<std::uint32_t>(1, config.processes);
  if (processes_ > shard_count_) processes_ = shard_count_;
  transport_ = shard_count_ > 1 ? config.resolved_transport()
                                : ShardTransport::kInproc;
  if (processes_ > 1 && transport_ != ShardTransport::kShm) {
    throw std::invalid_argument(
        "ParallelScheduler: multi-process placement requires the shm "
        "transport (SimConfig::transport / CRA_SHARD_TRANSPORT)");
  }
  shards_.reserve(shard_count_);
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (shard_count_ == 1) return;

  if (transport_ == ShardTransport::kShm) {
    ring_slots_ = resolve_ring_slots(config.ring_slots, block_);
    metrics_blob_cap_ = kMetricsBlobCap;
    std::size_t bytes = 0;
    bytes += sizeof(ShmBarrierCell) + 64;
    bytes += sizeof(ShmHorizonCell) + 64;
    bytes += 64 + 64;  // abort word
    bytes += static_cast<std::size_t>(shard_count_) * sizeof(ShardCell) + 64;
    bytes += static_cast<std::size_t>(shard_count_) * metrics_blob_cap_ + 64;
    bytes += static_cast<std::size_t>(shard_count_) * (shard_count_ - 1) *
             (SpscRing::region_bytes(ring_slots_) + 64);
    arena_ = std::make_unique<SharedArena>(bytes);
    barrier_ = ::new (arena_->alloc(sizeof(ShmBarrierCell))) ShmBarrierCell();
    control_ = ::new (arena_->alloc(sizeof(ShmHorizonCell))) ShmHorizonCell();
    shm_abort_ = ::new (arena_->alloc(sizeof(std::atomic<std::uint32_t>)))
        std::atomic<std::uint32_t>(0);
    cells_ = static_cast<ShardCell*>(
        arena_->alloc(static_cast<std::size_t>(shard_count_) *
                      sizeof(ShardCell)));
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      ::new (&cells_[s]) ShardCell();
    }
    metrics_blobs_ = static_cast<std::uint8_t*>(arena_->alloc(
        static_cast<std::size_t>(shard_count_) * metrics_blob_cap_));
    channel_ = make_shm_channel(shard_count_, ring_slots_, *arena_);
  } else {
    channel_ = make_inproc_channel(shard_count_);
  }
}

ParallelScheduler::~ParallelScheduler() = default;

const char* ParallelScheduler::transport_name() const noexcept {
  return transport_ == ShardTransport::kShm ? "shm" : "inproc";
}

std::pair<std::uint32_t, std::uint32_t> ParallelScheduler::owned_shards(
    std::uint32_t rank) const noexcept {
  const std::uint32_t base = shard_count_ / processes_;
  const std::uint32_t rem = shard_count_ % processes_;
  const std::uint32_t lo = rank * base + std::min(rank, rem);
  const std::uint32_t count = base + (rank < rem ? 1 : 0);
  return {lo, lo + count};
}

bool ParallelScheduler::owns_shard(std::uint32_t s) const noexcept {
  if (processes_ == 1) return true;
  const auto [lo, hi] = owned_shards(ProcessGroup::instance().rank());
  return s >= lo && s < hi;
}

SimTime ParallelScheduler::now() const noexcept {
  SimTime t = SimTime::zero();
  for (const auto& s : shards_) {
    if (s->sched.now() > t) t = s->sched.now();
  }
  return t;
}

std::uint64_t ParallelScheduler::dispatched() const noexcept {
  if (transport_ == ShardTransport::kShm && processes_ > 1) {
    std::uint64_t n = 0;
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      n += cells_[s].dispatched_total.load(std::memory_order_acquire);
    }
    return n;
  }
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->sched.dispatched();
  return n;
}

std::uint64_t ParallelScheduler::cross_shard_posts() const noexcept {
  if (transport_ == ShardTransport::kShm && processes_ > 1) {
    std::uint64_t n = 0;
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      n += cells_[s].cross_posts.load(std::memory_order_acquire);
    }
    return n;
  }
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->cross_posts;
  return n;
}

std::uint64_t ParallelScheduler::lane_reallocs() const noexcept {
  return channel_ ? channel_->lane_reallocs() : 0;
}

void ParallelScheduler::export_pdes_metrics(obs::MetricsRegistry& reg) const {
  reg.counter("pdes.events_dispatched").inc(dispatched());
  reg.counter("pdes.cross_posts").inc(cross_shard_posts());
  reg.counter("pdes.lane_reallocs").inc(lane_reallocs());
  reg.counter("pdes.epochs").inc(epochs_);
}

void ParallelScheduler::merge_metrics_into(obs::MetricsRegistry& out) const {
  if (transport_ == ShardTransport::kShm && processes_ > 1) {
    // Ascending shard order, exactly like the local path: owned shards
    // merge live registries, peer shards merge the binary images their
    // owners published at the end of the last run.
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      if (owns_shard(s)) {
        out.merge_from(shards_[s]->metrics);
        continue;
      }
      const std::uint32_t len =
          cells_[s].metrics_len.load(std::memory_order_acquire);
      if (len != 0) {
        out.merge_binary(BytesView(
            metrics_blobs_ + static_cast<std::size_t>(s) * metrics_blob_cap_,
            len));
      }
    }
    return;
  }
  for (const auto& s : shards_) out.merge_from(s->metrics);
}

void ParallelScheduler::reset_shard_metrics() noexcept {
  for (auto& s : shards_) s->metrics.reset_values();
}

void ParallelScheduler::post(std::uint32_t entity, SimTime at, Callback cb) {
  const std::uint32_t to = shard_of(entity);
  if (tls_engine == this) {
    if (running_.load(std::memory_order_relaxed) && tls_shard != to) {
      if (at < horizon_) {
        throw std::logic_error(
            "ParallelScheduler: cross-shard event inside the lookahead "
            "window — source latency is below the configured lookahead");
      }
      if (!channel_->post_callback(tls_shard, to, at, std::move(cb))) {
        throw std::logic_error(
            "ParallelScheduler: the shm transport cannot carry callbacks "
            "across shards (closures don't serialize) — route protocol "
            "traffic through post_message(), or select the inproc "
            "transport");
      }
      ++shards_[tls_shard]->cross_posts;
      return;
    }
    // Same shard during a run: schedule directly, preserving the
    // scheduler's local FIFO order.
    shard(to).schedule_at(at, std::move(cb));
    return;
  }
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "ParallelScheduler::post: called from a foreign thread while the "
        "engine is running — posting is setup-only outside the engine's "
        "own workers (see the contract in sim/parallel.hpp)");
  }
  // Engine idle (round setup): schedule directly.
  shard(to).schedule_at(at, std::move(cb));
}

Bytes ParallelScheduler::post_message(std::uint32_t entity, SimTime at,
                                      std::uint32_t src, std::uint32_t kind,
                                      Bytes&& payload) {
  const std::uint32_t to = shard_of(entity);
  ShardMessage m{at, entity, src, kind, std::move(payload)};
  if (tls_engine == this) {
    if (running_.load(std::memory_order_relaxed) && tls_shard != to) {
      if (at < horizon_) {
        throw std::logic_error(
            "ParallelScheduler: cross-shard message inside the lookahead "
            "window — source latency is below the configured lookahead");
      }
      ++shards_[tls_shard]->cross_posts;
      if (channel_->kind() == ChannelTransport::Kind::kShm) {
        return channel_->post_message(tls_shard, to, std::move(m));
      }
      // In-process: the owned message rides the lane as a closure —
      // zero-copy, and dispatch order is identical to the shm path
      // (drains visit lanes in the same source order, FIFO within).
      channel_->post_callback(
          tls_shard, to, at,
          [this, sm = std::move(m)]() mutable { sink_(std::move(sm)); });
      return {};
    }
    shard(to).schedule_at(
        at, [this, sm = std::move(m)]() mutable { sink_(std::move(sm)); });
    return {};
  }
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "ParallelScheduler::post_message: called from a foreign thread "
        "while the engine is running — posting is setup-only outside the "
        "engine's own workers (see the contract in sim/parallel.hpp)");
  }
  shard(to).schedule_at(
      at, [this, sm = std::move(m)]() mutable { sink_(std::move(sm)); });
  return {};
}

void ParallelScheduler::set_message_sinks(MessageSink deliver,
                                          MessageViewSink deliver_view) {
  sink_ = std::move(deliver);
  view_sink_ = std::move(deliver_view);
}

void ParallelScheduler::deliver_view_into(std::uint32_t s,
                                          const ShardMessageView& v) {
  // Materialize the borrowed record into an owned buffer (the ring slot
  // is released when drain() pops); the buffer cycles through the
  // shard's spare list, so steady-state deliveries are allocation-free.
  Shard& sh = *shards_[s];
  Bytes buf;
  if (!sh.spare.empty()) {
    buf = std::move(sh.spare.back());
    sh.spare.pop_back();
  }
  buf.assign(v.payload.begin(), v.payload.end());
  ShardMessage m{v.at, v.entity, v.src, v.kind, std::move(buf)};
  sh.sched.schedule_at(v.at, [this, sm = std::move(m)]() mutable {
    const std::uint32_t dst = shard_of(sm.entity);
    view_sink_(ShardMessageView{sm.at, sm.entity, sm.src, sm.kind,
                                BytesView(sm.payload)});
    Shard& dsh = *shards_[dst];
    if (dsh.spare.size() < kMaxSpareBuffers) {
      sm.payload.clear();
      dsh.spare.push_back(std::move(sm.payload));
    }
  });
}

void ParallelScheduler::drain_into(std::uint32_t s) {
  channel_->drain(
      s,
      [this, s](SimTime at, Callback&& cb) {
        shards_[s]->sched.schedule_at(at, std::move(cb));
      },
      [this, s](const ShardMessageView& v) { deliver_view_into(s, v); });
}

void ParallelScheduler::sync_clocks() {
  const SimTime target = now();
  for (auto& s : shards_) {
    if (s->sched.now() < target) s->sched.run_until(target);
  }
}

void ParallelScheduler::maybe_pin(std::uint32_t worker,
                                  std::uint32_t workers) const {
  if (!pin_) return;
  static const CpuPlan plan = detect_cpu_plan();
  const std::uint32_t rank =
      processes_ > 1 ? ProcessGroup::instance().rank() : 0;
  pin_current_thread(pick_cpu(plan, rank, processes_, worker, workers));
}

std::size_t ParallelScheduler::run() {
  if (shard_count_ == 1) return shards_[0]->sched.run();
  for (auto& s : shards_) s->dispatched_run = 0;
  if (transport_ == ShardTransport::kShm) return run_shm(std::nullopt);
  const std::size_t n = threads_ > 1 ? run_threaded(std::nullopt)
                                     : run_serial_epochs(std::nullopt);
  sync_clocks();
  return n;
}

std::size_t ParallelScheduler::run_until(SimTime until) {
  if (shard_count_ == 1) return shards_[0]->sched.run_until(until);
  for (auto& s : shards_) s->dispatched_run = 0;
  if (transport_ == ShardTransport::kShm) return run_shm(until);
  const std::size_t n = threads_ > 1 ? run_threaded(until)
                                     : run_serial_epochs(until);
  for (auto& s : shards_) s->sched.run_until(until);
  return n;
}

std::size_t ParallelScheduler::run_serial_epochs(
    std::optional<SimTime> until) {
  running_.store(true, std::memory_order_release);
  tls_engine = this;
  // Reset the running flag and the thread-local even when a handler (or
  // a lookahead-violation check) throws out of the epoch loop.
  struct Cleanup {
    ParallelScheduler* self;
    ~Cleanup() {
      self->running_.store(false, std::memory_order_release);
      tls_engine = nullptr;
    }
  } cleanup{this};
  std::size_t n = 0;
  for (;;) {
    std::optional<SimTime> min_next;
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      tls_shard = s;
      drain_into(s);
      const auto next = shards_[s]->sched.peek_next_time();
      if (next && (!min_next || *next < *min_next)) min_next = next;
    }
    if (!min_next || (until && *min_next > *until)) break;
    horizon_ = *min_next + lookahead_;
    if (until && horizon_ > *until + Duration::from_ns(1)) {
      horizon_ = *until + Duration::from_ns(1);  // run_before is exclusive
    }
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      tls_shard = s;
      n += shards_[s]->sched.run_before(horizon_);
    }
    ++epochs_;
  }
  return n;
}

std::size_t ParallelScheduler::run_threaded(std::optional<SimTime> until) {
  running_.store(true, std::memory_order_release);
  std::atomic<bool> abort{false};
  std::mutex error_mu;
  std::exception_ptr error;
  done_ = false;

  auto record_error = [&]() noexcept {
    const std::lock_guard<std::mutex> lock(error_mu);
    if (!error) error = std::current_exception();
    abort.store(true, std::memory_order_relaxed);
  };

  // Completion step: runs on exactly one thread while every worker is
  // parked at a barrier, so it may read all shard `next` fields and
  // publish the epoch horizon without atomics. std::barrier invokes it
  // at BOTH the phase-A and phase-B barriers; only the phase-A
  // completion (when fresh `next` values were just published) computes.
  bool phase_a = true;
  auto completion = [this, &abort, &phase_a, until]() noexcept {
    if (!phase_a) {
      phase_a = true;
      return;
    }
    phase_a = false;
    std::optional<SimTime> min_next;
    for (const auto& s : shards_) {
      if (s->next && (!min_next || *s->next < *min_next)) min_next = s->next;
    }
    if (!min_next || (until && *min_next > *until) ||
        abort.load(std::memory_order_relaxed)) {
      done_ = true;
      return;
    }
    horizon_ = *min_next + lookahead_;
    if (until && horizon_ > *until + Duration::from_ns(1)) {
      horizon_ = *until + Duration::from_ns(1);  // run_before is exclusive
    }
    ++epochs_;
  };
  std::barrier sync(threads_, completion);

  auto worker_loop = [this, &sync, &abort, &record_error](std::uint32_t w) {
    tls_engine = this;
    maybe_pin(w, threads_);
    for (;;) {
      // Phase A: drain the inbound channel, publish earliest local event.
      for (std::uint32_t s = w; s < shard_count_; s += threads_) {
        tls_shard = s;
        try {
          drain_into(s);
        } catch (...) {
          record_error();
        }
        shards_[s]->next = shards_[s]->sched.peek_next_time();
      }
      sync.arrive_and_wait();
      if (done_) break;
      // Phase B: execute one lookahead window on each owned shard.
      for (std::uint32_t s = w; s < shard_count_; s += threads_) {
        tls_shard = s;
        try {
          shards_[s]->dispatched_run += shards_[s]->sched.run_before(horizon_);
        } catch (...) {
          record_error();
        }
      }
      sync.arrive_and_wait();
    }
    tls_engine = nullptr;
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(threads_ - 1);
    for (std::uint32_t w = 1; w < threads_; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    worker_loop(0);
  }  // jthread joins here

  running_.store(false, std::memory_order_release);
  if (error) std::rethrow_exception(error);
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->dispatched_run;
  return n;
}

void ParallelScheduler::publish_shard_outputs(std::uint32_t s) {
  Shard& sh = *shards_[s];
  cells_[s].clock_ns.store(sh.sched.now().ns(), std::memory_order_relaxed);
  cells_[s].dispatched_run.store(sh.dispatched_run,
                                 std::memory_order_relaxed);
  cells_[s].dispatched_total.store(sh.sched.dispatched(),
                                   std::memory_order_relaxed);
  cells_[s].cross_posts.store(sh.cross_posts, std::memory_order_relaxed);
  if (processes_ > 1) {
    Bytes image;
    sh.metrics.encode_binary(image);
    if (image.size() > metrics_blob_cap_) {
      throw std::runtime_error(
          "ParallelScheduler: shard metrics image exceeds the shared "
          "window — too many distinct instruments for multi-process mode");
    }
    std::memcpy(
        metrics_blobs_ + static_cast<std::size_t>(s) * metrics_blob_cap_,
        image.data(), image.size());
    cells_[s].metrics_len.store(static_cast<std::uint32_t>(image.size()),
                                std::memory_order_release);
  }
}

std::size_t ParallelScheduler::run_shm(std::optional<SimTime> until) {
  ProcessGroup& pg = ProcessGroup::instance();
  if (processes_ > 1 && pg.size() != processes_) {
    throw std::logic_error(
        "ParallelScheduler: SimConfig::processes = " +
        std::to_string(processes_) +
        " but the ProcessGroup has not been spawned — construct the "
        "simulation first, then ProcessGroup::spawn(processes), then run");
  }
  const std::uint32_t rank = processes_ > 1 ? pg.rank() : 0;
  const auto [lo, hi] = owned_shards(rank);
  if (processes_ > 1) {
    // Every rank scheduled the same SPMD setup events into every shard;
    // drop the copies on shards this rank does not own — their owners
    // run the authoritative ones.
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      if (s < lo || s >= hi) shards_[s]->sched.clear_pending();
    }
  }
  const std::uint32_t workers =
      std::max<std::uint32_t>(1, std::min(threads_, hi - lo));
  shm_abort_->store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  done_ = false;

  std::mutex error_mu;
  std::exception_ptr error;
  bool barrier_failed = false;

  auto record_error = [&]() noexcept {
    const std::lock_guard<std::mutex> lock(error_mu);
    if (!error) error = std::current_exception();
    // Graceful abort: this rank keeps participating in barriers; the
    // next phase-A reduction sees the flag and publishes done for all.
    shm_abort_->store(1, std::memory_order_release);
  };
  auto alive = [this]() noexcept {
    return processes_ == 1 || ProcessGroup::instance().peers_alive();
  };
  const bool has_until = until.has_value();
  const std::int64_t until_ns = has_until ? until->ns() : 0;

  // The cross-process min-reduction, run by the global barrier's last
  // arriver while every worker in every rank is parked.
  auto reduce = [this, has_until, until_ns]() noexcept {
    std::int64_t min_next = std::numeric_limits<std::int64_t>::max();
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      min_next = std::min(
          min_next, cells_[s].next_ns.load(std::memory_order_acquire));
    }
    const bool is_done =
        shm_abort_->load(std::memory_order_acquire) != 0 ||
        min_next == std::numeric_limits<std::int64_t>::max() ||
        (has_until && min_next > until_ns);
    std::int64_t horizon = 0;
    if (!is_done) {
      horizon = min_next + lookahead_.ns();
      if (has_until && horizon > until_ns + 1) {
        horizon = until_ns + 1;  // run_before is exclusive
      }
    }
    control_->publish(horizon, is_done,
                      control_->epoch.load(std::memory_order_relaxed) + 1);
  };

  bool phase_a = true;
  auto completion = [&]() noexcept {
    if (!phase_a) {
      phase_a = true;
      if (!barrier_->wait(processes_, []() noexcept {}, alive)) {
        barrier_failed = true;
        done_ = true;
      }
      return;
    }
    phase_a = false;
    if (!barrier_->wait(processes_, reduce, alive)) {
      barrier_failed = true;
      done_ = true;
      return;
    }
    std::int64_t horizon;
    bool is_done;
    std::uint64_t epoch;
    control_->read(horizon, is_done, epoch);
    done_ = is_done;
    if (!is_done) {
      horizon_ = SimTime(horizon);
      ++epochs_;
    }
  };
  std::barrier sync(workers, completion);

  auto worker_loop = [&](std::uint32_t w) {
    tls_engine = this;
    maybe_pin(w, workers);
    for (;;) {
      // Phase A: drain the inbound rings, publish the earliest local
      // event time to this shard's shared cell.
      for (std::uint32_t s = lo + w; s < hi; s += workers) {
        tls_shard = s;
        try {
          drain_into(s);
        } catch (...) {
          record_error();
        }
        const auto next = shards_[s]->sched.peek_next_time();
        cells_[s].next_ns.store(
            next ? next->ns() : std::numeric_limits<std::int64_t>::max(),
            std::memory_order_release);
      }
      sync.arrive_and_wait();
      if (done_) break;
      // Phase B: execute one lookahead window on each owned shard.
      for (std::uint32_t s = lo + w; s < hi; s += workers) {
        tls_shard = s;
        try {
          shards_[s]->dispatched_run += shards_[s]->sched.run_before(horizon_);
        } catch (...) {
          record_error();
        }
      }
      sync.arrive_and_wait();
    }
    tls_engine = nullptr;
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(workers - 1);
    for (std::uint32_t w = 1; w < workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    worker_loop(0);
  }  // jthread joins here

  running_.store(false, std::memory_order_release);

  // End-of-run publication runs even when this rank captured an error:
  // peers are parked at the final barrier and must be released before
  // anyone throws (a graceful abort is globally visible by now, so every
  // rank throws right after this barrier).
  if (!barrier_failed) {
    try {
      for (std::uint32_t s = lo; s < hi; ++s) publish_shard_outputs(s);
    } catch (...) {
      record_error();
    }
    if (!barrier_->wait(
            processes_,
            [this]() noexcept {
              std::int64_t now_max = 0;
              for (std::uint32_t s = 0; s < shard_count_; ++s) {
                now_max = std::max(
                    now_max, cells_[s].clock_ns.load(std::memory_order_acquire));
              }
              control_->global_now_ns.store(now_max,
                                            std::memory_order_release);
            },
            alive)) {
      barrier_failed = true;
    }
  }
  if (error) std::rethrow_exception(error);
  if (barrier_failed) {
    throw std::runtime_error(
        "ParallelScheduler: a peer shard process died mid-run (epoch "
        "barrier abandoned)");
  }
  if (shm_abort_->load(std::memory_order_acquire) != 0) {
    throw std::runtime_error(
        "ParallelScheduler: a peer shard process aborted the run");
  }

  // Global clock sync: every rank advances every local shard — owned or
  // not — to the same reduced target, so between runs all ranks agree
  // on now().
  const SimTime target =
      has_until ? *until
                : SimTime(control_->global_now_ns.load(
                      std::memory_order_acquire));
  for (auto& s : shards_) {
    if (s->sched.now() < target) s->sched.run_until(target);
  }

  std::size_t n = 0;
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    n += cells_[s].dispatched_run.load(std::memory_order_acquire);
  }
  return n;
}

}  // namespace cra::sim
