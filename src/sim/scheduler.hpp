// Discrete-event simulation core.
//
// A single-threaded event scheduler: events are (time, callback) pairs
// executed in non-decreasing time order, FIFO among ties (a strictly
// increasing sequence number breaks them), which makes every run
// deterministic. Protocol agents (sap/, seda/) and the network layer
// (net/) are written against this interface; a million-device SAP round
// schedules a few million events, so both scheduling and dispatch are
// allocation-lean.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace cra::sim {

/// Handle for cancelling a scheduled event. Default-constructed handles
/// are inert.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const noexcept { return id_ != 0; }

 private:
  friend class Scheduler;
  explicit EventHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

class Scheduler {
 public:
  // Small-buffer-optimized: the typical event capture (a network
  // message) stays inline; see sim/callback.hpp.
  using Callback = InlineCallback;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time (time of the event being dispatched, or the
  /// last dispatched event once run() returns).
  SimTime now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `at`; throws std::invalid_argument if
  /// `at` is in the simulated past.
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` `delay` after now().
  EventHandle schedule_after(Duration delay, Callback cb);

  /// Cancel a pending event; returns false if it already ran, was already
  /// cancelled, or the handle is inert.
  bool cancel(EventHandle handle);

  /// Run events until the queue is empty. Returns the number dispatched.
  std::size_t run();

  /// Run events with time <= `until` (events after it stay queued; now()
  /// advances to `until`). Returns the number dispatched.
  std::size_t run_until(SimTime until);

  /// Run events with time strictly < `limit`. Unlike run_until(), now()
  /// is NOT dragged to the horizon — it stays at the last dispatched
  /// event — so a later event may still be scheduled anywhere in
  /// [now(), limit). This is the epoch step of the conservative parallel
  /// engine (see sim/parallel.hpp): each shard executes one lookahead
  /// window, and cross-shard messages land exactly at the horizon.
  std::size_t run_before(SimTime limit);

  /// Time of the earliest live (non-cancelled) event, or nullopt when
  /// the queue is empty. Purges cancelled head events as a side effect.
  std::optional<SimTime> peek_next_time();

  /// Dispatch exactly one event if available; returns false on empty.
  bool step();

  /// Drop every pending event (queue and the live/cancelled id sets);
  /// now() and dispatched() are untouched, and cancel() on a handle of a
  /// dropped event safely returns false. The multi-process engine uses
  /// this to discard a non-owned shard's local copy of the SPMD setup
  /// events — the shard's owning process runs the authoritative copy
  /// (see sim/parallel.cpp).
  void clear_pending() noexcept;

  /// Number of events that would still dispatch (live minus pending
  /// cancellations). Counted from the live-id set, not the raw queue, so
  /// the result can never underflow even if a cancelled event has been
  /// purged from the queue while its id lingers in cancelled_.
  std::size_t pending() const noexcept {
    std::size_t cancelled_live = 0;
    for (const std::uint64_t id : cancelled_) {
      cancelled_live += live_.count(id);
    }
    return live_.size() - cancelled_live;
  }

  /// Total events dispatched over the scheduler's lifetime.
  std::uint64_t dispatched() const noexcept { return dispatched_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool dispatch_next();
  void purge_cancelled();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;  // pending-but-cancelled ids
  std::unordered_set<std::uint64_t> live_;       // ids still in the queue
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
};

}  // namespace cra::sim
