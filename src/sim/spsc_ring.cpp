#include "sim/spsc_ring.hpp"

#include <new>
#include <stdexcept>
#include <string>

#include "sim/shm_sync.hpp"

namespace cra::sim {

SpscRing* SpscRing::create(void* mem, std::uint32_t slot_count) {
  if (slot_count < 2 || (slot_count & (slot_count - 1)) != 0) {
    throw std::invalid_argument(
        "SpscRing: slot_count must be a power of two >= 2");
  }
  return ::new (mem) SpscRing(slot_count);
}

bool SpscRing::try_push2(const void* a, std::uint32_t a_len, const void* b,
                         std::uint32_t b_len) {
  const std::uint32_t len = a_len + b_len;
  if (len > max_record_bytes()) {
    throw std::invalid_argument(
        "SpscRing: record of " + std::to_string(len) +
        " bytes exceeds max_record_bytes() = " +
        std::to_string(max_record_bytes()));
  }
  const std::uint32_t need = slots_for(len);
  std::uint32_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint32_t head = head_.load(std::memory_order_acquire);
  const std::uint32_t free_slots = slot_count_ - (tail - head);
  std::uint32_t offset = tail & mask_;
  const std::uint32_t until_wrap = slot_count_ - offset;
  const std::uint32_t pad = need > until_wrap ? until_wrap : 0;
  if (need + pad > free_slots) return false;
  if (pad != 0) {
    // The record would straddle the wrap point: mark the remainder of
    // the ring as padding and start over at offset 0. One release store
    // of tail_ (below) publishes the pad and the record together.
    const std::uint32_t marker = kPadMarker;
    std::memcpy(slot_ptr(offset), &marker, sizeof(marker));
    tail += pad;
    offset = 0;
  }
  std::uint8_t* dst = slot_ptr(offset);
  std::memcpy(dst, &len, kHeaderBytes);
  if (a_len != 0) std::memcpy(dst + kHeaderBytes, a, a_len);
  if (b_len != 0) std::memcpy(dst + kHeaderBytes + a_len, b, b_len);
  tail_.store(tail + need, std::memory_order_release);
  if (cons_sleeping_.exchange(0, std::memory_order_acq_rel) != 0) {
    futex_wake_all(&tail_);
  }
  return true;
}

bool SpscRing::push(const void* data, std::uint32_t len,
                    std::int64_t timeout_ns) {
  if (try_push(data, len)) return true;
  for (int i = 0; i < 256; ++i) {
    cpu_relax();
    if (try_push(data, len)) return true;
  }
  std::int64_t remaining = timeout_ns;
  while (remaining > 0) {
    const std::uint32_t head_seen = head_.load(std::memory_order_acquire);
    prod_sleeping_.store(1, std::memory_order_seq_cst);
    if (try_push(data, len)) {
      prod_sleeping_.store(0, std::memory_order_relaxed);
      return true;
    }
    // Sleep in bounded slices: a wake lost to the flag race above costs
    // at most one slice, not the whole timeout.
    const std::int64_t slice = remaining < 10'000'000 ? remaining : 10'000'000;
    futex_wait(&head_, head_seen, slice);
    remaining -= slice;
  }
  prod_sleeping_.store(0, std::memory_order_relaxed);
  return try_push(data, len);
}

const std::uint8_t* SpscRing::peek(std::uint32_t& len) {
  std::uint32_t head = head_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint32_t tail = tail_.load(std::memory_order_acquire);
    if (tail == head) return nullptr;
    const std::uint8_t* slot = slot_ptr(head & mask_);
    std::uint32_t l;
    std::memcpy(&l, slot, sizeof(l));
    if (l == kPadMarker) {
      // Wrap padding: release the tail of the ring and retry at 0.
      const std::uint32_t skip = slot_count_ - (head & mask_);
      head += skip;
      head_.store(head, std::memory_order_release);
      if (prod_sleeping_.exchange(0, std::memory_order_acq_rel) != 0) {
        futex_wake_all(&head_);
      }
      continue;
    }
    if (l > max_record_bytes() || slots_for(l) > tail - head) {
      throw std::runtime_error(
          "SpscRing: corrupt record length " + std::to_string(l) +
          " (torn write or trampled slot)");
    }
    len = l;
    pending_pop_slots_ = slots_for(l);
    return slot + kHeaderBytes;
  }
}

void SpscRing::pop() noexcept {
  head_.store(head_.load(std::memory_order_relaxed) + pending_pop_slots_,
              std::memory_order_release);
  pending_pop_slots_ = 0;
  if (prod_sleeping_.exchange(0, std::memory_order_acq_rel) != 0) {
    futex_wake_all(&head_);
  }
}

bool SpscRing::wait_nonempty(std::int64_t timeout_ns) {
  if (!empty()) return true;
  for (int i = 0; i < 256; ++i) {
    cpu_relax();
    if (!empty()) return true;
  }
  std::int64_t remaining = timeout_ns;
  while (remaining > 0) {
    const std::uint32_t tail_seen = tail_.load(std::memory_order_acquire);
    cons_sleeping_.store(1, std::memory_order_seq_cst);
    if (!empty()) {
      cons_sleeping_.store(0, std::memory_order_relaxed);
      return true;
    }
    const std::int64_t slice = remaining < 10'000'000 ? remaining : 10'000'000;
    futex_wait(&tail_, tail_seen, slice);
    remaining -= slice;
  }
  cons_sleeping_.store(0, std::memory_order_relaxed);
  return !empty();
}

void SpscRing::reset_cursors(std::uint32_t v) noexcept {
  head_.store(v, std::memory_order_relaxed);
  tail_.store(v, std::memory_order_release);
}

}  // namespace cra::sim
