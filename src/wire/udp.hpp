// Nonblocking UDP sockets with batched syscalls.
//
// One recvmmsg() drains up to kBatch datagrams per syscall and one
// sendmmsg() pushes a whole flight of challenges/token chunks — at 10k+
// simulated devices per agent process the syscall count, not the
// payload bytes, is what limits round rate on loopback.
//
// Error discipline (the part the simulator never had to get right):
//   * EINTR   — retry the syscall; signals (SIGUSR1 metrics snapshots)
//               must never surface as transport errors.
//   * EAGAIN  — recv: the socket is drained, return what we have;
//               send: the socket buffer is full, return the count
//               actually queued and let the caller re-try the rest.
//   * ECONNREFUSED — a peer's port closed between its hello and now;
//               recv reports it as a normal empty read (UDP keeps the
//               error latched on the socket), send drops the datagram.
//   * ENOBUFS  — send: kernel transiently out of buffer space; treated
//               like EAGAIN (short count, caller retries) but tallied
//               separately in Stats.
//   * EMSGSIZE — send: the datagram cannot fit the path MTU; it will
//               never succeed, so it is dropped (skip one) and tallied.
// Anything else throws std::system_error: real misconfiguration.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace cra::wire {

/// IPv4 endpoint. The wire layer is deliberately v4-only: every
/// deployment target here is loopback or a flat LAN.
struct Endpoint {
  sockaddr_in sa{};

  Endpoint() { sa.sin_family = AF_INET; }

  static Endpoint loopback(std::uint16_t port);
  /// Parse "a.b.c.d:port"; throws std::invalid_argument on bad input.
  static Endpoint parse(const std::string& hostport);

  std::uint16_t port() const noexcept;
  std::string to_string() const;

  friend bool operator==(const Endpoint& a, const Endpoint& b) noexcept {
    return a.sa.sin_addr.s_addr == b.sa.sin_addr.s_addr &&
           a.sa.sin_port == b.sa.sin_port;
  }
};

/// One received datagram: a length-delimited view into the batch
/// buffer pool (valid until the next recv_batch call).
struct RecvDatagram {
  Endpoint from;
  BytesView data;
};

/// One datagram to send. `data` must stay alive across the send call.
struct SendDatagram {
  Endpoint to;
  BytesView data;
};

class UdpSocket {
 public:
  static constexpr std::size_t kBatch = 64;
  static constexpr std::size_t kRecvBufSize = 2048;

  /// Distinct send-path error tallies, so chaos runs can tell kernel
  /// backpressure (ENOBUFS), oversized datagrams (EMSGSIZE), and dead
  /// peers (ECONNREFUSED) apart from shaped loss. The daemons mirror
  /// these into `wire.*` counters after each send burst.
  struct Stats {
    std::uint64_t enobufs = 0;       // kernel out of buffer space
    std::uint64_t emsgsize = 0;      // datagram exceeded the path MTU
    std::uint64_t econnrefused = 0;  // peer port closed (latched ICMP)
  };

  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Bind a nonblocking socket to 127.0.0.1:`port` (0 = ephemeral).
  /// Socket buffers are raised to `sndbuf`/`rcvbuf` bytes (SO_SNDBUF /
  /// SO_RCVBUF, clamped by net.core.*mem_max) so a 100k-device token
  /// flight does not shed datagrams inside the local stack.
  static UdpSocket bind(std::uint16_t port, int buf_bytes = 4 << 20);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  std::uint16_t local_port() const;

  /// Drain up to `max` (<= kBatch) datagrams in one recvmmsg. Returns
  /// the count received; 0 means the socket is empty (EAGAIN) — never
  /// blocks. The returned views alias internal buffers owned by this
  /// socket and are invalidated by the next recv_batch.
  std::size_t recv_batch(RecvDatagram* out, std::size_t max);

  /// Queue `n` datagrams with as few sendmmsg calls as possible.
  /// Returns how many were accepted by the kernel; a short count means
  /// the socket buffer filled (EAGAIN) — the caller owns the retry.
  std::size_t send_batch(const SendDatagram* msgs, std::size_t n);

  /// Single-datagram convenience; true if the kernel accepted it.
  bool send_one(const Endpoint& to, BytesView data);

  const Stats& stats() const noexcept { return stats_; }

 private:
  explicit UdpSocket(int fd);

  int fd_ = -1;
  // recvmmsg scatter buffers, allocated lazily on first recv_batch.
  Bytes recv_pool_;
  Stats stats_;
};

}  // namespace cra::wire
