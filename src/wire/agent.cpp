#include "wire/agent.hpp"

#include <sys/epoll.h>

#include <algorithm>
#include <array>

#include "crypto/backend.hpp"
#include "crypto/kdf.hpp"
#include "wire/journal.hpp"

namespace cra::wire {

volatile std::sig_atomic_t AgentRunner::shutdown_requested_ = 0;

namespace {

/// identify-ex entry size: id(4) || status(1) || tick(4) || token(l).
std::size_t entry_size(std::size_t token_size) noexcept {
  return 9 + token_size;
}

}  // namespace

AgentCore::AgentCore(AgentConfig config)
    : config_(std::move(config)),
      macs_(config_.count),
      contents_(config_.count),
      tokens_(config_.count) {
  const std::size_t key_len = crypto::digest_size(config_.alg);
  for (std::uint32_t i = 0; i < config_.count; ++i) {
    const std::uint32_t id = config_.first_id + i;
    Bytes key = crypto::derive_device_key(config_.master, id, key_len);
    macs_[i].init(config_.alg, key);
    crypto::secure_wipe(key);
    contents_[i] = device_content(config_.master, id, config_.content_size);
    if (i < config_.bad) {
      // A compromised device attests over what is actually in its
      // PMEM — which is not what the verifier expects.
      contents_[i][0] ^= 0xff;
    }
  }
}

void AgentCore::compute_round(std::uint32_t tick) {
  if (cache_valid_ && cached_tick_ == tick) return;
  std::uint8_t tick_le[4];
  store_u32le(tick_le, tick);
  const BytesView suffix(tick_le, 4);

  // One batch sweep over the whole range — the SIMD backends pack
  // `lanes` devices per compression here, exactly like the verifier's
  // expected-token sweep on the other end of the wire.
  const crypto::Backend& backend = crypto::active_backend();
  constexpr std::size_t kChunk = 512;
  std::array<crypto::MacJob, kChunk> jobs;
  for (std::size_t base = 0; base < macs_.size();) {
    const std::size_t n = std::min(kChunk, macs_.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      jobs[i] = crypto::MacJob{&macs_[base + i], contents_[base + i], suffix};
    }
    backend.hmac_batch(jobs.data(), n, tokens_.data() + base);
    base += n;
  }
  cached_tick_ = tick;
  cache_valid_ = true;
  tokens_computed_ += macs_.size();
}

std::vector<Bytes> AgentCore::token_payloads(
    std::uint32_t tick, const std::vector<WantRange>& want) {
  compute_round(tick);
  const std::size_t token_size = crypto::digest_size(config_.alg);
  const std::size_t per_frame = kMaxPayload / entry_size(token_size);

  // Resolve the wanted ids (clipped to our range) into one flat list.
  std::vector<std::uint32_t> ids;
  const std::uint32_t lo = config_.first_id;
  const std::uint32_t hi = config_.first_id + config_.count;  // exclusive
  if (want.empty()) {
    ids.resize(config_.count);
    for (std::uint32_t i = 0; i < config_.count; ++i) ids[i] = lo + i;
  } else {
    for (const WantRange& r : want) {
      const std::uint32_t from = std::max(r.start, lo);
      const std::uint64_t r_end =
          static_cast<std::uint64_t>(r.start) + r.count;
      const std::uint32_t to =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(r_end, hi));
      for (std::uint32_t id = from; id < to; ++id) ids.push_back(id);
    }
  }

  std::vector<Bytes> payloads;
  std::vector<sap::DeviceReport> chunk;
  chunk.reserve(per_frame);
  for (std::size_t i = 0; i < ids.size(); i += per_frame) {
    const std::size_t n = std::min(per_frame, ids.size() - i);
    chunk.clear();
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t id = ids[i + j];
      sap::DeviceReport rep;
      rep.id = id;
      rep.status = sap::DeviceReportStatus::kEntryOk;
      rep.tick = tick;
      const crypto::MacBuf& tok = tokens_[id - lo];
      rep.token.assign(tok.view().begin(), tok.view().end());
      chunk.push_back(std::move(rep));
    }
    payloads.push_back(sap::encode_identify_ex(chunk, token_size));
  }
  return payloads;
}

Bytes AgentCore::hello_payload(std::uint64_t epoch) const {
  return encode_hello(HelloPayload{config_.first_id, config_.count, epoch});
}

AgentRunner::AgentRunner(AgentRunnerConfig config)
    : config_(std::move(config)),
      core_(config_.agent),
      socket_(UdpSocket::bind(0)),
      shaper_(config_.shaper, config_.plan) {
  // Session epoch: journaled (crash-persistent, strictly increasing
  // across restarts) when a journal path is configured, otherwise the
  // monotonic clock — unique per process start either way.
  epoch_ = config_.journal_path.empty()
               ? monotonic_ns()
               : next_agent_epoch(config_.journal_path);
  loop_.add_fd(socket_.fd(), EPOLLIN, [this](std::uint32_t) { on_readable(); });
  loop_.set_wakeup_hook([this] {
    if (shutdown_requested_ != 0) {
      shutdown_requested_ = 0;
      // Goodbye is best-effort — the daemon re-classifies our devices
      // unreachable either way; the metrics export is the durable part.
      send_frame(FrameKind::kBye, 0, {});
      metrics_.counter("wire.agent.graceful_shutdowns").inc();
      loop_.stop();
    }
  });
}

void AgentRunner::send_frame(FrameKind kind, std::uint32_t tick,
                             BytesView payload) {
  FrameHeader h;
  h.kind = kind;
  h.sender = config_.agent.first_id;
  h.tick = tick;
  h.seq = seq_++;
  const Bytes frame = encode_frame(h, payload);
  if (socket_.send_one(config_.daemon, frame)) {
    metrics_.counter("wire.agent.tx_datagrams").inc();
    metrics_.counter("wire.agent.tx_bytes").inc(frame.size());
  } else {
    metrics_.counter("wire.agent.tx_backpressure").inc();
  }
}

void AgentRunner::handle_chal(const Frame& frame) {
  // The payload is the fixed-size sap chal, optionally followed by the
  // daemon's want-range trailer (decode_chal itself is exact-size).
  const std::size_t chal_size = crypto::digest_size(config_.agent.alg);
  if (frame.payload.size() < chal_size) {
    metrics_.counter("wire.agent.bad_chal").inc();
    return;
  }
  const auto chal =
      sap::decode_chal(frame.payload.subspan(0, chal_size), chal_size);
  if (!chal.has_value()) {
    metrics_.counter("wire.agent.bad_chal").inc();
    return;
  }
  auto want = decode_want_ranges(frame.payload, chal_size);
  if (!want.has_value()) {
    metrics_.counter("wire.agent.bad_chal").inc();
    return;
  }
  metrics_.counter(want->empty() ? "wire.agent.chals" : "wire.agent.repolls")
      .inc();

  const std::vector<Bytes> payloads =
      core_.token_payloads(chal->tick, *want);
  const std::uint64_t elapsed = loop_.now_ns() - start_ns_;

  // Shape each kTokens frame, then push the survivors in one
  // sendmmsg flight.
  std::vector<Bytes> frames;
  frames.reserve(payloads.size());
  std::vector<SendDatagram> out;
  out.reserve(payloads.size());
  for (const Bytes& payload : payloads) {
    FrameHeader h;
    h.kind = FrameKind::kTokens;
    h.sender = config_.agent.first_id;
    h.tick = chal->tick;
    h.seq = seq_++;
    frames.push_back(encode_frame(h, payload));
    const auto verdict = shaper_.decide(elapsed, config_.agent.first_id);
    switch (verdict.fate) {
      case fault::TrafficShaper::Fate::kDrop:
        metrics_.counter("wire.agent.shaped_drops").inc();
        frames.pop_back();
        break;
      case fault::TrafficShaper::Fate::kDelay: {
        metrics_.counter("wire.agent.shaped_delays").inc();
        delayed_.push_back(std::move(frames.back()));
        frames.pop_back();
        loop_.schedule_after(verdict.delay_ns, [this] { flush_delayed(); });
        break;
      }
      case fault::TrafficShaper::Fate::kDeliver:
        break;
    }
  }
  for (const Bytes& f : frames) out.push_back(SendDatagram{config_.daemon, f});

  std::size_t sent = 0;
  while (sent < out.size()) {
    const std::size_t n = socket_.send_batch(out.data() + sent,
                                             out.size() - sent);
    if (n == 0) {
      // Socket buffer full: on loopback this clears as soon as the
      // daemon drains, so a tight retry is the right call here.
      metrics_.counter("wire.agent.tx_backpressure").inc();
      continue;
    }
    sent += n;
  }
  metrics_.counter("wire.agent.tx_datagrams").inc(sent);
  for (const auto& d : out) {
    metrics_.counter("wire.agent.tx_bytes").inc(d.data.size());
  }
}

void AgentRunner::flush_delayed() {
  while (!delayed_.empty()) {
    Bytes frame = std::move(delayed_.front());
    delayed_.pop_front();
    if (socket_.send_one(config_.daemon, frame)) {
      metrics_.counter("wire.agent.tx_datagrams").inc();
      metrics_.counter("wire.agent.tx_bytes").inc(frame.size());
    }
  }
}

void AgentRunner::on_readable() {
  RecvDatagram batch[UdpSocket::kBatch];
  for (;;) {
    const std::size_t n = socket_.recv_batch(batch, UdpSocket::kBatch);
    if (n == 0) return;
    for (std::size_t i = 0; i < n; ++i) {
      metrics_.counter("wire.agent.rx_datagrams").inc();
      const auto frame = decode_frame(batch[i].data);
      if (!frame.has_value()) {
        metrics_.counter("wire.agent.decode_errors").inc();
        continue;
      }
      switch (frame->header.kind) {
        case FrameKind::kHelloAck:
          if (!registered_) {
            registered_ = true;
            if (hello_timer_ != 0) loop_.cancel(hello_timer_);
            hello_timer_ = 0;
          }
          break;
        case FrameKind::kChal:
          handle_chal(*frame);
          break;
        case FrameKind::kBye:
          loop_.stop();
          break;
        default:
          metrics_.counter("wire.agent.unexpected_kind").inc();
          break;
      }
    }
  }
}

void AgentRunner::send_hello_and_rearm() {
  if (registered_) return;
  send_frame(FrameKind::kHello, 0, core_.hello_payload(epoch_));
  hello_timer_ = loop_.schedule_after(config_.hello_retry_ms * 1'000'000,
                                      [this] { send_hello_and_rearm(); });
}

void AgentRunner::run() {
  start_ns_ = monotonic_ns();
  // Hello, re-sent until acked (the daemon may start after us).
  send_hello_and_rearm();
  loop_.run();
  write_metrics();
}

void AgentRunner::sync_socket_stats() {
  const UdpSocket::Stats& s = socket_.stats();
  if (s.enobufs > stats_synced_.enobufs) {
    metrics_.counter("wire.agent.tx_enobufs")
        .inc(s.enobufs - stats_synced_.enobufs);
  }
  if (s.emsgsize > stats_synced_.emsgsize) {
    metrics_.counter("wire.agent.tx_emsgsize")
        .inc(s.emsgsize - stats_synced_.emsgsize);
  }
  if (s.econnrefused > stats_synced_.econnrefused) {
    metrics_.counter("wire.agent.tx_econnrefused")
        .inc(s.econnrefused - stats_synced_.econnrefused);
  }
  stats_synced_ = s;
}

void AgentRunner::write_metrics() {
  if (config_.metrics_path.empty()) return;
  sync_socket_stats();
  (void)write_text_atomic(config_.metrics_path, metrics_.to_json() + "\n");
}

}  // namespace cra::wire
