// The SAP verifier daemon: long-lived rounds on real sockets.
//
// VerifierDaemon drives the protocol the simulator models, against
// live agents: every `period_ms` it broadcasts a challenge frame to
// each registered agent, collects identify-ex token frames, re-polls
// stragglers on the AdaptiveTimeoutConfig backoff ladder (now in wall
// time instead of simulated ticks — the same 25 ms × 2 up to 200 ms
// defaults), and closes the round through sap::Verifier:
//
//   * kIdentify mode: classify() yields the degraded-mode census
//     (healthy / untrusted / unreachable / rebooted) per round;
//   * kBinary mode: the XOR-fold of all received tokens is compared
//     against expected_result(tick) — one bit per round, the paper's
//     TCA-Model outcome.
//
// Re-polls carry want-ranges, so a straggling agent re-sends only the
// token frames the daemon is actually missing.
//
// Observability: every round updates an obs::MetricsRegistry, exported
// as a JSON snapshot (atomic rename) to `metrics_path` every
// `dump_every` rounds, at shutdown, and whenever request_snapshot() —
// wired to SIGUSR1 in cra_verifierd — is flagged.
#pragma once

#include <csignal>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sap/config.hpp"
#include "sap/verifier.hpp"
#include "wire/event_loop.hpp"
#include "wire/frame.hpp"
#include "wire/journal.hpp"
#include "wire/udp.hpp"

namespace cra::wire {

struct DaemonConfig {
  std::uint16_t port = 0;  // 0 = ephemeral (loadgen/tests)
  std::uint32_t devices = 1000;
  Bytes master;
  crypto::HashAlg alg = crypto::HashAlg::kSha1;
  sap::QoaMode mode = sap::QoaMode::kIdentify;
  std::size_t content_size = 64;
  std::uint64_t period_ms = 250;
  /// Rounds to run before stopping; 0 = run until stop()/SIGTERM.
  std::uint32_t rounds = 0;
  /// Re-poll ladder; `enabled` is forced on — a wire daemon without
  /// timeouts would hang on the first lost datagram.
  sap::AdaptiveTimeoutConfig adaptive{};
  std::string metrics_path;      // empty = no snapshots
  std::uint32_t dump_every = 0;  // 0 = only at shutdown/signal
  /// Base path for crash-safe state journaling (wire/journal.hpp):
  /// `<path>.wal` is the write-ahead log, `<path>.snap` the compacted
  /// snapshot. Empty = stateless (pre-PR-9 behavior). On construction
  /// the daemon replays snapshot + WAL, adopts the recovered
  /// registration table / round counter / in-flight round, and resumes
  /// the interrupted round instead of starting a new one.
  std::string journal_path;
  /// Compact the WAL into a fresh snapshot every N closed rounds.
  std::uint32_t snapshot_every = 8;
};

class VerifierDaemon {
 public:
  explicit VerifierDaemon(DaemonConfig config);

  /// Blocks until `rounds` rounds complete or stop() is called.
  void run();
  /// Cross-thread safe.
  void stop() noexcept { loop_.stop(); }

  std::uint16_t local_port() const { return socket_.local_port(); }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  std::uint32_t rounds_completed() const noexcept { return rounds_done_; }

  /// Async-signal-safe snapshot request; the loop writes the JSON on
  /// its next iteration. The signal itself interrupts epoll_wait, so
  /// the write happens promptly even on an idle daemon.
  static void request_snapshot() noexcept { snapshot_requested_ = 1; }

  /// Async-signal-safe graceful shutdown (SIGTERM/SIGINT in
  /// cra_verifierd): the in-flight round drains through the re-poll
  /// ladder, then a final state snapshot + metrics export are written
  /// before run() returns. An idle daemon exits on the next iteration.
  static void request_shutdown() noexcept { shutdown_requested_ = 1; }

  /// Write the metrics JSON to `metrics_path` now (tmp file + rename).
  void write_snapshot();

  /// True when construction adopted journaled state (restart recovery).
  bool recovered() const noexcept { return recovered_; }

 private:
  struct AgentEntry {
    Endpoint addr;
    std::uint32_t first_id = 0;
    std::uint32_t count = 0;
    std::uint64_t epoch = 0;  // agent session epoch from its hello
    SeqTracker seq;
  };

  void on_readable();
  void handle_hello(const Frame& frame, const Endpoint& from);
  void handle_tokens(const Frame& frame);
  void start_round();
  void resume_round();
  void send_chal(const std::vector<WantRange>& want);
  void finish_round();
  void arm_repoll();
  bool coverage_complete() const noexcept;
  std::vector<WantRange> missing_ranges() const;
  void recover_from_journal();
  void journal_append(std::uint8_t kind, BytesView payload, bool sync);
  void journal_agent(const AgentEntry& entry, bool sync);
  VerifierState current_state() const;
  /// Compact: write the state snapshot, then reset the WAL.
  void persist_state();
  /// Final snapshot + metrics export, then leave the loop.
  void finalize_and_stop();
  /// Mirror the socket's error tallies into wire.daemon.* counters.
  void sync_socket_stats();

  DaemonConfig config_;
  sap::Verifier verifier_;
  UdpSocket socket_;
  EventLoop loop_;
  obs::MetricsRegistry metrics_;

  std::map<std::uint32_t, AgentEntry> agents_;  // keyed by first_id
  std::uint32_t covered_ = 0;  // devices claimed by registered agents

  // Round state.
  bool round_open_ = false;
  std::uint32_t tick_ = 0;
  std::uint64_t round_start_ns_ = 0;
  std::uint32_t received_ = 0;
  std::vector<std::uint8_t> have_;             // index id-1
  std::vector<sap::DeviceReport> reports_;
  std::uint32_t repoll_attempt_ = 0;
  TimerWheel::TimerId repoll_timer_ = 0;
  std::uint32_t rounds_done_ = 0;

  // Crash-safety state (see wire/journal.hpp).
  Journal journal_;
  bool journaling_ = false;
  bool recovered_ = false;
  /// recovered_ until the first post-restart round closes with full
  /// coverage — that close stamps wire.recovery_ms / wire.recovery_rounds.
  bool recovery_pending_ = false;
  std::uint32_t rounds_since_recovery_ = 0;
  std::uint64_t recovery_start_ns_ = 0;

  bool draining_ = false;  // SIGTERM received; close out, don't start
  UdpSocket::Stats stats_synced_;  // socket tallies already exported

  static volatile std::sig_atomic_t snapshot_requested_;
  static volatile std::sig_atomic_t shutdown_requested_;
};

}  // namespace cra::wire
