// The SAP verifier daemon: long-lived rounds on real sockets.
//
// VerifierDaemon drives the protocol the simulator models, against
// live agents: every `period_ms` it broadcasts a challenge frame to
// each registered agent, collects identify-ex token frames, re-polls
// stragglers on the AdaptiveTimeoutConfig backoff ladder (now in wall
// time instead of simulated ticks — the same 25 ms × 2 up to 200 ms
// defaults), and closes the round through sap::Verifier:
//
//   * kIdentify mode: classify() yields the degraded-mode census
//     (healthy / untrusted / unreachable / rebooted) per round;
//   * kBinary mode: the XOR-fold of all received tokens is compared
//     against expected_result(tick) — one bit per round, the paper's
//     TCA-Model outcome.
//
// Re-polls carry want-ranges, so a straggling agent re-sends only the
// token frames the daemon is actually missing.
//
// Observability: every round updates an obs::MetricsRegistry, exported
// as a JSON snapshot (atomic rename) to `metrics_path` every
// `dump_every` rounds, at shutdown, and whenever request_snapshot() —
// wired to SIGUSR1 in cra_verifierd — is flagged.
#pragma once

#include <csignal>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sap/config.hpp"
#include "sap/verifier.hpp"
#include "wire/event_loop.hpp"
#include "wire/frame.hpp"
#include "wire/udp.hpp"

namespace cra::wire {

struct DaemonConfig {
  std::uint16_t port = 0;  // 0 = ephemeral (loadgen/tests)
  std::uint32_t devices = 1000;
  Bytes master;
  crypto::HashAlg alg = crypto::HashAlg::kSha1;
  sap::QoaMode mode = sap::QoaMode::kIdentify;
  std::size_t content_size = 64;
  std::uint64_t period_ms = 250;
  /// Rounds to run before stopping; 0 = run until stop()/SIGTERM.
  std::uint32_t rounds = 0;
  /// Re-poll ladder; `enabled` is forced on — a wire daemon without
  /// timeouts would hang on the first lost datagram.
  sap::AdaptiveTimeoutConfig adaptive{};
  std::string metrics_path;      // empty = no snapshots
  std::uint32_t dump_every = 0;  // 0 = only at shutdown/signal
};

class VerifierDaemon {
 public:
  explicit VerifierDaemon(DaemonConfig config);

  /// Blocks until `rounds` rounds complete or stop() is called.
  void run();
  /// Cross-thread safe.
  void stop() noexcept { loop_.stop(); }

  std::uint16_t local_port() const { return socket_.local_port(); }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  std::uint32_t rounds_completed() const noexcept { return rounds_done_; }

  /// Async-signal-safe snapshot request; the loop writes the JSON on
  /// its next iteration. The signal itself interrupts epoll_wait, so
  /// the write happens promptly even on an idle daemon.
  static void request_snapshot() noexcept { snapshot_requested_ = 1; }

  /// Write the metrics JSON to `metrics_path` now (tmp file + rename).
  void write_snapshot();

 private:
  struct AgentEntry {
    Endpoint addr;
    std::uint32_t first_id = 0;
    std::uint32_t count = 0;
    std::uint32_t last_seq = 0;
    bool saw_seq = false;
  };

  void on_readable();
  void handle_hello(const Frame& frame, const Endpoint& from);
  void handle_tokens(const Frame& frame);
  void start_round();
  void send_chal(const std::vector<WantRange>& want);
  void finish_round();
  void arm_repoll();
  bool coverage_complete() const noexcept;
  std::vector<WantRange> missing_ranges() const;

  DaemonConfig config_;
  sap::Verifier verifier_;
  UdpSocket socket_;
  EventLoop loop_;
  obs::MetricsRegistry metrics_;

  std::map<std::uint32_t, AgentEntry> agents_;  // keyed by first_id
  std::uint32_t covered_ = 0;  // devices claimed by registered agents

  // Round state.
  bool round_open_ = false;
  std::uint32_t tick_ = 0;
  std::uint64_t round_start_ns_ = 0;
  std::uint32_t received_ = 0;
  std::vector<std::uint8_t> have_;             // index id-1
  std::vector<sap::DeviceReport> reports_;
  std::uint32_t repoll_attempt_ = 0;
  TimerWheel::TimerId repoll_timer_ = 0;
  std::uint32_t rounds_done_ = 0;

  static volatile std::sig_atomic_t snapshot_requested_;
};

}  // namespace cra::wire
