// Hashed timer wheel for the wire event loop.
//
// SAP's adaptive re-poll ladder arms thousands of short, mostly
// cancelled timers per round (one per outstanding agent, re-armed at
// every backoff step). A heap would pay O(log n) per arm/cancel and
// churn allocations; a hashed wheel pays O(1) amortized for both: a
// timer lands in the slot its deadline hashes to, and expiry scans only
// the slots the clock actually crossed. Deadlines beyond one wheel
// revolution simply stay in their slot until the lap counter says they
// are due (the classic "hashed" scheme — no hierarchical cascade
// needed at our horizon of seconds).
//
// The wheel is clock-agnostic: callers pass absolute nanosecond
// timestamps to schedule() and advance(). The event loop feeds it
// CLOCK_MONOTONIC; the unit tests feed it a hand-rolled clock.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace cra::wire {

class TimerWheel {
 public:
  using Callback = std::function<void()>;
  /// 0 is never a live timer id.
  using TimerId = std::uint64_t;

  /// `granularity_ns` is the wheel's tick (timers fire at most one
  /// granule late); `slots` must be a power of two.
  explicit TimerWheel(std::uint64_t granularity_ns = 1'000'000,
                      std::size_t slots = 256);

  /// Arm a timer for absolute time `deadline_ns`. Deadlines in the past
  /// fire on the next advance().
  TimerId schedule(std::uint64_t deadline_ns, Callback cb);

  /// Disarm. Returns false if the id already fired or was cancelled.
  /// O(1): the entry is tombstoned in place and reclaimed when its slot
  /// is next scanned.
  bool cancel(TimerId id);

  /// Fire every timer with deadline <= now_ns (insertion order within a
  /// slot — ties within one granule carry no ordering promise). Returns
  /// the number fired. Callbacks may freely schedule() and cancel()
  /// (including re-arming themselves).
  std::size_t advance(std::uint64_t now_ns);

  /// Earliest pending deadline, or UINT64_MAX when idle — the event
  /// loop's epoll_wait timeout. O(slots) worst case but exits at the
  /// first occupied slot within one revolution.
  std::uint64_t next_deadline() const noexcept;

  std::size_t pending() const noexcept { return live_; }

 private:
  struct Entry {
    TimerId id = 0;  // 0 = tombstone
    std::uint64_t deadline_ns = 0;
    Callback cb;
  };

  std::size_t slot_for(std::uint64_t deadline_ns) const noexcept {
    return static_cast<std::size_t>(deadline_ns / granularity_) & mask_;
  }

  std::uint64_t granularity_;
  std::size_t mask_;
  std::vector<std::vector<Entry>> slots_;
  std::uint64_t last_advance_ = 0;
  TimerId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace cra::wire
