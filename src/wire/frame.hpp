// Datagram framing for the live UDP transport.
//
// The simulator's SAP payloads (sap/messages.hpp: chal, identify-ex
// token entries) move across real sockets unchanged; this header only
// adds the envelope a connectionless transport needs — a magic/version
// gate, a frame kind, the sender's base device id, the round tick, and
// a per-sender sequence number (drop/reorder accounting at the
// receiver). All integers little-endian, matching the SAP payloads.
//
//   frame = magic(4) || ver(1) || kind(1) || sender(4) || tick(4) ||
//           seq(4) || payload_len(2) || payload
//
// One frame per datagram. Frames are size-capped so every datagram
// fits a conservative 1500-byte MTU without fragmentation; the agent
// splits a swarm's token report across as many kTokens frames as
// needed (the identify-ex entry format is self-delimiting).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace cra::wire {

inline constexpr std::uint32_t kFrameMagic = 0x57415243;  // "CRAW"
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 4 + 1 + 1 + 4 + 4 + 4 + 2;

/// Conservative ethernet MTU minus IP/UDP headers; every frame
/// (header + payload) must fit.
inline constexpr std::size_t kMaxDatagram = 1472;
inline constexpr std::size_t kMaxPayload = kMaxDatagram - kFrameHeaderSize;

enum class FrameKind : std::uint8_t {
  kHello = 1,     // agent -> daemon: payload = first_id(4) || count(4)
  kHelloAck = 2,  // daemon -> agent: payload echoes the hello
  kChal = 3,      // daemon -> agent: payload = sap chal [|| want-ranges]
  kTokens = 4,    // agent -> daemon: payload = identify-ex entries
  kBye = 5,       // either side: peer is going away; empty payload
};

const char* frame_kind_name(FrameKind kind) noexcept;

struct FrameHeader {
  FrameKind kind = FrameKind::kHello;
  /// Agent frames: the sender's first device id (its stable identity).
  /// Daemon frames: 0.
  std::uint32_t sender = 0;
  /// Round tick the frame belongs to; 0 for session frames.
  std::uint32_t tick = 0;
  /// Per-sender datagram sequence number, monotonically increasing
  /// across the connection. Receivers use gaps/regressions for loss and
  /// reorder metrics only — frames are otherwise self-contained.
  std::uint32_t seq = 0;
};

struct Frame {
  FrameHeader header;
  BytesView payload;  // view into the receive buffer
};

/// Serialize header + payload into one datagram buffer. Throws
/// std::length_error if the payload exceeds kMaxPayload.
Bytes encode_frame(const FrameHeader& header, BytesView payload);

/// Allocation-free variant: writes into `out` (>= kFrameHeaderSize +
/// payload.size() bytes) and returns the frame's total size.
std::size_t encode_frame_into(const FrameHeader& header, BytesView payload,
                              std::uint8_t* out);

/// Parse one datagram. Returns nullopt for anything malformed: short
/// buffer, wrong magic/version, unknown kind, payload_len disagreeing
/// with the datagram size. The returned payload view aliases `datagram`.
std::optional<Frame> decode_frame(BytesView datagram) noexcept;

/// kHello / kHelloAck payload: the contiguous device-id range an agent
/// serves, plus the agent's session epoch. The epoch changes on every
/// agent restart (persisted via next_agent_epoch(), or derived from the
/// monotonic clock), so a daemon that sees a new epoch from a known
/// range resets its per-agent sequence accounting instead of reading
/// the restarted agent's seq=0 as a massive reorder.
struct HelloPayload {
  std::uint32_t first_id = 0;
  std::uint32_t count = 0;
  std::uint64_t epoch = 0;
};

/// 16 bytes: first_id(4) || count(4) || epoch(8).
Bytes encode_hello(const HelloPayload& hello);
/// Accepts the 16-byte form and the legacy 8-byte (epoch-less) form —
/// a pre-epoch agent decodes as epoch 0.
std::optional<HelloPayload> decode_hello(BytesView payload) noexcept;

/// Optional kChal trailer: after the fixed-size sap chal bytes, a
/// repoll challenge may carry (start, count) id ranges so agents
/// re-send only the tokens the daemon is still missing. No trailer
/// (payload == chal_size) means "all devices".
struct WantRange {
  std::uint32_t start = 0;
  std::uint32_t count = 0;
};

/// Append `ranges` after the chal bytes already in `payload`.
void append_want_ranges(Bytes& payload, const std::vector<WantRange>& ranges);

/// Parse the trailer of a kChal payload of known chal size. Empty vector
/// = no trailer (poll everything); nullopt = malformed trailer.
std::optional<std::vector<WantRange>> decode_want_ranges(
    BytesView payload, std::size_t chal_size) noexcept;

/// Per-sender datagram sequence accounting that survives 32-bit
/// wraparound. Serial-number arithmetic (RFC 1982): the signed
/// difference `seq - last` classifies a frame as forward progress,
/// duplicate, or reorder, so the 0xffffffff -> 0 step on a long-lived
/// agent reads as one forward step instead of a 4-billion-frame
/// regression. reset() on an epoch change — a restarted agent starts
/// over at seq 0 legitimately.
class SeqTracker {
 public:
  enum class Verdict : std::uint8_t {
    kFirst,      // nothing observed yet
    kAdvance,    // forward progress (possibly past a gap)
    kDuplicate,  // same seq again
    kReorder,    // arrived behind the newest seen
  };

  Verdict observe(std::uint32_t seq) noexcept {
    if (!seen_) {
      seen_ = true;
      last_ = seq;
      return Verdict::kFirst;
    }
    const std::int32_t delta = static_cast<std::int32_t>(seq - last_);
    if (delta > 0) {
      last_ = seq;
      return Verdict::kAdvance;
    }
    return delta == 0 ? Verdict::kDuplicate : Verdict::kReorder;
  }

  void reset() noexcept {
    seen_ = false;
    last_ = 0;
  }
  bool seen() const noexcept { return seen_; }
  std::uint32_t last() const noexcept { return last_; }

 private:
  std::uint32_t last_ = 0;
  bool seen_ = false;
};

/// The deployment's expected PMEM digest for device `id`, derived from
/// the shared master secret. Daemon and agents derive the same bytes
/// independently, so a live deployment needs no content-provisioning
/// protocol: the daemon seeds its Verifier's valid-state set with
/// exactly these, and a healthy agent attests over them.
Bytes device_content(BytesView master, std::uint32_t id, std::size_t size);

}  // namespace cra::wire
