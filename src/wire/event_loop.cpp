#include "wire/event_loop.hpp"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <system_error>
#include <vector>

namespace cra::wire {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

std::uint64_t monotonic_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");
  add_fd(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t drain = 0;
    while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
    }
  });
  now_ns_ = monotonic_ns();
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, IoCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(ADD)");
  }
  io_[fd] = std::make_shared<IoCallback>(std::move(cb));
}

void EventLoop::remove_fd(int fd) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  io_.erase(fd);
}

TimerWheel::TimerId EventLoop::schedule_after(std::uint64_t delay_ns,
                                              TimerWheel::Callback cb) {
  return wheel_.schedule(now_ns_ + delay_ns, std::move(cb));
}

void EventLoop::run() {
  running_ = true;
  stop_requested_ = false;
  std::vector<epoll_event> events(64);
  while (!stop_requested_) {
    now_ns_ = monotonic_ns();
    const std::uint64_t deadline = wheel_.next_deadline();
    int timeout_ms = -1;  // idle: sleep until IO or a stop() poke
    if (deadline != std::numeric_limits<std::uint64_t>::max()) {
      const std::uint64_t gap = deadline > now_ns_ ? deadline - now_ns_ : 0;
      // Round up so we never spin on a deadline under 1 ms away; cap to
      // keep the loop responsive to wheel entries armed from other
      // callbacks' perspective.
      timeout_ms = static_cast<int>(
          std::min<std::uint64_t>((gap + 999'999) / 1'000'000, 1000));
    }

    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) throw_errno("epoll_wait");

    now_ns_ = monotonic_ns();
    if (wakeup_hook_) wakeup_hook_();

    for (int i = 0; i < std::max(n, 0); ++i) {
      const auto it = io_.find(events[static_cast<std::size_t>(i)].data.fd);
      if (it != io_.end()) {
        // Pin the handler for the duration of the call: a callback that
        // remove_fd()s its own fd erases the map entry, and destroying a
        // std::function mid-execution frees the closure under our feet.
        const std::shared_ptr<IoCallback> cb = it->second;
        (*cb)(events[static_cast<std::size_t>(i)].events);
      }
    }
    wheel_.advance(now_ns_);

    if (n == static_cast<int>(events.size()) && events.size() < 4096) {
      events.resize(events.size() * 2);
    }
  }
  running_ = false;
}

void EventLoop::stop() noexcept {
  stop_requested_ = true;
  const std::uint64_t one = 1;
  // Poke a possibly sleeping epoll_wait; best effort by design.
  [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace cra::wire
