// Device agent: many simulated SAP devices multiplexed on one socket.
//
// A real swarm has one TrustLite-class MCU per token; load-testing the
// verifier daemon does not. cra_agentd folds 10k–100k devices into a
// single process: one contiguous id range, one UDP socket, and one
// crypto::Backend hmac_batch sweep per challenge — the same SIMD lane
// packing the simulator's verifier uses, now producing the device side
// of the protocol. Token payloads use the extended identify wire format
// (sap/messages.hpp encode_identify_ex) packed to MTU-sized kTokens
// frames.
//
// AgentCore is pure protocol state (testable without sockets);
// AgentRunner owns the socket, the event loop, and the optional
// TrafficShaper that degrades its own uplink.
#pragma once

#include <csignal>
#include <cstdint>
#include <deque>
#include <string>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/mac_cache.hpp"
#include "fault/shaper.hpp"
#include "obs/metrics.hpp"
#include "sap/messages.hpp"
#include "wire/event_loop.hpp"
#include "wire/frame.hpp"
#include "wire/udp.hpp"

namespace cra::wire {

struct AgentConfig {
  std::uint32_t first_id = 1;
  std::uint32_t count = 1000;
  Bytes master;  // shared deployment secret
  crypto::HashAlg alg = crypto::HashAlg::kSha1;
  /// Expected-content bytes per device (the attested digest).
  std::size_t content_size = 64;
  /// The first `bad` devices of the range attest over tampered content
  /// — the daemon must classify them untrusted every round.
  std::uint32_t bad = 0;
};

class AgentCore {
 public:
  explicit AgentCore(AgentConfig config);

  const AgentConfig& config() const noexcept { return config_; }

  /// Compute tokens for challenge tick `tick` and pack them into
  /// MTU-sized kTokens payloads (identify-ex entries). `want` limits
  /// the answer to the daemon's missing-id ranges; empty = all devices.
  /// Tokens for one tick are computed once and cached until the next
  /// tick arrives, so re-polls cost packing, not hashing.
  std::vector<Bytes> token_payloads(std::uint32_t tick,
                                    const std::vector<WantRange>& want);

  /// Hello payload carrying `epoch`, the session epoch the daemon uses
  /// to tell a restarted agent from a reordered datagram.
  Bytes hello_payload(std::uint64_t epoch) const;

  /// Tokens computed since construction (each device counts once per
  /// distinct tick).
  std::uint64_t tokens_computed() const noexcept { return tokens_computed_; }

 private:
  void compute_round(std::uint32_t tick);

  AgentConfig config_;
  std::vector<crypto::PrecomputedMac> macs_;  // index id - first_id
  std::vector<Bytes> contents_;               // index id - first_id
  // Cache of the latest round's tokens, index id - first_id.
  std::uint32_t cached_tick_ = 0;
  bool cache_valid_ = false;
  std::vector<crypto::MacBuf> tokens_;
  std::uint64_t tokens_computed_ = 0;
};

struct AgentRunnerConfig {
  AgentConfig agent;
  Endpoint daemon;
  /// Outbound shaping (loss/reorder/plan windows); applied to kTokens
  /// frames only — session traffic stays clean so registration works.
  fault::ShaperConfig shaper{};
  const fault::FaultPlan* plan = nullptr;  // optional, not owned
  /// Re-send the hello every this many ms until the ack arrives.
  std::uint64_t hello_retry_ms = 250;
  /// Epoch journal path (wire/journal.hpp next_agent_epoch): each
  /// process start appends a fresh epoch so the daemon resets seq-gap
  /// accounting on restart instead of misreading the new session's low
  /// sequence numbers as reorders. Empty = epoch from the monotonic
  /// clock (still unique per start, just not crash-persistent).
  std::string journal_path;
  /// Metrics JSON export path, written (tmp + rename) when run()
  /// returns — including graceful SIGTERM/SIGINT shutdown. Empty = off.
  std::string metrics_path;
};

/// Socket-facing agent driver. run() blocks until stop() (cross-thread
/// safe) or a kBye from the daemon.
class AgentRunner {
 public:
  explicit AgentRunner(AgentRunnerConfig config);

  void run();
  void stop() noexcept { loop_.stop(); }

  bool registered() const noexcept { return registered_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  std::uint16_t local_port() const { return socket_.local_port(); }
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Async-signal-safe graceful shutdown (SIGTERM/SIGINT in
  /// cra_agentd): tell the daemon goodbye, export metrics, leave run().
  static void request_shutdown() noexcept { shutdown_requested_ = 1; }

 private:
  void on_readable();
  void send_hello_and_rearm();
  void handle_chal(const Frame& frame);
  void send_frame(FrameKind kind, std::uint32_t tick, BytesView payload);
  void flush_delayed();
  void write_metrics();
  /// Mirror the socket's error tallies into wire.agent.* counters.
  void sync_socket_stats();

  AgentRunnerConfig config_;
  AgentCore core_;
  UdpSocket socket_;
  EventLoop loop_;
  fault::TrafficShaper shaper_;
  obs::MetricsRegistry metrics_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t seq_ = 0;
  std::uint64_t epoch_ = 0;  // session epoch carried in the hello
  bool registered_ = false;
  TimerWheel::TimerId hello_timer_ = 0;
  // Shaper-delayed datagrams waiting on their release timer.
  std::deque<Bytes> delayed_;
  UdpSocket::Stats stats_synced_;  // socket tallies already exported

  static volatile std::sig_atomic_t shutdown_requested_;
};

}  // namespace cra::wire
