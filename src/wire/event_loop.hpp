// Single-threaded epoll event loop.
//
// The daemon and the agent are both one loop around three sources:
// readable sockets, the timer wheel (round periods and the adaptive
// re-poll ladder), and out-of-band pokes (a signal's EINTR, or a
// cross-thread stop() through an eventfd). The loop computes its
// epoll_wait timeout from the wheel's next deadline, so an idle daemon
// sleeps in the kernel instead of spinning.
//
// Threading: everything except stop() must be called from the loop
// thread. stop() is safe from any thread and from signal handlers'
// perspective unnecessary — signals interrupt epoll_wait on their own
// and the wakeup hook runs on every iteration.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "wire/timer_wheel.hpp"

namespace cra::wire {

/// CLOCK_MONOTONIC in nanoseconds.
std::uint64_t monotonic_ns() noexcept;

class EventLoop {
 public:
  using IoCallback = std::function<void(std::uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watch `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback runs
  /// on the loop thread with the ready event mask.
  void add_fd(int fd, std::uint32_t events, IoCallback cb);
  void remove_fd(int fd);

  /// Arm a one-shot timer `delay_ns` from now.
  TimerWheel::TimerId schedule_after(std::uint64_t delay_ns,
                                     TimerWheel::Callback cb);
  bool cancel(TimerWheel::TimerId id) { return wheel_.cancel(id); }

  /// Hook invoked once per loop iteration, after epoll_wait returns
  /// (including EINTR returns) and before IO/timer dispatch — the place
  /// to check sig_atomic_t flags set by signal handlers.
  void set_wakeup_hook(std::function<void()> hook) {
    wakeup_hook_ = std::move(hook);
  }

  /// Run until stop(). Dispatch order per iteration: wakeup hook, IO
  /// callbacks, due timers.
  void run();

  /// End run() after the current iteration. Callable from any thread
  /// (writes an eventfd to interrupt a sleeping epoll_wait).
  void stop() noexcept;

  bool running() const noexcept { return running_; }

  /// Monotonic now, cached once per loop iteration so a burst of
  /// callbacks sees one consistent timestamp.
  std::uint64_t now_ns() const noexcept { return now_ns_; }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd for cross-thread stop()
  // shared_ptr so a handler that remove_fd()s itself mid-dispatch is
  // kept alive until its invocation returns.
  std::unordered_map<int, std::shared_ptr<IoCallback>> io_;
  TimerWheel wheel_;
  std::function<void()> wakeup_hook_;
  std::uint64_t now_ns_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace cra::wire
