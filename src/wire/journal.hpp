// Crash-safe state journaling for the wire daemons.
//
// A kill -9 of cra_verifierd used to forget every registered agent and
// the in-flight round; this header is the recovery substrate that makes
// the wire stack restartable at any instruction:
//
//   * Journal — a CRC32-framed append-only write-ahead log. Every
//     record is `len(4) || crc(4) || kind(1) || payload`; replay walks
//     the file front to back and TRUNCATES at the first short or
//     corrupt record (a torn tail from a crash mid-write is expected,
//     not an error). fsync policy is the caller's: sync() after
//     registration/round-boundary records, skip it for per-frame report
//     records — an unsynced tail only costs a few re-polled tokens.
//
//   * Snapshot files — the compacted form. write_snapshot_file() is
//     atomic (tmp + rename, fsync'd file and directory) so a crash
//     mid-snapshot leaves the previous snapshot intact;
//     read_snapshot_file() returns nullopt for missing, truncated, or
//     bit-flipped snapshots and recovery falls back to the WAL alone.
//
//   * VerifierState — the VerifierDaemon's durable state (registration
//     table with per-agent session epochs and addresses, round counter,
//     per-round coverage bitmap + collected reports, re-poll attempt).
//     apply() is idempotent keyed on the monotonic round tick, so
//     replaying snapshot + WAL — or replaying the WAL twice, which a
//     crash between snapshot and WAL reset produces — converges to the
//     same state. digest() is a SHA-256 over the canonical encoding;
//     two processes that replayed the same files agree byte-for-byte.
//
// The agent side persists one thing: its hello epoch
// (next_agent_epoch()), bumped on every restart so the daemon can tell
// a rebooted agent from a reordered datagram.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "sap/messages.hpp"

namespace cra::wire {

/// IEEE 802.3 CRC-32 (reflected, poly 0xEDB88320), the framing checksum.
std::uint32_t crc32_ieee(BytesView data, std::uint32_t seed = 0) noexcept;

/// Append-only write-ahead log with torn-tail-tolerant replay.
class Journal {
 public:
  /// Replay callback: one call per valid record, in file order.
  using ReplayFn = std::function<void(std::uint8_t kind, BytesView payload)>;

  struct OpenStats {
    std::size_t records = 0;          // valid records replayed
    std::size_t truncated_bytes = 0;  // torn/corrupt tail removed
  };

  /// Sanity cap: no daemon record approaches this; a larger length
  /// field means the file is corrupt, not that the record is big.
  static constexpr std::size_t kMaxRecord = 4u << 20;

  Journal() = default;
  ~Journal();
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (creating if absent), replay every intact record through
  /// `replay`, truncate any torn tail, and position for append. Replay
  /// never throws for damaged data — damage ends the replay; only real
  /// IO errors (unreachable path, EACCES) throw std::system_error.
  static Journal open(const std::string& path, const ReplayFn& replay,
                      OpenStats* stats = nullptr);

  bool valid() const noexcept { return fd_ >= 0; }

  /// Append one record. Durable only after the next sync().
  void append(std::uint8_t kind, BytesView payload);

  /// fdatasync the log — the commit point for everything appended.
  void sync();

  /// Drop every record (after the state was compacted into a snapshot
  /// file). The file itself stays, empty and synced.
  void reset();

  /// Current file size in bytes (appended, not necessarily synced).
  std::uint64_t size_bytes() const noexcept { return offset_; }

 private:
  explicit Journal(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t offset_ = 0;
};

/// Atomic snapshot file: `magic "CRAS" || ver(1) || len(4) || crc(4) ||
/// payload`, written to `path.tmp` then rename()d over `path`, with the
/// file and its directory fsync'd. Returns false on IO failure.
bool write_snapshot_file(const std::string& path, BytesView payload);

/// Read back a snapshot; nullopt when the file is missing, truncated,
/// or fails its CRC — the caller recovers from the WAL alone.
std::optional<Bytes> read_snapshot_file(const std::string& path);

/// Atomic text-file write (tmp + rename), shared by the metrics
/// snapshot paths of both daemons. Returns false on IO failure.
bool write_text_atomic(const std::string& path, std::string_view text);

/// The VerifierDaemon's durable state and its WAL record vocabulary.
struct VerifierState {
  struct Agent {
    std::uint32_t first_id = 0;
    std::uint32_t count = 0;
    std::uint64_t epoch = 0;  // agent session epoch from its hello
    std::uint32_t ip = 0;     // sockaddr_in fields, stored raw
    std::uint16_t port = 0;   // (network byte order preserved)
  };

  // WAL record kinds.
  static constexpr std::uint8_t kAgentRecord = 1;  // registration/update
  static constexpr std::uint8_t kRoundStart = 2;
  static constexpr std::uint8_t kReports = 3;  // accepted report entries
  static constexpr std::uint8_t kRepoll = 4;
  static constexpr std::uint8_t kRoundClose = 5;

  std::uint32_t devices = 0;  // swarm size; recovery guard
  std::uint32_t rounds_done = 0;
  std::uint32_t tick = 0;
  bool round_open = false;
  std::uint32_t repoll_attempt = 0;
  std::map<std::uint32_t, Agent> agents;  // keyed by first_id
  // Valid while round_open: per-device coverage and collected reports.
  std::vector<std::uint8_t> have;  // index id-1
  std::vector<sap::DeviceReport> reports;

  // --- Record payload builders (what the daemon appends) ---
  static Bytes encode_agent(const Agent& a);
  static Bytes encode_round_start(std::uint32_t tick);
  static Bytes encode_reports(std::uint32_t tick,
                              const sap::DeviceReport* reports,
                              std::size_t count, std::size_t token_size);
  static Bytes encode_repoll(std::uint32_t tick, std::uint32_t attempt);
  static Bytes encode_round_close(std::uint32_t tick,
                                  std::uint32_t rounds_done);

  /// Apply one WAL record. Idempotent: re-applying a record the state
  /// already reflects (stale tick, duplicate report id, lower attempt
  /// or round counter) is a no-op, so snapshot + WAL replay — and
  /// replay-twice after a crash between snapshot and WAL reset —
  /// converge. Malformed payloads are ignored (counted nowhere: the
  /// CRC layer already vouched for them, so this only guards against
  /// version drift).
  void apply(std::uint8_t kind, BytesView payload, std::size_t token_size);

  /// Canonical encoding (agents by first_id, reports by device id) —
  /// the snapshot payload and the digest preimage.
  Bytes encode(std::size_t token_size) const;
  static std::optional<VerifierState> decode(BytesView payload,
                                             std::size_t token_size);

  /// SHA-256 of encode(); equal iff the states are equal.
  crypto::Sha256::Digest digest(std::size_t token_size) const;
  /// Low 8 bytes of digest(), LE — fits an obs gauge for cross-process
  /// recovered-state comparison.
  std::uint64_t digest64(std::size_t token_size) const;
};

/// Agent-side epoch persistence: replay `path`, take the largest
/// recorded epoch + 1, append + fsync the new value, and return it.
/// First run (or fresh file) yields 1.
std::uint64_t next_agent_epoch(const std::string& path);

}  // namespace cra::wire
