#include "wire/journal.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <system_error>

namespace cra::wire {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Read exactly `n` bytes at `off` (EINTR-retrying); returns bytes read
/// (short at EOF).
std::size_t pread_full(int fd, std::uint8_t* buf, std::size_t n,
                       std::uint64_t off) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::pread(fd, buf + got, n - got,
                              static_cast<off_t>(off + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("journal pread");
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void write_full(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, buf + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("journal write");
    }
    done += static_cast<std::size_t>(w);
  }
}

/// fsync the directory containing `path` so a fresh file / rename is
/// durable, not just the bytes. Best effort: some filesystems reject
/// directory fsync and the rename is still ordered on the ones we run.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

constexpr std::size_t kRecordHeader = 8;  // len(4) || crc(4)

constexpr char kSnapMagic[4] = {'C', 'R', 'A', 'S'};
constexpr std::uint8_t kSnapVersion = 1;
constexpr std::size_t kSnapHeader = 4 + 1 + 4 + 4;

}  // namespace

std::uint32_t crc32_ieee(BytesView data, std::uint32_t seed) noexcept {
  const auto& t = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = t[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Journal::Journal(Journal&& other) noexcept
    : fd_(other.fd_), offset_(other.offset_) {
  other.fd_ = -1;
  other.offset_ = 0;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    offset_ = other.offset_;
    other.fd_ = -1;
    other.offset_ = 0;
  }
  return *this;
}

Journal Journal::open(const std::string& path, const ReplayFn& replay,
                      OpenStats* stats) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("journal open");
  Journal j(fd);

  struct stat st{};
  if (::fstat(fd, &st) != 0) throw_errno("journal fstat");
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  OpenStats local;
  Bytes record;
  std::uint64_t pos = 0;
  while (pos < file_size) {
    std::uint8_t header[kRecordHeader];
    if (pread_full(fd, header, kRecordHeader, pos) < kRecordHeader) break;
    const std::uint32_t len = read_u32le(BytesView(header, 4), 0);
    const std::uint32_t crc = read_u32le(BytesView(header, 8), 4);
    // len covers kind + payload; 0 or absurd means a torn/garbage tail.
    if (len == 0 || len > kMaxRecord) break;
    if (pos + kRecordHeader + len > file_size) break;
    record.resize(len);
    if (pread_full(fd, record.data(), len, pos + kRecordHeader) < len) break;
    if (crc32_ieee(record) != crc) break;
    if (replay) {
      replay(record[0], BytesView(record.data() + 1, len - 1));
    }
    ++local.records;
    pos += kRecordHeader + len;
  }

  if (pos < file_size) {
    local.truncated_bytes = static_cast<std::size_t>(file_size - pos);
    if (::ftruncate(fd, static_cast<off_t>(pos)) != 0) {
      throw_errno("journal ftruncate");
    }
  }
  if (::lseek(fd, static_cast<off_t>(pos), SEEK_SET) < 0) {
    throw_errno("journal lseek");
  }
  j.offset_ = pos;
  if (stats != nullptr) *stats = local;
  return j;
}

void Journal::append(std::uint8_t kind, BytesView payload) {
  if (fd_ < 0) return;
  Bytes rec;
  rec.reserve(kRecordHeader + 1 + payload.size());
  append_u32le(rec, static_cast<std::uint32_t>(1 + payload.size()));
  append_u32le(rec, 0);  // crc placeholder
  rec.push_back(kind);
  rec.insert(rec.end(), payload.begin(), payload.end());
  const std::uint32_t crc =
      crc32_ieee(BytesView(rec.data() + kRecordHeader,
                           rec.size() - kRecordHeader));
  store_u32le(rec.data() + 4, crc);
  write_full(fd_, rec.data(), rec.size());
  offset_ += rec.size();
}

void Journal::sync() {
  if (fd_ >= 0) (void)::fdatasync(fd_);
}

void Journal::reset() {
  if (fd_ < 0) return;
  if (::ftruncate(fd_, 0) != 0) throw_errno("journal reset ftruncate");
  if (::lseek(fd_, 0, SEEK_SET) < 0) throw_errno("journal reset lseek");
  offset_ = 0;
  (void)::fdatasync(fd_);
}

bool write_snapshot_file(const std::string& path, BytesView payload) {
  Bytes out;
  out.reserve(kSnapHeader + payload.size());
  out.insert(out.end(), kSnapMagic, kSnapMagic + 4);
  out.push_back(kSnapVersion);
  append_u32le(out, static_cast<std::uint32_t>(payload.size()));
  append_u32le(out, crc32_ieee(payload));
  out.insert(out.end(), payload.begin(), payload.end());

  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  try {
    write_full(fd, out.data(), out.size());
  } catch (const std::system_error&) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

std::optional<Bytes> read_snapshot_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < kSnapHeader) {
    ::close(fd);
    return std::nullopt;
  }
  Bytes file(static_cast<std::size_t>(st.st_size));
  const std::size_t got = pread_full(fd, file.data(), file.size(), 0);
  ::close(fd);
  if (got < file.size()) return std::nullopt;
  if (std::memcmp(file.data(), kSnapMagic, 4) != 0) return std::nullopt;
  if (file[4] != kSnapVersion) return std::nullopt;
  const std::uint32_t len = read_u32le(file, 5);
  const std::uint32_t crc = read_u32le(file, 9);
  if (file.size() != kSnapHeader + len) return std::nullopt;
  Bytes payload(file.begin() + kSnapHeader, file.end());
  if (crc32_ieee(payload) != crc) return std::nullopt;
  return payload;
}

bool write_text_atomic(const std::string& path, std::string_view text) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  try {
    write_full(fd, reinterpret_cast<const std::uint8_t*>(text.data()),
               text.size());
    const std::uint8_t nl = '\n';
    write_full(fd, &nl, 1);
  } catch (const std::system_error&) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

// --- VerifierState ---

namespace {

constexpr std::size_t kAgentRecordSize = 4 + 4 + 8 + 4 + 2;

/// identify-ex-shaped report entry inside kReports / snapshots:
/// id(4) || status(1) || tick(4) || token(l).
std::size_t report_entry_size(std::size_t token_size) noexcept {
  return 9 + token_size;
}

void append_report(Bytes& out, const sap::DeviceReport& rep,
                   std::size_t token_size) {
  append_u32le(out, rep.id);
  out.push_back(static_cast<std::uint8_t>(rep.status));
  append_u32le(out, rep.tick);
  // Tokens are fixed-size per deployment; pad/trim defensively so a
  // malformed in-memory report cannot skew the framing.
  const std::size_t n = std::min(token_size, rep.token.size());
  out.insert(out.end(), rep.token.begin(),
             rep.token.begin() + static_cast<std::ptrdiff_t>(n));
  out.insert(out.end(), token_size - n, 0);
}

sap::DeviceReport parse_report(BytesView data, std::size_t off,
                               std::size_t token_size) {
  sap::DeviceReport rep;
  rep.id = read_u32le(data, off);
  rep.status = static_cast<sap::DeviceReportStatus>(data[off + 4]);
  rep.tick = read_u32le(data, off + 5);
  rep.token.assign(data.begin() + static_cast<std::ptrdiff_t>(off + 9),
                   data.begin() +
                       static_cast<std::ptrdiff_t>(off + 9 + token_size));
  return rep;
}

}  // namespace

Bytes VerifierState::encode_agent(const Agent& a) {
  Bytes out;
  out.reserve(kAgentRecordSize);
  append_u32le(out, a.first_id);
  append_u32le(out, a.count);
  append_u64le(out, a.epoch);
  append_u32le(out, a.ip);
  out.push_back(static_cast<std::uint8_t>(a.port));
  out.push_back(static_cast<std::uint8_t>(a.port >> 8));
  return out;
}

Bytes VerifierState::encode_round_start(std::uint32_t tick) {
  Bytes out;
  append_u32le(out, tick);
  return out;
}

Bytes VerifierState::encode_reports(std::uint32_t tick,
                                    const sap::DeviceReport* reports,
                                    std::size_t count,
                                    std::size_t token_size) {
  Bytes out;
  out.reserve(8 + count * report_entry_size(token_size));
  append_u32le(out, tick);
  append_u32le(out, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    append_report(out, reports[i], token_size);
  }
  return out;
}

Bytes VerifierState::encode_repoll(std::uint32_t tick,
                                   std::uint32_t attempt) {
  Bytes out;
  append_u32le(out, tick);
  append_u32le(out, attempt);
  return out;
}

Bytes VerifierState::encode_round_close(std::uint32_t tick,
                                        std::uint32_t rounds_done) {
  Bytes out;
  append_u32le(out, tick);
  append_u32le(out, rounds_done);
  return out;
}

void VerifierState::apply(std::uint8_t kind, BytesView payload,
                          std::size_t token_size) {
  switch (kind) {
    case kAgentRecord: {
      if (payload.size() != kAgentRecordSize) return;
      Agent a;
      a.first_id = read_u32le(payload, 0);
      a.count = read_u32le(payload, 4);
      a.epoch = read_u64le(payload, 8);
      a.ip = read_u32le(payload, 16);
      a.port = static_cast<std::uint16_t>(payload[20] |
                                          (payload[21] << 8));
      if (a.first_id == 0 || a.count == 0) return;
      agents[a.first_id] = a;  // latest record wins (epoch/addr updates)
      return;
    }
    case kRoundStart: {
      if (payload.size() != 4) return;
      const std::uint32_t t = read_u32le(payload, 0);
      if (t <= tick) return;  // stale or duplicate on replay
      tick = t;
      round_open = true;
      repoll_attempt = 0;
      have.assign(devices, 0);
      reports.clear();
      return;
    }
    case kReports: {
      if (payload.size() < 8) return;
      const std::uint32_t t = read_u32le(payload, 0);
      const std::uint32_t n = read_u32le(payload, 4);
      if (!round_open || t != tick) return;
      const std::size_t entry = report_entry_size(token_size);
      if (payload.size() != 8 + static_cast<std::size_t>(n) * entry) return;
      for (std::uint32_t i = 0; i < n; ++i) {
        sap::DeviceReport rep = parse_report(payload, 8 + i * entry,
                                             token_size);
        if (rep.id == 0 || rep.id > devices) continue;
        if (have[rep.id - 1] != 0) continue;  // replay duplicate
        have[rep.id - 1] = 1;
        reports.push_back(std::move(rep));
      }
      return;
    }
    case kRepoll: {
      if (payload.size() != 8) return;
      const std::uint32_t t = read_u32le(payload, 0);
      if (!round_open || t != tick) return;
      repoll_attempt = std::max(repoll_attempt, read_u32le(payload, 4));
      return;
    }
    case kRoundClose: {
      if (payload.size() != 8) return;
      const std::uint32_t t = read_u32le(payload, 0);
      if (!round_open || t != tick) return;
      round_open = false;
      repoll_attempt = 0;
      have.clear();
      reports.clear();
      rounds_done = std::max(rounds_done, read_u32le(payload, 4));
      return;
    }
    default:
      return;  // future record kind: skip, don't fail recovery
  }
}

Bytes VerifierState::encode(std::size_t token_size) const {
  Bytes out;
  append_u32le(out, devices);
  append_u32le(out, rounds_done);
  append_u32le(out, tick);
  out.push_back(round_open ? 1 : 0);
  append_u32le(out, repoll_attempt);
  append_u32le(out, static_cast<std::uint32_t>(agents.size()));
  for (const auto& [first_id, a] : agents) {
    const Bytes rec = encode_agent(a);
    out.insert(out.end(), rec.begin(), rec.end());
  }
  if (round_open) {
    out.insert(out.end(), have.begin(), have.end());
    std::vector<sap::DeviceReport> sorted = reports;
    std::sort(sorted.begin(), sorted.end(),
              [](const sap::DeviceReport& a, const sap::DeviceReport& b) {
                return a.id < b.id;
              });
    append_u32le(out, static_cast<std::uint32_t>(sorted.size()));
    for (const sap::DeviceReport& rep : sorted) {
      append_report(out, rep, token_size);
    }
  }
  return out;
}

std::optional<VerifierState> VerifierState::decode(BytesView payload,
                                                   std::size_t token_size) {
  constexpr std::size_t kFixed = 4 + 4 + 4 + 1 + 4 + 4;
  if (payload.size() < kFixed) return std::nullopt;
  VerifierState st;
  st.devices = read_u32le(payload, 0);
  st.rounds_done = read_u32le(payload, 4);
  st.tick = read_u32le(payload, 8);
  const std::uint8_t open_flag = payload[12];
  if (open_flag > 1) return std::nullopt;
  st.round_open = open_flag == 1;
  st.repoll_attempt = read_u32le(payload, 13);
  const std::uint32_t n_agents = read_u32le(payload, 17);
  std::size_t off = kFixed;
  if (payload.size() < off + static_cast<std::size_t>(n_agents) *
                                 kAgentRecordSize) {
    return std::nullopt;
  }
  for (std::uint32_t i = 0; i < n_agents; ++i) {
    Agent a;
    a.first_id = read_u32le(payload, off);
    a.count = read_u32le(payload, off + 4);
    a.epoch = read_u64le(payload, off + 8);
    a.ip = read_u32le(payload, off + 16);
    a.port = static_cast<std::uint16_t>(payload[off + 20] |
                                        (payload[off + 21] << 8));
    if (a.first_id == 0 || a.count == 0) return std::nullopt;
    st.agents[a.first_id] = a;
    off += kAgentRecordSize;
  }
  if (st.round_open) {
    if (payload.size() < off + st.devices + 4) return std::nullopt;
    st.have.assign(payload.begin() + static_cast<std::ptrdiff_t>(off),
                   payload.begin() +
                       static_cast<std::ptrdiff_t>(off + st.devices));
    off += st.devices;
    const std::uint32_t n_reports = read_u32le(payload, off);
    off += 4;
    const std::size_t entry = report_entry_size(token_size);
    if (payload.size() != off + static_cast<std::size_t>(n_reports) * entry) {
      return std::nullopt;
    }
    st.reports.reserve(n_reports);
    for (std::uint32_t i = 0; i < n_reports; ++i) {
      st.reports.push_back(parse_report(payload, off, token_size));
      off += entry;
    }
  } else if (payload.size() != off) {
    return std::nullopt;
  }
  return st;
}

crypto::Sha256::Digest VerifierState::digest(std::size_t token_size) const {
  return crypto::Sha256::digest(encode(token_size));
}

std::uint64_t VerifierState::digest64(std::size_t token_size) const {
  const auto d = digest(token_size);
  return read_u64le(BytesView(d.data(), d.size()), 0);
}

std::uint64_t next_agent_epoch(const std::string& path) {
  std::uint64_t last = 0;
  Journal j = Journal::open(path, [&](std::uint8_t kind, BytesView payload) {
    if (kind == 1 && payload.size() == 8) {
      last = std::max(last, read_u64le(payload, 0));
    }
  });
  const std::uint64_t epoch = last + 1;
  Bytes rec;
  append_u64le(rec, epoch);
  j.append(1, rec);
  j.sync();
  return epoch;
}

}  // namespace cra::wire
