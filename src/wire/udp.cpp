#include "wire/udp.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace cra::wire {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Endpoint Endpoint::loopback(std::uint16_t port) {
  Endpoint ep;
  ep.sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ep.sa.sin_port = htons(port);
  return ep;
}

Endpoint Endpoint::parse(const std::string& hostport) {
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= hostport.size()) {
    throw std::invalid_argument("Endpoint::parse: want host:port, got '" +
                                hostport + "'");
  }
  const std::string host = hostport.substr(0, colon);
  const std::string port_s = hostport.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    throw std::invalid_argument("Endpoint::parse: bad port '" + port_s + "'");
  }
  Endpoint ep;
  ep.sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &ep.sa.sin_addr) != 1) {
    throw std::invalid_argument("Endpoint::parse: bad IPv4 address '" + host +
                                "'");
  }
  return ep;
}

std::uint16_t Endpoint::port() const noexcept { return ntohs(sa.sin_port); }

std::string Endpoint::to_string() const {
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &sa.sin_addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(port());
}

UdpSocket::UdpSocket(int fd) : fd_(fd) {}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_), recv_pool_(std::move(other.recv_pool_)) {
  other.fd_ = -1;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    recv_pool_ = std::move(other.recv_pool_);
    other.fd_ = -1;
  }
  return *this;
}

UdpSocket UdpSocket::bind(std::uint16_t port, int buf_bytes) {
  const int fd =
      ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(AF_INET, SOCK_DGRAM)");
  UdpSocket sock(fd);

  // Best effort — the kernel clamps to net.core.{r,w}mem_max and that
  // is fine; the shaper and adaptive re-polls absorb residual drops.
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf_bytes,
                     sizeof(buf_bytes));
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf_bytes,
                     sizeof(buf_bytes));

  const Endpoint ep = Endpoint::loopback(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&ep.sa), sizeof(ep.sa)) !=
      0) {
    throw_errno("bind(udp)");
  }
  return sock;
}

std::uint16_t UdpSocket::local_port() const {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(sa.sin_port);
}

std::size_t UdpSocket::recv_batch(RecvDatagram* out, std::size_t max) {
  const std::size_t want = std::min(max, kBatch);
  if (want == 0) return 0;
  if (recv_pool_.empty()) recv_pool_.resize(kBatch * kRecvBufSize);

  mmsghdr msgs[kBatch];
  iovec iovs[kBatch];
  sockaddr_in addrs[kBatch];
  std::memset(msgs, 0, sizeof(mmsghdr) * want);
  for (std::size_t i = 0; i < want; ++i) {
    iovs[i].iov_base = recv_pool_.data() + i * kRecvBufSize;
    iovs[i].iov_len = kRecvBufSize;
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_name = &addrs[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
  }

  int got;
  do {
    got = ::recvmmsg(fd_, msgs, static_cast<unsigned>(want), 0, nullptr);
  } while (got < 0 && errno == EINTR);
  if (got < 0) {
    // ECONNREFUSED: an async ICMP error latched by a previous send to a
    // dead peer. Consume it and report "nothing to read".
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
      return 0;
    }
    throw_errno("recvmmsg");
  }
  for (int i = 0; i < got; ++i) {
    out[i].from.sa = addrs[i];
    out[i].data = BytesView(recv_pool_.data() + static_cast<std::size_t>(i) *
                                                    kRecvBufSize,
                            msgs[i].msg_len);
  }
  return static_cast<std::size_t>(got);
}

std::size_t UdpSocket::send_batch(const SendDatagram* msgs, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const std::size_t chunk = std::min(n - sent, kBatch);
    mmsghdr hdrs[kBatch];
    iovec iovs[kBatch];
    std::memset(hdrs, 0, sizeof(mmsghdr) * chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      const SendDatagram& m = msgs[sent + i];
      iovs[i].iov_base = const_cast<std::uint8_t*>(m.data.data());
      iovs[i].iov_len = m.data.size();
      hdrs[i].msg_hdr.msg_iov = &iovs[i];
      hdrs[i].msg_hdr.msg_iovlen = 1;
      hdrs[i].msg_hdr.msg_name =
          const_cast<sockaddr_in*>(&m.to.sa);
      hdrs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
    }
    int pushed;
    do {
      pushed = ::sendmmsg(fd_, hdrs, static_cast<unsigned>(chunk), 0);
    } while (pushed < 0 && errno == EINTR);
    if (pushed < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return sent;
      if (errno == ENOBUFS) {
        // Kernel transiently out of socket buffer memory — same
        // backpressure contract as EAGAIN, but tallied apart so chaos
        // runs can tell kernel pressure from shaped loss.
        ++stats_.enobufs;
        return sent;
      }
      if (errno == ECONNREFUSED) {
        // Latched ICMP error from an earlier flight; the current
        // datagram was not sent. Skip one and keep going.
        ++stats_.econnrefused;
        ++sent;
        continue;
      }
      if (errno == EMSGSIZE) {
        // This datagram can never fit; retrying is pointless. Drop it
        // and move on so one oversized frame cannot wedge the flight.
        ++stats_.emsgsize;
        ++sent;
        continue;
      }
      throw_errno("sendmmsg");
    }
    sent += static_cast<std::size_t>(pushed);
    if (static_cast<std::size_t>(pushed) < chunk) return sent;  // EAGAIN next
  }
  return sent;
}

bool UdpSocket::send_one(const Endpoint& to, BytesView data) {
  const SendDatagram m{to, data};
  return send_batch(&m, 1) == 1;
}

}  // namespace cra::wire
