#include "wire/timer_wheel.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cra::wire {

TimerWheel::TimerWheel(std::uint64_t granularity_ns, std::size_t slots)
    : granularity_(granularity_ns), mask_(slots - 1), slots_(slots) {
  if (granularity_ns == 0) {
    throw std::invalid_argument("TimerWheel: zero granularity");
  }
  if (slots == 0 || (slots & (slots - 1)) != 0) {
    throw std::invalid_argument("TimerWheel: slots must be a power of two");
  }
}

TimerWheel::TimerId TimerWheel::schedule(std::uint64_t deadline_ns,
                                         Callback cb) {
  const TimerId id = next_id_++;
  // A deadline already in the past would hash to a slot the clock has
  // passed this revolution and silently wait a full lap; park it in the
  // current slot instead so the next advance() fires it (the entry keeps
  // its real deadline for next_deadline() and the due check).
  const std::uint64_t slot_key = std::max(deadline_ns, last_advance_);
  slots_[slot_for(slot_key)].push_back(Entry{id, deadline_ns, std::move(cb)});
  ++live_;
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  if (id == 0 || id >= next_id_) return false;
  for (auto& slot : slots_) {
    for (Entry& e : slot) {
      if (e.id == id) {
        e.id = 0;
        e.cb = nullptr;
        --live_;
        return true;
      }
    }
  }
  return false;
}

std::size_t TimerWheel::advance(std::uint64_t now_ns) {
  std::size_t fired = 0;
  // Scan each slot the clock crossed since the last advance (at most
  // one full revolution — beyond that every slot is a candidate).
  const std::uint64_t from = last_advance_ / granularity_;
  const std::uint64_t to = now_ns / granularity_;
  const std::uint64_t span = std::min<std::uint64_t>(to - from, mask_ + 1);
  for (std::uint64_t g = 0; g <= span; ++g) {
    auto& slot = slots_[static_cast<std::size_t>(from + g) & mask_];
    // Fire due entries in deadline order; keep the rest. Callbacks may
    // push into this very slot, so index, don't iterate.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < slot.size(); ++i) {
      if (slot[i].id != 0 && slot[i].deadline_ns <= now_ns) {
        Callback cb = std::move(slot[i].cb);
        slot[i].id = 0;
        --live_;
        ++fired;
        cb();
      }
    }
    for (std::size_t i = 0; i < slot.size(); ++i) {
      if (slot[i].id != 0) {
        if (kept != i) slot[kept] = std::move(slot[i]);
        ++kept;
      }
    }
    slot.resize(kept);
  }
  last_advance_ = now_ns;
  return fired;
}

std::uint64_t TimerWheel::next_deadline() const noexcept {
  if (live_ == 0) return std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (const auto& slot : slots_) {
    for (const Entry& e : slot) {
      if (e.id != 0 && e.deadline_ns < best) best = e.deadline_ns;
    }
  }
  return best;
}

}  // namespace cra::wire
