#include "wire/frame.hpp"

#include <stdexcept>

#include "crypto/kdf.hpp"

namespace cra::wire {

namespace {

void store_u16le(std::uint8_t* out, std::uint16_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint16_t load_u16le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t load_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

const char* frame_kind_name(FrameKind kind) noexcept {
  switch (kind) {
    case FrameKind::kHello: return "hello";
    case FrameKind::kHelloAck: return "hello-ack";
    case FrameKind::kChal: return "chal";
    case FrameKind::kTokens: return "tokens";
    case FrameKind::kBye: return "bye";
  }
  return "?";
}

std::size_t encode_frame_into(const FrameHeader& header, BytesView payload,
                              std::uint8_t* out) {
  if (payload.size() > kMaxPayload) {
    throw std::length_error("wire: frame payload exceeds kMaxPayload");
  }
  store_u32le(out, kFrameMagic);
  out[4] = kFrameVersion;
  out[5] = static_cast<std::uint8_t>(header.kind);
  store_u32le(out + 6, header.sender);
  store_u32le(out + 10, header.tick);
  store_u32le(out + 14, header.seq);
  store_u16le(out + 18, static_cast<std::uint16_t>(payload.size()));
  std::copy(payload.begin(), payload.end(), out + kFrameHeaderSize);
  return kFrameHeaderSize + payload.size();
}

Bytes encode_frame(const FrameHeader& header, BytesView payload) {
  Bytes out(kFrameHeaderSize + payload.size());
  encode_frame_into(header, payload, out.data());
  return out;
}

std::optional<Frame> decode_frame(BytesView datagram) noexcept {
  if (datagram.size() < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* p = datagram.data();
  if (load_u32le(p) != kFrameMagic) return std::nullopt;
  if (p[4] != kFrameVersion) return std::nullopt;
  const std::uint8_t kind = p[5];
  if (kind < static_cast<std::uint8_t>(FrameKind::kHello) ||
      kind > static_cast<std::uint8_t>(FrameKind::kBye)) {
    return std::nullopt;
  }
  const std::size_t payload_len = load_u16le(p + 18);
  if (datagram.size() != kFrameHeaderSize + payload_len) return std::nullopt;
  Frame f;
  f.header.kind = static_cast<FrameKind>(kind);
  f.header.sender = load_u32le(p + 6);
  f.header.tick = load_u32le(p + 10);
  f.header.seq = load_u32le(p + 14);
  f.payload = datagram.subspan(kFrameHeaderSize);
  return f;
}

Bytes encode_hello(const HelloPayload& hello) {
  Bytes out;
  append_u32le(out, hello.first_id);
  append_u32le(out, hello.count);
  append_u64le(out, hello.epoch);
  return out;
}

std::optional<HelloPayload> decode_hello(BytesView payload) noexcept {
  // 16 bytes = current (epoch-carrying); 8 = legacy, epoch stays 0.
  if (payload.size() != 8 && payload.size() != 16) return std::nullopt;
  HelloPayload h;
  h.first_id = load_u32le(payload.data());
  h.count = load_u32le(payload.data() + 4);
  if (payload.size() == 16) {
    h.epoch = static_cast<std::uint64_t>(load_u32le(payload.data() + 8)) |
              (static_cast<std::uint64_t>(load_u32le(payload.data() + 12))
               << 32);
  }
  if (h.first_id == 0 || h.count == 0) return std::nullopt;
  return h;
}

void append_want_ranges(Bytes& payload, const std::vector<WantRange>& ranges) {
  for (const WantRange& r : ranges) {
    append_u32le(payload, r.start);
    append_u32le(payload, r.count);
  }
}

std::optional<std::vector<WantRange>> decode_want_ranges(
    BytesView payload, std::size_t chal_size) noexcept {
  if (payload.size() < chal_size) return std::nullopt;
  const std::size_t trailer = payload.size() - chal_size;
  if (trailer % 8 != 0) return std::nullopt;
  std::vector<WantRange> ranges(trailer / 8);
  const std::uint8_t* p = payload.data() + chal_size;
  for (WantRange& r : ranges) {
    r.start = load_u32le(p);
    r.count = load_u32le(p + 4);
    if (r.count == 0) return std::nullopt;
    p += 8;
  }
  return ranges;
}

Bytes device_content(BytesView master, std::uint32_t id, std::size_t size) {
  Bytes info = to_bytes("cra-wire-content");
  append_u32le(info, id);
  return crypto::hkdf(master, /*salt=*/{}, info, size);
}

}  // namespace cra::wire
