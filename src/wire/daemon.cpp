#include "wire/daemon.hpp"

#include <sys/epoll.h>

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "sap/messages.hpp"

namespace cra::wire {

volatile std::sig_atomic_t VerifierDaemon::snapshot_requested_ = 0;

namespace {

sap::SapConfig sap_config_for(const DaemonConfig& cfg) {
  sap::SapConfig sap;
  sap.alg = cfg.alg;
  sap.qoa = cfg.mode;
  sap.adaptive = cfg.adaptive;
  sap.adaptive.enabled = true;
  return sap;
}

}  // namespace

VerifierDaemon::VerifierDaemon(DaemonConfig config)
    : config_(std::move(config)),
      verifier_(sap_config_for(config_), config_.devices, config_.master),
      socket_(UdpSocket::bind(config_.port)),
      have_(config_.devices, 0) {
  if (config_.devices == 0) {
    throw std::invalid_argument("VerifierDaemon: zero devices");
  }
  // Seed the valid-state set VS: daemon and agents derive the same
  // per-device content from the shared master, so no provisioning
  // round-trip is needed before attestation can start.
  for (std::uint32_t id = 1; id <= config_.devices; ++id) {
    verifier_.set_expected_content(
        id, device_content(config_.master, id, config_.content_size));
  }
  loop_.add_fd(socket_.fd(), EPOLLIN, [this](std::uint32_t) { on_readable(); });
  loop_.set_wakeup_hook([this] {
    if (snapshot_requested_ != 0) {
      snapshot_requested_ = 0;
      write_snapshot();
    }
  });
}

bool VerifierDaemon::coverage_complete() const noexcept {
  return covered_ >= config_.devices;
}

void VerifierDaemon::handle_hello(const Frame& frame, const Endpoint& from) {
  const auto hello = decode_hello(frame.payload);
  if (!hello.has_value()) {
    metrics_.counter("wire.daemon.decode_errors").inc();
    return;
  }
  auto [it, fresh] = agents_.try_emplace(hello->first_id);
  AgentEntry& entry = it->second;
  if (fresh) {
    // Range sanity: inside [1, devices], no overlap with the neighbor
    // below or above (map order = id order).
    const std::uint64_t end =
        static_cast<std::uint64_t>(hello->first_id) + hello->count;
    bool ok = hello->first_id >= 1 && end <= config_.devices + 1ull;
    if (ok && it != agents_.begin()) {
      const AgentEntry& below = std::prev(it)->second;
      ok = below.first_id + below.count <= hello->first_id;
    }
    if (ok && std::next(it) != agents_.end()) {
      ok = end <= std::next(it)->second.first_id;
    }
    if (!ok) {
      agents_.erase(it);
      metrics_.counter("wire.daemon.rejected_hellos").inc();
      return;
    }
    entry.first_id = hello->first_id;
    entry.count = hello->count;
    covered_ += hello->count;
    metrics_.counter("wire.daemon.agents_registered").inc();
    metrics_.gauge("wire.daemon.devices_covered")
        .set(static_cast<std::int64_t>(covered_));
  }
  entry.addr = from;  // re-hello may carry a new source port
  FrameHeader ack;
  ack.kind = FrameKind::kHelloAck;
  ack.seq = 0;
  const Bytes out = encode_frame(ack, frame.payload);
  (void)socket_.send_one(from, out);
  metrics_.counter("wire.daemon.tx_datagrams").inc();
  metrics_.counter("wire.daemon.tx_bytes").inc(out.size());
}

void VerifierDaemon::handle_tokens(const Frame& frame) {
  const auto it = agents_.find(frame.header.sender);
  if (it == agents_.end()) {
    metrics_.counter("wire.daemon.unknown_sender").inc();
    return;
  }
  // Sequence accounting: a regression means the datagram overtook a
  // later one somewhere (reorder); gaps show up as lost frames only if
  // the round also misses tokens, so they are not double-counted here.
  AgentEntry& agent = it->second;
  if (agent.saw_seq && frame.header.seq < agent.last_seq) {
    metrics_.counter("wire.daemon.reordered_datagrams").inc();
  }
  if (!agent.saw_seq || frame.header.seq > agent.last_seq) {
    agent.last_seq = frame.header.seq;
    agent.saw_seq = true;
  }

  if (!round_open_ || frame.header.tick != tick_) {
    metrics_.counter("wire.daemon.stale_tokens").inc();
    return;
  }
  const auto reports =
      sap::decode_identify_ex(frame.payload, verifier_.config().token_size());
  if (!reports.has_value()) {
    metrics_.counter("wire.daemon.decode_errors").inc();
    return;
  }
  for (const sap::DeviceReport& rep : *reports) {
    if (rep.id == 0 || rep.id > config_.devices) {
      metrics_.counter("wire.daemon.bogus_device_ids").inc();
      continue;
    }
    if (have_[rep.id - 1] != 0) continue;  // re-poll duplicate
    have_[rep.id - 1] = 1;
    ++received_;
    reports_.push_back(rep);
  }
  if (received_ >= config_.devices) finish_round();
}

std::vector<WantRange> VerifierDaemon::missing_ranges() const {
  std::vector<WantRange> ranges;
  std::uint32_t run_start = 0;
  for (std::uint32_t id = 1; id <= config_.devices + 1; ++id) {
    const bool missing = id <= config_.devices && have_[id - 1] == 0;
    if (missing && run_start == 0) run_start = id;
    if (!missing && run_start != 0) {
      ranges.push_back(WantRange{run_start, id - run_start});
      run_start = 0;
    }
  }
  return ranges;
}

void VerifierDaemon::send_chal(const std::vector<WantRange>& want) {
  const std::size_t chal_size = verifier_.config().chal_size();
  Bytes payload = sap::encode_chal(tick_, /*auth_key=*/{}, chal_size);
  // The want trailer must fit the frame; if the missing set is too
  // fragmented, fall back to "everything" (correct, just more bytes).
  if (!want.empty() &&
      payload.size() + want.size() * 8 <= kMaxPayload) {
    append_want_ranges(payload, want);
  }
  FrameHeader h;
  h.kind = FrameKind::kChal;
  h.tick = tick_;

  // One frame per relevant agent. The reserve guarantees no
  // reallocation, so the SendDatagram views into `frames` stay valid.
  std::vector<Bytes> frames;
  std::vector<SendDatagram> out;
  frames.reserve(agents_.size());
  out.reserve(agents_.size());
  for (const auto& [first_id, agent] : agents_) {
    // On re-polls, skip agents with nothing missing.
    if (!want.empty()) {
      bool relevant = false;
      for (const WantRange& r : want) {
        if (r.start < first_id + agent.count &&
            first_id < r.start + r.count) {
          relevant = true;
          break;
        }
      }
      if (!relevant) continue;
    }
    frames.push_back(encode_frame(h, payload));
    out.push_back(SendDatagram{agent.addr, frames.back()});
  }
  const std::size_t sent = socket_.send_batch(out.data(), out.size());
  metrics_.counter("wire.daemon.tx_datagrams").inc(sent);
  for (std::size_t i = 0; i < sent; ++i) {
    metrics_.counter("wire.daemon.tx_bytes").inc(out[i].data.size());
  }
  if (sent < out.size()) {
    metrics_.counter("wire.daemon.tx_backpressure").inc(out.size() - sent);
  }
}

void VerifierDaemon::arm_repoll() {
  const std::uint64_t backoff_ns = static_cast<std::uint64_t>(
      verifier_.config().adaptive.backoff_for(repoll_attempt_ + 1).ns());
  repoll_timer_ = loop_.schedule_after(backoff_ns, [this] {
    repoll_timer_ = 0;
    if (!round_open_) return;
    if (repoll_attempt_ >= verifier_.config().adaptive.max_repolls) {
      finish_round();  // budget spent: close degraded
      return;
    }
    ++repoll_attempt_;
    metrics_.counter("wire.daemon.repolls").inc();
    send_chal(missing_ranges());
    arm_repoll();
  });
}

void VerifierDaemon::start_round() {
  if (round_open_) {
    // Previous round still open at the next period boundary — the
    // re-poll ladder will close it; skip this slot rather than overlap.
    metrics_.counter("wire.daemon.rounds_overrun").inc();
    return;
  }
  if (!coverage_complete()) {
    metrics_.counter("wire.daemon.rounds_waiting_coverage").inc();
    return;
  }
  round_open_ = true;
  ++tick_;
  round_start_ns_ = loop_.now_ns();
  received_ = 0;
  std::fill(have_.begin(), have_.end(), 0);
  reports_.clear();
  repoll_attempt_ = 0;
  metrics_.counter("wire.daemon.rounds_started").inc();
  send_chal({});
  arm_repoll();
}

void VerifierDaemon::finish_round() {
  if (!round_open_) return;
  round_open_ = false;
  if (repoll_timer_ != 0) {
    loop_.cancel(repoll_timer_);
    repoll_timer_ = 0;
  }

  const std::uint64_t latency_ns = loop_.now_ns() - round_start_ns_;
  metrics_.histogram("wire.daemon.round_latency_us")
      .record(latency_ns / 1'000);
  metrics_.counter("wire.daemon.rounds_completed").inc();
  metrics_.counter("wire.daemon.tokens_received").inc(received_);
  metrics_.counter("wire.daemon.tokens_missing")
      .inc(config_.devices - received_);

  if (config_.mode == sap::QoaMode::kBinary) {
    // The transport always carries per-device tokens; binary mode is a
    // verifier-side fold, exactly like the in-tree aggregation.
    if (received_ == config_.devices) {
      Bytes acc(verifier_.config().token_size(), 0);
      for (const sap::DeviceReport& rep : reports_) {
        xor_inplace(acc, rep.token);
      }
      metrics_
          .counter(verifier_.verify(acc, tick_)
                       ? "wire.daemon.rounds_verified"
                       : "wire.daemon.rounds_failed")
          .inc();
    } else {
      metrics_.counter("wire.daemon.rounds_incomplete").inc();
    }
  } else {
    const auto verdict = verifier_.classify(reports_, tick_);
    metrics_.counter("wire.daemon.devices_healthy").inc(verdict.healthy);
    metrics_.counter("wire.daemon.devices_untrusted").inc(verdict.untrusted);
    metrics_.counter("wire.daemon.devices_unreachable")
        .inc(verdict.unreachable);
    metrics_.counter("wire.daemon.devices_rebooted").inc(verdict.rebooted);
    metrics_
        .counter(verdict.all_healthy() ? "wire.daemon.rounds_verified"
                                       : "wire.daemon.rounds_failed")
        .inc();
  }

  ++rounds_done_;
  if (config_.dump_every != 0 && rounds_done_ % config_.dump_every == 0) {
    write_snapshot();
  }
  if (config_.rounds != 0 && rounds_done_ >= config_.rounds) {
    // Tell the agents the session is over, then leave the loop.
    FrameHeader bye;
    bye.kind = FrameKind::kBye;
    const Bytes frame = encode_frame(bye, {});
    for (const auto& [first_id, agent] : agents_) {
      (void)socket_.send_one(agent.addr, frame);
    }
    loop_.stop();
  }
}

void VerifierDaemon::on_readable() {
  RecvDatagram batch[UdpSocket::kBatch];
  for (;;) {
    const std::size_t n = socket_.recv_batch(batch, UdpSocket::kBatch);
    if (n == 0) return;
    for (std::size_t i = 0; i < n; ++i) {
      metrics_.counter("wire.daemon.rx_datagrams").inc();
      metrics_.counter("wire.daemon.rx_bytes").inc(batch[i].data.size());
      const auto frame = decode_frame(batch[i].data);
      if (!frame.has_value()) {
        metrics_.counter("wire.daemon.decode_errors").inc();
        continue;
      }
      switch (frame->header.kind) {
        case FrameKind::kHello:
          handle_hello(*frame, batch[i].from);
          break;
        case FrameKind::kTokens:
          handle_tokens(*frame);
          break;
        case FrameKind::kBye:
          break;  // agents going away surface as unreachable devices
        default:
          metrics_.counter("wire.daemon.unexpected_kind").inc();
          break;
      }
    }
  }
}

void VerifierDaemon::run() {
  // Period ticker: fires every period_ms and re-arms itself.
  const std::uint64_t period_ns = config_.period_ms * 1'000'000;
  const auto arm = [this, period_ns](const auto& self) -> void {
    loop_.schedule_after(period_ns, [this, self] {
      start_round();
      self(self);
    });
  };
  start_round();  // waits on coverage internally
  arm(arm);
  loop_.run();
  write_snapshot();
}

void VerifierDaemon::write_snapshot() {
  if (config_.metrics_path.empty()) return;
  const std::string json = metrics_.to_json();
  const std::string tmp = config_.metrics_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  (void)std::rename(tmp.c_str(), config_.metrics_path.c_str());
  metrics_.counter("wire.daemon.snapshots_written").inc();
}

}  // namespace cra::wire
