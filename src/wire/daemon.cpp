#include "wire/daemon.hpp"

#include <sys/epoll.h>

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "sap/messages.hpp"

namespace cra::wire {

volatile std::sig_atomic_t VerifierDaemon::snapshot_requested_ = 0;
volatile std::sig_atomic_t VerifierDaemon::shutdown_requested_ = 0;

namespace {

sap::SapConfig sap_config_for(const DaemonConfig& cfg) {
  sap::SapConfig sap;
  sap.alg = cfg.alg;
  sap.qoa = cfg.mode;
  sap.adaptive = cfg.adaptive;
  sap.adaptive.enabled = true;
  return sap;
}

}  // namespace

VerifierDaemon::VerifierDaemon(DaemonConfig config)
    : config_(std::move(config)),
      verifier_(sap_config_for(config_), config_.devices, config_.master),
      socket_(UdpSocket::bind(config_.port)),
      have_(config_.devices, 0) {
  if (config_.devices == 0) {
    throw std::invalid_argument("VerifierDaemon: zero devices");
  }
  // Seed the valid-state set VS: daemon and agents derive the same
  // per-device content from the shared master, so no provisioning
  // round-trip is needed before attestation can start.
  for (std::uint32_t id = 1; id <= config_.devices; ++id) {
    verifier_.set_expected_content(
        id, device_content(config_.master, id, config_.content_size));
  }
  loop_.add_fd(socket_.fd(), EPOLLIN, [this](std::uint32_t) { on_readable(); });
  loop_.set_wakeup_hook([this] {
    if (snapshot_requested_ != 0) {
      snapshot_requested_ = 0;
      write_snapshot();
    }
    if (shutdown_requested_ != 0) {
      shutdown_requested_ = 0;
      if (round_open_) {
        // Drain: the re-poll ladder closes the round, finish_round sees
        // draining_ and finalizes.
        draining_ = true;
      } else {
        finalize_and_stop();
      }
    }
  });
  recover_from_journal();
}

void VerifierDaemon::recover_from_journal() {
  if (config_.journal_path.empty()) return;
  const std::size_t token_size = verifier_.config().token_size();
  VerifierState st;
  st.devices = config_.devices;
  bool any = false;
  if (const auto snap = read_snapshot_file(config_.journal_path + ".snap")) {
    auto decoded = VerifierState::decode(*snap, token_size);
    // A snapshot for a differently-sized swarm is a config change, not
    // a restart: start fresh rather than resurrect a mismatched census.
    if (decoded.has_value() && decoded->devices == config_.devices) {
      st = std::move(*decoded);
      any = true;
    }
  }
  Journal::OpenStats jstats;
  journal_ = Journal::open(
      config_.journal_path + ".wal",
      [&](std::uint8_t kind, BytesView payload) {
        st.apply(kind, payload, token_size);
      },
      &jstats);
  journaling_ = true;
  if (jstats.records > 0) any = true;
  if (jstats.truncated_bytes > 0) {
    metrics_.counter("wire.daemon.journal_torn_bytes")
        .inc(jstats.truncated_bytes);
  }
  if (any) {
    // Digest BEFORE adopting: the move below guts st.reports, and the
    // chaos supervisor compares this value against its own replay of
    // the same files.
    const std::uint64_t digest_lo =
        st.digest64(token_size) & 0x7fffffffffffffffull;
    // Adopt the recovered state wholesale. Agent socket addresses come
    // from the journal; an agent that restarted meanwhile re-hellos
    // with a fresh epoch and heals its entry.
    tick_ = st.tick;
    rounds_done_ = st.rounds_done;
    round_open_ = st.round_open;
    repoll_attempt_ = st.repoll_attempt;
    covered_ = 0;
    agents_.clear();
    for (const auto& [first_id, a] : st.agents) {
      AgentEntry entry;
      entry.first_id = a.first_id;
      entry.count = a.count;
      entry.epoch = a.epoch;
      entry.addr.sa.sin_addr.s_addr = a.ip;
      entry.addr.sa.sin_port = a.port;
      agents_[first_id] = entry;
      covered_ += a.count;
    }
    received_ = 0;
    std::fill(have_.begin(), have_.end(), 0);
    reports_.clear();
    if (round_open_) {
      have_ = st.have;
      have_.resize(config_.devices, 0);
      for (const std::uint8_t h : have_) {
        received_ += h != 0 ? 1u : 0u;
      }
      reports_ = std::move(st.reports);
    }
    recovered_ = true;
    recovery_pending_ = true;
    recovery_start_ns_ = monotonic_ns();
    metrics_.counter("wire.daemon.recoveries").inc();
    metrics_.counter("wire.daemon.journal_records_replayed")
        .inc(jstats.records);
    // Low 63 bits of the recovered-state digest, for byte-identical
    // replay checks across processes.
    metrics_.gauge("wire.daemon.recovered_digest_lo")
        .set(static_cast<std::int64_t>(digest_lo));
    metrics_.gauge("wire.daemon.devices_covered")
        .set(static_cast<std::int64_t>(covered_));
  }
  // Compact immediately: the snapshot now carries everything the WAL
  // said, and the WAL restarts empty.
  persist_state();
}

bool VerifierDaemon::coverage_complete() const noexcept {
  return covered_ >= config_.devices;
}

void VerifierDaemon::handle_hello(const Frame& frame, const Endpoint& from) {
  const auto hello = decode_hello(frame.payload);
  if (!hello.has_value()) {
    metrics_.counter("wire.daemon.decode_errors").inc();
    return;
  }
  auto [it, fresh] = agents_.try_emplace(hello->first_id);
  AgentEntry& entry = it->second;
  bool changed = fresh;
  if (fresh) {
    // Range sanity: inside [1, devices], no overlap with the neighbor
    // below or above (map order = id order).
    const std::uint64_t end =
        static_cast<std::uint64_t>(hello->first_id) + hello->count;
    bool ok = hello->first_id >= 1 && end <= config_.devices + 1ull;
    if (ok && it != agents_.begin()) {
      const AgentEntry& below = std::prev(it)->second;
      ok = below.first_id + below.count <= hello->first_id;
    }
    if (ok && std::next(it) != agents_.end()) {
      ok = end <= std::next(it)->second.first_id;
    }
    if (!ok) {
      agents_.erase(it);
      metrics_.counter("wire.daemon.rejected_hellos").inc();
      return;
    }
    entry.first_id = hello->first_id;
    entry.count = hello->count;
    entry.epoch = hello->epoch;
    covered_ += hello->count;
    metrics_.counter("wire.daemon.agents_registered").inc();
    metrics_.gauge("wire.daemon.devices_covered")
        .set(static_cast<std::int64_t>(covered_));
  } else {
    if (hello->count != entry.count) {
      // A known range re-registering with a different width is a
      // config change, not a restart; don't let it corrupt coverage.
      metrics_.counter("wire.daemon.rejected_hellos").inc();
      return;
    }
    if (hello->epoch != entry.epoch) {
      // The agent restarted: new session, sequence space starts over.
      entry.epoch = hello->epoch;
      entry.seq.reset();
      metrics_.counter("wire.daemon.agent_restarts").inc();
      changed = true;
    }
  }
  if (!(entry.addr == from)) changed = true;
  entry.addr = from;  // re-hello may carry a new source port
  if (changed) journal_agent(entry, /*sync=*/true);
  FrameHeader ack;
  ack.kind = FrameKind::kHelloAck;
  ack.seq = 0;
  const Bytes out = encode_frame(ack, frame.payload);
  (void)socket_.send_one(from, out);
  metrics_.counter("wire.daemon.tx_datagrams").inc();
  metrics_.counter("wire.daemon.tx_bytes").inc(out.size());
}

void VerifierDaemon::handle_tokens(const Frame& frame) {
  const auto it = agents_.find(frame.header.sender);
  if (it == agents_.end()) {
    metrics_.counter("wire.daemon.unknown_sender").inc();
    return;
  }
  // Sequence accounting in serial-number arithmetic: a regression means
  // the datagram overtook a later one somewhere (reorder); gaps show up
  // as lost frames only if the round also misses tokens, so they are
  // not double-counted here. The tracker is epoch-aware — handle_hello
  // resets it when the agent restarts — so a fresh session's low seq is
  // kFirst, not a spurious reorder.
  AgentEntry& agent = it->second;
  if (agent.seq.observe(frame.header.seq) == SeqTracker::Verdict::kReorder) {
    metrics_.counter("wire.daemon.reordered_datagrams").inc();
  }

  if (!round_open_ || frame.header.tick != tick_) {
    metrics_.counter("wire.daemon.stale_tokens").inc();
    return;
  }
  const auto reports =
      sap::decode_identify_ex(frame.payload, verifier_.config().token_size());
  if (!reports.has_value()) {
    metrics_.counter("wire.daemon.decode_errors").inc();
    return;
  }
  const std::size_t accepted_start = reports_.size();
  for (const sap::DeviceReport& rep : *reports) {
    if (rep.id == 0 || rep.id > config_.devices) {
      metrics_.counter("wire.daemon.bogus_device_ids").inc();
      continue;
    }
    if (have_[rep.id - 1] != 0) continue;  // re-poll duplicate
    have_[rep.id - 1] = 1;
    ++received_;
    reports_.push_back(rep);
  }
  if (journaling_ && reports_.size() > accepted_start) {
    // No sync: a lost unsynced report tail just re-polls on restart.
    journal_append(VerifierState::kReports,
                   VerifierState::encode_reports(
                       tick_, reports_.data() + accepted_start,
                       reports_.size() - accepted_start,
                       verifier_.config().token_size()),
                   /*sync=*/false);
  }
  if (received_ >= config_.devices) finish_round();
}

std::vector<WantRange> VerifierDaemon::missing_ranges() const {
  std::vector<WantRange> ranges;
  std::uint32_t run_start = 0;
  for (std::uint32_t id = 1; id <= config_.devices + 1; ++id) {
    const bool missing = id <= config_.devices && have_[id - 1] == 0;
    if (missing && run_start == 0) run_start = id;
    if (!missing && run_start != 0) {
      ranges.push_back(WantRange{run_start, id - run_start});
      run_start = 0;
    }
  }
  return ranges;
}

void VerifierDaemon::send_chal(const std::vector<WantRange>& want) {
  const std::size_t chal_size = verifier_.config().chal_size();
  Bytes payload = sap::encode_chal(tick_, /*auth_key=*/{}, chal_size);
  // The want trailer must fit the frame; if the missing set is too
  // fragmented, fall back to "everything" (correct, just more bytes).
  if (!want.empty() &&
      payload.size() + want.size() * 8 <= kMaxPayload) {
    append_want_ranges(payload, want);
  }
  FrameHeader h;
  h.kind = FrameKind::kChal;
  h.tick = tick_;

  // One frame per relevant agent. The reserve guarantees no
  // reallocation, so the SendDatagram views into `frames` stay valid.
  std::vector<Bytes> frames;
  std::vector<SendDatagram> out;
  frames.reserve(agents_.size());
  out.reserve(agents_.size());
  for (const auto& [first_id, agent] : agents_) {
    // On re-polls, skip agents with nothing missing.
    if (!want.empty()) {
      bool relevant = false;
      for (const WantRange& r : want) {
        if (r.start < first_id + agent.count &&
            first_id < r.start + r.count) {
          relevant = true;
          break;
        }
      }
      if (!relevant) continue;
    }
    frames.push_back(encode_frame(h, payload));
    out.push_back(SendDatagram{agent.addr, frames.back()});
  }
  const std::size_t sent = socket_.send_batch(out.data(), out.size());
  metrics_.counter("wire.daemon.tx_datagrams").inc(sent);
  for (std::size_t i = 0; i < sent; ++i) {
    metrics_.counter("wire.daemon.tx_bytes").inc(out[i].data.size());
  }
  if (sent < out.size()) {
    metrics_.counter("wire.daemon.tx_backpressure").inc(out.size() - sent);
  }
}

void VerifierDaemon::arm_repoll() {
  const std::uint64_t backoff_ns = static_cast<std::uint64_t>(
      verifier_.config().adaptive.backoff_for(repoll_attempt_ + 1).ns());
  repoll_timer_ = loop_.schedule_after(backoff_ns, [this] {
    repoll_timer_ = 0;
    if (!round_open_) return;
    if (repoll_attempt_ >= verifier_.config().adaptive.max_repolls) {
      finish_round();  // budget spent: close degraded
      return;
    }
    ++repoll_attempt_;
    metrics_.counter("wire.daemon.repolls").inc();
    if (journaling_) {
      journal_append(VerifierState::kRepoll,
                     VerifierState::encode_repoll(tick_, repoll_attempt_),
                     /*sync=*/false);
    }
    send_chal(missing_ranges());
    arm_repoll();
  });
}

void VerifierDaemon::start_round() {
  if (draining_) return;  // shutting down: no new rounds
  if (round_open_) {
    // Previous round still open at the next period boundary — the
    // re-poll ladder will close it; skip this slot rather than overlap.
    metrics_.counter("wire.daemon.rounds_overrun").inc();
    return;
  }
  if (!coverage_complete()) {
    metrics_.counter("wire.daemon.rounds_waiting_coverage").inc();
    return;
  }
  round_open_ = true;
  ++tick_;
  round_start_ns_ = loop_.now_ns();
  received_ = 0;
  std::fill(have_.begin(), have_.end(), 0);
  reports_.clear();
  repoll_attempt_ = 0;
  metrics_.counter("wire.daemon.rounds_started").inc();
  if (journaling_) {
    // Committed before the first challenge leaves: a crash after this
    // point resumes tick_, it never reissues it as a fresh round.
    journal_append(VerifierState::kRoundStart,
                   VerifierState::encode_round_start(tick_), /*sync=*/true);
  }
  send_chal({});
  arm_repoll();
}

void VerifierDaemon::resume_round() {
  // Called once from run() when recovery left a round open: keep the
  // journaled tick/coverage/attempt and rejoin the re-poll ladder where
  // the crashed process left it, re-challenging only the missing set.
  round_start_ns_ = loop_.now_ns();
  metrics_.counter("wire.daemon.rounds_resumed").inc();
  if (received_ >= config_.devices) {
    finish_round();
    return;
  }
  send_chal(missing_ranges());
  arm_repoll();
}

void VerifierDaemon::finish_round() {
  if (!round_open_) return;
  round_open_ = false;
  if (repoll_timer_ != 0) {
    loop_.cancel(repoll_timer_);
    repoll_timer_ = 0;
  }

  const std::uint64_t latency_ns = loop_.now_ns() - round_start_ns_;
  metrics_.histogram("wire.daemon.round_latency_us")
      .record(latency_ns / 1'000);
  metrics_.counter("wire.daemon.rounds_completed").inc();
  metrics_.counter("wire.daemon.tokens_received").inc(received_);
  metrics_.counter("wire.daemon.tokens_missing")
      .inc(config_.devices - received_);

  if (config_.mode == sap::QoaMode::kBinary) {
    // The transport always carries per-device tokens; binary mode is a
    // verifier-side fold, exactly like the in-tree aggregation.
    if (received_ == config_.devices) {
      Bytes acc(verifier_.config().token_size(), 0);
      for (const sap::DeviceReport& rep : reports_) {
        xor_inplace(acc, rep.token);
      }
      metrics_
          .counter(verifier_.verify(acc, tick_)
                       ? "wire.daemon.rounds_verified"
                       : "wire.daemon.rounds_failed")
          .inc();
    } else {
      metrics_.counter("wire.daemon.rounds_incomplete").inc();
    }
  } else {
    const auto verdict = verifier_.classify(reports_, tick_);
    metrics_.counter("wire.daemon.devices_healthy").inc(verdict.healthy);
    metrics_.counter("wire.daemon.devices_untrusted").inc(verdict.untrusted);
    metrics_.counter("wire.daemon.devices_unreachable")
        .inc(verdict.unreachable);
    metrics_.counter("wire.daemon.devices_rebooted").inc(verdict.rebooted);
    metrics_
        .counter(verdict.all_healthy() ? "wire.daemon.rounds_verified"
                                       : "wire.daemon.rounds_failed")
        .inc();
  }

  ++rounds_done_;
  if (journaling_) {
    journal_append(VerifierState::kRoundClose,
                   VerifierState::encode_round_close(tick_, rounds_done_),
                   /*sync=*/true);
    if (config_.snapshot_every != 0 &&
        rounds_done_ % config_.snapshot_every == 0) {
      persist_state();
    }
  }
  if (recovery_pending_) {
    ++rounds_since_recovery_;
    if (received_ >= config_.devices) {
      // First fully-covered round since the restart: the service is
      // reconverged. recovery_rounds counts closed rounds including the
      // resumed one, so "extra rounds to reconverge" is this minus 1.
      recovery_pending_ = false;
      metrics_.gauge("wire.recovery_ms")
          .set(static_cast<std::int64_t>(
              (monotonic_ns() - recovery_start_ns_) / 1'000'000));
      metrics_.gauge("wire.recovery_rounds")
          .set(static_cast<std::int64_t>(rounds_since_recovery_));
    }
  }
  sync_socket_stats();
  if (draining_) {
    finalize_and_stop();
    return;
  }
  if (config_.dump_every != 0 && rounds_done_ % config_.dump_every == 0) {
    write_snapshot();
  }
  if (config_.rounds != 0 && rounds_done_ >= config_.rounds) {
    // Tell the agents the session is over, then leave the loop.
    FrameHeader bye;
    bye.kind = FrameKind::kBye;
    const Bytes frame = encode_frame(bye, {});
    for (const auto& [first_id, agent] : agents_) {
      (void)socket_.send_one(agent.addr, frame);
    }
    loop_.stop();
  }
}

void VerifierDaemon::on_readable() {
  RecvDatagram batch[UdpSocket::kBatch];
  for (;;) {
    const std::size_t n = socket_.recv_batch(batch, UdpSocket::kBatch);
    if (n == 0) return;
    for (std::size_t i = 0; i < n; ++i) {
      metrics_.counter("wire.daemon.rx_datagrams").inc();
      metrics_.counter("wire.daemon.rx_bytes").inc(batch[i].data.size());
      const auto frame = decode_frame(batch[i].data);
      if (!frame.has_value()) {
        metrics_.counter("wire.daemon.decode_errors").inc();
        continue;
      }
      switch (frame->header.kind) {
        case FrameKind::kHello:
          handle_hello(*frame, batch[i].from);
          break;
        case FrameKind::kTokens:
          handle_tokens(*frame);
          break;
        case FrameKind::kBye:
          break;  // agents going away surface as unreachable devices
        default:
          metrics_.counter("wire.daemon.unexpected_kind").inc();
          break;
      }
    }
  }
}

void VerifierDaemon::run() {
  // Period ticker: fires every period_ms and re-arms itself.
  const std::uint64_t period_ns = config_.period_ms * 1'000'000;
  const auto arm = [this, period_ns](const auto& self) -> void {
    loop_.schedule_after(period_ns, [this, self] {
      start_round();
      self(self);
    });
  };
  // A journal recovered at the round limit means the previous
  // incarnation finished; don't run an extra round on restart.
  if (config_.rounds == 0 || round_open_ || rounds_done_ < config_.rounds) {
    if (round_open_) {
      resume_round();  // recovered mid-round: finish it, don't restart
    } else {
      start_round();  // waits on coverage internally
    }
    arm(arm);
    loop_.run();
  }
  if (journaling_) persist_state();
  write_snapshot();
}

void VerifierDaemon::journal_append(std::uint8_t kind, BytesView payload,
                                    bool sync) {
  journal_.append(kind, payload);
  if (sync) journal_.sync();
}

void VerifierDaemon::journal_agent(const AgentEntry& entry, bool sync) {
  if (!journaling_) return;
  VerifierState::Agent a;
  a.first_id = entry.first_id;
  a.count = entry.count;
  a.epoch = entry.epoch;
  a.ip = entry.addr.sa.sin_addr.s_addr;
  a.port = entry.addr.sa.sin_port;
  journal_append(VerifierState::kAgentRecord, VerifierState::encode_agent(a),
                 sync);
}

VerifierState VerifierDaemon::current_state() const {
  VerifierState st;
  st.devices = config_.devices;
  st.rounds_done = rounds_done_;
  st.tick = tick_;
  st.round_open = round_open_;
  st.repoll_attempt = repoll_attempt_;
  for (const auto& [first_id, entry] : agents_) {
    VerifierState::Agent a;
    a.first_id = entry.first_id;
    a.count = entry.count;
    a.epoch = entry.epoch;
    a.ip = entry.addr.sa.sin_addr.s_addr;
    a.port = entry.addr.sa.sin_port;
    st.agents.emplace(first_id, a);
  }
  if (round_open_) {
    st.have = have_;
    st.reports = reports_;
  }
  return st;
}

void VerifierDaemon::persist_state() {
  if (!journaling_) return;
  const Bytes payload =
      current_state().encode(verifier_.config().token_size());
  if (write_snapshot_file(config_.journal_path + ".snap", payload)) {
    journal_.reset();
    metrics_.counter("wire.daemon.state_snapshots").inc();
  }
  // On write failure the WAL is kept — recovery still has everything.
}

void VerifierDaemon::finalize_and_stop() {
  draining_ = false;
  if (journaling_) persist_state();
  write_snapshot();
  metrics_.counter("wire.daemon.graceful_shutdowns").inc();
  loop_.stop();
}

void VerifierDaemon::sync_socket_stats() {
  const UdpSocket::Stats& s = socket_.stats();
  if (s.enobufs > stats_synced_.enobufs) {
    metrics_.counter("wire.daemon.tx_enobufs")
        .inc(s.enobufs - stats_synced_.enobufs);
  }
  if (s.emsgsize > stats_synced_.emsgsize) {
    metrics_.counter("wire.daemon.tx_emsgsize")
        .inc(s.emsgsize - stats_synced_.emsgsize);
  }
  if (s.econnrefused > stats_synced_.econnrefused) {
    metrics_.counter("wire.daemon.tx_econnrefused")
        .inc(s.econnrefused - stats_synced_.econnrefused);
  }
  stats_synced_ = s;
}

void VerifierDaemon::write_snapshot() {
  if (config_.metrics_path.empty()) return;
  sync_socket_stats();
  const std::string json = metrics_.to_json();
  if (write_text_atomic(config_.metrics_path, json + "\n")) {
    metrics_.counter("wire.daemon.snapshots_written").inc();
  }
}

}  // namespace cra::wire
