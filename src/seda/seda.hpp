// SEDA baseline (Asokan et al., CCS 2015) — the state-of-the-art cRA
// protocol the paper's evaluation compares SAP against (Figure 3).
//
// We reproduce SEDA's attestation phase faithfully enough to preserve
// the comparison's shape; the mechanisms that differentiate it from SAP
// are exactly the ones the paper names (§VII-C):
//
//   * Public-key operation: Vrf signs the attestation request; every
//     device verifies the signature before attesting (DoS protection) —
//     an expensive asymmetric operation on a 24 MHz-class core, absent
//     from SAP entirely ("Unlike SEDA, SAP does not use public key
//     cryptography").
//   * No synchronized attestation: a device attests upon receipt of the
//     request (after signature verification), so the measurement phase
//     serializes with propagation instead of running at a common t_att.
//   * Hop-by-hop verification: each parent MAC-verifies every child's
//     report with their pairwise key before aggregating (counts of
//     total/passed devices), "compared to XOR-ing MACs" in SAP.
//   * Heavier wire format: request carries nonce + signature, reports
//     carry counts + MAC — about twice SAP's per-link bytes
//     ("Communication overhead of SAP is half that of SEDA").
//
// Pairwise keys come from the join phase: run_join() performs a real
// X25519 key agreement per tree edge (each endpoint derives its half of
// the MAC key from its own static secret and the peer's public key);
// without it, provisioning-time pre-shared keys are used.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/mac_cache.hpp"
#include "fault/injector.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"

namespace cra::seda {

struct SedaConfig {
  crypto::HashAlg alg = crypto::HashAlg::kSha1;
  std::uint32_t pmem_size = 50 * 1024;
  std::uint64_t device_hz = 24'000'000;

  /// join phase: one X25519 shared-secret computation on a 24 MHz
  /// in-order core (Curve25519 on low-end MCUs measures ~14M cycles).
  std::uint64_t dh_cycles = 14'000'000;

  /// attdev cost model — same HMAC core as SAP's attest.
  std::uint64_t attest_overhead_cycles = 5'000;
  std::uint64_t cycles_per_block = 14'400;
  /// ECDSA-class verification of Vrf's request signature on a 24 MHz
  /// in-order core (the dominant extra serial cost vs SAP).
  std::uint64_t sig_verify_cycles = 18'000'000;
  /// Aggregating counts + building the outgoing report.
  std::uint64_t aggregate_cycles = 2'000;

  net::LinkParams link{};
  std::uint32_t tree_arity = 2;

  /// Wire format (bytes): request = nonce + signature; report =
  /// total(4) + passed(4) + truncated MAC.
  std::uint32_t nonce_size = 16;
  std::uint32_t sig_size = 44;
  std::uint32_t report_mac_size = 12;

  sim::Duration report_margin = sim::Duration::from_ms(20);

  /// Simulation engine knobs (same semantics as sap::SapConfig::sim):
  /// threads=1 keeps the classic single-threaded engine; threads>1
  /// shards the swarm with conservative lookahead = link.per_hop_latency.
  sim::SimConfig sim{};

  std::size_t request_size() const noexcept { return nonce_size + sig_size; }
  std::size_t report_size() const noexcept { return 8 + report_mac_size; }
};

/// Outcome of the join phase (pairwise-key establishment, run once at
/// deployment or when a device is added).
struct SedaJoinReport {
  bool complete = false;       // every edge established both key halves
  std::uint32_t edges = 0;
  sim::Duration total_time;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

struct SedaRoundReport {
  bool verified = false;
  std::uint32_t total = 0;   // devices counted in the aggregate
  std::uint32_t passed = 0;  // devices whose self-measurement passed
  sim::SimTime t_req;        // Vrf issued the request
  sim::SimTime t_resp;       // Vrf holds the aggregate
  sim::Duration total_time() const noexcept { return t_resp - t_req; }
  std::uint64_t u_ca_bytes = 0;
  std::uint64_t messages = 0;
  std::uint32_t devices = 0;
  std::uint32_t mac_failures = 0;  // child reports rejected by parents
};

class SedaSimulation {
 public:
  SedaSimulation(SedaConfig config, net::Tree tree, std::uint64_t seed = 1);

  // Pinned to its address (the network references the owned scheduler).
  SedaSimulation(const SedaSimulation&) = delete;
  SedaSimulation& operator=(const SedaSimulation&) = delete;

  static SedaSimulation balanced(SedaConfig config, std::uint32_t devices,
                                 std::uint64_t seed = 1);

  const SedaConfig& config() const noexcept { return config_; }
  const net::Tree& tree() const noexcept { return tree_; }
  net::Network& network() noexcept { return network_; }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  std::uint32_t device_count() const noexcept { return tree_.device_count(); }

  /// True when rounds execute on the sharded engine (config().sim asked
  /// for more than one shard and the link latency admits a lookahead).
  bool parallel() const noexcept { return engine_ != nullptr; }
  /// The sharded engine, or nullptr in classic single-threaded mode.
  const sim::ParallelScheduler* engine() const noexcept {
    return engine_.get();
  }
  /// Current simulated time regardless of engine mode.
  sim::SimTime current_time() const noexcept {
    return engine_ ? engine_->now() : scheduler_.now();
  }

  /// Merged metrics of the last run_join()/run_round(): net.* from the
  /// (per-shard) networks plus seda.mac_failures / seda.join_acks.
  /// Same determinism contract as sap::SapSimulation::metrics().
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  void compromise_device(net::NodeId id);
  void restore_device(net::NodeId id);
  void set_device_unresponsive(net::NodeId id, bool unresponsive);

  /// --- Scripted fault injection (src/fault) ---
  /// Same replay contract as sap::SapSimulation::attach_fault_plan. SEDA
  /// has no secure clock, so kClockSkew events are accepted and ignored;
  /// reboots only clear the crash (there is no rebooted report status in
  /// SEDA's count-aggregate wire format).
  void attach_fault_plan(fault::FaultPlan plan);
  void clear_fault_plan();
  bool has_fault_plan() const noexcept { return faults_ != nullptr; }
  const fault::FaultTally* fault_tally() const noexcept {
    return faults_ ? &faults_->tally() : nullptr;
  }

  /// SEDA's join phase: every tree edge runs an X25519 key agreement
  /// (child and parent each derive the pairwise MAC key from their own
  /// static secret and the peer's public key — real DH, both halves
  /// must agree for reports to verify). Without run_join() the swarm
  /// uses provisioning-time pre-shared keys.
  SedaJoinReport run_join();

  /// Test/adversary hook: corrupt one endpoint's half of the pairwise
  /// key for `child`'s uplink (models a botched join or an active MitM
  /// during key agreement — every report from that subtree then fails
  /// hop-by-hop verification).
  void corrupt_join_key(net::NodeId child);

  SedaRoundReport run_round();
  void advance_time(sim::Duration d);

  // Analytic predictions (for the tca fit checks and benches).
  sim::Duration attest_time() const;
  sim::Duration sig_verify_time() const;
  sim::Duration predicted_total(std::uint32_t depth) const;
  std::uint64_t predicted_u_ca_bytes(std::uint32_t edges) const;

 private:
  struct Dev {
    Bytes key_to_parent;    // this device's half of the uplink key
    // Midstate cache over key_to_parent; rebuilt whenever join (or a
    // fault hook) replaces the key.
    crypto::PrecomputedMac mac_to_parent;
    Bytes static_sk;        // X25519 static secret (join phase)
    Bytes static_pk;
    Bytes parent_pk;        // learned during join
    bool joined = false;
    bool compromised = false;
    bool unresponsive = false;

    // Per-round state.
    bool got_request = false;
    bool self_done = false;
    bool sent = false;
    std::uint32_t waiting = 0;
    std::uint32_t total = 0;
    std::uint32_t passed = 0;
    std::vector<net::NodeId> got_children;
    sim::EventHandle deadline;
    // Child reports whose modelled MAC-verify time is still running.
    // When the first verify completes, every queued entry is checked in
    // one crypto-backend batch (the simulated cost stays per-report; only
    // the host-side computation is batched). Device state is
    // shard-confined, so the list needs no synchronization.
    struct PendingReport {
      net::NodeId child = 0;
      Bytes payload;
      bool checked = false;
      bool ok = false;
    };
    std::vector<PendingReport> pending;
  };

  Dev& dev(net::NodeId id) { return devices_[id - 1]; }

  // Engine routing: protocol handlers never touch scheduler_/network_
  // directly — they go through the shard owning the node id, which in
  // single-threaded mode is always the classic single pair.
  sim::Scheduler& sched(net::NodeId id) noexcept {
    return engine_ ? engine_->shard_for(id) : scheduler_;
  }
  net::Network& net_of(net::NodeId id) noexcept {
    return engine_ ? *shard_nets_[engine_->shard_of(id)] : network_;
  }
  // Per-shard round accounting lives in the shard's MetricsRegistry
  // (engine mode) or in metrics_ (classic mode); handlers update their
  // shard's instruments through cached handles — shard-confined, so no
  // locks, and merged deterministically after the run.
  obs::Counter& mac_failure_counter(net::NodeId id) noexcept {
    return *mac_ctrs_[engine_ ? engine_->shard_of(id) : 0];
  }
  obs::Counter& join_ack_counter(net::NodeId id) noexcept {
    return *join_ctrs_[engine_ ? engine_->shard_of(id) : 0];
  }
  void setup_engine();
  void sync_shard_networks();
  void run_engine();

  // Fault-plan replay (see sap::SapSimulation for the shard-ownership
  // rules; SEDA's node ids are its tree positions).
  void arm_faults(sim::SimTime horizon);
  void schedule_fault(const fault::FaultEvent& ev);
  void apply_device_fault(const fault::FaultEvent& ev);
  void apply_link(net::NodeId src, net::NodeId dst, bool down,
                  sim::SimTime at);
  void apply_loss(double rate, std::uint64_t seed, sim::SimTime at);

  Bytes edge_key(net::NodeId child) const;
  void handle_join_invite(net::NodeId id, const net::Message& msg);
  void handle_join_ack(net::NodeId id, const net::Message& msg);
  Bytes report_payload(net::NodeId id, std::uint32_t total,
                       std::uint32_t passed) const;
  bool report_authentic(net::NodeId child, BytesView payload) const;

  void on_message(const net::Message& msg);
  void handle_request(net::NodeId id, const net::Message& msg);
  void self_attested(net::NodeId id);
  void handle_report(net::NodeId id, const net::Message& msg);
  void verify_pending_batch(net::NodeId id);
  void finish_report_check(net::NodeId id, net::NodeId child);
  void try_forward(net::NodeId id);
  void flush(net::NodeId id);
  void send_report(net::NodeId id);
  void root_receive(const net::Message& msg);
  void root_complete();

  SedaConfig config_;
  net::Tree tree_;
  sim::Scheduler scheduler_;
  net::Network network_;
  // Sharded engine (only when config_.sim asks for >1 shard): one
  // Scheduler per shard inside engine_, plus one Network per shard bound
  // to that shard's scheduler. network_ stays the configuration surface
  // and is mirrored into the shard networks each round.
  std::unique_ptr<sim::ParallelScheduler> engine_;
  std::vector<std::unique_ptr<net::Network>> shard_nets_;
  // Merged metrics of the last run (see metrics()); the live registry
  // for everything in classic mode.
  obs::MetricsRegistry metrics_;
  std::vector<obs::Counter*> mac_ctrs_;   // per shard: "seda.mac_failures"
  std::vector<obs::Counter*> join_ctrs_;  // per shard: "seda.join_acks"
  std::uint64_t rounds_run_ = 0;
  // Fault-plan replay state (mirrors sap::SapSimulation).
  std::unique_ptr<fault::FaultInjector> faults_;
  bool loss_spiked_ = false;
  double baseline_loss_rate_ = 0.0;
  std::uint64_t baseline_loss_seed_ = 0;
  Bytes master_;
  Bytes round_nonce_;
  std::vector<Dev> devices_;
  /// The parent-side half of each child's uplink key (index: child id).
  std::vector<Bytes> key_at_parent_;
  // Midstate caches over key_at_parent_, index = child id; every writer
  // of key_at_parent_ must refresh the matching cache.
  std::vector<crypto::PrecomputedMac> mac_at_parent_;
  Bytes vrf_sk_;
  Bytes vrf_pk_;
  std::uint32_t join_acks_done_ = 0;

  bool round_active_ = false;
  sim::SimTime t_resp_;
  bool root_done_ = false;
  std::uint32_t root_waiting_ = 0;
  std::uint32_t root_total_ = 0;
  std::uint32_t root_passed_ = 0;
  std::vector<net::NodeId> root_got_children_;
  std::uint32_t mac_failures_ = 0;
  sim::EventHandle root_deadline_;
};

}  // namespace cra::seda
