#include "seda/seda.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "crypto/backend.hpp"
#include "crypto/chacha20.hpp"
#include "obs/trace.hpp"
#include "crypto/ct.hpp"
#include "crypto/kdf.hpp"
#include "crypto/x25519.hpp"

namespace cra::seda {
namespace {

enum SedaMessageKind : std::uint32_t {
  kRequestMsg = 1,
  kReportMsg = 2,
  kJoinInviteMsg = 3,  // parent -> child: parent's static public key
  kJoinAckMsg = 4,     // child -> parent: child's static public key
};

Bytes master_from_seed(std::uint64_t seed) {
  crypto::SecureRandom rng(seed ^ 0x5345'4441'6d73'7472ULL);  // "SEDAmstr"
  return rng.bytes(32);
}

}  // namespace

SedaSimulation::SedaSimulation(SedaConfig config, net::Tree tree,
                               std::uint64_t seed)
    : config_(config),
      tree_(std::move(tree)),
      scheduler_(),
      network_(scheduler_, config.link),
      master_(master_from_seed(seed)),
      devices_(tree_.device_count()),
      key_at_parent_(tree_.device_count() + 1),
      mac_at_parent_(tree_.device_count() + 1) {
  crypto::SecureRandom vrf_rng(seed ^ 0x7672'666b'6579ULL);
  vrf_sk_ = vrf_rng.bytes(32);
  vrf_pk_ = crypto::x25519_base(vrf_sk_);
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    Dev& d = dev(id);
    // Provisioning-time pre-shared keys; run_join() replaces them with
    // X25519-agreed ones.
    d.key_to_parent = edge_key(id);
    d.mac_to_parent.init(config_.alg, d.key_to_parent);
    key_at_parent_[id] = d.key_to_parent;
    mac_at_parent_[id].init(config_.alg, key_at_parent_[id]);
    d.static_sk = crypto::derive_device_key(master_, id, 32, "seda-x25519");
    d.static_pk = crypto::x25519_base(d.static_sk);
  }
  network_.set_handler([this](const net::Message& m) { on_message(m); });
  setup_engine();
}

SedaSimulation SedaSimulation::balanced(SedaConfig config,
                                        std::uint32_t devices,
                                        std::uint64_t seed) {
  return SedaSimulation(
      config, net::balanced_kary_tree(devices, config.tree_arity), seed);
}

void SedaSimulation::setup_engine() {
  // Sharding needs a positive conservative lookahead: the minimum
  // latency of any message is the per-hop processing latency. Configs
  // with zero-latency links stay single-threaded.
  if (!config_.sim.sharded() ||
      config_.link.per_hop_latency <= sim::Duration::zero()) {
    // Classic mode: metrics_ is the live registry for everything.
    network_.bind_metrics(&metrics_);
    mac_ctrs_ = {&metrics_.counter("seda.mac_failures")};
    join_ctrs_ = {&metrics_.counter("seda.join_acks")};
    return;
  }
  engine_ = std::make_unique<sim::ParallelScheduler>(
      tree_.size(), config_.sim, config_.link.per_hop_latency);
  // Engine mode: network_ is only the configuration surface — every
  // instrument lives in its shard's registry and metrics_ holds the
  // post-run merge.
  network_.bind_metrics(nullptr);
  shard_nets_.reserve(engine_->shard_count());
  mac_ctrs_.reserve(engine_->shard_count());
  join_ctrs_.reserve(engine_->shard_count());
  for (std::uint32_t s = 0; s < engine_->shard_count(); ++s) {
    auto net = std::make_unique<net::Network>(engine_->shard(s), config_.link);
    net->set_handler([this](const net::Message& m) { on_message(m); });
    net->bind_metrics(&engine_->shard_metrics(s));
    mac_ctrs_.push_back(&engine_->shard_metrics(s).counter("seda.mac_failures"));
    join_ctrs_.push_back(&engine_->shard_metrics(s).counter("seda.join_acks"));
    // Deliveries cross shard boundaries through the engine's channel as
    // serialized ShardMessages (transport-portable); the arrival time
    // carries the full link delay, which is >= the engine's lookahead by
    // construction. A spent payload (shm serialization) recycles into
    // the SENDING shard's pool — this router runs on that worker.
    net->set_router([this, s](net::Message m, sim::SimTime at) {
      Bytes spent =
          engine_->post_message(m.dst, at, m.src, m.kind, std::move(m.payload));
      if (spent.capacity() != 0) {
        shard_nets_[s]->recycle_payload(std::move(spent));
      }
    });
    shard_nets_.push_back(std::move(net));
  }
  // Delivery sinks run on the destination shard's worker; see the
  // identical wiring in sap::SapSimulation::setup_engine for the
  // owning-vs-view split.
  engine_->set_message_sinks(
      [this](sim::ShardMessage&& sm) {
        net::Message m{sm.src, sm.entity, sm.kind, std::move(sm.payload)};
        on_message(m);
        net_of(m.dst).recycle_payload(std::move(m.payload));
      },
      [this](const sim::ShardMessageView& v) {
        net::Message m{v.src, v.entity, v.kind,
                       net_of(v.entity).acquire_payload()};
        m.payload.assign(v.payload.begin(), v.payload.end());
        on_message(m);
        net_of(m.dst).recycle_payload(std::move(m.payload));
      });
}

void SedaSimulation::sync_shard_networks() {
  // network_ is the public configuration surface; mirror its fault
  // settings onto the per-shard networks before each run. Loss draws
  // come from per-shard deterministic sub-streams so a lossy parallel
  // run is a pure function of (seed, shard count).
  if (network_.has_tamper_hook()) {
    throw std::logic_error(
        "SedaSimulation: tamper hooks require the single-threaded engine "
        "(construct with config.sim.threads == 1)");
  }
  for (std::uint32_t s = 0; s < shard_nets_.size(); ++s) {
    // Per-link accounting shards cleanly: bytes are charged on the
    // sender's shard, so each directed link lives in exactly one map.
    shard_nets_[s]->enable_per_link_accounting(network_.per_link_accounting());
    shard_nets_[s]->reset_accounting();
    if (network_.loss_rate() > 0.0) {
      SplitMix64 mix(network_.loss_seed() +
                     0x9e3779b97f4a7c15ULL * (s + 1) + rounds_run_);
      shard_nets_[s]->set_loss_rate(network_.loss_rate(), mix.next());
    } else {
      shard_nets_[s]->set_loss_rate(0.0);
    }
  }
}

void SedaSimulation::run_engine() {
  if (engine_) {
    engine_->run();
  } else {
    scheduler_.run();
  }
  ++rounds_run_;
}

void SedaSimulation::compromise_device(net::NodeId id) {
  dev(id).compromised = true;
}

void SedaSimulation::restore_device(net::NodeId id) {
  dev(id).compromised = false;
}

void SedaSimulation::set_device_unresponsive(net::NodeId id,
                                             bool unresponsive) {
  dev(id).unresponsive = unresponsive;
}

void SedaSimulation::advance_time(sim::Duration d) {
  if (engine_) {
    const sim::SimTime target = engine_->now() + d;
    arm_faults(target);
    engine_->run_until(target);
    return;
  }
  const sim::SimTime target = scheduler_.now() + d;
  arm_faults(target);
  scheduler_.run_until(target);
}

void SedaSimulation::attach_fault_plan(fault::FaultPlan plan) {
  if (round_active_) {
    throw std::logic_error("attach_fault_plan: round in progress");
  }
  faults_ = std::make_unique<fault::FaultInjector>(std::move(plan));
}

void SedaSimulation::clear_fault_plan() {
  if (round_active_) {
    throw std::logic_error("clear_fault_plan: round in progress");
  }
  faults_.reset();
}

void SedaSimulation::arm_faults(sim::SimTime horizon) {
  if (!faults_) return;
  faults_->arm_until(horizon, [this](const fault::FaultEvent& ev) {
    fault::observe_event(metrics_, ev);
    schedule_fault(ev);
  });
}

void SedaSimulation::schedule_fault(const fault::FaultEvent& ev) {
  using fault::FaultKind;
  switch (ev.kind) {
    case FaultKind::kCrash:
    case FaultKind::kReboot:
    case FaultKind::kSleep:
    case FaultKind::kWake:
    case FaultKind::kLeave:
    case FaultKind::kJoin:
    case FaultKind::kClockSkew: {
      if (ev.device == 0 || ev.device > device_count()) {
        throw std::out_of_range("fault plan: device id out of range");
      }
      if (ev.at <= current_time()) {
        apply_device_fault(ev);
      } else {
        sched(ev.device).schedule_at(ev.at,
                                     [this, ev] { apply_device_fault(ev); });
      }
      break;
    }
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp: {
      if (ev.device >= tree_.size() || ev.peer >= tree_.size()) {
        throw std::out_of_range("fault plan: link endpoint out of range");
      }
      const bool down = ev.kind == FaultKind::kLinkDown;
      apply_link(ev.device, ev.peer, down, ev.at);
      apply_link(ev.peer, ev.device, down, ev.at);
      break;
    }
    case FaultKind::kPartition:
    case FaultKind::kHeal: {
      for (net::NodeId pos : ev.island) {
        if (pos >= tree_.size()) {
          throw std::out_of_range("fault plan: island position out of range");
        }
      }
      const bool down = ev.kind == FaultKind::kPartition;
      for (const auto& [a, b] : fault::partition_cut(tree_, ev.island)) {
        apply_link(a, b, down, ev.at);
        apply_link(b, a, down, ev.at);
      }
      break;
    }
    case FaultKind::kLossSpike:
      if (!loss_spiked_) {
        baseline_loss_rate_ = network_.loss_rate();
        baseline_loss_seed_ = network_.loss_seed();
        loss_spiked_ = true;
      }
      apply_loss(ev.rate, ev.draw, ev.at);
      break;
    case FaultKind::kLossClear:
      loss_spiked_ = false;
      apply_loss(baseline_loss_rate_, baseline_loss_seed_, ev.at);
      break;
    case FaultKind::kProcKill:
      break;  // process-level chaos: only the wire-chaos supervisor acts
  }
}

void SedaSimulation::apply_device_fault(const fault::FaultEvent& ev) {
  using fault::FaultKind;
  Dev& d = dev(ev.device);
  switch (ev.kind) {
    case FaultKind::kCrash:
      // Volatile round state is gone with the power.
      d.unresponsive = true;
      d.got_request = false;
      d.self_done = false;
      d.waiting = 0;
      d.total = 0;
      d.passed = 0;
      d.got_children.clear();
      sched(ev.device).cancel(d.deadline);
      break;
    case FaultKind::kReboot:
    case FaultKind::kWake:
    case FaultKind::kJoin:
      d.unresponsive = false;
      break;
    case FaultKind::kSleep:
    case FaultKind::kLeave:
      // SEDA tracks no membership either: a departed device is an
      // unresponsive leaf until it rejoins.
      d.unresponsive = true;
      break;
    case FaultKind::kClockSkew:
      break;  // SEDA has no synchronized clock to skew
    default:
      break;
  }
}

void SedaSimulation::apply_link(net::NodeId src, net::NodeId dst, bool down,
                                sim::SimTime at) {
  if (at <= current_time()) {
    net_of(src).set_link_down(src, dst, down);
    return;
  }
  sched(src).schedule_at(at, [this, src, dst, down] {
    net_of(src).set_link_down(src, dst, down);
  });
}

void SedaSimulation::apply_loss(double rate, std::uint64_t seed,
                                sim::SimTime at) {
  if (!engine_) {
    if (at <= scheduler_.now()) {
      network_.set_loss_rate(rate, seed);
    } else {
      scheduler_.schedule_at(
          at, [this, rate, seed] { network_.set_loss_rate(rate, seed); });
    }
    return;
  }
  network_.set_loss_rate(rate, seed);
  for (std::uint32_t s = 0; s < shard_nets_.size(); ++s) {
    SplitMix64 mix(seed + 0x9e3779b97f4a7c15ULL * (s + 1) + rounds_run_);
    const std::uint64_t shard_seed = mix.next();
    if (at <= engine_->now()) {
      shard_nets_[s]->set_loss_rate(rate, shard_seed);
    } else {
      engine_->shard(s).schedule_at(at, [this, s, rate, shard_seed] {
        shard_nets_[s]->set_loss_rate(rate, shard_seed);
      });
    }
  }
}

Bytes SedaSimulation::edge_key(net::NodeId child) const {
  // Pairwise key for the (parent(child), child) edge, as established by
  // SEDA's join phase.
  return crypto::derive_device_key(master_, child,
                                   crypto::digest_size(config_.alg),
                                   "seda-edge-key");
}

sim::Duration SedaSimulation::attest_time() const {
  const std::uint64_t blocks =
      crypto::hmac_compression_calls(config_.alg, config_.pmem_size + 4);
  return sim::cycles_to_time(
      config_.attest_overhead_cycles + blocks * config_.cycles_per_block,
      config_.device_hz);
}

sim::Duration SedaSimulation::sig_verify_time() const {
  return sim::cycles_to_time(config_.sig_verify_cycles, config_.device_hz);
}

namespace {

sim::Duration mac_time(const SedaConfig& config, std::size_t message_len) {
  return sim::cycles_to_time(
      crypto::hmac_compression_calls(config.alg, message_len) *
          config.cycles_per_block,
      config.device_hz);
}

}  // namespace

sim::Duration SedaSimulation::predicted_total(std::uint32_t depth) const {
  const sim::Duration hop_req =
      network_.link_delay(config_.request_size());
  const sim::Duration hop_rep = network_.link_delay(config_.report_size());
  const sim::Duration verify = mac_time(config_, config_.report_size() +
                                                     config_.nonce_size);
  const sim::Duration agg =
      sim::cycles_to_time(config_.aggregate_cycles, config_.device_hz);
  return hop_req * static_cast<std::int64_t>(depth) + sig_verify_time() +
         attest_time() +
         (hop_rep + verify + agg) * static_cast<std::int64_t>(depth);
}

std::uint64_t SedaSimulation::predicted_u_ca_bytes(
    std::uint32_t edges) const {
  return (config_.request_size() + config_.report_size() +
          2ULL * config_.link.header_bytes) *
         edges;
}

Bytes SedaSimulation::report_payload(net::NodeId id, std::uint32_t total,
                                     std::uint32_t passed) const {
  // MACed with the CHILD's half of the uplink key: only if join derived
  // the same secret on both ends does the parent accept.
  Bytes body;
  append_u32le(body, total);
  append_u32le(body, passed);
  crypto::MacBuf mac;
  devices_[id - 1].mac_to_parent.mac_into(body, round_nonce_, mac);
  body.insert(body.end(), mac.bytes.begin(),
              mac.bytes.begin() + config_.report_mac_size);
  return body;
}

bool SedaSimulation::report_authentic(net::NodeId child,
                                      BytesView payload) const {
  // Verified with the PARENT's half of the key, through the active
  // crypto backend (a batch of one falls back to the scalar reference,
  // so the work tally is the same either way).
  if (payload.size() != config_.report_size()) return false;
  const crypto::MacJob job{&mac_at_parent_[child],
                           BytesView(payload.data(), 8), round_nonce_};
  crypto::MacBuf expected;
  crypto::active_backend().hmac_batch(&job, 1, &expected);
  return crypto::ct_equal(
      BytesView(payload.data() + 8, config_.report_mac_size),
      BytesView(expected.bytes.data(), config_.report_mac_size));
}

SedaJoinReport SedaSimulation::run_join() {
  obs::Span join_span("seda.join");
  metrics_.reset_values();
  if (engine_) engine_->reset_shard_metrics();
  network_.reset_accounting();
  if (engine_) sync_shard_networks();
  join_acks_done_ = 0;
  const sim::SimTime start = current_time();
  // Vrf invites its children, carrying its public key; invites cascade.
  for (net::NodeId child : tree_.children(0)) {
    Bytes invite = vrf_pk_;
    net_of(0).send(0, child, kJoinInviteMsg, std::move(invite));
  }
  run_engine();

  if (engine_) engine_->merge_metrics_into(metrics_);
  network_.assert_ledgers_consistent();
  for (const auto& net : shard_nets_) net->assert_ledgers_consistent();
  join_acks_done_ =
      static_cast<std::uint32_t>(metrics_.counter_value("seda.join_acks"));
  SedaJoinReport report;
  report.edges = device_count();
  report.total_time = current_time() - start;
  report.bytes = metrics_.counter_value("net.bytes_transmitted");
  report.messages = metrics_.counter_value("net.messages_sent");
  report.complete = join_acks_done_ == device_count();
  for (net::NodeId id = 1; id <= device_count() && report.complete; ++id) {
    report.complete = dev(id).joined;
  }
  join_span.sim_range(start.ns(), current_time().ns());
  return report;
}

void SedaSimulation::corrupt_join_key(net::NodeId child) {
  Bytes& k = key_at_parent_.at(child);
  if (k.empty()) k = Bytes(crypto::digest_size(config_.alg), 0);
  k[0] = static_cast<std::uint8_t>(k[0] ^ 0xff);
  mac_at_parent_[child].init(config_.alg, k);
}

void SedaSimulation::handle_join_invite(net::NodeId id,
                                        const net::Message& msg) {
  Dev& d = dev(id);
  if (msg.payload.size() != 32 || d.unresponsive) return;
  d.parent_pk = msg.payload;
  // Cascade the invite with OUR public key before grinding the DH.
  for (net::NodeId child : tree_.children(id)) {
    net_of(id).send(id, child, kJoinInviteMsg, d.static_pk);
  }
  const sim::Duration dh =
      sim::cycles_to_time(config_.dh_cycles, config_.device_hz);
  sched(id).schedule_after(dh, [this, id] {
    Dev& dd = dev(id);
    const Bytes shared = crypto::x25519(dd.static_sk, dd.parent_pk);
    dd.key_to_parent = crypto::hkdf(shared, /*salt=*/{},
                                    to_bytes("seda-pairwise"),
                                    crypto::digest_size(config_.alg));
    dd.mac_to_parent.init(config_.alg, dd.key_to_parent);
    dd.joined = true;
    // Ack upward with our public key so the parent can derive its half.
    net_of(id).send(id, tree_.parent(id), kJoinAckMsg, dd.static_pk);
  });
}

void SedaSimulation::handle_join_ack(net::NodeId parent,
                                     const net::Message& msg) {
  if (msg.payload.size() != 32) return;
  const net::NodeId child = msg.src;
  if (child == 0 || child > device_count()) return;
  if (parent == 0) {
    // Vrf derives instantly (it is not a constrained device).
    const Bytes shared = crypto::x25519(vrf_sk_, msg.payload);
    key_at_parent_[child] = crypto::hkdf(shared, /*salt=*/{},
                                         to_bytes("seda-pairwise"),
                                         crypto::digest_size(config_.alg));
    mac_at_parent_[child].init(config_.alg, key_at_parent_[child]);
    join_ack_counter(0).inc();
    return;
  }
  if (dev(parent).unresponsive) return;
  const Bytes child_pk = msg.payload;
  const sim::Duration dh =
      sim::cycles_to_time(config_.dh_cycles, config_.device_hz);
  sched(parent).schedule_after(dh, [this, parent, child, child_pk] {
    const Bytes shared = crypto::x25519(dev(parent).static_sk, child_pk);
    key_at_parent_[child] = crypto::hkdf(shared, /*salt=*/{},
                                         to_bytes("seda-pairwise"),
                                         crypto::digest_size(config_.alg));
    mac_at_parent_[child].init(config_.alg, key_at_parent_[child]);
    join_ack_counter(parent).inc();
  });
}

SedaRoundReport SedaSimulation::run_round() {
  if (round_active_) {
    throw std::logic_error("SEDA run_round: round already active");
  }
  round_active_ = true;

  for (net::NodeId id = 1; id <= device_count(); ++id) {
    Dev& d = dev(id);
    d.got_request = false;
    d.self_done = false;
    d.sent = false;
    d.waiting = static_cast<std::uint32_t>(tree_.children(id).size());
    d.total = 0;
    d.passed = 0;
    d.got_children.clear();
    d.pending.clear();
    d.deadline = sim::EventHandle();
  }
  root_done_ = false;
  root_waiting_ = static_cast<std::uint32_t>(tree_.children(0).size());
  root_total_ = 0;
  root_passed_ = 0;
  root_got_children_.clear();
  mac_failures_ = 0;
  obs::Span round_span("seda.round");
  metrics_.reset_values();
  if (engine_) engine_->reset_shard_metrics();
  network_.reset_accounting();
  if (engine_) sync_shard_networks();

  SedaRoundReport report;
  report.devices = device_count();
  report.t_req = current_time();

  // Fresh nonce + (modelled) signature from Vrf.
  crypto::SecureRandom nonce_rng(
      static_cast<std::uint64_t>(current_time().ns()) ^ 0x6e6f6e6365ULL);
  round_nonce_ = nonce_rng.bytes(config_.nonce_size);
  Bytes request = round_nonce_;
  request.resize(config_.request_size(), 0xa5);  // signature placeholder

  for (net::NodeId child : tree_.children(0)) {
    net::Network& net = net_of(0);
    Bytes fwd = net.acquire_payload();
    fwd.assign(request.begin(), request.end());
    net.send(0, child, kRequestMsg, std::move(fwd));
  }

  // Vrf give-up deadline.
  const sim::SimTime give_up =
      current_time() +
      predicted_total(tree_.max_depth() == 0 ? 1 : tree_.max_depth()) +
      config_.report_margin *
          static_cast<std::int64_t>(tree_.max_depth() + 2);
  t_resp_ = give_up;
  root_deadline_ = sched(0).schedule_at(give_up, [this] { root_complete(); });

  arm_faults(give_up);

  run_engine();

  if (engine_) engine_->merge_metrics_into(metrics_);
  network_.assert_ledgers_consistent();
  for (const auto& net : shard_nets_) net->assert_ledgers_consistent();
  mac_failures_ =
      static_cast<std::uint32_t>(metrics_.counter_value("seda.mac_failures"));
  report.t_resp = t_resp_;
  report.total = root_total_;
  report.passed = root_passed_;
  report.verified =
      root_total_ == device_count() && root_passed_ == device_count();
  report.u_ca_bytes = metrics_.counter_value("net.bytes_transmitted");
  report.messages = metrics_.counter_value("net.messages_sent");
  report.mac_failures = mac_failures_;
  round_active_ = false;
  round_span.sim_range(report.t_req.ns(), report.t_resp.ns());
  return report;
}

void SedaSimulation::on_message(const net::Message& msg) {
  if (msg.dst == 0) {
    if (msg.kind == kJoinAckMsg) {
      handle_join_ack(0, msg);
      return;
    }
    root_receive(msg);
    return;
  }
  if (msg.dst > device_count() || dev(msg.dst).unresponsive) return;
  switch (msg.kind) {
    case kRequestMsg:
      handle_request(msg.dst, msg);
      break;
    case kReportMsg:
      handle_report(msg.dst, msg);
      break;
    case kJoinInviteMsg:
      handle_join_invite(msg.dst, msg);
      break;
    case kJoinAckMsg:
      handle_join_ack(msg.dst, msg);
      break;
    default:
      break;
  }
}

void SedaSimulation::handle_request(net::NodeId id, const net::Message& msg) {
  Dev& d = dev(id);
  if (d.got_request) return;
  d.got_request = true;

  // Forward to children immediately (in pooled buffers); signature
  // verification and the self-measurement then occupy this device's CPU.
  for (net::NodeId child : tree_.children(id)) {
    net::Network& net = net_of(id);
    Bytes fwd = net.acquire_payload();
    fwd.assign(msg.payload.begin(), msg.payload.end());
    net.send(id, child, kRequestMsg, std::move(fwd));
  }
  sched(id).schedule_after(sig_verify_time() + attest_time(),
                           [this, id] { self_attested(id); });

  if (!tree_.children(id).empty()) {
    const std::uint32_t levels_below = tree_.max_depth() - tree_.depth(id);
    const sim::Duration hop_req =
        network_.link_delay(config_.request_size());
    const sim::Duration hop_rep = network_.link_delay(config_.report_size());
    const sim::Duration verify =
        mac_time(config_, config_.report_size() + config_.nonce_size);
    const sim::Duration agg =
        sim::cycles_to_time(config_.aggregate_cycles, config_.device_hz);
    const sim::SimTime deadline =
        sched(id).now() +
        hop_req * static_cast<std::int64_t>(levels_below) +
        sig_verify_time() + attest_time() +
        (hop_rep + verify + agg) * static_cast<std::int64_t>(levels_below) +
        // Height-scaled margin: a descendant flushing at its own deadline
        // must still beat ours (see sap::SapSimulation::node_deadline).
        config_.report_margin * static_cast<std::int64_t>(levels_below + 1);
    d.deadline = sched(id).schedule_at(deadline, [this, id] { flush(id); });
  }
}

void SedaSimulation::self_attested(net::NodeId id) {
  Dev& d = dev(id);
  if (d.unresponsive) return;
  d.self_done = true;
  d.total += 1;
  if (!d.compromised) d.passed += 1;
  try_forward(id);
}

void SedaSimulation::handle_report(net::NodeId id, const net::Message& msg) {
  Dev& d = dev(id);
  if (d.sent) return;
  const net::NodeId child = msg.src;
  if (std::find(d.got_children.begin(), d.got_children.end(), child) !=
      d.got_children.end()) {
    return;  // duplicate child report
  }
  d.got_children.push_back(child);
  // Hop-by-hop verification: the parent authenticates every child report
  // with the pairwise key before aggregating. The MAC check costs
  // simulated CPU time per report; the host-side computation is queued
  // so overlapping checks at one parent resolve as a single backend
  // batch when the first one completes (SEDA aggregation hot path).
  d.pending.push_back({child, Bytes(msg.payload.begin(), msg.payload.end()),
                       /*checked=*/false, /*ok=*/false});
  const sim::Duration verify =
      mac_time(config_, config_.report_size() + config_.nonce_size);
  sched(id).schedule_after(verify,
                           [this, id, child] { finish_report_check(id, child); });
}

void SedaSimulation::verify_pending_batch(net::NodeId id) {
  Dev& d = dev(id);
  // Wrong-sized payloads fail without a MAC computation, exactly as the
  // serial report_authentic() short-circuited (zero compressions).
  std::vector<Dev::PendingReport*> todo;
  todo.reserve(d.pending.size());
  for (auto& p : d.pending) {
    if (p.checked) continue;
    if (p.payload.size() != config_.report_size()) {
      p.checked = true;
      p.ok = false;
      continue;
    }
    todo.push_back(&p);
  }
  if (todo.empty()) return;
  std::vector<crypto::MacJob> jobs(todo.size());
  std::vector<crypto::MacBuf> outs(todo.size());
  for (std::size_t i = 0; i < todo.size(); ++i) {
    jobs[i] = {&mac_at_parent_[todo[i]->child],
               BytesView(todo[i]->payload.data(), 8), round_nonce_};
  }
  crypto::active_backend().hmac_batch(jobs.data(), jobs.size(), outs.data());
  for (std::size_t i = 0; i < todo.size(); ++i) {
    todo[i]->checked = true;
    todo[i]->ok = crypto::ct_equal(
        BytesView(todo[i]->payload.data() + 8, config_.report_mac_size),
        BytesView(outs[i].bytes.data(), config_.report_mac_size));
  }
}

void SedaSimulation::finish_report_check(net::NodeId id, net::NodeId child) {
  Dev& dd = dev(id);
  if (dd.sent) return;
  const auto it =
      std::find_if(dd.pending.begin(), dd.pending.end(),
                   [child](const Dev::PendingReport& p) {
                     return p.child == child;
                   });
  if (it == dd.pending.end()) return;
  if (!it->checked) verify_pending_batch(id);
  const bool ok = it->ok;
  const Bytes payload = std::move(it->payload);
  dd.pending.erase(it);
  if (!ok) {
    mac_failure_counter(id).inc();  // forged/tampered report: drop it
  } else {
    dd.total += read_u32le(payload, 0);
    dd.passed += read_u32le(payload, 4);
  }
  if (dd.waiting > 0) --dd.waiting;
  try_forward(id);
}

void SedaSimulation::try_forward(net::NodeId id) {
  Dev& d = dev(id);
  if (d.sent || !d.self_done || d.waiting != 0) return;
  sched(id).cancel(d.deadline);
  send_report(id);
}

void SedaSimulation::flush(net::NodeId id) {
  Dev& d = dev(id);
  if (d.sent || d.unresponsive) return;
  send_report(id);  // partial aggregate; Vrf sees total < N
}

void SedaSimulation::send_report(net::NodeId id) {
  Dev& d = dev(id);
  d.sent = true;
  const sim::Duration agg =
      sim::cycles_to_time(config_.aggregate_cycles, config_.device_hz);
  const Bytes payload = report_payload(id, d.total, d.passed);
  const net::NodeId parent = tree_.parent(id);
  sched(id).schedule_after(agg, [this, id, parent, payload] {
    if (dev(id).unresponsive) return;  // crashed mid-aggregation
    net_of(id).send(id, parent, kReportMsg, payload);
  });
}

void SedaSimulation::root_receive(const net::Message& msg) {
  if (root_done_ || msg.kind != kReportMsg) return;
  if (std::find(root_got_children_.begin(), root_got_children_.end(),
                msg.src) != root_got_children_.end()) {
    return;  // duplicate child report
  }
  root_got_children_.push_back(msg.src);
  if (!report_authentic(msg.src, msg.payload)) {
    mac_failure_counter(0).inc();
  } else {
    root_total_ += read_u32le(msg.payload, 0);
    root_passed_ += read_u32le(msg.payload, 4);
  }
  if (root_waiting_ > 0) --root_waiting_;
  if (root_waiting_ == 0) {
    sched(0).cancel(root_deadline_);
    root_complete();
  }
}

void SedaSimulation::root_complete() {
  if (root_done_) return;
  root_done_ = true;
  t_resp_ = sched(0).now();
}

}  // namespace cra::seda
