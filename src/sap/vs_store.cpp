#include "sap/vs_store.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cra::sap {
namespace {

const char* alg_name(crypto::HashAlg alg) {
  return alg == crypto::HashAlg::kSha1 ? "sha1" : "sha256";
}

}  // namespace

std::string vs_to_string(const Verifier& verifier) {
  std::ostringstream os;
  os << "cra-vs 1\n";
  os << "alg " << alg_name(verifier.config().alg) << "\n";
  os << "devices " << verifier.device_count() << "\n";
  for (net::NodeId id = 1; id <= verifier.device_count(); ++id) {
    os << "cfg " << id << ' ' << to_hex(verifier.expected_content(id))
       << "\n";
  }
  return os.str();
}

std::vector<Bytes> vs_from_string(const std::string& text,
                                  crypto::HashAlg expect_alg,
                                  std::uint32_t expect_devices) {
  std::istringstream is(text);
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "cra-vs" || version != 1) {
    throw std::invalid_argument("vs_from_string: bad header");
  }
  std::string key, alg;
  if (!(is >> key >> alg) || key != "alg") {
    throw std::invalid_argument("vs_from_string: missing alg");
  }
  if (alg != alg_name(expect_alg)) {
    throw std::invalid_argument("vs_from_string: algorithm mismatch");
  }
  std::uint32_t devices = 0;
  if (!(is >> key >> devices) || key != "devices" || devices == 0) {
    throw std::invalid_argument("vs_from_string: missing device count");
  }
  if (expect_devices != 0 && devices != expect_devices) {
    throw std::invalid_argument("vs_from_string: device count mismatch");
  }

  std::vector<Bytes> contents(devices);
  std::vector<bool> seen(devices + 1, false);
  for (std::uint32_t i = 0; i < devices; ++i) {
    std::uint32_t id = 0;
    std::string hex;
    if (!(is >> key >> id >> hex) || key != "cfg" || id == 0 ||
        id > devices) {
      throw std::invalid_argument("vs_from_string: malformed cfg line");
    }
    if (seen[id]) {
      throw std::invalid_argument("vs_from_string: duplicate cfg id");
    }
    seen[id] = true;
    contents[id - 1] = from_hex(hex);
  }
  return contents;
}

void save_vs(const Verifier& verifier, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_vs: cannot open " + path);
  out << vs_to_string(verifier);
  if (!out) throw std::runtime_error("save_vs: write failed for " + path);
}

void load_vs(Verifier& verifier, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_vs: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::vector<Bytes> contents = vs_from_string(
      buffer.str(), verifier.config().alg, verifier.device_count());
  for (net::NodeId id = 1; id <= verifier.device_count(); ++id) {
    verifier.set_expected_content(id, contents[id - 1]);
  }
}

}  // namespace cra::sap
