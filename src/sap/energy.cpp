#include "sap/energy.hpp"

namespace cra::sap {

SwarmEnergyEstimate estimate_swarm_energy(const net::Tree& tree,
                                          const SapConfig& config,
                                          const power::MoteProfile& mote) {
  SwarmEnergyEstimate out;
  double children_sum = 0;
  for (net::NodeId n = 1; n < tree.size(); ++n) {
    if (tree.is_leaf(n)) {
      ++out.leaves;
    } else {
      ++out.inner;
      children_sum += static_cast<double>(tree.children(n).size());
    }
  }

  std::size_t token_bytes = config.token_size();
  switch (config.qoa) {
    case QoaMode::kBinary:
      break;
    case QoaMode::kCount:
      token_bytes += 4;
      break;
    case QoaMode::kIdentify: {
      // Every device's (id || token) entry crosses each link on its path
      // to the root exactly once, so the average report size per link is
      // total-entries x entry-size x depth / links ≈ entry x mean depth.
      double depth_sum = 0;
      for (net::NodeId n = 1; n < tree.size(); ++n) {
        depth_sum += static_cast<double>(tree.depth(n));
      }
      const double mean_depth =
          depth_sum / static_cast<double>(tree.device_count());
      token_bytes = static_cast<std::size_t>(
          static_cast<double>(4 + config.token_size()) * mean_depth);
      break;
    }
  }

  const power::PowerEstimate leaf_est =
      power::estimate(mote, config.chal_size(), token_bytes, 0);
  out.leaf_mw = leaf_est.leaf_mw;

  if (out.inner > 0) {
    const double mean_children =
        children_sum / static_cast<double>(out.inner);
    const power::PowerEstimate inner_est = power::estimate(
        mote, config.chal_size(), token_bytes,
        static_cast<std::size_t>(mean_children + 0.5));
    out.inner_mw = inner_est.inner_mw;
  }

  out.total_mw = out.leaf_mw * out.leaves + out.inner_mw * out.inner;
  out.mean_mw = tree.device_count() > 0
                    ? out.total_mw / tree.device_count()
                    : 0.0;
  return out;
}

}  // namespace cra::sap
