// JSON serialization of round reports (tooling / CI surface).
#pragma once

#include <string>

#include "sap/report.hpp"

namespace cra::sap {

/// One JSON object with the verdict, timeline, phases, network counters
/// and (when present) the identify-mode classification.
std::string report_to_json(const RoundReport& report);

}  // namespace cra::sap
