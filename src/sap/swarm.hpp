// SAP swarm simulation: verifier + N device agents on the discrete-event
// network.
//
// SapSimulation is the top-level object a user of the library touches:
// it performs setup (key provisioning, tree deployment, VS), then runs
// attestation rounds — request (challenge flooding with Equation 9's
// lead time), synchronous attest at t_att, report (XOR aggregation up
// the tree), verify — and returns a RoundReport with the exact phase
// timings and network utilization.
//
// Device agents come in two fidelities:
//   * synthetic (default): per-device state is a key + a content buffer
//     standing in for PMEM; attest cost is the analytic T_att. This is
//     what scales to the paper's 10^6-device sweeps.
//   * VM-backed: attach_vm() binds a node to a full device::Device; the
//     agent then drives the real machine — secure-clock check, MPU-
//     protected key, HMAC over actual PMEM — for end-to-end fidelity at
//     small N (integration tests and examples do this).
//
// Adversary/fault hooks: compromise_device (malware in PMEM),
// set_device_unresponsive (crash/jam), set_clock_skew (broken sync),
// plus everything net::Network exposes (loss, tamper).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "device/clock.hpp"
#include "device/device.hpp"
#include "fault/injector.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sap/config.hpp"
#include "sap/report.hpp"
#include "sap/verifier.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"

namespace cra::sap {

class SapSimulation {
 public:
  SapSimulation(SapConfig config, net::Tree tree, std::uint64_t seed = 1);

  // The network holds a reference to the owned scheduler; the object is
  // pinned to its address (factory returns rely on guaranteed elision).
  SapSimulation(const SapSimulation&) = delete;
  SapSimulation& operator=(const SapSimulation&) = delete;

  /// Convenience: the paper's deployment — balanced `arity`-ary tree.
  static SapSimulation balanced(SapConfig config, std::uint32_t devices,
                                std::uint64_t seed = 1);

  // --- Components ---
  const SapConfig& config() const noexcept { return config_; }
  const net::Tree& tree() const noexcept { return tree_; }
  Verifier& verifier() noexcept { return verifier_; }
  const Verifier& verifier() const noexcept { return verifier_; }
  net::Network& network() noexcept { return network_; }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  const device::SecureClock& clock() const noexcept { return clock_; }
  std::uint32_t device_count() const noexcept { return tree_.device_count(); }

  /// True when rounds execute on the sharded engine (config().sim asked
  /// for more than one shard and the link latency admits a lookahead).
  bool parallel() const noexcept { return engine_ != nullptr; }
  /// The sharded engine, or nullptr in classic single-threaded mode.
  const sim::ParallelScheduler* engine() const noexcept {
    return engine_.get();
  }
  /// Current simulated time regardless of engine mode.
  sim::SimTime current_time() const noexcept {
    return engine_ ? engine_->now() : scheduler_.now();
  }

  /// The merged metrics view of the last round: net.* instruments from
  /// the (per-shard) networks plus the protocol's own sap.* instruments
  /// (sap.repolls counter, sap.inbound_end_ns gauge). Reset at every
  /// round start; in sharded mode the per-shard registries are reduced
  /// into this one in shard order after run(), so its contents are
  /// independent of worker-thread count.
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  // --- Adversary / fault injection (between rounds) ---
  /// Infect device `id`: its actual content diverges from cfg_i.
  void compromise_device(net::NodeId id);
  /// Disinfect: restore actual content to cfg_i.
  void restore_device(net::NodeId id);
  bool is_compromised(net::NodeId id) const;
  /// Crash/jam: the device neither forwards chal nor reports.
  void set_device_unresponsive(net::NodeId id, bool unresponsive);
  /// Clock-synchronization error: the device's secure clock reads
  /// `skew` ahead (+) or behind (−) of true time.
  void set_clock_skew(net::NodeId id, sim::Duration skew);

  /// --- Scripted fault injection (src/fault) ---
  /// Attach a deterministic fault timeline. Events are armed window by
  /// window (each run_round / advance_time hands over the events inside
  /// its horizon) and applied on the scheduler shard owning the touched
  /// state, so replay is byte-identical on both engines at any thread
  /// count. Crash/sleep events use *device ids*; link/partition events
  /// use *tree positions* (identical under the default deployment).
  /// Throws std::logic_error mid-round.
  void attach_fault_plan(fault::FaultPlan plan);
  void clear_fault_plan();
  bool has_fault_plan() const noexcept { return faults_ != nullptr; }
  /// Armed-event tally of the attached plan (nullptr without a plan).
  const fault::FaultTally* fault_tally() const noexcept {
    return faults_ ? &faults_->tally() : nullptr;
  }

  /// --- Heterogeneous swarms ---
  /// Assign device `id` to hardware class `cls` (0 = the base config;
  /// 1..k index config().extra_classes). Throws std::out_of_range for
  /// unknown classes.
  void assign_device_class(net::NodeId id, std::uint8_t cls);
  std::uint8_t device_class(net::NodeId id) const { return dev(id).cls; }
  /// Attest duration of device `id` under its class.
  sim::Duration attest_time_for(net::NodeId id) const;
  /// The measurement phase of a heterogeneous round: slowest class wins.
  sim::Duration max_attest_time() const;

  /// Bind node `id` to a full VM; also registers the VM's current PMEM
  /// as cfg_i in VS and provisions the verifier's key into it is NOT
  /// done here — construct the Device with verifier().device_key(id).
  /// The caller keeps ownership; the Device must outlive the simulation.
  void attach_vm(net::NodeId id, device::Device* vm);

  /// --- Dynamic topologies (SALAD dimension, §II) ---
  /// Replace the deployment tree after mobility/churn. Device identities
  /// (keys, VS entries, compromise state, attached VMs) are stable; only
  /// who-talks-to-whom changes. `device_at_position[pos]` names the
  /// device occupying tree position `pos`; position 0 must hold the
  /// verifier (device id 0) and the rest must be a permutation of
  /// 1..device_count(). Throws std::invalid_argument otherwise.
  /// SAP needs no re-keying on topology change — K_{mi,Vrf} binds a
  /// device to Vrf, not to its neighbors — which this API demonstrates.
  void rebuild_topology(net::Tree tree,
                        std::vector<net::NodeId> device_at_position);
  /// Device occupying tree position `pos` (0 = verifier).
  net::NodeId device_at(net::NodeId pos) const { return dev_at_.at(pos); }
  /// Current tree position of device `id`.
  net::NodeId position_of(net::NodeId id) const { return pos_of_.at(id); }

  /// Switch the QoA mode between rounds (the escalation lever the
  /// AttestationService uses: cheap binary rounds in steady state,
  /// identify-mode localization after an alarm). Throws std::logic_error
  /// mid-round.
  void set_qoa(QoaMode mode);

  /// --- One full round: request → attest → report → verify ---
  RoundReport run_round();

  /// Idle the network: advance simulated time (e.g. between periodic
  /// rounds).
  void advance_time(sim::Duration d);

 private:
  struct Dev {
    Bytes key;
    // Midstate cache over `key` (built at provisioning): attest MACs
    // resume it instead of re-running the HMAC key schedule per round.
    crypto::PrecomputedMac mac;
    Bytes content;      // actual "PMEM" (synthetic path)
    bool compromised = false;
    bool unresponsive = false;
    std::int64_t skew_ns = 0;
    std::uint8_t cls = 0;  // hardware class index
    device::Device* vm = nullptr;

    /// Crash/reboot bookkeeping: set by a reboot fault, cleared when the
    /// device next contributes evidence — the next report entry carries
    /// kEntryRebooted so the verifier can tell "restarted" from
    /// "healthy all along".
    bool rebooted = false;

    // Per-round state.
    std::uint32_t tick = 0;  // the chal this device actually received
    bool got_chal = false;
    bool responded_self = false;
    bool sent = false;
    std::uint32_t waiting = 0;
    std::uint32_t count = 0;  // kCount: tokens aggregated in subtree
    std::uint8_t retries = 0;
    std::uint8_t self_grace = 0;  // adaptive: waits for own late token
    std::vector<net::NodeId> got_children;  // children whose token arrived
    Bytes agg_token;
    Bytes sent_payload;  // cache for repoll answers
    std::vector<DeviceReport> reports;  // kIdentify buffer
    sim::EventHandle deadline;
  };

  Dev& dev(net::NodeId id) { return devices_[id - 1]; }
  const Dev& dev(net::NodeId id) const { return devices_[id - 1]; }
  /// Device state of the occupant of tree position `pos`.
  Dev& dev_at_pos(net::NodeId pos) { return dev(dev_at_[pos]); }

  // Engine routing: protocol handlers never touch scheduler_/network_
  // directly — they go through the shard owning the tree position, which
  // in single-threaded mode is always the classic single pair.
  sim::Scheduler& sched(net::NodeId pos) noexcept {
    return engine_ ? engine_->shard_for(pos) : scheduler_;
  }
  net::Network& net_of(net::NodeId pos) noexcept {
    return engine_ ? *shard_nets_[engine_->shard_of(pos)] : network_;
  }
  // Per-shard round accounting lives in the shard's MetricsRegistry
  // (engine mode) or in metrics_ itself (classic mode); handlers reach
  // their shard's instruments through these cached handles, so the hot
  // path is an increment — no name lookups, no sharing across shards.
  obs::Counter& repoll_counter(net::NodeId pos) noexcept {
    return *repoll_ctrs_[engine_ ? engine_->shard_of(pos) : 0];
  }
  obs::Gauge& inbound_gauge(net::NodeId pos) noexcept {
    return *inbound_gauges_[engine_ ? engine_->shard_of(pos) : 0];
  }
  obs::Counter& backoff_counter(net::NodeId pos) noexcept {
    return *backoff_ctrs_[engine_ ? engine_->shard_of(pos) : 0];
  }
  obs::Counter& unreachable_counter(net::NodeId pos) noexcept {
    return *unreachable_ctrs_[engine_ ? engine_->shard_of(pos) : 0];
  }
  void setup_engine();
  void sync_shard_networks();

  // Fault-plan replay: hand over every not-yet-armed event inside the
  // horizon (driver thread, engines quiescent) and apply/schedule it on
  // the owning shard.
  void arm_faults(sim::SimTime horizon);
  void schedule_fault(const fault::FaultEvent& ev);
  void apply_device_fault(const fault::FaultEvent& ev);
  void apply_link(net::NodeId src, net::NodeId dst, bool down,
                  sim::SimTime at);
  void apply_loss(double rate, std::uint64_t seed, sim::SimTime at);

  // Protocol handlers are keyed by tree *position*; identity-bound state
  // (keys, content) is reached through the position->device map.
  void on_message(const net::Message& msg);
  void handle_chal(net::NodeId pos, const net::Message& msg);
  void handle_token(net::NodeId pos, const net::Message& msg);
  void handle_repoll(net::NodeId pos, const net::Message& msg);
  /// Adaptive mode: a device that never saw the round's chal answers a
  /// chal-carrying re-poll with its own late evidence (kIdentify).
  void late_join(net::NodeId pos, const net::Message& msg);
  void run_attest(net::NodeId pos);
  void accumulate_self(net::NodeId pos, Bytes token);
  void try_forward(net::NodeId pos);
  void flush(net::NodeId pos);
  void send_report(net::NodeId pos);
  void schedule_deadline(net::NodeId pos);
  sim::SimTime node_deadline(net::NodeId pos) const;
  /// Adaptive mode: synthesize an unreachable entry for a silent child.
  void mark_unreachable(net::NodeId pos, net::NodeId child);
  /// Vrf's own adaptive re-poll deadline (legacy uses vrf_deadline).
  sim::SimTime root_stage_deadline() const;
  void root_flush();
  void recompute_subtree_sizes();
  /// Worst-case time for the deepest descendant's report to climb into
  /// `id` after measurement ends (payload-size aware: kIdentify reports
  /// grow with the subtree).
  sim::Duration report_chain_time(net::NodeId id) const;
  void root_receive(const net::Message& msg);
  void root_complete();

  Bytes compute_token(net::NodeId pos, std::uint32_t tick);

  SapConfig config_;
  net::Tree tree_;
  sim::Scheduler scheduler_;
  net::Network network_;
  // Sharded engine (only when config_.sim asks for >1 shard): one
  // Scheduler per shard inside engine_, plus one Network per shard bound
  // to that shard's scheduler, all routing deliveries through the
  // engine's mailboxes. network_ stays the configuration surface (loss
  // rate etc.) and is mirrored into the shard networks each round.
  std::unique_ptr<sim::ParallelScheduler> engine_;
  std::vector<std::unique_ptr<net::Network>> shard_nets_;
  // Merged metrics of the last round (see metrics()); in classic mode
  // also the live registry every instrument writes to directly.
  obs::MetricsRegistry metrics_;
  std::vector<obs::Counter*> repoll_ctrs_;    // per shard: "sap.repolls"
  std::vector<obs::Gauge*> inbound_gauges_;   // "sap.inbound_end_ns"
  std::vector<obs::Counter*> backoff_ctrs_;   // "sap.backoff_wait_ns"
  std::vector<obs::Counter*> unreachable_ctrs_;  // "sap.unreachable_marks"
  std::uint64_t rounds_run_ = 0;
  // Fault-plan replay state. The loss baseline is captured when a spike
  // first fires so a later clear can restore the user's configuration.
  std::unique_ptr<fault::FaultInjector> faults_;
  bool loss_spiked_ = false;
  double baseline_loss_rate_ = 0.0;
  std::uint64_t baseline_loss_seed_ = 0;
  device::SecureClock clock_;
  Verifier verifier_;
  Bytes auth_key_;
  std::vector<Dev> devices_;
  std::vector<std::uint32_t> subtree_size_;  // per tree position
  std::vector<net::NodeId> dev_at_;          // position -> device id
  std::vector<net::NodeId> pos_of_;          // device id -> position

  // Round bookkeeping. Root state is only ever touched by the shard
  // owning tree position 0; per-shard counters live in shard_stats_.
  bool round_active_ = false;
  std::uint32_t round_tick_ = 0;
  Bytes round_chal_;  // adaptive: re-polls carry the challenge payload
  sim::SimTime t_att_time_;
  sim::SimTime t_resp_;
  bool root_done_ = false;
  std::uint32_t root_retries_ = 0;  // adaptive re-polls issued by Vrf
  std::uint32_t root_waiting_ = 0;
  std::uint32_t root_count_ = 0;
  std::vector<net::NodeId> root_got_children_;
  Bytes root_token_;
  std::vector<DeviceReport> root_reports_;
  sim::EventHandle root_deadline_;
};

}  // namespace cra::sap
