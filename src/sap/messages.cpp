#include "sap/messages.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"

namespace cra::sap {

const char* qoa_name(QoaMode mode) noexcept {
  switch (mode) {
    case QoaMode::kBinary: return "binary";
    case QoaMode::kCount: return "count";
    case QoaMode::kIdentify: return "identify";
  }
  return "?";
}

namespace {

Bytes chal_auth_tag(std::uint32_t tick, BytesView auth_key) {
  Bytes message;
  append_u32le(message, tick);
  Bytes mac = crypto::hmac(crypto::HashAlg::kSha256, auth_key, message);
  mac.resize(kChalAuthSize);
  return mac;
}

}  // namespace

Bytes encode_chal(std::uint32_t tick, BytesView auth_key,
                  std::size_t chal_size) {
  if (chal_size < 4 + kChalAuthSize) {
    throw std::invalid_argument("encode_chal: chal_size too small");
  }
  Bytes out;
  out.reserve(chal_size);
  append_u32le(out, tick);
  if (auth_key.empty()) {
    out.resize(4 + kChalAuthSize, 0);
  } else {
    const Bytes tag = chal_auth_tag(tick, auth_key);
    out.insert(out.end(), tag.begin(), tag.end());
  }
  out.resize(chal_size, 0);
  return out;
}

std::optional<ChalView> decode_chal(BytesView payload,
                                    std::size_t chal_size) {
  if (payload.size() != chal_size || chal_size < 4 + kChalAuthSize) {
    return std::nullopt;
  }
  ChalView view;
  view.tick = read_u32le(payload, 0);
  view.auth.assign(payload.begin() + 4, payload.begin() + 4 + kChalAuthSize);
  return view;
}

bool chal_authentic(const ChalView& chal, BytesView auth_key) {
  if (auth_key.empty()) return true;  // authentication disabled
  return crypto::ct_equal(chal.auth, chal_auth_tag(chal.tick, auth_key));
}

Bytes encode_identify(const std::vector<DeviceReport>& reports,
                      std::size_t token_size) {
  Bytes out;
  out.reserve(reports.size() * (4 + token_size));
  for (const auto& r : reports) {
    if (r.token.size() != token_size) {
      throw std::invalid_argument("encode_identify: bad token size");
    }
    append_u32le(out, r.id);
    out.insert(out.end(), r.token.begin(), r.token.end());
  }
  return out;
}

std::optional<std::vector<DeviceReport>> decode_identify(
    BytesView payload, std::size_t token_size) {
  const std::size_t entry = 4 + token_size;
  if (payload.size() % entry != 0) return std::nullopt;
  std::vector<DeviceReport> out;
  out.reserve(payload.size() / entry);
  for (std::size_t off = 0; off < payload.size(); off += entry) {
    DeviceReport r;
    r.id = read_u32le(payload, off);
    r.token.assign(payload.begin() + static_cast<std::ptrdiff_t>(off + 4),
                   payload.begin() + static_cast<std::ptrdiff_t>(off + entry));
    out.push_back(std::move(r));
  }
  return out;
}

const char* entry_status_name(DeviceReportStatus status) noexcept {
  switch (status) {
    case DeviceReportStatus::kEntryOk: return "ok";
    case DeviceReportStatus::kEntryLate: return "late";
    case DeviceReportStatus::kEntryUnreachable: return "unreachable";
    case DeviceReportStatus::kEntryRebooted: return "rebooted";
  }
  return "?";
}

Bytes encode_identify_ex(const std::vector<DeviceReport>& reports,
                         std::size_t token_size) {
  Bytes out;
  out.reserve(reports.size() * (9 + token_size));
  for (const auto& r : reports) {
    if (r.token.size() != token_size) {
      throw std::invalid_argument("encode_identify_ex: bad token size");
    }
    append_u32le(out, r.id);
    out.push_back(static_cast<std::uint8_t>(r.status));
    append_u32le(out, r.tick);
    out.insert(out.end(), r.token.begin(), r.token.end());
  }
  return out;
}

std::optional<std::vector<DeviceReport>> decode_identify_ex(
    BytesView payload, std::size_t token_size) {
  const std::size_t entry = 9 + token_size;
  if (payload.size() % entry != 0) return std::nullopt;
  std::vector<DeviceReport> out;
  out.reserve(payload.size() / entry);
  for (std::size_t off = 0; off < payload.size(); off += entry) {
    DeviceReport r;
    r.id = read_u32le(payload, off);
    const std::uint8_t raw_status = payload[off + 4];
    if (raw_status >
        static_cast<std::uint8_t>(DeviceReportStatus::kEntryRebooted)) {
      return std::nullopt;
    }
    r.status = static_cast<DeviceReportStatus>(raw_status);
    r.tick = read_u32le(payload, off + 5);
    r.token.assign(payload.begin() + static_cast<std::ptrdiff_t>(off + 9),
                   payload.begin() + static_cast<std::ptrdiff_t>(off + entry));
    out.push_back(std::move(r));
  }
  return out;
}

Bytes encode_count_token(BytesView token, std::uint32_t count) {
  Bytes out(token.begin(), token.end());
  append_u32le(out, count);
  return out;
}

std::optional<CountToken> decode_count_token(BytesView payload,
                                             std::size_t token_size) {
  if (payload.size() != token_size + 4) return std::nullopt;
  CountToken out;
  out.token.assign(payload.begin(),
                   payload.begin() + static_cast<std::ptrdiff_t>(token_size));
  out.count = read_u32le(payload, token_size);
  return out;
}

}  // namespace cra::sap
