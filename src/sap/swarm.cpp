#include "sap/swarm.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/kdf.hpp"
#include "obs/trace.hpp"
#include "sap/analysis.hpp"

namespace cra::sap {
namespace {

Bytes master_from_seed(std::uint64_t seed) {
  crypto::SecureRandom rng(seed ^ 0x5a50'6d61'7374'6572ULL);  // "SAPmaster"
  return rng.bytes(32);
}

}  // namespace

SapSimulation::SapSimulation(SapConfig config, net::Tree tree,
                             std::uint64_t seed)
    : config_(config),
      tree_(std::move(tree)),
      scheduler_(),
      network_(scheduler_, config.link),
      clock_(config.device_hz, config.clock_divisor),
      verifier_(config, tree_.device_count(), master_from_seed(seed)),
      devices_(tree_.device_count()) {
  auth_key_ = verifier_.request_auth_key();

  // setup: provision keys and synthetic "firmware" contents; register
  // cfg_i with the verifier.
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    Dev& d = dev(id);
    d.key = verifier_.device_key(id);
    d.mac.init(config_.alg, d.key);
    d.content =
        crypto::derive_device_key(master_from_seed(seed), id,
                                  config_.token_size(), "sap-firmware");
    verifier_.set_expected_content(id, d.content);
  }
  network_.set_handler([this](const net::Message& m) { on_message(m); });

  // Identity position mapping: device i occupies tree position i.
  dev_at_.resize(tree_.size());
  pos_of_.resize(tree_.size());
  for (net::NodeId i = 0; i < tree_.size(); ++i) {
    dev_at_[i] = i;
    pos_of_[i] = i;
  }
  recompute_subtree_sizes();
  setup_engine();
}

void SapSimulation::setup_engine() {
  // Sharding needs a positive conservative lookahead: the minimum
  // latency of any message is the per-hop processing latency (payloads
  // can be empty, transmission time can round to zero). A zero-latency
  // link admits no lookahead, so such configs stay single-threaded.
  if (!config_.sim.sharded() || config_.link.per_hop_latency <= sim::Duration::zero()) {
    // Classic mode: metrics_ is the live registry for everything.
    network_.bind_metrics(&metrics_);
    repoll_ctrs_ = {&metrics_.counter("sap.repolls")};
    inbound_gauges_ = {&metrics_.gauge("sap.inbound_end_ns")};
    backoff_ctrs_ = {&metrics_.counter("sap.backoff_wait_ns")};
    unreachable_ctrs_ = {&metrics_.counter("sap.unreachable_marks")};
    return;
  }
  engine_ = std::make_unique<sim::ParallelScheduler>(
      tree_.size(), config_.sim, config_.link.per_hop_latency);
  // network_ stays the configuration surface but carries no traffic in
  // engine mode — its instruments would only shadow the shard ones.
  network_.bind_metrics(nullptr);
  shard_nets_.reserve(engine_->shard_count());
  repoll_ctrs_.reserve(engine_->shard_count());
  inbound_gauges_.reserve(engine_->shard_count());
  for (std::uint32_t s = 0; s < engine_->shard_count(); ++s) {
    auto net = std::make_unique<net::Network>(engine_->shard(s), config_.link);
    net->set_handler([this](const net::Message& m) { on_message(m); });
    // Deliveries cross shard boundaries through the engine's channel as
    // serialized ShardMessages (transport-portable: the shm rings can't
    // carry closures); the arrival time carries the full link delay,
    // which is >= the engine's lookahead by construction. When the
    // transport serialized the payload out, the spent capacity recycles
    // into the SENDING shard's pool — this router runs on that worker.
    net->set_router([this, s](net::Message m, sim::SimTime at) {
      Bytes spent =
          engine_->post_message(m.dst, at, m.src, m.kind, std::move(m.payload));
      if (spent.capacity() != 0) {
        shard_nets_[s]->recycle_payload(std::move(spent));
      }
    });
    // Shard-confined accounting: the shard's network and the protocol's
    // per-shard instruments write to the shard's own registry; they are
    // merged into metrics_ after every run() (see run_round).
    obs::MetricsRegistry& reg = engine_->shard_metrics(s);
    net->bind_metrics(&reg);
    repoll_ctrs_.push_back(&reg.counter("sap.repolls"));
    inbound_gauges_.push_back(&reg.gauge("sap.inbound_end_ns"));
    backoff_ctrs_.push_back(&reg.counter("sap.backoff_wait_ns"));
    unreachable_ctrs_.push_back(&reg.counter("sap.unreachable_marks"));
    shard_nets_.push_back(std::move(net));
  }
  // Delivery sinks: both run on the DESTINATION shard's worker at the
  // message's arrival time and must be behavior-identical (or the
  // transports would diverge). The owning sink receives the payload
  // buffer intact (same-shard and inproc paths); the view sink rebuilds
  // an owned message from the borrowed bytes (shm path), drawing from
  // the destination shard's pool. Either way the capacity recycles into
  // the destination's network — that is where the next send from this
  // position will acquire from.
  engine_->set_message_sinks(
      [this](sim::ShardMessage&& sm) {
        net::Message m{sm.src, sm.entity, sm.kind, std::move(sm.payload)};
        on_message(m);
        net_of(m.dst).recycle_payload(std::move(m.payload));
      },
      [this](const sim::ShardMessageView& v) {
        net::Message m{v.src, v.entity, v.kind,
                       net_of(v.entity).acquire_payload()};
        m.payload.assign(v.payload.begin(), v.payload.end());
        on_message(m);
        net_of(m.dst).recycle_payload(std::move(m.payload));
      });
}

void SapSimulation::sync_shard_networks() {
  // network_ is the public configuration surface; mirror its fault
  // settings onto the per-shard networks each round. Loss draws come
  // from per-shard deterministic sub-streams (seeded by shard index and
  // round), so a lossy parallel run is a pure function of (seed, shard
  // count) — independent of thread count and OS scheduling.
  if (network_.has_tamper_hook()) {
    throw std::logic_error(
        "SapSimulation: tamper hooks require the single-threaded engine "
        "(construct with config.sim.threads == 1)");
  }
  for (std::uint32_t s = 0; s < shard_nets_.size(); ++s) {
    // Each shard network keeps its own per-link map (a link's sender
    // lives in exactly one shard, so the maps never overlap); merged
    // totals come out of the metrics layer.
    shard_nets_[s]->enable_per_link_accounting(
        network_.per_link_accounting());
    shard_nets_[s]->reset_accounting();
    if (network_.loss_rate() > 0.0) {
      SplitMix64 mix(network_.loss_seed() +
                     0x9e3779b97f4a7c15ULL * (s + 1) + rounds_run_);
      shard_nets_[s]->set_loss_rate(network_.loss_rate(), mix.next());
    } else {
      shard_nets_[s]->set_loss_rate(0.0);
    }
  }
}

void SapSimulation::recompute_subtree_sizes() {
  // Subtree sizes (node counts including the position itself), used by
  // the payload-aware report deadlines. Children always have larger
  // position indices than their parent, so one reverse pass suffices.
  subtree_size_.assign(tree_.size(), 1);
  for (net::NodeId pos = tree_.size() - 1; pos >= 1; --pos) {
    subtree_size_[tree_.parent(pos)] += subtree_size_[pos];
  }
}

void SapSimulation::rebuild_topology(
    net::Tree tree, std::vector<net::NodeId> device_at_position) {
  if (round_active_) {
    throw std::logic_error("rebuild_topology: round in progress");
  }
  if (tree.device_count() != device_count() ||
      device_at_position.size() != tree.size() ||
      device_at_position[0] != 0) {
    throw std::invalid_argument("rebuild_topology: shape mismatch");
  }
  std::vector<net::NodeId> new_pos(tree.size(), net::kNoNode);
  for (net::NodeId pos = 0; pos < tree.size(); ++pos) {
    const net::NodeId id = device_at_position[pos];
    if (id >= tree.size() || new_pos[id] != net::kNoNode) {
      throw std::invalid_argument("rebuild_topology: not a permutation");
    }
    new_pos[id] = pos;
  }
  tree_ = std::move(tree);
  dev_at_ = std::move(device_at_position);
  pos_of_ = std::move(new_pos);
  recompute_subtree_sizes();
}

SapSimulation SapSimulation::balanced(SapConfig config, std::uint32_t devices,
                                      std::uint64_t seed) {
  return SapSimulation(config,
                       net::balanced_kary_tree(devices, config.tree_arity),
                       seed);
}

void SapSimulation::compromise_device(net::NodeId id) {
  Dev& d = dev(id);
  d.compromised = true;
  if (d.vm != nullptr) {
    // One-byte malware implant at PMEM offset 0.
    const std::uint8_t implant =
        static_cast<std::uint8_t>(d.vm->memory().read8(
            d.vm->memory().layout().pmem_base()) ^ 0xff);
    d.vm->adv_infect_pmem(0, BytesView(&implant, 1));
  } else {
    d.content[0] = static_cast<std::uint8_t>(d.content[0] ^ 0xff);
  }
}

void SapSimulation::restore_device(net::NodeId id) {
  Dev& d = dev(id);
  d.compromised = false;
  if (d.vm != nullptr) {
    d.vm->memory().load(device::Section::kPmem,
                        verifier_.expected_content(id));
  } else {
    d.content = verifier_.expected_content(id);
  }
}

bool SapSimulation::is_compromised(net::NodeId id) const {
  return dev(id).compromised;
}

void SapSimulation::set_device_unresponsive(net::NodeId id,
                                            bool unresponsive) {
  dev(id).unresponsive = unresponsive;
}

void SapSimulation::set_clock_skew(net::NodeId id, sim::Duration skew) {
  dev(id).skew_ns = skew.ns();
  if (dev(id).vm != nullptr) {
    dev(id).vm->sync_clock(current_time(), skew);
  }
}

void SapSimulation::attach_fault_plan(fault::FaultPlan plan) {
  if (round_active_) {
    throw std::logic_error("attach_fault_plan: round in progress");
  }
  faults_ = std::make_unique<fault::FaultInjector>(std::move(plan));
}

void SapSimulation::clear_fault_plan() {
  if (round_active_) {
    throw std::logic_error("clear_fault_plan: round in progress");
  }
  faults_.reset();
}

void SapSimulation::arm_faults(sim::SimTime horizon) {
  if (!faults_) return;
  faults_->arm_until(horizon, [this](const fault::FaultEvent& ev) {
    fault::observe_event(metrics_, ev);
    schedule_fault(ev);
  });
}

void SapSimulation::schedule_fault(const fault::FaultEvent& ev) {
  using fault::FaultKind;
  switch (ev.kind) {
    case FaultKind::kCrash:
    case FaultKind::kReboot:
    case FaultKind::kSleep:
    case FaultKind::kWake:
    case FaultKind::kLeave:
    case FaultKind::kJoin:
    case FaultKind::kClockSkew: {
      if (ev.device == 0 || ev.device > device_count()) {
        throw std::out_of_range("fault plan: device id out of range");
      }
      const net::NodeId pos = pos_of_[ev.device];
      if (ev.at <= current_time()) {
        apply_device_fault(ev);
      } else {
        sched(pos).schedule_at(ev.at,
                               [this, ev] { apply_device_fault(ev); });
      }
      break;
    }
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp: {
      if (ev.device >= tree_.size() || ev.peer >= tree_.size()) {
        throw std::out_of_range("fault plan: link endpoint out of range");
      }
      const bool down = ev.kind == FaultKind::kLinkDown;
      apply_link(ev.device, ev.peer, down, ev.at);
      apply_link(ev.peer, ev.device, down, ev.at);
      break;
    }
    case FaultKind::kPartition:
    case FaultKind::kHeal: {
      for (net::NodeId pos : ev.island) {
        if (pos >= tree_.size()) {
          throw std::out_of_range("fault plan: island position out of range");
        }
      }
      const bool down = ev.kind == FaultKind::kPartition;
      for (const auto& [a, b] : fault::partition_cut(tree_, ev.island)) {
        apply_link(a, b, down, ev.at);
        apply_link(b, a, down, ev.at);
      }
      break;
    }
    case FaultKind::kLossSpike:
      // The clear event restores whatever the user had configured before
      // the first spike fired.
      if (!loss_spiked_) {
        baseline_loss_rate_ = network_.loss_rate();
        baseline_loss_seed_ = network_.loss_seed();
        loss_spiked_ = true;
      }
      apply_loss(ev.rate, ev.draw, ev.at);
      break;
    case FaultKind::kLossClear:
      loss_spiked_ = false;
      apply_loss(baseline_loss_rate_, baseline_loss_seed_, ev.at);
      break;
    case FaultKind::kProcKill:
      break;  // process-level chaos: only the wire-chaos supervisor acts
  }
}

void SapSimulation::apply_device_fault(const fault::FaultEvent& ev) {
  using fault::FaultKind;
  const net::NodeId pos = pos_of_[ev.device];
  Dev& d = dev(ev.device);
  switch (ev.kind) {
    case FaultKind::kCrash:
      // Volatile state is gone: the device forgets the round entirely
      // (it can only rejoin via a chal-carrying re-poll after a reboot).
      // `sent` survives — a report that already left is on the wire.
      d.unresponsive = true;
      d.got_chal = false;
      d.responded_self = false;
      d.waiting = 0;
      d.count = 0;
      d.got_children.clear();
      d.agg_token.assign(config_.token_size(), 0);
      d.reports.clear();
      d.sent_payload.clear();
      sched(pos).cancel(d.deadline);
      break;
    case FaultKind::kReboot:
      d.unresponsive = false;
      d.rebooted = true;
      break;
    case FaultKind::kSleep:
      // Radio off, state retained (duty-cycling, not a crash).
      d.unresponsive = true;
      break;
    case FaultKind::kWake:
      d.unresponsive = false;
      break;
    case FaultKind::kLeave:
      // Departed the swarm: SAP has no membership view, so a device out
      // of radio range is simply unreachable until it wanders back.
      d.unresponsive = true;
      break;
    case FaultKind::kJoin:
      d.unresponsive = false;
      break;
    case FaultKind::kClockSkew:
      d.skew_ns = ev.skew_ns;
      if (d.vm != nullptr) {
        d.vm->sync_clock(sched(pos).now(), sim::Duration(ev.skew_ns));
      }
      break;
    default:
      break;
  }
}

void SapSimulation::apply_link(net::NodeId src, net::NodeId dst, bool down,
                               sim::SimTime at) {
  // Loss/outage checks run on the *sending* side, so the switch lives on
  // the shard owning the source position.
  if (at <= current_time()) {
    net_of(src).set_link_down(src, dst, down);
    return;
  }
  sched(src).schedule_at(at, [this, src, dst, down] {
    net_of(src).set_link_down(src, dst, down);
  });
}

void SapSimulation::apply_loss(double rate, std::uint64_t seed,
                               sim::SimTime at) {
  if (!engine_) {
    if (at <= scheduler_.now()) {
      network_.set_loss_rate(rate, seed);
    } else {
      scheduler_.schedule_at(
          at, [this, rate, seed] { network_.set_loss_rate(rate, seed); });
    }
    return;
  }
  // Engine mode: network_ is the quiescent configuration surface — flip
  // it now (driver thread) so the next round's mirror sees the new rate;
  // the live per-shard networks switch at the event time on their own
  // shard, each with a deterministic per-shard sub-stream.
  network_.set_loss_rate(rate, seed);
  for (std::uint32_t s = 0; s < shard_nets_.size(); ++s) {
    SplitMix64 mix(seed + 0x9e3779b97f4a7c15ULL * (s + 1) + rounds_run_);
    const std::uint64_t shard_seed = mix.next();
    if (at <= engine_->now()) {
      shard_nets_[s]->set_loss_rate(rate, shard_seed);
    } else {
      engine_->shard(s).schedule_at(at, [this, s, rate, shard_seed] {
        shard_nets_[s]->set_loss_rate(rate, shard_seed);
      });
    }
  }
}

void SapSimulation::assign_device_class(net::NodeId id, std::uint8_t cls) {
  if (cls > config_.extra_classes.size()) {
    throw std::out_of_range("assign_device_class: unknown class");
  }
  dev(id).cls = cls;
}

sim::Duration SapSimulation::attest_time_for(net::NodeId id) const {
  const std::uint8_t cls = dev(id).cls;
  if (cls == 0) return attest_time(config_);
  const DeviceClassSpec& spec = config_.extra_classes[cls - 1];
  const std::uint64_t blocks =
      crypto::hmac_compression_calls(config_.alg, spec.pmem_size + 4);
  return sim::cycles_to_time(
      config_.attest_overhead_cycles + blocks * spec.cycles_per_block,
      spec.hz);
}

sim::Duration SapSimulation::max_attest_time() const {
  sim::Duration worst = attest_time(config_);
  for (const DeviceClassSpec& spec : config_.extra_classes) {
    const std::uint64_t blocks =
        crypto::hmac_compression_calls(config_.alg, spec.pmem_size + 4);
    const sim::Duration t = sim::cycles_to_time(
        config_.attest_overhead_cycles + blocks * spec.cycles_per_block,
        spec.hz);
    if (t > worst) worst = t;
  }
  return worst;
}

void SapSimulation::attach_vm(net::NodeId id, device::Device* vm) {
  if (vm == nullptr) {
    throw std::invalid_argument("attach_vm: null device");
  }
  Dev& d = dev(id);
  d.vm = vm;
  verifier_.set_expected_content(id, vm->expected_pmem());
}

void SapSimulation::advance_time(sim::Duration d) {
  if (engine_) {
    const sim::SimTime target = engine_->now() + d;
    arm_faults(target);
    engine_->run_until(target);
    return;
  }
  const sim::SimTime target = scheduler_.now() + d;
  arm_faults(target);
  scheduler_.run_until(target);
}

void SapSimulation::set_qoa(QoaMode mode) {
  if (round_active_) {
    throw std::logic_error("set_qoa: round in progress");
  }
  config_.qoa = mode;
}

Bytes SapSimulation::compute_token(net::NodeId pos, std::uint32_t tick) {
  const net::NodeId id = dev_at_[pos];
  Dev& d = dev(id);
  const sim::SimTime now = sched(pos).now();
  if (d.vm != nullptr) {
    // Full-fidelity path: synchronize the VM's secure clock with global
    // time (the network-wide clock), then run the real attest TCB.
    d.vm->sync_clock(now, sim::Duration(d.skew_ns));
    d.vm->invoke_attest(tick);
    return d.vm->read_token();
  }
  // Synthetic path: the device's clock check, then
  // HMAC_{K}(content || chal) — content stands in for PMEM(mi, t).
  const std::uint32_t local_tick = clock_.read_at_time(
      now, sim::Duration(d.skew_ns));
  if (local_tick != tick) {
    return Bytes(config_.token_size(), 0);
  }
  std::uint8_t tick_le[4];
  store_u32le(tick_le, tick);
  return d.mac.mac(d.content, BytesView(tick_le, 4));
}

RoundReport SapSimulation::run_round() {
  if (round_active_) {
    throw std::logic_error("run_round: round already active");
  }
  round_active_ = true;
  obs::Span round_span("sap.round");

  // Round boundary: zero every instrument (registrations and cached
  // handles survive), classic and per-shard alike.
  metrics_.reset_values();
  if (engine_) engine_->reset_shard_metrics();

  // Reset per-round device state.
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    Dev& d = dev(id);
    d.tick = 0;
    d.got_chal = false;
    d.responded_self = false;
    d.sent = false;
    d.waiting =
        static_cast<std::uint32_t>(tree_.children(pos_of_[id]).size());
    d.count = 0;
    d.retries = 0;
    d.self_grace = 0;
    d.got_children.clear();
    d.agg_token.assign(config_.token_size(), 0);
    d.sent_payload.clear();
    d.reports.clear();
    d.deadline = sim::EventHandle();
  }
  root_done_ = false;
  root_retries_ = 0;
  root_waiting_ = static_cast<std::uint32_t>(tree_.children(0).size());
  root_count_ = 0;
  root_got_children_.clear();
  root_token_.assign(config_.token_size(), 0);
  root_reports_.clear();
  network_.reset_accounting();
  if (engine_) sync_shard_networks();

  RoundReport report;
  report.devices = device_count();
  report.t_chal = current_time();

  // request: pick t_att per Equation 9 (+ slack), quantized to the next
  // secure-clock tick, and flood chal down the tree.
  const sim::SimTime lower_bound =
      report.t_chal + request_lead_time(config_, tree_.max_depth());
  round_tick_ = clock_.time_to_tick_ceil(lower_bound);
  t_att_time_ = clock_.tick_to_time(round_tick_);
  report.chal_tick = round_tick_;
  report.t_att = t_att_time_;
  report.measurement_end = t_att_time_ + max_attest_time();

  const Bytes chal =
      encode_chal(round_tick_, auth_key_, config_.chal_size());
  round_chal_ = chal;
  for (net::NodeId child : tree_.children(0)) {
    net::Network& net = net_of(0);
    Bytes fwd = net.acquire_payload();
    fwd.assign(chal.begin(), chal.end());
    net.send(0, child, kChalMsg, std::move(fwd));
  }

  // Give-up deadline for Vrf (covers lost subtrees and repolls).
  const sim::Duration repoll_allowance =
      config_.adaptive.enabled
          ? config_.adaptive.budget() +
                (config_.report_margin + hop_time(config_) * 2) *
                    static_cast<std::int64_t>(config_.adaptive.max_repolls + 1)
          : (config_.report_margin + hop_time(config_) * 2) *
                static_cast<std::int64_t>(
                    config_.retransmit ? config_.max_retries + 1 : 1);
  const sim::SimTime vrf_deadline =
      report.measurement_end + report_chain_time(0) + repoll_allowance +
      config_.report_margin *
          static_cast<std::int64_t>(tree_.max_depth() + 2);
  t_resp_ = vrf_deadline;
  if (config_.adaptive.enabled) {
    // Vrf re-polls its own children through the same backoff schedule
    // instead of giving up in one shot at the worst-case deadline.
    root_deadline_ = sched(0).schedule_at(root_stage_deadline(),
                                          [this] { root_flush(); });
  } else {
    root_deadline_ = sched(0).schedule_at(
        vrf_deadline, [this] { root_complete(); });
  }

  // Hand this window's scripted faults to the engines. The horizon
  // covers the whole round including every possible adaptive re-poll.
  arm_faults(vrf_deadline);

  if (engine_) {
    engine_->run();
  } else {
    scheduler_.run();
  }
  ++rounds_run_;

  // Reduce per-shard registries into the merged view (fixed shard
  // order, engine quiescent) — the single source every report field
  // below reads from. In classic mode metrics_ is already live.
  if (engine_) engine_->merge_metrics_into(metrics_);
  network_.assert_ledgers_consistent();
  for (const auto& net : shard_nets_) net->assert_ledgers_consistent();

  report.inbound_end = report.t_chal;
  {
    const obs::Gauge& g = metrics_.gauge("sap.inbound_end_ns");
    if (g.is_set() && sim::SimTime(g.value()) > report.inbound_end) {
      report.inbound_end = sim::SimTime(g.value());
    }
  }
  report.repolls =
      static_cast<std::uint32_t>(metrics_.counter_value("sap.repolls"));
  report.backoff_wait_ns = metrics_.counter_value("sap.backoff_wait_ns");
  report.t_resp = t_resp_;
  report.u_ca_bytes = metrics_.counter_value("net.bytes_transmitted");
  report.messages = metrics_.counter_value("net.messages_sent");
  report.dropped = metrics_.counter_value("net.messages_dropped");

  switch (config_.qoa) {
    case QoaMode::kBinary:
      report.responded = root_waiting_ == 0 ? device_count() : 0;
      report.verified = verifier_.verify(root_token_, round_tick_);
      break;
    case QoaMode::kCount:
      report.responded = root_count_;
      report.verified = root_count_ == device_count() &&
                        verifier_.verify(root_token_, round_tick_);
      break;
    case QoaMode::kIdentify:
      if (config_.adaptive.enabled) {
        // Degraded-mode verdict: classify every device instead of the
        // all-or-nothing identify outcome.
        report.degraded = verifier_.classify(root_reports_, round_tick_);
        std::uint32_t responded = 0;
        for (const auto& r : root_reports_) {
          if (r.status != DeviceReportStatus::kEntryUnreachable) ++responded;
        }
        report.responded = responded;
        report.identify.bad = report.degraded.untrusted_ids;
        report.identify.missing = report.degraded.unreachable_ids;
        report.verified = report.degraded.all_healthy();
      } else {
        report.responded = static_cast<std::uint32_t>(root_reports_.size());
        report.identify =
            verifier_.verify_identify(root_reports_, round_tick_);
        report.verified = report.identify.all_good();
      }
      break;
  }

  round_active_ = false;

  // Trace the round on both clocks: the wall-clock span closes when
  // round_span dies; the simulated-time lane gets the Figure 3(b)
  // phase breakdown as one span per phase.
  round_span.sim_range(report.t_chal.ns(), report.t_resp.ns());
  if (obs::TraceSink* sink = obs::global_sink()) {
    sink->sim_span("sap.inbound", report.t_chal.ns(),
                   report.inbound_end.ns());
    sink->sim_span("sap.slack", report.inbound_end.ns(), report.t_att.ns());
    sink->sim_span("sap.measurement", report.t_att.ns(),
                   report.measurement_end.ns());
    sink->sim_span("sap.outbound", report.measurement_end.ns(),
                   report.t_resp.ns());
  }
  return report;
}

void SapSimulation::on_message(const net::Message& msg) {
  // Messages travel between tree positions; position 0 is Vrf.
  if (msg.dst == 0) {
    root_receive(msg);
    return;
  }
  if (msg.dst > device_count()) return;  // stray/tampered address
  if (dev_at_pos(msg.dst).unresponsive) return;

  switch (msg.kind) {
    case kChalMsg:
      handle_chal(msg.dst, msg);
      break;
    case kTokenMsg:
      handle_token(msg.dst, msg);
      break;
    case kRepollMsg:
      handle_repoll(msg.dst, msg);
      break;
    default:
      break;  // unknown kind: drop
  }
}

void SapSimulation::handle_chal(net::NodeId pos, const net::Message& msg) {
  Dev& d = dev_at_pos(pos);
  if (d.got_chal) return;  // duplicate (replay or adversarial copy)

  const auto chal = decode_chal(msg.payload, config_.chal_size());
  if (!chal) return;  // malformed
  if (!auth_key_.empty() && !chal_authentic(*chal, auth_key_)) {
    return;  // §VIII DoS mitigation: drop unauthenticated requests
  }
  // Staleness check against the device's OWN secure clock (this is what
  // the monotonically increasing clock buys in §V-C: chal can never
  // repeat, because a tick in the local past is plainly unanswerable —
  // no global round state needed).
  const sim::SimTime now = sched(pos).now();
  const std::uint32_t local_now =
      clock_.read_at_time(now, sim::Duration(d.skew_ns));
  if (chal->tick < local_now) return;
  d.got_chal = true;
  d.tick = chal->tick;
  inbound_gauge(pos).max_in(now.ns());

  // Forward chal immediately to all children; the per-child copies are
  // staged in pooled buffers (one fresh allocation per shard at most —
  // every later copy reuses a recycled delivery buffer).
  for (net::NodeId child : tree_.children(pos)) {
    net::Network& net = net_of(pos);
    Bytes fwd = net.acquire_payload();
    fwd.assign(msg.payload.begin(), msg.payload.end());
    net.send(pos, child, kChalMsg, std::move(fwd));
  }

  // Schedule attest when the device's own clock reaches the tick.
  const sim::SimTime fire_global =
      clock_.tick_to_time(chal->tick) - sim::Duration(d.skew_ns);
  const sim::SimTime when = fire_global > now ? fire_global : now;
  sched(pos).schedule_at(when, [this, pos] { run_attest(pos); });

  // Inner nodes arm a report deadline in case children go silent.
  if (!tree_.children(pos).empty()) {
    schedule_deadline(pos);
  }
}

void SapSimulation::run_attest(net::NodeId pos) {
  const net::NodeId id = dev_at_[pos];
  Dev& d = dev(id);
  if (d.unresponsive) return;
  Bytes token = compute_token(pos, d.tick);
  // Token is ready T_att after invocation (per this device's hardware
  // class); aggregation happens then.
  sched(pos).schedule_after(
      attest_time_for(id),
      [this, pos, t = std::move(token)]() mutable {
        accumulate_self(pos, std::move(t));
      });
}

void SapSimulation::accumulate_self(net::NodeId pos, Bytes token) {
  const net::NodeId id = dev_at_[pos];
  Dev& d = dev(id);
  if (d.unresponsive) return;  // crashed between attest and aggregation
  d.responded_self = true;
  if (config_.qoa == QoaMode::kIdentify) {
    if (config_.adaptive.enabled) {
      d.reports.push_back(DeviceReport{
          id, token,
          d.rebooted ? DeviceReportStatus::kEntryRebooted
                     : DeviceReportStatus::kEntryOk,
          d.tick});
      d.rebooted = false;  // evidence delivered; flag is consumed
    } else {
      d.reports.push_back(DeviceReport{id, token});  // stable device id
    }
  }
  xor_inplace(d.agg_token, token);
  ++d.count;
  try_forward(pos);
}

void SapSimulation::handle_token(net::NodeId pos, const net::Message& msg) {
  Dev& d = dev_at_pos(pos);
  if (d.sent) return;  // already flushed; late token is lost information
  // One token per child per round: duplicates (adversarial copies, or a
  // repoll answer racing the original) would cancel under XOR.
  if (std::find(d.got_children.begin(), d.got_children.end(), msg.src) !=
      d.got_children.end()) {
    return;
  }
  switch (config_.qoa) {
    case QoaMode::kBinary: {
      if (msg.payload.size() != config_.token_size()) return;
      xor_inplace(d.agg_token, msg.payload);
      break;
    }
    case QoaMode::kCount: {
      const auto ct = decode_count_token(msg.payload, config_.token_size());
      if (!ct) return;
      xor_inplace(d.agg_token, ct->token);
      d.count += ct->count;
      break;
    }
    case QoaMode::kIdentify: {
      const auto reports =
          config_.adaptive.enabled
              ? decode_identify_ex(msg.payload, config_.token_size())
              : decode_identify(msg.payload, config_.token_size());
      if (!reports) return;
      d.reports.insert(d.reports.end(), reports->begin(), reports->end());
      break;
    }
  }
  d.got_children.push_back(msg.src);  // child *positions*
  if (d.waiting > 0) --d.waiting;
  try_forward(pos);
}

void SapSimulation::handle_repoll(net::NodeId pos, const net::Message& msg) {
  Dev& d = dev_at_pos(pos);
  if (!d.got_chal) {
    // Never saw the round — adaptive re-polls carry the challenge so a
    // rebooted/healed device can still contribute late evidence.
    late_join(pos, msg);
    return;
  }
  if (!d.sent_payload.empty()) {
    // Resend the cached report.
    net_of(pos).send(pos, tree_.parent(pos), kTokenMsg, d.sent_payload);
  }
  // If not yet flushed, the pending deadline/forward path will answer.
}

void SapSimulation::late_join(net::NodeId pos, const net::Message& msg) {
  if (!config_.adaptive.enabled || msg.payload.empty()) return;
  Dev& d = dev_at_pos(pos);
  const auto chal = decode_chal(msg.payload, config_.chal_size());
  if (!chal) return;
  if (!auth_key_.empty() && !chal_authentic(*chal, auth_key_)) return;
  d.got_chal = true;
  d.tick = chal->tick;
  // The synchronized measurement is over; in the aggregated modes a
  // token over the current (later) tick would corrupt the XOR, so the
  // device sits the round out and rejoins cleanly next round. kIdentify
  // carries the late evidence explicitly: attest the *current* tick and
  // report it as kEntryLate — the verifier accepts it iff the tick is
  // not older than the challenge and the token verifies at that tick.
  if (config_.qoa != QoaMode::kIdentify) return;
  const net::NodeId id = dev_at_[pos];
  const sim::SimTime now = sched(pos).now();
  const std::uint32_t local_tick =
      clock_.read_at_time(now, sim::Duration(d.skew_ns));
  Bytes token = compute_token(pos, local_tick);
  DeviceReport entry{id, std::move(token), DeviceReportStatus::kEntryLate,
                     local_tick};
  d.rebooted = false;
  d.sent = true;  // self-only report; the subtree recovers next round
  Bytes payload = encode_identify_ex({entry}, config_.token_size());
  const net::NodeId parent = tree_.parent(pos);
  // The report leaves once the attest computation and aggregation are
  // done; only then does it become available for re-poll resends.
  sched(pos).schedule_after(
      attest_time_for(id) + aggregate_time(config_),
      [this, pos, parent, p = std::move(payload)]() mutable {
        Dev& dd = dev_at_pos(pos);
        if (dd.unresponsive) return;
        dd.sent_payload = p;
        net_of(pos).send(pos, parent, kTokenMsg, std::move(p));
      });
}

void SapSimulation::try_forward(net::NodeId pos) {
  Dev& d = dev_at_pos(pos);
  if (d.sent || !d.responded_self || d.waiting != 0) return;
  sched(pos).cancel(d.deadline);
  send_report(pos);
}

void SapSimulation::flush(net::NodeId pos) {
  Dev& d = dev_at_pos(pos);
  if (d.sent || d.unresponsive) return;
  // Children whose token never arrived. Computed up front so a repoll
  // round is only *charged* when somebody is actually missing — a child
  // whose report landed between our deadline firing and this flush (the
  // late-report race) must not burn a re-poll slot.
  std::vector<net::NodeId> missing;
  for (net::NodeId child : tree_.children(pos)) {
    if (std::find(d.got_children.begin(), d.got_children.end(), child) ==
        d.got_children.end()) {
      missing.push_back(child);
    }
  }

  if (config_.adaptive.enabled) {
    if (!missing.empty() && d.retries < config_.adaptive.max_repolls) {
      ++d.retries;
      repoll_counter(pos).inc();
      for (net::NodeId child : missing) {
        // Adaptive re-polls carry the round challenge so a device that
        // missed the flood entirely can still late-join.
        net::Network& net = net_of(pos);
        Bytes repoll = net.acquire_payload();
        repoll.assign(round_chal_.begin(), round_chal_.end());
        net.send(pos, child, kRepollMsg, std::move(repoll));
      }
      const sim::Duration backoff = config_.adaptive.backoff_for(d.retries);
      backoff_counter(pos).inc(static_cast<std::uint64_t>(backoff.ns()));
      d.deadline =
          sched(pos).schedule_after(backoff, [this, pos] { flush(pos); });
      return;
    }
    if (missing.empty() && !d.responded_self &&
        d.self_grace < config_.adaptive.max_repolls) {
      // All children answered but our own token is still pending (late
      // attest under clock skew): wait out the grace window instead of
      // reporting a hole we could still fill.
      ++d.self_grace;
      d.deadline = sched(pos).schedule_after(
          config_.adaptive.backoff_for(d.self_grace),
          [this, pos] { flush(pos); });
      return;
    }
    // Budget exhausted: classify what never answered instead of leaving
    // the verifier to infer it from a broken XOR.
    if (config_.qoa == QoaMode::kIdentify) {
      for (net::NodeId child : missing) mark_unreachable(pos, child);
    }
    send_report(pos);
    return;
  }

  if (config_.retransmit && d.retries < config_.max_retries) {
    // Retry bookkeeping still advances (it widens node_deadline), but
    // with nothing missing there is nothing to re-poll and no repoll to
    // count.
    ++d.retries;
    if (!missing.empty()) {
      repoll_counter(pos).inc();
      for (net::NodeId child : missing) {
        net_of(pos).send(pos, child, kRepollMsg, Bytes{});
      }
    }
    schedule_deadline(pos);
    return;
  }
  // Give up on missing children; forward the partial aggregate. The
  // verifier's XOR will mismatch (binary) or the count/reports expose
  // the gap — unresponsiveness must fail attestation (Definition 1).
  send_report(pos);
}

void SapSimulation::mark_unreachable(net::NodeId pos, net::NodeId child) {
  // One synthesized entry for the silent child itself; its descendants
  // simply have no entry, which the verifier classifies as unreachable
  // too. The zero token keeps extended entries fixed-size.
  Dev& d = dev_at_pos(pos);
  d.reports.push_back(DeviceReport{dev_at_[child],
                                   Bytes(config_.token_size(), 0),
                                   DeviceReportStatus::kEntryUnreachable, 0});
  unreachable_counter(pos).inc();
}

void SapSimulation::send_report(net::NodeId pos) {
  Dev& d = dev_at_pos(pos);
  // Aggregation cost T_agg before the token leaves the node.
  const sim::Duration agg = aggregate_time(config_);
  Bytes payload;
  switch (config_.qoa) {
    case QoaMode::kBinary:
      payload = d.agg_token;
      break;
    case QoaMode::kCount:
      payload = encode_count_token(d.agg_token, d.count);
      break;
    case QoaMode::kIdentify:
      payload = config_.adaptive.enabled
                    ? encode_identify_ex(d.reports, config_.token_size())
                    : encode_identify(d.reports, config_.token_size());
      break;
  }
  d.sent = true;
  d.sent_payload = payload;
  const net::NodeId parent = tree_.parent(pos);
  sched(pos).schedule_after(agg, [this, pos, parent,
                                  p = std::move(payload)]() mutable {
    if (dev_at_pos(pos).unresponsive) return;  // crashed mid-aggregation
    net_of(pos).send(pos, parent, kTokenMsg, std::move(p));
  });
}

void SapSimulation::schedule_deadline(net::NodeId pos) {
  Dev& d = dev_at_pos(pos);
  d.deadline = sched(pos).schedule_at(node_deadline(pos),
                                      [this, pos] { flush(pos); });
}

sim::Duration SapSimulation::report_chain_time(net::NodeId pos) const {
  const std::uint32_t levels_below = tree_.max_depth() - tree_.depth(pos);
  switch (config_.qoa) {
    case QoaMode::kBinary:
    case QoaMode::kCount: {
      // Fixed-size reports: one hop per level.
      const std::size_t payload =
          config_.token_size() + (config_.qoa == QoaMode::kCount ? 4 : 0);
      return (network_.link_delay(payload) + aggregate_time(config_)) *
             static_cast<std::int64_t>(levels_below);
    }
    case QoaMode::kIdentify: {
      // Reports grow with the subtree: along the deepest chain the
      // payload roughly doubles per level, so transmission time is
      // bounded by pushing ~2x this node's whole subtree once.
      const std::uint64_t entry =
          (config_.adaptive.enabled ? 9 : 4) + config_.token_size();
      const std::uint64_t worst_bytes =
          2ULL * subtree_size_[pos] * entry + levels_below *
              static_cast<std::uint64_t>(config_.link.header_bytes);
      return sim::transmission_delay(worst_bytes * 8,
                                     config_.link.rate_bps) +
             (config_.link.per_hop_latency + aggregate_time(config_)) *
                 static_cast<std::int64_t>(levels_below);
    }
  }
  return sim::Duration::zero();
}

sim::SimTime SapSimulation::node_deadline(net::NodeId pos) const {
  // Children's tokens arrive, at the latest, once the deepest descendant
  // has attested and its report climbed back to us. The margin scales
  // with the subtree height so that a descendant that itself flushed at
  // its deadline still beats OUR deadline by one margin — otherwise a
  // single dark leaf cascades into every ancestor flushing early.
  const std::uint32_t levels_below = tree_.max_depth() - tree_.depth(pos);
  const Dev& d = dev(dev_at_[pos]);
  const sim::SimTime base = t_att_time_ + max_attest_time() +
                            report_chain_time(pos) +
                            config_.report_margin *
                                static_cast<std::int64_t>(levels_below + 1);
  // Repoll rounds extend the deadline.
  const sim::Duration retry_extension =
      (config_.report_margin + hop_time(config_) * 2) *
      static_cast<std::int64_t>(d.retries);
  return base + retry_extension;
}

void SapSimulation::root_receive(const net::Message& msg) {
  if (root_done_ || msg.kind != kTokenMsg) return;
  if (std::find(root_got_children_.begin(), root_got_children_.end(),
                msg.src) != root_got_children_.end()) {
    return;  // duplicate child report
  }
  root_got_children_.push_back(msg.src);
  switch (config_.qoa) {
    case QoaMode::kBinary: {
      if (msg.payload.size() != config_.token_size()) return;
      xor_inplace(root_token_, msg.payload);
      break;
    }
    case QoaMode::kCount: {
      const auto ct = decode_count_token(msg.payload, config_.token_size());
      if (!ct) return;
      xor_inplace(root_token_, ct->token);
      root_count_ += ct->count;
      break;
    }
    case QoaMode::kIdentify: {
      const auto reports =
          config_.adaptive.enabled
              ? decode_identify_ex(msg.payload, config_.token_size())
              : decode_identify(msg.payload, config_.token_size());
      if (!reports) return;
      root_reports_.insert(root_reports_.end(), reports->begin(),
                           reports->end());
      break;
    }
  }
  if (root_waiting_ > 0) --root_waiting_;
  if (root_waiting_ == 0) {
    sched(0).cancel(root_deadline_);
    root_complete();
  }
}

sim::SimTime SapSimulation::root_stage_deadline() const {
  // Mirrors node_deadline for position 0: the latest a child report can
  // arrive if everything below us is merely slow, not dead.
  return t_att_time_ + max_attest_time() + report_chain_time(0) +
         config_.report_margin *
             static_cast<std::int64_t>(tree_.max_depth() + 1);
}

void SapSimulation::root_flush() {
  if (root_done_) return;
  std::vector<net::NodeId> missing;
  for (net::NodeId child : tree_.children(0)) {
    if (std::find(root_got_children_.begin(), root_got_children_.end(),
                  child) == root_got_children_.end()) {
      missing.push_back(child);
    }
  }
  if (!missing.empty() && root_retries_ < config_.adaptive.max_repolls) {
    ++root_retries_;
    repoll_counter(0).inc();
    for (net::NodeId child : missing) {
      net_of(0).send(0, child, kRepollMsg, round_chal_);
    }
    const sim::Duration backoff = config_.adaptive.backoff_for(root_retries_);
    backoff_counter(0).inc(static_cast<std::uint64_t>(backoff.ns()));
    root_deadline_ =
        sched(0).schedule_after(backoff, [this] { root_flush(); });
    return;
  }
  if (config_.qoa == QoaMode::kIdentify) {
    for (net::NodeId child : missing) {
      root_reports_.push_back(
          DeviceReport{dev_at_[child], Bytes(config_.token_size(), 0),
                       DeviceReportStatus::kEntryUnreachable, 0});
      unreachable_counter(0).inc();
    }
  }
  root_complete();
}

void SapSimulation::root_complete() {
  if (root_done_) return;
  root_done_ = true;
  t_resp_ = sched(0).now();
}

}  // namespace cra::sap
