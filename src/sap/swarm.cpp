#include "sap/swarm.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/kdf.hpp"
#include "obs/trace.hpp"
#include "sap/analysis.hpp"

namespace cra::sap {
namespace {

Bytes master_from_seed(std::uint64_t seed) {
  crypto::SecureRandom rng(seed ^ 0x5a50'6d61'7374'6572ULL);  // "SAPmaster"
  return rng.bytes(32);
}

}  // namespace

SapSimulation::SapSimulation(SapConfig config, net::Tree tree,
                             std::uint64_t seed)
    : config_(config),
      tree_(std::move(tree)),
      scheduler_(),
      network_(scheduler_, config.link),
      clock_(config.device_hz, config.clock_divisor),
      verifier_(config, tree_.device_count(), master_from_seed(seed)),
      devices_(tree_.device_count()) {
  auth_key_ = verifier_.request_auth_key();

  // setup: provision keys and synthetic "firmware" contents; register
  // cfg_i with the verifier.
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    Dev& d = dev(id);
    d.key = verifier_.device_key(id);
    d.content =
        crypto::derive_device_key(master_from_seed(seed), id,
                                  config_.token_size(), "sap-firmware");
    verifier_.set_expected_content(id, d.content);
  }
  network_.set_handler([this](const net::Message& m) { on_message(m); });

  // Identity position mapping: device i occupies tree position i.
  dev_at_.resize(tree_.size());
  pos_of_.resize(tree_.size());
  for (net::NodeId i = 0; i < tree_.size(); ++i) {
    dev_at_[i] = i;
    pos_of_[i] = i;
  }
  recompute_subtree_sizes();
  setup_engine();
}

void SapSimulation::setup_engine() {
  // Sharding needs a positive conservative lookahead: the minimum
  // latency of any message is the per-hop processing latency (payloads
  // can be empty, transmission time can round to zero). A zero-latency
  // link admits no lookahead, so such configs stay single-threaded.
  if (!config_.sim.sharded() || config_.link.per_hop_latency <= sim::Duration::zero()) {
    // Classic mode: metrics_ is the live registry for everything.
    network_.bind_metrics(&metrics_);
    repoll_ctrs_ = {&metrics_.counter("sap.repolls")};
    inbound_gauges_ = {&metrics_.gauge("sap.inbound_end_ns")};
    return;
  }
  engine_ = std::make_unique<sim::ParallelScheduler>(
      tree_.size(), config_.sim, config_.link.per_hop_latency);
  // network_ stays the configuration surface but carries no traffic in
  // engine mode — its instruments would only shadow the shard ones.
  network_.bind_metrics(nullptr);
  shard_nets_.reserve(engine_->shard_count());
  repoll_ctrs_.reserve(engine_->shard_count());
  inbound_gauges_.reserve(engine_->shard_count());
  for (std::uint32_t s = 0; s < engine_->shard_count(); ++s) {
    auto net = std::make_unique<net::Network>(engine_->shard(s), config_.link);
    net->set_handler([this](const net::Message& m) { on_message(m); });
    // Deliveries cross shard boundaries through the engine's mailboxes;
    // the arrival time carries the full link delay, which is >= the
    // engine's lookahead by construction.
    net->set_router([this](net::Message m, sim::SimTime at) {
      engine_->post(m.dst, at,
                    [this, m = std::move(m)] { on_message(m); });
    });
    // Shard-confined accounting: the shard's network and the protocol's
    // per-shard instruments write to the shard's own registry; they are
    // merged into metrics_ after every run() (see run_round).
    obs::MetricsRegistry& reg = engine_->shard_metrics(s);
    net->bind_metrics(&reg);
    repoll_ctrs_.push_back(&reg.counter("sap.repolls"));
    inbound_gauges_.push_back(&reg.gauge("sap.inbound_end_ns"));
    shard_nets_.push_back(std::move(net));
  }
}

void SapSimulation::sync_shard_networks() {
  // network_ is the public configuration surface; mirror its fault
  // settings onto the per-shard networks each round. Loss draws come
  // from per-shard deterministic sub-streams (seeded by shard index and
  // round), so a lossy parallel run is a pure function of (seed, shard
  // count) — independent of thread count and OS scheduling.
  if (network_.has_tamper_hook()) {
    throw std::logic_error(
        "SapSimulation: tamper hooks require the single-threaded engine "
        "(construct with config.sim.threads == 1)");
  }
  for (std::uint32_t s = 0; s < shard_nets_.size(); ++s) {
    // Each shard network keeps its own per-link map (a link's sender
    // lives in exactly one shard, so the maps never overlap); merged
    // totals come out of the metrics layer.
    shard_nets_[s]->enable_per_link_accounting(
        network_.per_link_accounting());
    shard_nets_[s]->reset_accounting();
    if (network_.loss_rate() > 0.0) {
      SplitMix64 mix(network_.loss_seed() +
                     0x9e3779b97f4a7c15ULL * (s + 1) + rounds_run_);
      shard_nets_[s]->set_loss_rate(network_.loss_rate(), mix.next());
    } else {
      shard_nets_[s]->set_loss_rate(0.0);
    }
  }
}

void SapSimulation::recompute_subtree_sizes() {
  // Subtree sizes (node counts including the position itself), used by
  // the payload-aware report deadlines. Children always have larger
  // position indices than their parent, so one reverse pass suffices.
  subtree_size_.assign(tree_.size(), 1);
  for (net::NodeId pos = tree_.size() - 1; pos >= 1; --pos) {
    subtree_size_[tree_.parent(pos)] += subtree_size_[pos];
  }
}

void SapSimulation::rebuild_topology(
    net::Tree tree, std::vector<net::NodeId> device_at_position) {
  if (round_active_) {
    throw std::logic_error("rebuild_topology: round in progress");
  }
  if (tree.device_count() != device_count() ||
      device_at_position.size() != tree.size() ||
      device_at_position[0] != 0) {
    throw std::invalid_argument("rebuild_topology: shape mismatch");
  }
  std::vector<net::NodeId> new_pos(tree.size(), net::kNoNode);
  for (net::NodeId pos = 0; pos < tree.size(); ++pos) {
    const net::NodeId id = device_at_position[pos];
    if (id >= tree.size() || new_pos[id] != net::kNoNode) {
      throw std::invalid_argument("rebuild_topology: not a permutation");
    }
    new_pos[id] = pos;
  }
  tree_ = std::move(tree);
  dev_at_ = std::move(device_at_position);
  pos_of_ = std::move(new_pos);
  recompute_subtree_sizes();
}

SapSimulation SapSimulation::balanced(SapConfig config, std::uint32_t devices,
                                      std::uint64_t seed) {
  return SapSimulation(config,
                       net::balanced_kary_tree(devices, config.tree_arity),
                       seed);
}

void SapSimulation::compromise_device(net::NodeId id) {
  Dev& d = dev(id);
  d.compromised = true;
  if (d.vm != nullptr) {
    // One-byte malware implant at PMEM offset 0.
    const std::uint8_t implant =
        static_cast<std::uint8_t>(d.vm->memory().read8(
            d.vm->memory().layout().pmem_base()) ^ 0xff);
    d.vm->adv_infect_pmem(0, BytesView(&implant, 1));
  } else {
    d.content[0] = static_cast<std::uint8_t>(d.content[0] ^ 0xff);
  }
}

void SapSimulation::restore_device(net::NodeId id) {
  Dev& d = dev(id);
  d.compromised = false;
  if (d.vm != nullptr) {
    d.vm->memory().load(device::Section::kPmem,
                        verifier_.expected_content(id));
  } else {
    d.content = verifier_.expected_content(id);
  }
}

bool SapSimulation::is_compromised(net::NodeId id) const {
  return dev(id).compromised;
}

void SapSimulation::set_device_unresponsive(net::NodeId id,
                                            bool unresponsive) {
  dev(id).unresponsive = unresponsive;
}

void SapSimulation::set_clock_skew(net::NodeId id, sim::Duration skew) {
  dev(id).skew_ns = skew.ns();
  if (dev(id).vm != nullptr) {
    dev(id).vm->sync_clock(current_time(), skew);
  }
}

void SapSimulation::assign_device_class(net::NodeId id, std::uint8_t cls) {
  if (cls > config_.extra_classes.size()) {
    throw std::out_of_range("assign_device_class: unknown class");
  }
  dev(id).cls = cls;
}

sim::Duration SapSimulation::attest_time_for(net::NodeId id) const {
  const std::uint8_t cls = dev(id).cls;
  if (cls == 0) return attest_time(config_);
  const DeviceClassSpec& spec = config_.extra_classes[cls - 1];
  const std::uint64_t blocks =
      crypto::hmac_compression_calls(config_.alg, spec.pmem_size + 4);
  return sim::cycles_to_time(
      config_.attest_overhead_cycles + blocks * spec.cycles_per_block,
      spec.hz);
}

sim::Duration SapSimulation::max_attest_time() const {
  sim::Duration worst = attest_time(config_);
  for (const DeviceClassSpec& spec : config_.extra_classes) {
    const std::uint64_t blocks =
        crypto::hmac_compression_calls(config_.alg, spec.pmem_size + 4);
    const sim::Duration t = sim::cycles_to_time(
        config_.attest_overhead_cycles + blocks * spec.cycles_per_block,
        spec.hz);
    if (t > worst) worst = t;
  }
  return worst;
}

void SapSimulation::attach_vm(net::NodeId id, device::Device* vm) {
  if (vm == nullptr) {
    throw std::invalid_argument("attach_vm: null device");
  }
  Dev& d = dev(id);
  d.vm = vm;
  verifier_.set_expected_content(id, vm->expected_pmem());
}

void SapSimulation::advance_time(sim::Duration d) {
  if (engine_) {
    engine_->run_until(engine_->now() + d);
    return;
  }
  scheduler_.run_until(scheduler_.now() + d);
}

void SapSimulation::set_qoa(QoaMode mode) {
  if (round_active_) {
    throw std::logic_error("set_qoa: round in progress");
  }
  config_.qoa = mode;
}

Bytes SapSimulation::compute_token(net::NodeId pos, std::uint32_t tick) {
  const net::NodeId id = dev_at_[pos];
  Dev& d = dev(id);
  const sim::SimTime now = sched(pos).now();
  if (d.vm != nullptr) {
    // Full-fidelity path: synchronize the VM's secure clock with global
    // time (the network-wide clock), then run the real attest TCB.
    d.vm->sync_clock(now, sim::Duration(d.skew_ns));
    d.vm->invoke_attest(tick);
    return d.vm->read_token();
  }
  // Synthetic path: the device's clock check, then
  // HMAC_{K}(content || chal) — content stands in for PMEM(mi, t).
  const std::uint32_t local_tick = clock_.read_at_time(
      now, sim::Duration(d.skew_ns));
  if (local_tick != tick) {
    return Bytes(config_.token_size(), 0);
  }
  Bytes message = d.content;
  append_u32le(message, tick);
  return crypto::hmac(config_.alg, d.key, message);
}

RoundReport SapSimulation::run_round() {
  if (round_active_) {
    throw std::logic_error("run_round: round already active");
  }
  round_active_ = true;
  obs::Span round_span("sap.round");

  // Round boundary: zero every instrument (registrations and cached
  // handles survive), classic and per-shard alike.
  metrics_.reset_values();
  if (engine_) engine_->reset_shard_metrics();

  // Reset per-round device state.
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    Dev& d = dev(id);
    d.tick = 0;
    d.got_chal = false;
    d.responded_self = false;
    d.sent = false;
    d.waiting =
        static_cast<std::uint32_t>(tree_.children(pos_of_[id]).size());
    d.count = 0;
    d.retries = 0;
    d.got_children.clear();
    d.agg_token.assign(config_.token_size(), 0);
    d.sent_payload.clear();
    d.reports.clear();
    d.deadline = sim::EventHandle();
  }
  root_done_ = false;
  root_waiting_ = static_cast<std::uint32_t>(tree_.children(0).size());
  root_count_ = 0;
  root_got_children_.clear();
  root_token_.assign(config_.token_size(), 0);
  root_reports_.clear();
  network_.reset_accounting();
  if (engine_) sync_shard_networks();

  RoundReport report;
  report.devices = device_count();
  report.t_chal = current_time();

  // request: pick t_att per Equation 9 (+ slack), quantized to the next
  // secure-clock tick, and flood chal down the tree.
  const sim::SimTime lower_bound =
      report.t_chal + request_lead_time(config_, tree_.max_depth());
  round_tick_ = clock_.time_to_tick_ceil(lower_bound);
  t_att_time_ = clock_.tick_to_time(round_tick_);
  report.chal_tick = round_tick_;
  report.t_att = t_att_time_;
  report.measurement_end = t_att_time_ + max_attest_time();

  const Bytes chal =
      encode_chal(round_tick_, auth_key_, config_.chal_size());
  for (net::NodeId child : tree_.children(0)) {
    net_of(0).send(0, child, kChalMsg, chal);
  }

  // Give-up deadline for Vrf (covers lost subtrees and repolls).
  const sim::Duration repoll_allowance =
      (config_.report_margin + hop_time(config_) * 2) *
      static_cast<std::int64_t>(config_.retransmit ? config_.max_retries + 1
                                                   : 1);
  const sim::SimTime vrf_deadline =
      report.measurement_end + report_chain_time(0) + repoll_allowance +
      config_.report_margin *
          static_cast<std::int64_t>(tree_.max_depth() + 2);
  t_resp_ = vrf_deadline;
  root_deadline_ = sched(0).schedule_at(
      vrf_deadline, [this] { root_complete(); });

  if (engine_) {
    engine_->run();
  } else {
    scheduler_.run();
  }
  ++rounds_run_;

  // Reduce per-shard registries into the merged view (fixed shard
  // order, engine quiescent) — the single source every report field
  // below reads from. In classic mode metrics_ is already live.
  if (engine_) engine_->merge_metrics_into(metrics_);
  network_.assert_ledgers_consistent();
  for (const auto& net : shard_nets_) net->assert_ledgers_consistent();

  report.inbound_end = report.t_chal;
  {
    const obs::Gauge& g = metrics_.gauge("sap.inbound_end_ns");
    if (g.is_set() && sim::SimTime(g.value()) > report.inbound_end) {
      report.inbound_end = sim::SimTime(g.value());
    }
  }
  report.repolls =
      static_cast<std::uint32_t>(metrics_.counter_value("sap.repolls"));
  report.t_resp = t_resp_;
  report.u_ca_bytes = metrics_.counter_value("net.bytes_transmitted");
  report.messages = metrics_.counter_value("net.messages_sent");
  report.dropped = metrics_.counter_value("net.messages_dropped");

  switch (config_.qoa) {
    case QoaMode::kBinary:
      report.responded = root_waiting_ == 0 ? device_count() : 0;
      report.verified = verifier_.verify(root_token_, round_tick_);
      break;
    case QoaMode::kCount:
      report.responded = root_count_;
      report.verified = root_count_ == device_count() &&
                        verifier_.verify(root_token_, round_tick_);
      break;
    case QoaMode::kIdentify:
      report.responded = static_cast<std::uint32_t>(root_reports_.size());
      report.identify =
          verifier_.verify_identify(root_reports_, round_tick_);
      report.verified = report.identify.all_good();
      break;
  }

  round_active_ = false;

  // Trace the round on both clocks: the wall-clock span closes when
  // round_span dies; the simulated-time lane gets the Figure 3(b)
  // phase breakdown as one span per phase.
  round_span.sim_range(report.t_chal.ns(), report.t_resp.ns());
  if (obs::TraceSink* sink = obs::global_sink()) {
    sink->sim_span("sap.inbound", report.t_chal.ns(),
                   report.inbound_end.ns());
    sink->sim_span("sap.slack", report.inbound_end.ns(), report.t_att.ns());
    sink->sim_span("sap.measurement", report.t_att.ns(),
                   report.measurement_end.ns());
    sink->sim_span("sap.outbound", report.measurement_end.ns(),
                   report.t_resp.ns());
  }
  return report;
}

void SapSimulation::on_message(const net::Message& msg) {
  // Messages travel between tree positions; position 0 is Vrf.
  if (msg.dst == 0) {
    root_receive(msg);
    return;
  }
  if (msg.dst > device_count()) return;  // stray/tampered address
  if (dev_at_pos(msg.dst).unresponsive) return;

  switch (msg.kind) {
    case kChalMsg:
      handle_chal(msg.dst, msg);
      break;
    case kTokenMsg:
      handle_token(msg.dst, msg);
      break;
    case kRepollMsg:
      handle_repoll(msg.dst);
      break;
    default:
      break;  // unknown kind: drop
  }
}

void SapSimulation::handle_chal(net::NodeId pos, const net::Message& msg) {
  Dev& d = dev_at_pos(pos);
  if (d.got_chal) return;  // duplicate (replay or adversarial copy)

  const auto chal = decode_chal(msg.payload, config_.chal_size());
  if (!chal) return;  // malformed
  if (!auth_key_.empty() && !chal_authentic(*chal, auth_key_)) {
    return;  // §VIII DoS mitigation: drop unauthenticated requests
  }
  // Staleness check against the device's OWN secure clock (this is what
  // the monotonically increasing clock buys in §V-C: chal can never
  // repeat, because a tick in the local past is plainly unanswerable —
  // no global round state needed).
  const sim::SimTime now = sched(pos).now();
  const std::uint32_t local_now =
      clock_.read_at_time(now, sim::Duration(d.skew_ns));
  if (chal->tick < local_now) return;
  d.got_chal = true;
  d.tick = chal->tick;
  inbound_gauge(pos).max_in(now.ns());

  // Forward chal immediately to all children.
  for (net::NodeId child : tree_.children(pos)) {
    net_of(pos).send(pos, child, kChalMsg, msg.payload);
  }

  // Schedule attest when the device's own clock reaches the tick.
  const sim::SimTime fire_global =
      clock_.tick_to_time(chal->tick) - sim::Duration(d.skew_ns);
  const sim::SimTime when = fire_global > now ? fire_global : now;
  sched(pos).schedule_at(when, [this, pos] { run_attest(pos); });

  // Inner nodes arm a report deadline in case children go silent.
  if (!tree_.children(pos).empty()) {
    schedule_deadline(pos);
  }
}

void SapSimulation::run_attest(net::NodeId pos) {
  const net::NodeId id = dev_at_[pos];
  Dev& d = dev(id);
  if (d.unresponsive) return;
  Bytes token = compute_token(pos, d.tick);
  // Token is ready T_att after invocation (per this device's hardware
  // class); aggregation happens then.
  sched(pos).schedule_after(
      attest_time_for(id),
      [this, pos, t = std::move(token)]() mutable {
        accumulate_self(pos, std::move(t));
      });
}

void SapSimulation::accumulate_self(net::NodeId pos, Bytes token) {
  const net::NodeId id = dev_at_[pos];
  Dev& d = dev(id);
  d.responded_self = true;
  if (config_.qoa == QoaMode::kIdentify) {
    d.reports.push_back(DeviceReport{id, token});  // stable device id
  }
  xor_inplace(d.agg_token, token);
  ++d.count;
  try_forward(pos);
}

void SapSimulation::handle_token(net::NodeId pos, const net::Message& msg) {
  Dev& d = dev_at_pos(pos);
  if (d.sent) return;  // already flushed; late token is lost information
  // One token per child per round: duplicates (adversarial copies, or a
  // repoll answer racing the original) would cancel under XOR.
  if (std::find(d.got_children.begin(), d.got_children.end(), msg.src) !=
      d.got_children.end()) {
    return;
  }
  switch (config_.qoa) {
    case QoaMode::kBinary: {
      if (msg.payload.size() != config_.token_size()) return;
      xor_inplace(d.agg_token, msg.payload);
      break;
    }
    case QoaMode::kCount: {
      const auto ct = decode_count_token(msg.payload, config_.token_size());
      if (!ct) return;
      xor_inplace(d.agg_token, ct->token);
      d.count += ct->count;
      break;
    }
    case QoaMode::kIdentify: {
      const auto reports = decode_identify(msg.payload, config_.token_size());
      if (!reports) return;
      d.reports.insert(d.reports.end(), reports->begin(), reports->end());
      break;
    }
  }
  d.got_children.push_back(msg.src);  // child *positions*
  if (d.waiting > 0) --d.waiting;
  try_forward(pos);
}

void SapSimulation::handle_repoll(net::NodeId pos) {
  Dev& d = dev_at_pos(pos);
  if (!d.got_chal) return;  // never saw the round
  if (!d.sent_payload.empty()) {
    // Resend the cached report.
    net_of(pos).send(pos, tree_.parent(pos), kTokenMsg, d.sent_payload);
  }
  // If not yet flushed, the pending deadline/forward path will answer.
}

void SapSimulation::try_forward(net::NodeId pos) {
  Dev& d = dev_at_pos(pos);
  if (d.sent || !d.responded_self || d.waiting != 0) return;
  sched(pos).cancel(d.deadline);
  send_report(pos);
}

void SapSimulation::flush(net::NodeId pos) {
  Dev& d = dev_at_pos(pos);
  if (d.sent) return;
  if (config_.retransmit && d.retries < config_.max_retries) {
    ++d.retries;
    repoll_counter(pos).inc();
    for (net::NodeId child : tree_.children(pos)) {
      // Re-poll only children whose token never arrived — a duplicate
      // answer from a healthy child would be discarded anyway, so don't
      // burn bandwidth asking for it.
      if (std::find(d.got_children.begin(), d.got_children.end(), child) ==
          d.got_children.end()) {
        net_of(pos).send(pos, child, kRepollMsg, Bytes{});
      }
    }
    schedule_deadline(pos);
    return;
  }
  // Give up on missing children; forward the partial aggregate. The
  // verifier's XOR will mismatch (binary) or the count/reports expose
  // the gap — unresponsiveness must fail attestation (Definition 1).
  if (!d.responded_self) {
    // Our own measurement may still be pending (only possible under
    // pathological delay injection); report without it.
  }
  send_report(pos);
}

void SapSimulation::send_report(net::NodeId pos) {
  Dev& d = dev_at_pos(pos);
  // Aggregation cost T_agg before the token leaves the node.
  const sim::Duration agg = aggregate_time(config_);
  Bytes payload;
  switch (config_.qoa) {
    case QoaMode::kBinary:
      payload = d.agg_token;
      break;
    case QoaMode::kCount:
      payload = encode_count_token(d.agg_token, d.count);
      break;
    case QoaMode::kIdentify:
      payload = encode_identify(d.reports, config_.token_size());
      break;
  }
  d.sent = true;
  d.sent_payload = payload;
  const net::NodeId parent = tree_.parent(pos);
  sched(pos).schedule_after(agg, [this, pos, parent,
                                  p = std::move(payload)]() mutable {
    net_of(pos).send(pos, parent, kTokenMsg, std::move(p));
  });
}

void SapSimulation::schedule_deadline(net::NodeId pos) {
  Dev& d = dev_at_pos(pos);
  d.deadline = sched(pos).schedule_at(node_deadline(pos),
                                      [this, pos] { flush(pos); });
}

sim::Duration SapSimulation::report_chain_time(net::NodeId pos) const {
  const std::uint32_t levels_below = tree_.max_depth() - tree_.depth(pos);
  switch (config_.qoa) {
    case QoaMode::kBinary:
    case QoaMode::kCount: {
      // Fixed-size reports: one hop per level.
      const std::size_t payload =
          config_.token_size() + (config_.qoa == QoaMode::kCount ? 4 : 0);
      return (network_.link_delay(payload) + aggregate_time(config_)) *
             static_cast<std::int64_t>(levels_below);
    }
    case QoaMode::kIdentify: {
      // Reports grow with the subtree: along the deepest chain the
      // payload roughly doubles per level, so transmission time is
      // bounded by pushing ~2x this node's whole subtree once.
      const std::uint64_t entry = 4 + config_.token_size();
      const std::uint64_t worst_bytes =
          2ULL * subtree_size_[pos] * entry + levels_below *
              static_cast<std::uint64_t>(config_.link.header_bytes);
      return sim::transmission_delay(worst_bytes * 8,
                                     config_.link.rate_bps) +
             (config_.link.per_hop_latency + aggregate_time(config_)) *
                 static_cast<std::int64_t>(levels_below);
    }
  }
  return sim::Duration::zero();
}

sim::SimTime SapSimulation::node_deadline(net::NodeId pos) const {
  // Children's tokens arrive, at the latest, once the deepest descendant
  // has attested and its report climbed back to us. The margin scales
  // with the subtree height so that a descendant that itself flushed at
  // its deadline still beats OUR deadline by one margin — otherwise a
  // single dark leaf cascades into every ancestor flushing early.
  const std::uint32_t levels_below = tree_.max_depth() - tree_.depth(pos);
  const Dev& d = dev(dev_at_[pos]);
  const sim::SimTime base = t_att_time_ + max_attest_time() +
                            report_chain_time(pos) +
                            config_.report_margin *
                                static_cast<std::int64_t>(levels_below + 1);
  // Repoll rounds extend the deadline.
  const sim::Duration retry_extension =
      (config_.report_margin + hop_time(config_) * 2) *
      static_cast<std::int64_t>(d.retries);
  return base + retry_extension;
}

void SapSimulation::root_receive(const net::Message& msg) {
  if (root_done_ || msg.kind != kTokenMsg) return;
  if (std::find(root_got_children_.begin(), root_got_children_.end(),
                msg.src) != root_got_children_.end()) {
    return;  // duplicate child report
  }
  root_got_children_.push_back(msg.src);
  switch (config_.qoa) {
    case QoaMode::kBinary: {
      if (msg.payload.size() != config_.token_size()) return;
      xor_inplace(root_token_, msg.payload);
      break;
    }
    case QoaMode::kCount: {
      const auto ct = decode_count_token(msg.payload, config_.token_size());
      if (!ct) return;
      xor_inplace(root_token_, ct->token);
      root_count_ += ct->count;
      break;
    }
    case QoaMode::kIdentify: {
      const auto reports = decode_identify(msg.payload, config_.token_size());
      if (!reports) return;
      root_reports_.insert(root_reports_.end(), reports->begin(),
                           reports->end());
      break;
    }
  }
  if (root_waiting_ > 0) --root_waiting_;
  if (root_waiting_ == 0) {
    sched(0).cancel(root_deadline_);
    root_complete();
  }
}

void SapSimulation::root_complete() {
  if (root_done_) return;
  root_done_ = true;
  t_resp_ = sched(0).now();
}

}  // namespace cra::sap
