#include "sap/report_json.hpp"

#include "common/json.hpp"

namespace cra::sap {

std::string report_to_json(const RoundReport& report) {
  JsonWriter w;
  w.begin_object()
      .field("verified", report.verified)
      .field("chal_tick", report.chal_tick)
      .field("devices", report.devices)
      .field("responded", report.responded)
      .field("repolls", report.repolls);

  w.key("timeline").begin_object()
      .field("t_chal_s", report.t_chal.sec())
      .field("inbound_end_s", report.inbound_end.sec())
      .field("t_att_s", report.t_att.sec())
      .field("measurement_end_s", report.measurement_end.sec())
      .field("t_resp_s", report.t_resp.sec())
      .end_object();

  w.key("phases").begin_object()
      .field("inbound_ms", report.inbound().ms())
      .field("slack_ms", report.slack().ms())
      .field("measurement_ms", report.measurement().ms())
      .field("outbound_ms", report.outbound().ms())
      .field("total_s", report.total().sec())
      .field("t_ca_s", report.t_ca().sec())
      .end_object();

  w.key("network").begin_object()
      .field("u_ca_bytes", report.u_ca_bytes)
      .field("messages", report.messages)
      .field("dropped", report.dropped)
      .end_object();

  w.key("identify").begin_object();
  w.key("bad").begin_array();
  for (auto id : report.identify.bad) w.value(id);
  w.end_array();
  w.key("missing").begin_array();
  for (auto id : report.identify.missing) w.value(id);
  w.end_array();
  w.end_object();

  // Degraded-mode block only when the adaptive path ran — legacy rounds
  // keep the pre-existing JSON byte-for-byte.
  if (report.degraded.enabled) {
    w.key("degraded").begin_object()
        .field("healthy", report.degraded.healthy)
        .field("unreachable", report.degraded.unreachable)
        .field("untrusted", report.degraded.untrusted)
        .field("rebooted", report.degraded.rebooted)
        .field("completion", report.degraded.completion())
        .field("backoff_wait_ms",
               static_cast<double>(report.backoff_wait_ns) / 1e6);
    w.key("untrusted_ids").begin_array();
    for (auto id : report.degraded.untrusted_ids) w.value(id);
    w.end_array();
    w.key("unreachable_ids").begin_array();
    for (auto id : report.degraded.unreachable_ids) w.value(id);
    w.end_array();
    w.key("rebooted_ids").begin_array();
    for (auto id : report.degraded.rebooted_ids) w.value(id);
    w.end_array();
    w.end_object();
  }

  w.end_object();
  return w.str();
}

}  // namespace cra::sap
