#include "sap/report_json.hpp"

#include "common/json.hpp"

namespace cra::sap {

std::string report_to_json(const RoundReport& report) {
  JsonWriter w;
  w.begin_object()
      .field("verified", report.verified)
      .field("chal_tick", report.chal_tick)
      .field("devices", report.devices)
      .field("responded", report.responded)
      .field("repolls", report.repolls);

  w.key("timeline").begin_object()
      .field("t_chal_s", report.t_chal.sec())
      .field("inbound_end_s", report.inbound_end.sec())
      .field("t_att_s", report.t_att.sec())
      .field("measurement_end_s", report.measurement_end.sec())
      .field("t_resp_s", report.t_resp.sec())
      .end_object();

  w.key("phases").begin_object()
      .field("inbound_ms", report.inbound().ms())
      .field("slack_ms", report.slack().ms())
      .field("measurement_ms", report.measurement().ms())
      .field("outbound_ms", report.outbound().ms())
      .field("total_s", report.total().sec())
      .field("t_ca_s", report.t_ca().sec())
      .end_object();

  w.key("network").begin_object()
      .field("u_ca_bytes", report.u_ca_bytes)
      .field("messages", report.messages)
      .field("dropped", report.dropped)
      .end_object();

  w.key("identify").begin_object();
  w.key("bad").begin_array();
  for (auto id : report.identify.bad) w.value(id);
  w.end_array();
  w.key("missing").begin_array();
  for (auto id : report.identify.missing) w.value(id);
  w.end_array();
  w.end_object();

  w.end_object();
  return w.str();
}

}  // namespace cra::sap
