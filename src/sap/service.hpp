// AttestationService — the operational layer a deployment actually runs.
//
// The paper's QoA discussion (§VIII) frames granularity as a per-round
// choice with a bandwidth price. A monitoring service can get both ends
// of the trade: run cheap constant-bandwidth binary rounds while the
// fleet is healthy, and escalate to identify-mode only when a round
// fails — paying the Θ(N·l·depth) localization cost exactly when there
// is something to localize. After the fleet stays clean long enough,
// de-escalate back.
//
// The service also keeps per-device health history (consecutive-failure
// streaks from identify rounds), which is what an operator pages on.
#pragma once

#include <cstdint>
#include <vector>

#include "sap/swarm.hpp"

namespace cra::sap {

struct ServicePolicy {
  sim::Duration period = sim::Duration::from_sec(2.0);
  QoaMode steady_mode = QoaMode::kBinary;
  QoaMode escalated_mode = QoaMode::kIdentify;
  /// Failed rounds (in steady mode) before escalating.
  std::uint32_t failures_to_escalate = 1;
  /// Clean rounds (in escalated mode) before de-escalating.
  std::uint32_t healthy_to_deescalate = 2;
};

struct ServiceEvent {
  enum class Kind : std::uint8_t {
    kHealthy,     // round verified
    kAlarm,       // round failed in steady mode
    kLocalized,   // escalated round failed and names devices
    kRecovering,  // escalated round verified (counting down)
    kDeescalated, // returned to steady mode this round
  };
  Kind kind = Kind::kHealthy;
  std::uint32_t round = 0;
  sim::SimTime at;
  QoaMode mode = QoaMode::kBinary;
  bool verified = false;
  std::vector<net::NodeId> bad;
  std::vector<net::NodeId> missing;
};

const char* service_event_name(ServiceEvent::Kind kind) noexcept;

class AttestationService {
 public:
  /// The service drives (and reconfigures) `swarm`; the caller keeps
  /// ownership and may inject faults/compromises between rounds.
  AttestationService(SapSimulation& swarm, ServicePolicy policy);

  /// Run one attestation round under the current mode, advance the
  /// escalation state machine, idle until the next period boundary.
  ServiceEvent run_once();

  /// Convenience: `n` consecutive rounds; returns the events.
  std::vector<ServiceEvent> run(std::uint32_t n);

  QoaMode current_mode() const noexcept { return mode_; }
  bool escalated() const noexcept { return mode_ != policy_.steady_mode; }
  const std::vector<ServiceEvent>& log() const noexcept { return log_; }

  /// Devices flagged bad/missing in the most recent localized round.
  const std::vector<net::NodeId>& suspects() const noexcept {
    return suspects_;
  }
  /// Per-device count of identify rounds that flagged the device.
  std::uint32_t flag_count(net::NodeId id) const;

 private:
  SapSimulation& swarm_;
  ServicePolicy policy_;
  QoaMode mode_;
  std::uint32_t round_ = 0;
  std::uint32_t failure_streak_ = 0;
  std::uint32_t healthy_streak_ = 0;
  std::vector<net::NodeId> suspects_;
  std::vector<std::uint32_t> flags_;  // per device id
  std::vector<ServiceEvent> log_;
};

}  // namespace cra::sap
