#include "sap/service.hpp"

#include <stdexcept>

namespace cra::sap {

const char* service_event_name(ServiceEvent::Kind kind) noexcept {
  switch (kind) {
    case ServiceEvent::Kind::kHealthy: return "healthy";
    case ServiceEvent::Kind::kAlarm: return "alarm";
    case ServiceEvent::Kind::kLocalized: return "localized";
    case ServiceEvent::Kind::kRecovering: return "recovering";
    case ServiceEvent::Kind::kDeescalated: return "deescalated";
  }
  return "?";
}

AttestationService::AttestationService(SapSimulation& swarm,
                                       ServicePolicy policy)
    : swarm_(swarm),
      policy_(policy),
      mode_(policy.steady_mode),
      flags_(swarm.device_count() + 1, 0) {
  if (policy_.failures_to_escalate == 0 ||
      policy_.healthy_to_deescalate == 0) {
    throw std::invalid_argument("AttestationService: zero thresholds");
  }
  swarm_.set_qoa(mode_);
}

ServiceEvent AttestationService::run_once() {
  ++round_;
  const RoundReport report = swarm_.run_round();

  ServiceEvent event;
  event.round = round_;
  event.at = report.t_resp;
  event.mode = mode_;
  event.verified = report.verified;

  const bool is_escalated = mode_ == policy_.escalated_mode &&
                            policy_.escalated_mode != policy_.steady_mode;
  if (report.verified) {
    failure_streak_ = 0;
    if (is_escalated) {
      ++healthy_streak_;
      if (healthy_streak_ >= policy_.healthy_to_deescalate) {
        mode_ = policy_.steady_mode;
        swarm_.set_qoa(mode_);
        suspects_.clear();
        event.kind = ServiceEvent::Kind::kDeescalated;
      } else {
        event.kind = ServiceEvent::Kind::kRecovering;
      }
    } else {
      event.kind = ServiceEvent::Kind::kHealthy;
    }
  } else {
    healthy_streak_ = 0;
    ++failure_streak_;
    if (is_escalated) {
      // Identify-mode verdict: record the named devices.
      event.kind = ServiceEvent::Kind::kLocalized;
      event.bad = report.identify.bad;
      event.missing = report.identify.missing;
      suspects_.clear();
      for (auto id : report.identify.bad) {
        suspects_.push_back(id);
        ++flags_[id];
      }
      for (auto id : report.identify.missing) {
        suspects_.push_back(id);
        ++flags_[id];
      }
    } else {
      event.kind = ServiceEvent::Kind::kAlarm;
      if (failure_streak_ >= policy_.failures_to_escalate) {
        mode_ = policy_.escalated_mode;
        swarm_.set_qoa(mode_);
        healthy_streak_ = 0;
      }
    }
  }

  log_.push_back(event);
  swarm_.advance_time(policy_.period);
  return event;
}

std::vector<ServiceEvent> AttestationService::run(std::uint32_t n) {
  std::vector<ServiceEvent> events;
  events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) events.push_back(run_once());
  return events;
}

std::uint32_t AttestationService::flag_count(net::NodeId id) const {
  if (id == 0 || id >= flags_.size()) {
    throw std::out_of_range("flag_count: bad device id");
  }
  return flags_[id];
}

}  // namespace cra::sap
