#include "sap/analysis.hpp"

#include "device/attest_tcb.hpp"

namespace cra::sap {
namespace {

device::AttestTcbConfig tcb_config(const SapConfig& config) {
  device::AttestTcbConfig tcb;
  tcb.alg = config.alg;
  tcb.overhead_cycles = config.attest_overhead_cycles;
  tcb.cycles_per_block = config.cycles_per_block;
  return tcb;
}

}  // namespace

std::uint32_t predicted_depth(std::uint32_t devices, std::uint32_t arity) {
  // Heap layout: node i (0 = root) sits at depth floor(log_k(i(k-1)+1)).
  // Depth of the last node = tree depth.
  std::uint32_t depth = 0;
  std::uint64_t level_first = 1;  // first node id at the current depth + 1
  std::uint64_t level_count = arity;
  std::uint64_t covered = 0;
  while (covered < devices) {
    ++depth;
    covered += level_count;
    level_first += level_count;
    level_count *= arity;
  }
  return depth;
}

sim::Duration attest_time(const SapConfig& config) {
  return sim::cycles_to_time(
      device::attest_cycles(tcb_config(config), config.pmem_size),
      config.device_hz);
}

sim::Duration aggregate_time(const SapConfig& config) {
  return sim::cycles_to_time(config.aggregate_cycles, config.device_hz);
}

sim::Duration hop_time(const SapConfig& config) {
  const std::uint64_t bits =
      (config.chal_size() + config.link.header_bytes) * 8;
  return sim::transmission_delay(bits, config.link.rate_bps) +
         config.link.per_hop_latency;
}

sim::Duration request_lead_time(const SapConfig& config,
                                std::uint32_t depth) {
  // Equation 9's bound. Under the paper's contention-free model a level
  // costs one chal transmission; with per-radio serialization
  // (LinkParams::serialize_tx) an inner node sends `arity` copies
  // back-to-back before the last child can proceed.
  const std::uint64_t bits =
      (config.chal_size() + config.link.header_bytes) * 8;
  const sim::Duration tx =
      sim::transmission_delay(bits, config.link.rate_bps);
  const std::int64_t copies =
      config.link.serialize_tx ? config.tree_arity : 1;
  const sim::Duration per_level =
      tx * copies + config.link.per_hop_latency;
  return per_level * static_cast<std::int64_t>(depth) +
         config.request_slack;
}

std::uint64_t predicted_u_ca_bytes(const SapConfig& config,
                                   std::uint32_t edges) {
  const std::uint64_t per_link = config.chal_size() + config.token_size() +
                                 2ULL * config.link.header_bytes;
  return per_link * edges;
}

sim::Duration predicted_t_ca(const SapConfig& config, std::uint32_t depth) {
  return attest_time(config) +
         (hop_time(config) + aggregate_time(config)) *
             static_cast<std::int64_t>(depth);
}

sim::Duration predicted_total(const SapConfig& config, std::uint32_t depth) {
  return request_lead_time(config, depth) + predicted_t_ca(config, depth);
}

}  // namespace cra::sap
