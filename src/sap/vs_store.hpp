// Persistence for the verifier's valid-state set VS.
//
// Vrf is a long-lived service: the enrolled configurations cfg_i (and
// the deployment geometry they belong to) must survive restarts. This
// stores VS in a line-oriented text format that is diff-able and
// auditable:
//
//   cra-vs 1
//   alg sha1
//   devices 1000
//   cfg 1 <hex>
//   cfg 2 <hex>
//   ...
//
// Deliberately NOT stored: the master secret / device keys. Keys live
// in an HSM or key service in any sane deployment; VS is integrity-
// sensitive but not secret (it is the *public* expected firmware).
// Callers who need tamper-evidence wrap the file in their own MAC.
#pragma once

#include <string>

#include "sap/verifier.hpp"

namespace cra::sap {

/// Serialize the verifier's VS (all expected contents) to a string.
std::string vs_to_string(const Verifier& verifier);

/// Parse a VS dump; returns the per-device contents indexed by id-1.
/// Throws std::invalid_argument on malformed input or if `expect_alg` /
/// `expect_devices` (when nonzero) disagree with the header.
std::vector<Bytes> vs_from_string(const std::string& text,
                                  crypto::HashAlg expect_alg,
                                  std::uint32_t expect_devices = 0);

/// Convenience: write/read the dump to a file. Write throws
/// std::runtime_error on I/O failure; load applies the contents into
/// `verifier` (sizes must match).
void save_vs(const Verifier& verifier, const std::string& path);
void load_vs(Verifier& verifier, const std::string& path);

}  // namespace cra::sap
