// SAP protocol configuration.
//
// Defaults reproduce the paper's evaluation setup (§VII-C): 24 MHz
// TrustLite-class devices with 50 KB PMEM, HMAC-SHA1 (l = 160 bits,
// so |chal| = |token| = 20 bytes), balanced binary tree, 250 kbit/s
// links with 1 ms per-hop processing delay (the paper's τ(N) charges
// exactly 1 ms per hop of tree depth).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/hmac.hpp"
#include "device/attest_tcb.hpp"
#include "net/network.hpp"
#include "sim/parallel.hpp"
#include "sim/time.hpp"

namespace cra::sap {

/// Quality of Attestation (paper §VIII): how much the verifier learns.
enum class QoaMode : std::uint8_t {
  /// The paper's TCA-Model outcome: one bit for the whole swarm
  /// (XOR-aggregated tokens, constant report size).
  kBinary,
  /// Binary result plus the number of devices whose token was actually
  /// aggregated — distinguishes "infected" from "unresponsive subtree".
  kCount,
  /// Full per-device reports concatenated up the tree: the verifier
  /// pinpoints every infected/unresponsive device, at O(subtree) report
  /// size. The QoA-vs-efficiency trade-off ablation contrasts the modes.
  kIdentify,
};

const char* qoa_name(QoaMode mode) noexcept;

/// Adaptive per-child timeouts (robustness extension; see
/// docs/robustness.md). Replaces the fixed `max_retries` re-poll count
/// with bounded exponential backoff: a parent that misses a child token
/// re-polls and re-arms its deadline after backoff_for(attempt), doubling
/// (by `backoff_factor`) up to `max_backoff`, at most `max_repolls`
/// times. Children still missing after the budget is spent are reported
/// as unreachable in the degraded-mode report instead of silently
/// shrinking the aggregate. Off by default — with `enabled == false`
/// every wire format, deadline, and event time is byte-identical to the
/// legacy retransmit path.
struct AdaptiveTimeoutConfig {
  bool enabled = false;
  std::uint32_t max_repolls = 4;
  sim::Duration initial_backoff = sim::Duration::from_ms(25);
  std::uint32_t backoff_factor = 2;
  sim::Duration max_backoff = sim::Duration::from_ms(200);

  /// Backoff before re-poll number `attempt` (1-based), exponentially
  /// grown and clamped to max_backoff.
  sim::Duration backoff_for(std::uint32_t attempt) const noexcept {
    sim::Duration b = initial_backoff;
    for (std::uint32_t i = 1; i < attempt; ++i) {
      if (b >= max_backoff) break;
      b = b * static_cast<std::int64_t>(backoff_factor);
    }
    return b < max_backoff ? b : max_backoff;
  }

  /// Total worst-case wait a parent can add across all re-polls — the
  /// verifier stretches its round deadline by this budget.
  sim::Duration budget() const noexcept {
    sim::Duration total = sim::Duration::zero();
    for (std::uint32_t a = 1; a <= max_repolls; ++a) total += backoff_for(a);
    return total;
  }
};

/// A hardware class for heterogeneous swarms (§II "device homogeneity",
/// §VIII model extensions). Class 0 is implicitly the SapConfig's own
/// device parameters; additional classes change per-device attest cost,
/// which stretches the synchronous measurement phase to the slowest
/// class and widens the per-node report deadlines accordingly.
struct DeviceClassSpec {
  std::string name = "default";
  std::uint64_t hz = 24'000'000;
  std::uint32_t pmem_size = 50 * 1024;
  std::uint64_t cycles_per_block = 14'400;
};

struct SapConfig {
  crypto::HashAlg alg = crypto::HashAlg::kSha1;  // l = 160
  std::uint32_t pmem_size = 50 * 1024;
  std::uint64_t device_hz = 24'000'000;
  std::uint32_t clock_divisor = 250'000;  // 1 tick ≈ 10.42 ms

  /// Device-side cost model (shared with the device VM; see
  /// device/attest_tcb.hpp for the calibration).
  std::uint64_t attest_overhead_cycles = 5'000;
  std::uint64_t cycles_per_block = 14'400;
  /// report-side token aggregation (two XORs + message handling): T_agg.
  std::uint64_t aggregate_cycles = 1'200;

  net::LinkParams link{};  // µ = 250 kbit/s, 1 ms/hop

  std::uint32_t tree_arity = 2;

  /// Extra slack added to Equation 9's lower bound when picking t_att
  /// (beyond the per-hop latency already charged); absorbs tick
  /// quantization.
  sim::Duration request_slack = sim::Duration::from_ms(2);

  /// How long past the analytic worst case a parent waits for child
  /// tokens before flushing a partial aggregate.
  sim::Duration report_margin = sim::Duration::from_ms(20);

  QoaMode qoa = QoaMode::kBinary;

  /// Heterogeneous hardware classes. Index 0 always exists and mirrors
  /// the top-level device parameters; entries here append classes 1..k.
  /// Assign devices with SapSimulation::assign_device_class().
  std::vector<DeviceClassSpec> extra_classes;

  /// §VIII DoS mitigation: chal carries an HMAC under the group request
  /// key; devices drop unauthenticated requests instead of attesting.
  bool authenticate_requests = false;

  /// §VIII lossy networks: parents that miss a child token at the
  /// deadline re-poll the child (one retry round) before flushing.
  bool retransmit = false;
  std::uint32_t max_retries = 2;

  /// Robustness extension: adaptive per-child timeouts with exponential
  /// backoff and degraded-mode (per-device status) reports. Supersedes
  /// `retransmit`/`max_retries` when enabled; disabled by default so the
  /// legacy path stays byte-identical.
  AdaptiveTimeoutConfig adaptive{};

  /// Simulation engine knobs. threads=1 (default) is the classic
  /// single-threaded engine, bit-for-bit identical to previous
  /// behavior; threads>1 shards the swarm across a worker pool
  /// (conservative lookahead = link.per_hop_latency — see
  /// docs/simulation.md for the determinism guarantees).
  sim::SimConfig sim{};

  std::size_t token_size() const noexcept {
    return crypto::digest_size(alg);
  }
  /// |chal| = O(l): 4-byte tick + 16-byte authenticator/padding, padded
  /// to the token size so chal and token weigh the same on the wire
  /// (the paper's utilization math assumes |chal| = |token| = l bits).
  std::size_t chal_size() const noexcept { return token_size(); }
};

}  // namespace cra::sap
