// Closed-form TCA-Model predictions for SAP (Lemmas 1-3, Equation 9).
//
// The tca module and the benches compare simulated rounds against these
// formulas — that is what "performs as expected from its systematic
// design" means operationally.
#pragma once

#include <cstdint>

#include "net/topology.hpp"
#include "sap/config.hpp"
#include "sim/time.hpp"

namespace cra::sap {

/// Depth of the balanced binary tree over N devices rooted on Vrf —
/// the paper's log2(N+2) − 1 (Equation 10), computed exactly for the
/// heap-layout tree we deploy.
std::uint32_t predicted_depth(std::uint32_t devices, std::uint32_t arity = 2);

/// T_att: attest execution time (HMAC over the whole PMEM).
sim::Duration attest_time(const SapConfig& config);

/// T_agg: per-hop aggregation time.
sim::Duration aggregate_time(const SapConfig& config);

/// Time for one chal/token message to cross one link (transmission at µ
/// plus the per-hop processing latency).
sim::Duration hop_time(const SapConfig& config);

/// Equation 9's lower bound on t_att − t_chal for a tree of `depth`.
sim::Duration request_lead_time(const SapConfig& config, std::uint32_t depth);

/// Lemma 2: U_CA(SAP) — every link carries one chal and one token.
std::uint64_t predicted_u_ca_bytes(const SapConfig& config,
                                   std::uint32_t edges);

/// Lemma 3: T_CA(SAP) = T_att + depth × (l/µ + T_agg) (+ per-hop
/// processing, which the paper's τ covers).
sim::Duration predicted_t_ca(const SapConfig& config, std::uint32_t depth);

/// Whole-round prediction (inbound + slack + measurement + outbound) —
/// what Figure 3(a) plots.
sim::Duration predicted_total(const SapConfig& config, std::uint32_t depth);

}  // namespace cra::sap
